"""Resettable id sequencers.

``itertools.count`` is the natural id allocator, but it has two problems
at scale-path boundaries: its position cannot be *read* (so a snapshot
cannot record where the counter stood) and it cannot be *set* (so a
restored run cannot continue numbering where the original left off, and
byte-identity checks between two runs in one process see drifting ids).
:class:`Sequencer` is the drop-in replacement — ``next(seq)`` as before,
plus ``peek`` and ``reset``.  Per-run state (message ids) uses one
sequencer per world; process-global allocators (engine action ids) use a
module-level sequencer that snapshots record and restores fast-forward.
"""

from __future__ import annotations

__all__ = ["Sequencer"]


class Sequencer:
    """A readable, settable monotone counter (``next()`` protocol)."""

    __slots__ = ("_next",)

    def __init__(self, start: int = 0) -> None:
        self._next = start

    def __next__(self) -> int:
        value = self._next
        self._next = value + 1
        return value

    def __iter__(self) -> "Sequencer":
        return self

    @property
    def peek(self) -> int:
        """The id the next ``next()`` will return."""
        return self._next

    def reset(self, value: int = 0) -> None:
        """Set the next id; a restore fast-forwards, tests rewind."""
        self._next = value

    def advance_to(self, value: int) -> None:
        """Ensure the next id is at least ``value`` (never rewinds)."""
        if value > self._next:
            self._next = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Sequencer(next={self._next})"
