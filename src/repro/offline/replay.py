"""Replaying time-independent traces (the off-line simulator).

Each rank's replay actor walks its recorded event list: compute bursts
become engine compute actions, message events re-post through the *same*
point-to-point protocol the on-line simulator uses (payloads folded —
a trace has no data), and wait events block on the recorded operations.
The network model, platform and MPI protocol parameters are free to
differ from the recording run — that is the point of off-line simulation.

Invariants worth knowing:

* replaying on the recording platform with the recording configuration
  reproduces the on-line simulated time exactly (asserted in tests);
* the trace is tied to the recorded rank count and message sizes — the
  limitation the paper's §2 develops; :func:`replay_trace` refuses a
  mismatched rank count rather than silently mis-simulating.

Replay runs are also the *checkpointable* runs of the scale path
(``docs/scaling.md``): each rank's replayer exposes its position — next
event index, in-flight requests, what it is blocked on — so
:mod:`repro.offline.snapshot` can capture a mid-run cut and a later
process can resume it bit-identically (``checkpoint_at=``/
:func:`~repro.offline.snapshot.resume_replay`).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError, MpiError
from ..smpi import constants
from ..smpi import request as rq
from ..smpi.config import SmpiConfig
from ..smpi.request import Request
from ..smpi.runtime import SmpiResult, SmpiWorld
from ..surf.platform import Platform
from .trace import TiTrace

__all__ = ["replay_trace"]

_EMPTY = np.zeros(0, dtype=np.uint8)


class _RankReplayer:
    """One rank's replay position, visible to the checkpoint layer.

    The :meth:`run` generator is what the actor runs; the attributes are
    what a snapshot serializes:

    * ``next_index`` — the next trace event to process;
    * ``live`` — in-flight requests by trace op id (issued, not waited);
    * ``blocked`` — what the rank is parked on right now:
      ``("compute", ExecActivity)``, ``("wait", [Request, ...])`` for a
      recorded wait, ``("drain", [Request, ...])`` for the final implicit
      waitall, or ``None`` while the rank holds the baton.

    ``resume_block`` re-enters a restored block before the event loop
    continues — the restored activity/requests wrap engine actions whose
    numeric state the engine snapshot carried over.
    """

    def __init__(self, world: SmpiWorld, rank: int, events,
                 next_index: int = 0, live: dict | None = None,
                 resume_block=None) -> None:
        self.world = world
        self.rank = rank
        self.events = events
        self.next_index = next_index
        self.live: dict[int, Request] = live if live is not None else {}
        self.blocked = None
        self._resume_block = resume_block

    # -- blocking helpers (each mirrors the on-line runtime exactly) --------

    def _co_compute(self, activity, flops: float):
        world = self.world
        actor = world.current_actor
        start = world.engine.now
        yield from activity.co_wait(actor)
        self.blocked = None
        if activity.failed:
            raise MpiError(
                constants.ERR_OTHER,
                f"host failure killed compute burst on rank {self.rank}",
            )
        if world.config.tracing:
            world.trace.compute(self.rank, flops, start, world.engine.now)

    def _co_wait(self, pending: list[Request]):
        yield from rq.co_waitall(pending)
        self.blocked = None

    # -- the actor body ------------------------------------------------------

    def run(self):
        # generator dialect, passed to add_actor as the *bound method* so
        # backend selection sees a generator function and runs the
        # replayer as a coroutine continuation, not a parked OS thread
        world = self.world
        protocol = world.protocol
        rank = self.rank
        if self._resume_block is not None:
            kind, payload = self._resume_block
            self._resume_block = None
            self.blocked = (kind, payload)
            if kind == "compute":
                activity, flops = payload
                yield from self._co_compute(activity, flops)
            else:  # "wait" / "drain"
                yield from self._co_wait(payload)
        events = self.events
        while self.next_index < len(events):
            event = events[self.next_index]
            self.next_index += 1
            kind = event.kind
            if kind == "compute":
                flops = event.args[0]
                if flops <= 0:
                    continue
                actor = world.current_actor
                activity = world.scheduler.execute(
                    actor, flops, f"exec-r{rank}")
                self.blocked = ("compute", (activity, flops))
                yield from self._co_compute(activity, flops)
            elif kind == "send":
                op_id, dst, nbytes, tag, ctx = event.args
                request = Request(world, "send", rank)
                protocol.start_send(
                    src=rank, dst=dst, tag=tag, ctx=ctx,
                    data=_EMPTY, request=request, wire_bytes=nbytes,
                )
                self.live[op_id] = request
            elif kind == "recv":
                op_id, src, tag, ctx = event.args
                request = Request(world, "recv", rank)
                protocol.start_recv(
                    dst=rank, source=src, tag=tag, ctx=ctx,
                    buffer=None, request=request,
                )
                self.live[op_id] = request
            else:  # wait
                (op_ids,) = event.args
                pending = [self.live.pop(i) for i in op_ids
                           if i in self.live]
                if pending:
                    self.blocked = ("wait", pending)
                    yield from self._co_wait(pending)
        # reap anything the application never waited on explicitly
        leftovers = list(self.live.values())
        self.live.clear()
        if leftovers:
            self.blocked = ("drain", leftovers)
            yield from self._co_wait(leftovers)


def _finish_result(world: SmpiWorld, trace: TiTrace, simulated: float,
                   wall: float, checkpoint: dict | None) -> SmpiResult:
    if world.trace.timeline is not None:
        world.trace.timeline.close(simulated)
        world.engine.stats.link_samples = world.trace.timeline.n_samples
    world.trace.finish(simulated)
    return SmpiResult(
        simulated_time=simulated,
        wall_time=wall,
        returns=[None] * trace.n_ranks,
        memory=world.memory.report(),
        stats=world.engine.stats,
        trace=world.trace,
        checkpoint=checkpoint,
    )


def replay_trace(
    trace: TiTrace,
    platform: Platform,
    n_ranks: int | None = None,
    hosts: list[str] | None = None,
    config: SmpiConfig | None = None,
    network_model=None,
    engine=None,
    ctx: str | None = None,
    trace_sink=None,
    checkpoint_at: float | None = None,
) -> SmpiResult:
    """Simulate the recorded execution on ``platform``.

    ``n_ranks`` may be passed for API symmetry but must equal the trace's
    rank count — a TI trace cannot be re-shaped (paper §2).

    ``checkpoint_at`` arms mid-run checkpointing: at the first quiescent
    scheduler cut with simulated clock >= the given date, the full
    simulation state is captured (the run then continues normally) and
    returned as ``result.checkpoint`` — feed it to
    :func:`repro.offline.snapshot.resume_replay` (or save it with
    :func:`~repro.offline.snapshot.save_checkpoint`) to warm-start a
    later run from that cut.  Checkpointing requires tracing disabled
    and no ``comm_timeout`` watchdogs (see ``docs/scaling.md``).
    """
    if n_ranks is not None and n_ranks != trace.n_ranks:
        raise ConfigError(
            f"trace was recorded with {trace.n_ranks} ranks and cannot be "
            f"replayed on {n_ranks}: time-independent traces are tied to "
            "the recorded application configuration"
        )

    import time

    world = SmpiWorld(platform, trace.n_ranks, hosts, config, network_model,
                      engine, ctx=ctx, trace_sink=trace_sink)

    replayers = []
    for rank in range(trace.n_ranks):
        replayer = _RankReplayer(world, rank, trace.events[rank])
        replayers.append(replayer)
        actor = world.scheduler.add_actor(
            f"replay-{rank}", world.host_of(rank), replayer.run
        )
        world.register_actor(rank, actor)

    checkpoint_box: dict = {}
    if checkpoint_at is not None:
        from .snapshot import arm_checkpoint

        arm_checkpoint(world, replayers, trace, checkpoint_at,
                       checkpoint_box)

    wall_start = time.perf_counter()
    simulated = world.scheduler.run()
    wall = time.perf_counter() - wall_start
    return _finish_result(world, trace, simulated, wall,
                          checkpoint_box.get("checkpoint"))
