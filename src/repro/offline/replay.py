"""Replaying time-independent traces (the off-line simulator).

Each rank's replay actor walks its recorded event list: compute bursts
become engine compute actions, message events re-post through the *same*
point-to-point protocol the on-line simulator uses (payloads folded —
a trace has no data), and wait events block on the recorded operations.
The network model, platform and MPI protocol parameters are free to
differ from the recording run — that is the point of off-line simulation.

Invariants worth knowing:

* replaying on the recording platform with the recording configuration
  reproduces the on-line simulated time exactly (asserted in tests);
* the trace is tied to the recorded rank count and message sizes — the
  limitation the paper's §2 develops; :func:`replay_trace` refuses a
  mismatched rank count rather than silently mis-simulating.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from ..smpi import request as rq
from ..smpi.config import SmpiConfig
from ..smpi.request import Request
from ..smpi.runtime import SmpiResult, SmpiWorld
from ..surf.platform import Platform
from .trace import TiTrace

__all__ = ["replay_trace"]

_EMPTY = np.zeros(0, dtype=np.uint8)


def replay_trace(
    trace: TiTrace,
    platform: Platform,
    n_ranks: int | None = None,
    hosts: list[str] | None = None,
    config: SmpiConfig | None = None,
    network_model=None,
    engine=None,
    ctx: str | None = None,
) -> SmpiResult:
    """Simulate the recorded execution on ``platform``.

    ``n_ranks`` may be passed for API symmetry but must equal the trace's
    rank count — a TI trace cannot be re-shaped (paper §2).
    """
    if n_ranks is not None and n_ranks != trace.n_ranks:
        raise ConfigError(
            f"trace was recorded with {trace.n_ranks} ranks and cannot be "
            f"replayed on {n_ranks}: time-independent traces are tied to "
            "the recorded application configuration"
        )

    import time

    world = SmpiWorld(platform, trace.n_ranks, hosts, config, network_model,
                      engine, ctx=ctx)

    def make_replayer(rank: int):
        events = trace.events[rank]

        def replay_rank():
            # generator dialect: the auto backend runs each replayer as a
            # coroutine continuation instead of a parked OS thread

            protocol = world.protocol
            live: dict[int, Request] = {}
            for event in events:
                kind = event.kind
                if kind == "compute":
                    yield from world.co_execute_flops(event.args[0])
                elif kind == "send":
                    op_id, dst, nbytes, tag, ctx = event.args
                    request = Request(world, "send", rank)
                    protocol.start_send(
                        src=rank, dst=dst, tag=tag, ctx=ctx,
                        data=_EMPTY, request=request, wire_bytes=nbytes,
                    )
                    live[op_id] = request
                elif kind == "recv":
                    op_id, src, tag, ctx = event.args
                    request = Request(world, "recv", rank)
                    protocol.start_recv(
                        dst=rank, source=src, tag=tag, ctx=ctx,
                        buffer=None, request=request,
                    )
                    live[op_id] = request
                else:  # wait
                    (op_ids,) = event.args
                    pending = [live.pop(i) for i in op_ids if i in live]
                    if pending:
                        yield from rq.co_waitall(pending)
            # reap anything the application never waited on explicitly
            leftovers = list(live.values())
            if leftovers:
                yield from rq.co_waitall(leftovers)

        return replay_rank

    for rank in range(trace.n_ranks):
        actor = world.scheduler.add_actor(
            f"replay-{rank}", world.host_of(rank), make_replayer(rank)
        )
        world.register_actor(rank, actor)

    wall_start = time.perf_counter()
    simulated = world.scheduler.run()
    wall = time.perf_counter() - wall_start
    return SmpiResult(
        simulated_time=simulated,
        wall_time=wall,
        returns=[None] * trace.n_ranks,
        memory=world.memory.report(),
        stats=world.engine.stats,
        trace=world.trace,
    )
