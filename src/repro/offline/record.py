"""Recording time-independent traces from on-line runs.

:func:`record_trace` runs an application exactly like
:func:`~repro.smpi.runtime.smpirun` while a :class:`Recorder` observes the
protocol layer: every compute burst, posted send/receive and blocking
wait is appended to the calling rank's event list, in program order
(guaranteed because ranks execute strictly sequentially).

Scope notes (the standard limitations of trace-based tooling, cf. paper
§2):

* collectives are captured as their point-to-point decomposition — the
  trace embeds the algorithm that ran, so a replay cannot re-select
  algorithms for a different implementation;
* a successful ``Test`` is recorded as a wait (the dependency is real);
  unsuccessful polls are not recorded, so busy-poll loops replay without
  their poll-delay cost;
* ``mpi.sleep`` is not captured (no MPI counterpart in a TI trace).
"""

from __future__ import annotations

import itertools
from typing import Any, Callable

from ..smpi.runtime import SmpiResult, smpirun
from ..surf.platform import Platform
from .trace import TiEvent, TiTrace

__all__ = ["Recorder", "record_trace"]


class Recorder:
    """Accumulates one TI trace while an on-line simulation runs."""

    def __init__(self, n_ranks: int) -> None:
        self.trace = TiTrace(n_ranks)
        self._ids = itertools.count()

    # -- hooks called by the runtime/protocol --------------------------------------------

    def compute(self, rank: int, flops: float) -> None:
        self.trace.append(rank, TiEvent("compute", (float(flops),)))

    def send(self, rank: int, dst: int, nbytes: int, tag: int, ctx: int) -> int:
        op_id = next(self._ids)
        self.trace.append(
            rank, TiEvent("send", (op_id, dst, int(nbytes), tag, ctx))
        )
        return op_id

    def recv(self, rank: int, src: int, tag: int, ctx: int) -> int:
        op_id = next(self._ids)
        self.trace.append(rank, TiEvent("recv", (op_id, src, tag, ctx)))
        return op_id

    def wait(self, rank: int, op_ids: list[int]) -> None:
        if op_ids:
            self.trace.append(rank, TiEvent("wait", (list(op_ids),)))


def record_trace(
    app: Callable[..., Any],
    n_ranks: int,
    platform: Platform,
    **smpirun_kwargs: Any,
) -> tuple[SmpiResult, TiTrace]:
    """Run ``app`` on-line and capture its TI trace.

    Returns the normal :class:`SmpiResult` *and* the trace; the trace's
    ``meta`` records the recording platform and simulated time so replays
    can report provenance.
    """
    recorder = Recorder(n_ranks)
    result = smpirun(app, n_ranks, platform, recorder=recorder,
                     **smpirun_kwargs)
    recorder.trace.meta.update(
        {
            "recorded_on": platform.name,
            "recorded_simulated_time": result.simulated_time,
        }
    )
    return result, recorder.trace
