"""Recording time-independent traces from on-line runs.

:func:`record_trace` runs an application exactly like
:func:`~repro.smpi.runtime.smpirun` while a :class:`Recorder` observes the
protocol layer: every compute burst, posted send/receive and blocking
wait is appended to the calling rank's event list, in program order
(guaranteed because ranks execute strictly sequentially).

Scope notes (the standard limitations of trace-based tooling, cf. paper
§2):

* collectives are captured as their point-to-point decomposition — the
  trace embeds the algorithm that ran, so a replay cannot re-select
  algorithms for a different implementation;
* a successful ``Test`` is recorded as a wait (the dependency is real);
  unsuccessful polls are not recorded, so busy-poll loops replay without
  their poll-delay cost;
* ``mpi.sleep`` is not captured (no MPI counterpart in a TI trace).
"""

from __future__ import annotations

import itertools
import json
import os
from pathlib import Path
from typing import Any, Callable

from ..smpi.runtime import SmpiResult, smpirun
from ..surf.platform import Platform
from .trace import TiEvent, TiTrace

__all__ = ["Recorder", "StreamingRecorder", "record_trace",
           "record_trace_streaming"]


class Recorder:
    """Accumulates one TI trace while an on-line simulation runs."""

    def __init__(self, n_ranks: int) -> None:
        self.n_ranks = n_ranks
        self.trace = TiTrace(n_ranks)
        self._ids = itertools.count()

    def _emit(self, rank: int, event: TiEvent) -> None:
        self.trace.append(rank, event)

    # -- hooks called by the runtime/protocol --------------------------------------------

    def compute(self, rank: int, flops: float) -> None:
        self._emit(rank, TiEvent("compute", (float(flops),)))

    def send(self, rank: int, dst: int, nbytes: int, tag: int, ctx: int) -> int:
        op_id = next(self._ids)
        self._emit(
            rank, TiEvent("send", (op_id, dst, int(nbytes), tag, ctx))
        )
        return op_id

    def recv(self, rank: int, src: int, tag: int, ctx: int) -> int:
        op_id = next(self._ids)
        self._emit(rank, TiEvent("recv", (op_id, src, tag, ctx)))
        return op_id

    def wait(self, rank: int, op_ids: list[int]) -> None:
        if op_ids:
            self._emit(rank, TiEvent("wait", (list(op_ids),)))


class StreamingRecorder(Recorder):
    """Recorder that spills events to disk under a bounded buffer.

    Events append to a JSONL spill file (``[rank, [kind, *args]]`` per
    line) instead of growing per-rank lists, so recording a 10k+-rank
    run holds at most ``high_water`` events in memory while the
    simulation is live.  :meth:`finish` regroups the spill into the
    canonical :class:`~repro.offline.trace.TiTrace` JSON — that final
    pass materialises the trace once, after simulation state is gone —
    and the written file is byte-identical to ``TiTrace.save`` from an
    in-memory recording.
    """

    def __init__(self, n_ranks: int, path: str | Path,
                 high_water: int = 4096) -> None:
        super().__init__(n_ranks)
        self.trace = None  # streaming: no in-memory trace
        self.path = Path(path)
        self._spill_path = self.path.with_name(self.path.name + ".spill")
        self._spill = open(self._spill_path, "w", encoding="utf-8")
        self._buffer: list[str] = []
        self._high_water = max(1, high_water)
        self.n_events = 0

    def _emit(self, rank: int, event: TiEvent) -> None:
        self._buffer.append(json.dumps([rank, event.to_json()]))
        self.n_events += 1
        if len(self._buffer) >= self._high_water:
            self._flush()

    def _flush(self) -> None:
        if self._buffer:
            self._spill.write("\n".join(self._buffer) + "\n")
            self._buffer.clear()

    def finish(self, meta: dict | None = None) -> TiTrace:
        """Regroup the spill into ``path`` (canonical TI JSON)."""
        self._flush()
        self._spill.close()
        trace = TiTrace(self.n_ranks)
        with open(self._spill_path, "r", encoding="utf-8") as spill:
            for line in spill:
                if not line.strip():
                    continue
                rank, row = json.loads(line)
                trace.append(rank, TiEvent.from_json(row))
        if meta:
            trace.meta.update(meta)
        trace.save(self.path)
        os.unlink(self._spill_path)
        return trace


def record_trace(
    app: Callable[..., Any],
    n_ranks: int,
    platform: Platform,
    **smpirun_kwargs: Any,
) -> tuple[SmpiResult, TiTrace]:
    """Run ``app`` on-line and capture its TI trace.

    Returns the normal :class:`SmpiResult` *and* the trace; the trace's
    ``meta`` records the recording platform and simulated time so replays
    can report provenance.
    """
    recorder = Recorder(n_ranks)
    result = smpirun(app, n_ranks, platform, recorder=recorder,
                     **smpirun_kwargs)
    recorder.trace.meta.update(
        {
            "recorded_on": platform.name,
            "recorded_simulated_time": result.simulated_time,
        }
    )
    return result, recorder.trace


def record_trace_streaming(
    app: Callable[..., Any],
    n_ranks: int,
    platform: Platform,
    path: str | Path,
    high_water: int = 4096,
    **smpirun_kwargs: Any,
) -> SmpiResult:
    """Run ``app`` on-line and stream its TI trace straight to ``path``.

    The constant-memory twin of :func:`record_trace`: events spill to
    disk as they happen and the canonical trace file is assembled at the
    end, byte-identical to ``record_trace(...)[1].save(path)``.
    """
    recorder = StreamingRecorder(n_ranks, path, high_water=high_water)
    result = smpirun(app, n_ranks, platform, recorder=recorder,
                     **smpirun_kwargs)
    recorder.finish(
        {
            "recorded_on": platform.name,
            "recorded_simulated_time": result.simulated_time,
        }
    )
    return result
