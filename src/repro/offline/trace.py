"""Time-independent trace format.

A TI trace is one ordered event list per rank.  Events carry *amounts*,
never time-stamps — durations are what the replay simulation computes —
which is what makes the trace portable across target platforms (the
"trace extrapolation" limitation discussed in the paper's §2 concerns
changing the *application* configuration, not the platform).

Event kinds:

* ``("compute", flops)``
* ``("send", op_id, dst, nbytes, tag, ctx)`` — nonblocking send posted
* ``("recv", op_id, src, tag, ctx)`` — nonblocking receive posted
  (``src`` may be ANY_SOURCE: the replay re-matches, and — as the paper
  warns — may match differently on a different platform)
* ``("wait", [op_ids...])`` — block until all listed operations complete

Ranks and contexts are world-level (the trace flattens communicators the
way real MPI tracing tools do).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..errors import ConfigError

__all__ = ["TiEvent", "TiTrace"]

#: canonical event kinds
KINDS = ("compute", "send", "recv", "wait")


@dataclass(frozen=True)
class TiEvent:
    """One trace event; ``args`` depends on ``kind`` (see module doc)."""

    kind: str
    args: tuple

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ConfigError(f"unknown trace event kind {self.kind!r}")

    def to_json(self) -> list:
        """The compact JSON row form: ``[kind, *args]``."""
        return [self.kind, *self.args]

    @classmethod
    def from_json(cls, row: list) -> "TiEvent":
        """Rebuild an event from its :meth:`to_json` row."""
        kind, *args = row
        if kind == "wait":
            args = (list(args[0]),)
        return cls(kind, tuple(args))


@dataclass
class TiTrace:
    """A complete recorded execution: one event list per world rank."""

    n_ranks: int
    events: list[list[TiEvent]] = field(default_factory=list)
    meta: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.events:
            self.events = [[] for _ in range(self.n_ranks)]
        if len(self.events) != self.n_ranks:
            raise ConfigError("one event list per rank required")

    def append(self, rank: int, event: TiEvent) -> None:
        """Record ``event`` at the end of ``rank``'s stream."""
        self.events[rank].append(event)

    # -- statistics -------------------------------------------------------------------

    def total_messages(self) -> int:
        """Number of point-to-point messages posted across all ranks."""
        return sum(
            1 for rank_events in self.events for e in rank_events
            if e.kind == "send"
        )

    def total_bytes(self) -> int:
        """Total payload bytes of every posted send."""
        return sum(
            e.args[2] for rank_events in self.events for e in rank_events
            if e.kind == "send"
        )

    def total_flops(self) -> float:
        """Total computation recorded, in flops."""
        return sum(
            e.args[0] for rank_events in self.events for e in rank_events
            if e.kind == "compute"
        )

    def summary(self) -> str:
        """One-line human summary (ranks / messages / bytes / flops)."""
        return (
            f"TI trace: {self.n_ranks} ranks, "
            f"{self.total_messages()} messages, "
            f"{self.total_bytes()} bytes, {self.total_flops():.3g} flops"
        )

    # -- (de)serialisation ----------------------------------------------------------------

    def to_json(self) -> str:
        """Serialise to the versioned ``repro-ti-trace-1`` JSON document."""
        return json.dumps(
            {
                "format": "repro-ti-trace-1",
                "n_ranks": self.n_ranks,
                "meta": self.meta,
                "events": [
                    [e.to_json() for e in rank_events]
                    for rank_events in self.events
                ],
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "TiTrace":
        """Parse a :meth:`to_json` document (format field is checked)."""
        payload = json.loads(text)
        if payload.get("format") != "repro-ti-trace-1":
            raise ConfigError("not a repro TI trace")
        trace = cls(
            n_ranks=payload["n_ranks"],
            events=[
                [TiEvent.from_json(row) for row in rank_events]
                for rank_events in payload["events"]
            ],
            meta=payload.get("meta", {}),
        )
        return trace

    def save(self, path: str | Path) -> None:
        """Write the JSON document to ``path``."""
        Path(path).write_text(self.to_json(), encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "TiTrace":
        """Read a trace previously written by :meth:`save`."""
        return cls.from_json(Path(path).read_text(encoding="utf-8"))
