"""Checkpoint/restore of replay runs (the scale path's warm starts).

A *checkpoint* is a plain-JSON-compatible dict capturing everything a
replay run needs to continue from a mid-run cut:

* the engine snapshot (:meth:`repro.surf.Engine.snapshot`): clock,
  stats, every in-flight action's numeric state, the completion heap,
  the incremental solver's membership/rates/dirtiness, profile cursors;
* the protocol state: live requests, in-flight messages, the posted and
  unexpected match queues (replay payloads are empty sentinels, so no
  data travels into the checkpoint);
* each rank's replay position: next trace event, in-flight operations,
  and what the rank is blocked on (a compute burst, a recorded wait, or
  the final drain);
* the id allocators (action/request/message sequencers), so the resumed
  run numbers everything exactly as the uninterrupted one — heap
  tie-breaks and observer delivery order depend on it.

Capture happens at a *quiescent scheduler cut*: every rank blocked, no
completions awaiting delivery (``Scheduler.on_quiescent``).  Restoring
re-revives the actions, wraps them in fresh activities (re-binding the
observers the snapshot could not serialize), re-enters each rank's block
point, and continues — the resumed run's simulated clock is
**bit-identical** to the uninterrupted run's, which the fuzz tests in
``tests/test_snapshot.py`` pin at random cut points.

Checkpointing requires tracing disabled (utilization series are
streamed, not checkpointed), no ``comm_timeout`` watchdogs and no
scripted fault events (their callbacks are closures); ``arm_checkpoint``
rejects such configurations up front.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..errors import ConfigError, SimulationError
from ..smpi import request as rq
from ..smpi.config import SmpiConfig
from ..smpi.intern import intern_meta
from ..smpi.pt2pt import Message, _PostedRecv
from ..smpi.request import Request
from ..smpi.runtime import SmpiResult, SmpiWorld
from ..simix.activity import CommActivity, ExecActivity
from ..surf.engine import Engine
from ..surf.platform import Platform
from .trace import TiTrace

__all__ = [
    "CHECKPOINT_VERSION",
    "arm_checkpoint",
    "capture_replay",
    "resume_replay",
    "save_checkpoint",
    "load_checkpoint",
    "warm_replay",
]

#: wire-format version of replay checkpoints; bump on any layout change
CHECKPOINT_VERSION = 1

_EMPTY = np.zeros(0, dtype=np.uint8)


# -- capture ------------------------------------------------------------------


def _check_checkpointable(world: SmpiWorld) -> None:
    """Reject configurations whose state a checkpoint cannot carry."""
    if world.config.tracing:
        raise ConfigError(
            "checkpointing requires tracing disabled: utilization "
            "timelines and trace records are streamed, not checkpointed"
        )
    if world.config.comm_timeout is not None:
        raise ConfigError(
            "checkpointing is incompatible with comm_timeout watchdogs "
            "(their callbacks are closures and cannot be serialized)"
        )
    if world.recorder is not None:
        raise ConfigError("cannot checkpoint a recording run")


def arm_checkpoint(world: SmpiWorld, replayers: list, trace: TiTrace,
                   at_time: float, box: dict) -> None:
    """Install a quiescent-cut hook capturing the run at ``at_time``.

    The capture happens at the first quiescent scheduler cut whose
    simulated clock is >= ``at_time`` (the run continues normally
    afterwards); the checkpoint dict lands in ``box["checkpoint"]``.
    """
    _check_checkpointable(world)

    def hook() -> None:
        if "checkpoint" in box or world.engine.now < at_time:
            return
        checkpoint = capture_replay(world, replayers, trace)
        if checkpoint is not None:
            box["checkpoint"] = checkpoint

    world.scheduler.on_quiescent = hook


def capture_replay(world: SmpiWorld, replayers: list,
                   trace: TiTrace) -> dict | None:
    """Capture a quiescent replay cut; None when the cut is not clean.

    A cut is *clean* when the engine holds no undelivered completions —
    the scheduler hook simply retries at the next cut otherwise.
    """
    engine = world.engine
    if engine._instant_done or engine._finished:
        return None

    requests: dict[int, Request] = {}
    messages: dict[int, Message] = {}

    def note_request(request) -> None:
        if request is None or request.rid in requests:
            return
        if request.error_exc is not None:
            raise SimulationError(
                "cannot checkpoint a run with undelivered operation "
                f"errors (request #{request.rid}: {request.error_exc})"
            )
        requests[request.rid] = request
        if request.message is not None:
            note_message(request.message)

    def note_message(message) -> None:
        if message.mid in messages:
            return
        if message.watchdog is not None:
            raise SimulationError(
                f"message {message.mid} carries a live watchdog; "
                "checkpointing requires comm_timeout=None"
            )
        messages[message.mid] = message
        note_request(message.send_req)
        note_request(message.recv_req)

    rank_states = []
    for rank, replayer in enumerate(replayers):
        for request in replayer.live.values():
            note_request(request)
        actor = world._actors[rank]
        blocked = None if actor.finished else replayer.blocked
        state: dict = {
            "next_index": replayer.next_index,
            "live": [[op_id, request.rid]
                     for op_id, request in replayer.live.items()],
            "blocked": None,
        }
        if blocked is not None:
            kind, payload = blocked
            if kind == "compute":
                activity, _flops = payload
                state["blocked"] = {"kind": "compute",
                                    "aid": activity.action.aid}
            else:
                for request in payload:
                    note_request(request)
                state["blocked"] = {"kind": kind,
                                    "rids": [r.rid for r in payload]}
        rank_states.append(state)

    protocol = world.protocol
    if any(protocol._probe_waiters.values()):
        raise SimulationError("cannot checkpoint with actors blocked in "
                              "Probe")
    posted = []
    for key, mailbox in protocol._posted.items():
        if not mailbox:
            continue
        for recv in mailbox:
            note_request(recv.request)
        posted.append([list(key), [
            {"source": r.source, "tag": r.tag, "ctx": r.ctx,
             "rid": r.request.rid} for r in mailbox
        ]])
    unexpected = []
    for key, mailbox in protocol._unexpected.items():
        if not mailbox:
            continue
        for message in mailbox:
            note_message(message)
        unexpected.append([list(key), [m.mid for m in mailbox]])

    message_rows = []
    for message in messages.values():
        transfer = message.transfer
        transfer_aid = None
        if transfer is not None and not transfer.done:
            transfer_aid = transfer.action.aid
        message_rows.append({
            "mid": message.mid,
            "src": message.src, "dst": message.dst,
            "tag": message.tag, "ctx": message.ctx,
            "eager": message.eager,
            "wire_bytes": message.wire_bytes,
            "delivered": message.delivered,
            "attempts": message.attempts,
            "handshake": message.handshake,
            "send_rid": None if message.send_req is None
                        else message.send_req.rid,
            "recv_rid": None if message.recv_req is None
                        else message.recv_req.rid,
            "transfer_aid": transfer_aid,
        })
    request_rows = [{
        "rid": r.rid, "kind": r.kind, "owner": r.owner_rank,
        "complete": r.complete, "cancelled": r.cancelled,
        "source": r.source, "tag": r.tag,
        "received_bytes": r.received_bytes,
        "mid": None if r.message is None else r.message.mid,
    } for r in requests.values()]

    return {
        "version": CHECKPOINT_VERSION,
        "trace": {
            "n_ranks": trace.n_ranks,
            "event_counts": [len(events) for events in trace.events],
        },
        "config": _config_dict(world.config),
        "rank_hosts": list(world.rank_hosts),
        "engine": engine.snapshot(),
        "msg_next": world.msg_seq.peek,
        "req_next": rq._ids.peek,
        "next_ctx": world._next_ctx,
        "requests": request_rows,
        "messages": message_rows,
        "posted": posted,
        "unexpected": unexpected,
        "ranks": rank_states,
    }


def _config_dict(config: SmpiConfig) -> dict:
    import dataclasses

    return dataclasses.asdict(config)


# -- restore ------------------------------------------------------------------


def resume_replay(
    trace: TiTrace,
    platform: Platform,
    checkpoint: dict,
    network_model=None,
    ctx: str | None = None,
) -> SmpiResult:
    """Continue a checkpointed replay run to completion.

    ``trace`` and ``platform`` must be the ones the checkpoint was taken
    with (the trace's shape is validated; the platform's topology feeds
    the revived actions' link tuples), and ``network_model`` must equal
    the original run's.  The returned result's ``simulated_time`` is
    bit-identical to the uninterrupted run's.
    """
    from .replay import _RankReplayer, _finish_result

    version = checkpoint.get("version")
    if version != CHECKPOINT_VERSION:
        raise ConfigError(
            f"replay checkpoint version {version!r} is not the supported "
            f"version {CHECKPOINT_VERSION}"
        )
    shape = checkpoint["trace"]
    if shape["n_ranks"] != trace.n_ranks or shape["event_counts"] != [
            len(events) for events in trace.events]:
        raise ConfigError(
            "checkpoint does not match this trace (rank count or "
            "per-rank event counts differ)"
        )

    import time

    config = SmpiConfig(**checkpoint["config"])
    engine, actions = Engine.restore(platform, checkpoint["engine"],
                                     network_model=network_model)
    world = SmpiWorld(platform, trace.n_ranks,
                      hosts=checkpoint["rank_hosts"], config=config,
                      engine=engine, ctx=ctx)
    world.msg_seq.reset(checkpoint["msg_next"])
    world._next_ctx = checkpoint["next_ctx"]

    requests: dict[int, Request] = {}
    for row in checkpoint["requests"]:
        request = Request(world, row["kind"], row["owner"])
        request.rid = row["rid"]
        request.complete = row["complete"]
        request.cancelled = row["cancelled"]
        request.source = row["source"]
        request.tag = row["tag"]
        request.received_bytes = row["received_bytes"]
        requests[request.rid] = request
    rq._ids.advance_to(checkpoint["req_next"])

    messages: dict[int, Message] = {}
    for row in checkpoint["messages"]:
        message = Message(row["src"], row["dst"], row["tag"], row["ctx"],
                          _EMPTY, row["eager"],
                          wire_bytes=row["wire_bytes"], mid=row["mid"])
        message.delivered = row["delivered"]
        message.attempts = row["attempts"]
        message.handshake = row["handshake"]
        if row["send_rid"] is not None:
            message.send_req = requests[row["send_rid"]]
            message.send_req.message = message
            message.send_req.meta = intern_meta(
                "send", message.tag, message.ctx, message.wire_bytes,
                message.eager)
        if row["recv_rid"] is not None:
            recv_req = requests[row["recv_rid"]]
            message.recv_req = recv_req
            recv_req.message = message
            recv_req.meta = intern_meta("recv", message.tag, message.ctx, -1)
            recv_req._recv_buffer = None  # replay receives are raw-bytes
        messages[message.mid] = message

    protocol = world.protocol
    for key, entries in checkpoint["posted"]:
        for entry in entries:
            request = requests[entry["rid"]]
            request.meta = intern_meta("recv", entry["tag"], entry["ctx"],
                                       -1)
            # routes through the protocol so the dead-rank source index
            # is rebuilt alongside the queue itself
            protocol.post_restored_recv(
                key[0], key[1],
                _PostedRecv(entry["source"], entry["tag"], entry["ctx"],
                            request, None))
    for key, mids in checkpoint["unexpected"]:
        _posted, mailbox = protocol._queues(*key)
        for mid in mids:
            mailbox.push(messages[mid])

    # re-wire in-flight transfers: a fresh CommActivity around the revived
    # action re-binds the observer the engine snapshot dropped, and the
    # protocol's delivery callback is re-attached
    for row in checkpoint["messages"]:
        aid = row["transfer_aid"]
        if aid is None:
            continue
        message = messages[row["mid"]]
        action = actions[aid]
        activity = CommActivity(
            world.scheduler, action,
            world.host_of(message.src), world.host_of(message.dst),
            max(message.nbytes, 1), name=action.name,
        )
        activity.callbacks.append(
            lambda m=message: protocol._on_transfer_done(m))
        message.transfer = activity

    replayers = []
    for rank, state in enumerate(checkpoint["ranks"]):
        live = {op_id: requests[rid] for op_id, rid in state["live"]}
        resume_block = None
        blocked = state["blocked"]
        if blocked is not None:
            if blocked["kind"] == "compute":
                action = actions[blocked["aid"]]
                activity = ExecActivity(world.scheduler, action,
                                        name=action.name)
                resume_block = ("compute", (activity, 0.0))
            else:
                resume_block = (blocked["kind"],
                                [requests[rid] for rid in blocked["rids"]])
        replayer = _RankReplayer(world, rank, trace.events[rank],
                                 next_index=state["next_index"],
                                 live=live, resume_block=resume_block)
        replayers.append(replayer)
        actor = world.scheduler.add_actor(
            f"replay-{rank}", world.host_of(rank), replayer.run
        )
        world.register_actor(rank, actor)

    wall_start = time.perf_counter()
    simulated = world.scheduler.run()
    wall = time.perf_counter() - wall_start
    return _finish_result(world, trace, simulated, wall, None)


def warm_replay(
    trace: TiTrace,
    platform: Platform,
    checkpoint_at: float,
    store,
    config: SmpiConfig | None = None,
    network_model=None,
    ctx: str | None = None,
) -> SmpiResult:
    """Replay with a checkpoint store: resume on hit, capture on miss.

    ``store`` is a :class:`repro.sweep.cache.SnapshotStore` (or anything
    with its ``key_for``/``get``/``put`` shape).  On a store hit the
    common run prefix up to ``checkpoint_at`` is skipped entirely; either
    way the returned clock is the cold run's, bit-exact.
    """
    from .replay import replay_trace

    config = config or SmpiConfig()
    key = store.key_for(trace, platform, config, checkpoint_at)
    checkpoint = store.get(key)
    if checkpoint is not None:
        return resume_replay(trace, platform, checkpoint,
                             network_model=network_model, ctx=ctx)
    result = replay_trace(trace, platform, config=config,
                          network_model=network_model, ctx=ctx,
                          checkpoint_at=checkpoint_at)
    if result.checkpoint is not None:
        store.put(key, result.checkpoint)
    return result


# -- disk round trip ----------------------------------------------------------


def save_checkpoint(checkpoint: dict, path: str | Path) -> Path:
    """Write a checkpoint to ``path`` as JSON.

    The payload uses Python's JSON dialect (bare ``Infinity``/``NaN``
    for the numeric fields that legitimately hold them), so read it back
    with :func:`load_checkpoint` / Python's ``json`` module.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(checkpoint, separators=(",", ":")),
                      encoding="utf-8")
    return target


def load_checkpoint(path: str | Path) -> dict:
    """Read a checkpoint written by :func:`save_checkpoint`."""
    checkpoint = json.loads(Path(path).read_text(encoding="utf-8"))
    version = checkpoint.get("version")
    if version != CHECKPOINT_VERSION:
        raise ConfigError(
            f"replay checkpoint version {version!r} is not the supported "
            f"version {CHECKPOINT_VERSION}"
        )
    return checkpoint
