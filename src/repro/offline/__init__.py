"""offline — trace-based ("post-mortem") simulation, the paper's §2 foil.

The paper contrasts its on-line approach with off-line simulators that
replay "a log of MPI communication events (time-stamp, source,
destination, data size)".  This package implements that alternative on
top of the same kernel, which makes the comparison concrete:

* :mod:`repro.offline.record` — capture a *time-independent trace* from
  an on-line run: per-rank sequences of compute amounts, message
  envelopes and wait dependencies (SimGrid's TI-trace format in spirit);
* :mod:`repro.offline.replay` — re-execute a trace on any platform /
  network model, without the application;
* traces serialise to JSON for exchange (:class:`TiTrace.save`/``load``);
* :mod:`repro.offline.snapshot` — checkpoint a replay mid-run at a
  quiescent cut and resume it later (or in another process)
  bit-identically; the scale path's warm starts (``docs/scaling.md``).

The replayer reproduces the on-line simulator's timing exactly for the
platform the trace was recorded on (a strong cross-check, asserted in the
test suite), runs without the application's memory or compute footprint —
and exhibits precisely the limitation the paper describes: the trace is
tied to the recorded configuration (rank count, message sizes, matching
choices), so what-if studies that change application behaviour need
on-line simulation.
"""

from .record import record_trace, record_trace_streaming
from .replay import replay_trace
from .snapshot import (load_checkpoint, resume_replay, save_checkpoint,
                       warm_replay)
from .trace import TiEvent, TiTrace

__all__ = ["TiEvent", "TiTrace", "load_checkpoint", "record_trace",
           "record_trace_streaming", "replay_trace", "resume_replay",
           "save_checkpoint", "warm_replay"]
