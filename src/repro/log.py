"""Thin logging layer over :mod:`logging`.

Every subsystem gets its logger via :func:`get_logger` so that the whole
library lives under the ``repro`` logger namespace and can be silenced or
made verbose in one call (:func:`set_verbosity`).  The simulation engine
additionally injects the *simulated* clock into log records through
:func:`bind_clock`, so debug traces read like SimGrid's own logs::

    [12.000125] [smpi] rank 3 -> rank 7: 4.0 MiB (eager)
"""

from __future__ import annotations

import logging
from typing import Callable

_ROOT = "repro"
_clock_source: Callable[[], float] | None = None


class _SimClockFilter(logging.Filter):
    """Attach the current simulated time to each record as ``simtime``."""

    def filter(self, record: logging.LogRecord) -> bool:
        record.simtime = _clock_source() if _clock_source is not None else 0.0
        return True


def bind_clock(source: Callable[[], float] | None) -> None:
    """Register the callable giving the current simulated time (or None)."""
    global _clock_source
    _clock_source = source


def get_logger(name: str) -> logging.Logger:
    """Return the ``repro.<name>`` logger, creating the root handler once."""
    root = logging.getLogger(_ROOT)
    if not root.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("[%(simtime).6f] [%(name)s] %(message)s")
        )
        handler.addFilter(_SimClockFilter())
        root.addHandler(handler)
        root.setLevel(logging.WARNING)
        root.propagate = False
    return logging.getLogger(f"{_ROOT}.{name}")


def set_verbosity(level: int | str) -> None:
    """Set the level of every repro logger at once (e.g. ``'DEBUG'``)."""
    get_logger("root")  # ensure handler exists
    logging.getLogger(_ROOT).setLevel(level)
