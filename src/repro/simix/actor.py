"""Simulated processes: one OS thread each, strictly sequential execution.

The baton protocol: the scheduler thread and every actor thread share a
pair of :class:`threading.Event` objects.  At any instant at most one
thread — the scheduler *or* one actor — holds the baton.  ``resume()``
hands it to the actor and blocks the scheduler; ``_yield_control()`` hands
it back.  User code therefore never needs locks: it is plain sequential
code interleaved at MPI-call granularity, exactly like SMPI runs C code.

An actor blocks by calling :meth:`suspend`; anything that might unblock it
calls :meth:`Scheduler.wake`.  Waits are predicate-based (the waker may be
spurious) which keeps the MPI layer's matching logic simple and correct.
"""

from __future__ import annotations

import itertools
import threading
from typing import TYPE_CHECKING, Any, Callable

from ..errors import SimulationError
from ..log import get_logger
from ..surf.resources import Host

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .context import Scheduler

__all__ = ["Actor", "ActorKilled"]

_log = get_logger("simix")
_ids = itertools.count()


class ActorKilled(BaseException):
    """Raised *inside* an actor thread to unwind it at simulation teardown.

    Derives from BaseException so user ``except Exception`` blocks cannot
    swallow it.
    """


class Actor:
    """One simulated process pinned to one host."""

    def __init__(
        self,
        scheduler: "Scheduler",
        name: str,
        host: Host,
        func: Callable[..., Any],
        args: tuple = (),
        kwargs: dict | None = None,
    ) -> None:
        self.aid = next(_ids)
        self.scheduler = scheduler
        self.name = name
        self.host = host
        self.func = func
        self.args = args
        self.kwargs = kwargs or {}

        self.finished = False
        self.exception: BaseException | None = None
        self.result: Any = None
        self._killed = False
        #: True while the actor sits in the scheduler's runnable queue
        self.scheduled = False
        #: the activity this actor is blocked on, if any (maintained by
        #: :meth:`repro.simix.activity.Activity.add_waiter`; used by the
        #: scheduler's deadlock report to say who waits on what)
        self.waiting_on = None
        #: human-readable label of a predicate wait (set by
        #: :meth:`wait_for`); the deadlock report falls back to it when
        #: there is no activity to name
        self.waiting_reason: str | None = None

        self._baton_actor = threading.Event()  # set -> actor may run
        self._baton_sched = threading.Event()  # set -> scheduler may run
        self._thread = threading.Thread(
            target=self._bootstrap, name=f"actor-{name}", daemon=True
        )
        self._started = False

    # -- scheduler side ---------------------------------------------------------

    def resume(self) -> None:
        """Hand the baton to the actor; returns when it blocks or finishes."""
        if self.finished:
            return
        if not self._started:
            self._started = True
            self._thread.start()
        self._baton_sched.clear()
        self._baton_actor.set()
        self._baton_sched.wait()

    def kill(self) -> None:
        """Unwind the actor thread (teardown); must be resumed once after."""
        self._killed = True

    def join_thread(self, timeout: float | None = 5.0) -> None:
        if self._started:
            self._thread.join(timeout)

    # -- actor side ---------------------------------------------------------------

    def _bootstrap(self) -> None:
        try:
            self._baton_actor.wait()
            self._baton_actor.clear()
            if self._killed:
                raise ActorKilled()
            self.result = self.func(*self.args, **self.kwargs)
        except ActorKilled:
            pass
        except BaseException as exc:  # noqa: BLE001 - reported to the scheduler
            self.exception = exc
        finally:
            self.finished = True
            self._baton_sched.set()

    def _yield_control(self) -> None:
        """Give the baton back and wait for it to return."""
        self._baton_sched.set()
        self._baton_actor.wait()
        self._baton_actor.clear()
        if self._killed:
            raise ActorKilled()

    def suspend(self) -> None:
        """Block until some event wakes this actor (possibly spuriously)."""
        self.scheduler._on_suspend(self)
        self._yield_control()

    def yield_now(self) -> None:
        """Stay runnable but let the scheduler process other actors first."""
        self.scheduler._on_yield(self)
        self._yield_control()

    def wait_for(self, predicate: Callable[[], bool],
                 reason: str | None = None) -> None:
        """Suspend until ``predicate()`` holds; tolerant of spurious wakes.

        ``reason`` labels the wait in deadlock reports — predicate waits
        have no activity whose name could be shown otherwise.
        """
        if reason is not None:
            self.waiting_reason = reason
        try:
            while not predicate():
                self.suspend()
        finally:
            if reason is not None:
                self.waiting_reason = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self.finished else "alive"
        return f"Actor(#{self.aid} {self.name!r} on {self.host.name} {state})"
