"""Simulated processes, strictly sequential, on pluggable execution contexts.

An :class:`Actor` is the scheduler-facing identity of one simulated
process: its bookkeeping (runnable/blocked state, result, exception) plus
the blocking primitives user code calls.  *How* its frames are parked
between resumes is delegated to an
:class:`~repro.simix.contexts.ExecutionContext` — an OS thread with a
baton of Events, a greenlet, or a generator continuation resumed on the
scheduler's own stack (see :mod:`repro.simix.contexts.base`).

Each blocking primitive exists in two dialects with identical scheduler
interactions:

* synchronous — ``suspend()``, ``yield_now()``, ``wait_for()`` — parks
  the real stack via ``context.block()``; needs a stack-capable backend.
* generator — ``co_suspend()``, ``co_yield_now()``, ``co_wait_for()`` —
  does the same bookkeeping, then ``yield``\\ s; works on every backend,
  and is the *only* way to block on the coroutine backend.

An actor blocks by suspending; anything that might unblock it calls
:meth:`Scheduler.wake`.  Waits are predicate-based (the waker may be
spurious) which keeps the MPI layer's matching logic simple and correct.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Callable, Generator

from ..log import get_logger
from ..surf.resources import Host

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .context import Scheduler
    from .contexts import ExecutionContext

__all__ = ["Actor", "ActorKilled"]

_log = get_logger("simix")
_ids = itertools.count()


class ActorKilled(BaseException):
    """Raised *inside* an actor's frames to unwind it at simulation teardown.

    Derives from BaseException so user ``except Exception`` blocks cannot
    swallow it.
    """


class Actor:
    """One simulated process pinned to one host."""

    def __init__(
        self,
        scheduler: "Scheduler",
        name: str,
        host: Host,
        func: Callable[..., Any],
        args: tuple = (),
        kwargs: dict | None = None,
    ) -> None:
        self.aid = next(_ids)
        self.scheduler = scheduler
        self.name = name
        self.host = host
        self.func = func
        self.args = args
        self.kwargs = kwargs or {}

        self.finished = False
        self.exception: BaseException | None = None
        self.result: Any = None
        self._killed = False
        #: True while the actor sits in the scheduler's runnable queue
        self.scheduled = False
        #: the activity this actor is blocked on, if any (maintained by
        #: :meth:`repro.simix.activity.Activity.add_waiter`; used by the
        #: scheduler's deadlock report to say who waits on what)
        self.waiting_on = None
        #: human-readable label of a predicate wait (set by
        #: :meth:`wait_for`); the deadlock report falls back to it when
        #: there is no activity to name
        self.waiting_reason: str | None = None
        #: the execution context carrying this actor's frames; attached by
        #: :meth:`Scheduler.add_actor` from the scheduler's backend
        self._context: "ExecutionContext" = None  # type: ignore[assignment]

    # -- scheduler side ---------------------------------------------------------

    @property
    def context_kind(self) -> str:
        """Backend tag of this actor's execution context (e.g. ``thread``)."""
        return self._context.kind

    def resume(self) -> None:
        """Run the actor until it blocks or finishes; then return."""
        self._context.resume()

    def kill(self) -> None:
        """Unwind the actor (teardown); must be resumed once after.

        Idempotent across backends: repeated kills, or killing an actor
        that already finished, are no-ops.
        """
        self._killed = True

    def join_context(self, timeout: float | None = 5.0) -> None:
        """Wait for the context's kernel resources (if any) to unwind."""
        self._context.join(timeout)

    # retained under the historical name for callers of the thread era
    join_thread = join_context

    @property
    def context_alive(self) -> bool:
        """True while the context still holds live frames after teardown."""
        return self._context.alive

    # -- actor side: synchronous dialect ------------------------------------------

    def suspend(self) -> None:
        """Block until some event wakes this actor (possibly spuriously)."""
        self.scheduler._on_suspend(self)
        self._context.block()

    def yield_now(self) -> None:
        """Stay runnable but let the scheduler process other actors first."""
        self.scheduler._on_yield(self)
        self._context.block()

    def wait_for(self, predicate: Callable[[], bool],
                 reason: str | None = None) -> None:
        """Suspend until ``predicate()`` holds; tolerant of spurious wakes.

        ``reason`` labels the wait in deadlock reports — predicate waits
        have no activity whose name could be shown otherwise.
        """
        if reason is not None:
            self.waiting_reason = reason
        try:
            while not predicate():
                self.suspend()
        finally:
            if reason is not None:
                self.waiting_reason = None

    # -- actor side: generator dialect ---------------------------------------------

    def co_suspend(self) -> Generator[None, None, None]:
        """Generator twin of :meth:`suspend` (``yield from`` to block)."""
        self.scheduler._on_suspend(self)
        yield

    def co_yield_now(self) -> Generator[None, None, None]:
        """Generator twin of :meth:`yield_now`."""
        self.scheduler._on_yield(self)
        yield

    def co_wait_for(self, predicate: Callable[[], bool],
                    reason: str | None = None) -> Generator[None, None, None]:
        """Generator twin of :meth:`wait_for` — same bookkeeping, same order."""
        if reason is not None:
            self.waiting_reason = reason
        try:
            while not predicate():
                self.scheduler._on_suspend(self)
                yield
        finally:
            if reason is not None:
                self.waiting_reason = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self.finished else "alive"
        return f"Actor(#{self.aid} {self.name!r} on {self.host.name} {state})"
