"""Mailboxes: FIFO match queues for rendezvous between actors.

MPI message matching requires two queues per destination — posted receives
and unexpected messages — each searched *in arrival order* against a
predicate (source/tag, possibly wildcards).  :class:`Mailbox` provides
exactly that primitive; the MPI layer owns the matching rules.
"""

from __future__ import annotations

from typing import Callable, Generic, Iterator, TypeVar

T = TypeVar("T")

__all__ = ["Mailbox"]


class Mailbox(Generic[T]):
    """An ordered queue supporting predicate-based removal.

    Insertion order is preserved; ``pop_first`` implements the MPI
    requirement that matching scans oldest-first (non-overtaking rule for
    identical envelopes).
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._items: list[T] = []

    def push(self, item: T) -> None:
        self._items.append(item)

    def pop_first(self, predicate: Callable[[T], bool]) -> T | None:
        """Remove and return the oldest item satisfying ``predicate``."""
        for index, item in enumerate(self._items):
            if predicate(item):
                del self._items[index]
                return item
        return None

    def peek_first(self, predicate: Callable[[T], bool]) -> T | None:
        """Return (without removing) the oldest matching item."""
        for item in self._items:
            if predicate(item):
                return item
        return None

    def remove(self, item: T) -> bool:
        """Remove a specific item; returns whether it was present."""
        try:
            self._items.remove(item)
            return True
        except ValueError:
            return False

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Mailbox({self.name!r}, {len(self._items)} items)"
