"""Mailboxes and match queues: FIFO rendezvous structures for actors.

MPI message matching requires two queues per destination — posted receives
and unexpected messages — each searched *in arrival order* against a
source/tag pattern (possibly with wildcards).  Two families live here:

* :class:`Mailbox` — the original flat list with predicate scans.  Still
  the general-purpose primitive (and the matching *oracle* behind
  ``REPRO_MATCH=scan`` via the Scan* adapters below).
* the **indexed match queues** — :class:`IndexedMessageQueue` (concrete
  envelopes, possibly-wildcard queries) and :class:`IndexedRecvQueue`
  (possibly-wildcard patterns, concrete queries).  Every entry carries a
  monotonic per-queue sequence number; the exact-match common case is an
  O(1) bucket ``popleft`` and wildcard matches are resolved by comparing
  candidate bucket *head* seqnos, which preserves MPI's oldest-first
  non-overtaking rule bit-exactly (tests/test_matchq.py fuzzes the two
  families against each other).

The queues are generic: a ``key`` callable extracts the ``(source, tag)``
envelope from an item, and the wildcard sentinels are constructor
parameters, so this module needs no knowledge of the MPI layer.

All queues count their work into a stats sink (any object with
``match_probes`` / ``match_fast_hits`` / ``wildcard_scans`` counters —
normally the engine's :class:`~repro.surf.engine.EngineStats`):
``match_probes`` is the number of queue entries examined across matching
attempts, the apples-to-apples cost metric the matching ablation bench
gates on.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Generic, Iterator, TypeVar

T = TypeVar("T")

__all__ = [
    "Mailbox",
    "MatchCounters",
    "IndexedMessageQueue",
    "IndexedRecvQueue",
    "ScanMessageQueue",
    "ScanRecvQueue",
]


class Mailbox(Generic[T]):
    """An ordered queue supporting predicate-based removal.

    Insertion order is preserved; ``pop_first`` implements the MPI
    requirement that matching scans oldest-first (non-overtaking rule for
    identical envelopes).
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._items: list[T] = []

    def push(self, item: T) -> None:
        self._items.append(item)

    def pop_first(self, predicate: Callable[[T], bool]) -> T | None:
        """Remove and return the oldest item satisfying ``predicate``."""
        for index, item in enumerate(self._items):
            if predicate(item):
                del self._items[index]
                return item
        return None

    def peek_first(self, predicate: Callable[[T], bool]) -> T | None:
        """Return (without removing) the oldest matching item."""
        for item in self._items:
            if predicate(item):
                return item
        return None

    def remove(self, item: T) -> bool:
        """Remove a specific item; returns whether it was present."""
        try:
            self._items.remove(item)
            return True
        except ValueError:
            return False

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Mailbox({self.name!r}, {len(self._items)} items)"


class MatchCounters:
    """Stand-alone stats sink for queues built outside an engine."""

    __slots__ = ("match_probes", "match_fast_hits", "wildcard_scans")

    def __init__(self) -> None:
        self.match_probes = 0
        self.match_fast_hits = 0
        self.wildcard_scans = 0


class IndexedMessageQueue(Generic[T]):
    """Match queue of *concrete* envelopes queried with possible wildcards.

    The unexpected-message side of MPI matching: every pushed item has a
    concrete ``(source, tag)``; a query may wildcard either field.  Four
    views share one ``[seq, item]`` entry per message:

    * an exact ``(source, tag)`` bucket deque — the O(1) fast path;
    * per-source and per-tag deques, built lazily the first time a
      single-wildcard query arrives (exact-only workloads never pay for
      them);
    * one global deque in arrival order (double-wildcard queries,
      iteration, cold predicate scans).

    Removal tombstones the shared entry (``item`` slot set to ``None``);
    dead entries are skipped lazily at bucket heads and compacted away
    once they outnumber live ones.  Because every view is
    seqno-ordered, any query shape returns the globally oldest matching
    item — identical to a front-to-back scan.
    """

    __slots__ = (
        "name", "stats", "_key", "_any_source", "_any_tag", "_seq",
        "_exact", "_by_src", "_by_tag", "_all", "_live", "_dead",
        "_src_indexed", "_tag_indexed",
    )

    def __init__(
        self,
        name: str,
        key: Callable[[T], tuple[int, int]],
        any_source: int = -1,
        any_tag: int = -1,
        stats=None,
    ) -> None:
        self.name = name
        self.stats = stats if stats is not None else MatchCounters()
        self._key = key
        self._any_source = any_source
        self._any_tag = any_tag
        self._seq = 0
        self._exact: dict[tuple[int, int], deque] = {}
        self._by_src: dict[int, deque] = {}
        self._by_tag: dict[int, deque] = {}
        self._all: deque = deque()
        self._live = 0
        self._dead = 0
        self._src_indexed = False
        self._tag_indexed = False

    # -- maintenance ---------------------------------------------------------------

    def push(self, item: T) -> None:
        src, tag = self._key(item)
        entry = [self._seq, item]
        self._seq += 1
        bucket = self._exact.get((src, tag))
        if bucket is None:
            bucket = self._exact[(src, tag)] = deque()
        bucket.append(entry)
        self._all.append(entry)
        if self._src_indexed:
            view = self._by_src.get(src)
            if view is None:
                view = self._by_src[src] = deque()
            view.append(entry)
        if self._tag_indexed:
            view = self._by_tag.get(tag)
            if view is None:
                view = self._by_tag[tag] = deque()
            view.append(entry)
        self._live += 1
        if self._dead > 64 and self._dead > self._live:
            self._compact()

    def _compact(self) -> None:
        """Rebuild every view without tombstones (amortized by pops)."""
        live = [entry for entry in self._all if entry[1] is not None]
        self._all = deque(live)
        self._exact = {}
        self._by_src = {}
        self._by_tag = {}
        for entry in live:
            src, tag = self._key(entry[1])
            self._exact.setdefault((src, tag), deque()).append(entry)
            if self._src_indexed:
                self._by_src.setdefault(src, deque()).append(entry)
            if self._tag_indexed:
                self._by_tag.setdefault(tag, deque()).append(entry)
        self._dead = 0

    def _ensure_src_index(self) -> None:
        if not self._src_indexed:
            self._src_indexed = True
            for entry in self._all:
                if entry[1] is not None:
                    self._by_src.setdefault(
                        self._key(entry[1])[0], deque()).append(entry)

    def _ensure_tag_index(self) -> None:
        if not self._tag_indexed:
            self._tag_indexed = True
            for entry in self._all:
                if entry[1] is not None:
                    self._by_tag.setdefault(
                        self._key(entry[1])[1], deque()).append(entry)

    def _view(self, source: int, tag: int) -> tuple[deque | None, bool]:
        """The seq-ordered deque holding every match for the query."""
        if source == self._any_source:
            if tag == self._any_tag:
                return self._all, True
            self._ensure_tag_index()
            return self._by_tag.get(tag), True
        if tag == self._any_tag:
            self._ensure_src_index()
            return self._by_src.get(source), True
        return self._exact.get((source, tag)), False

    # -- matching ------------------------------------------------------------------

    def pop(self, source: int, tag: int) -> T | None:
        """Remove and return the oldest item matching ``(source, tag)``."""
        view, wildcard = self._view(source, tag)
        stats = self.stats
        probes = 0
        item = None
        if view is not None:
            while view:
                entry = view[0]
                if entry[1] is None:  # tombstone from another view's pop
                    view.popleft()
                    continue
                probes += 1
                item = entry[1]
                view.popleft()
                entry[1] = None
                self._live -= 1
                self._dead += 1
                break
        stats.match_probes += probes if probes else 1
        if item is not None:
            if wildcard:
                stats.wildcard_scans += 1
            else:
                stats.match_fast_hits += 1
        return item

    def peek(self, source: int, tag: int) -> T | None:
        """Return (without removing) the oldest matching item."""
        view, wildcard = self._view(source, tag)
        stats = self.stats
        if view is not None:
            while view:
                entry = view[0]
                if entry[1] is None:
                    view.popleft()
                    continue
                stats.match_probes += 1
                if wildcard:
                    stats.wildcard_scans += 1
                return entry[1]
        stats.match_probes += 1
        return None

    def pop_if(self, predicate: Callable[[T], bool]) -> T | None:
        """Oldest item satisfying an arbitrary predicate (cold path)."""
        for entry in self._all:
            item = entry[1]
            if item is None:
                continue
            self.stats.match_probes += 1
            if predicate(item):
                entry[1] = None
                self._live -= 1
                self._dead += 1
                return item
        return None

    # -- container protocol --------------------------------------------------------

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def __iter__(self) -> Iterator[T]:
        return (entry[1] for entry in self._all if entry[1] is not None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IndexedMessageQueue({self.name!r}, {self._live} items)"


class IndexedRecvQueue(Generic[T]):
    """Match queue of possibly-wildcard patterns queried concretely.

    The posted-receive side of MPI matching: items carry a pattern
    ``(source-or-ANY, tag-or-ANY)`` and queries are concrete message
    envelopes.  A concrete envelope can match at most four patterns, so
    items bucket by their pattern and :meth:`pop` probes the (at most
    four) candidate buckets, taking the one whose *head* sequence number
    is smallest — exactly the oldest matching receive a linear scan would
    find.
    """

    __slots__ = ("name", "stats", "_key", "_any_source", "_any_tag",
                 "_seq", "_buckets", "_n")

    def __init__(
        self,
        name: str,
        key: Callable[[T], tuple[int, int]],
        any_source: int = -1,
        any_tag: int = -1,
        stats=None,
    ) -> None:
        self.name = name
        self.stats = stats if stats is not None else MatchCounters()
        self._key = key
        self._any_source = any_source
        self._any_tag = any_tag
        self._seq = 0
        self._buckets: dict[tuple[int, int], deque] = {}
        self._n = 0

    def push(self, item: T) -> None:
        pattern = self._key(item)
        bucket = self._buckets.get(pattern)
        if bucket is None:
            bucket = self._buckets[pattern] = deque()
        bucket.append((self._seq, item))
        self._seq += 1
        self._n += 1

    def pop(self, source: int, tag: int) -> T | None:
        """Oldest item whose pattern matches the concrete envelope."""
        buckets = self._buckets
        best = None
        best_bucket = None
        probes = 0
        for pattern in (
            (source, tag),
            (self._any_source, tag),
            (source, self._any_tag),
            (self._any_source, self._any_tag),
        ):
            bucket = buckets.get(pattern)
            if bucket:
                probes += 1
                head = bucket[0]
                if best is None or head[0] < best[0]:
                    best = head
                    best_bucket = bucket
        stats = self.stats
        stats.match_probes += probes if probes else 1
        if best is None:
            return None
        best_bucket.popleft()
        self._n -= 1
        item = best[1]
        src, tg = self._key(item)
        if src == self._any_source or tg == self._any_tag:
            stats.wildcard_scans += 1
        else:
            stats.match_fast_hits += 1
        return item

    def pop_source(self, source: int) -> T | None:
        """Oldest item whose pattern names exactly ``source`` (cold path).

        Used by the dead-rank purge: wildcard receives stay posted (they
        may still match a live sender), only receives pinned to the dead
        source fail.
        """
        best_pattern = None
        best = None
        for pattern, bucket in self._buckets.items():
            if pattern[0] != source or not bucket:
                continue
            self.stats.match_probes += 1
            head = bucket[0]
            if best is None or head[0] < best[0]:
                best = head
                best_pattern = pattern
        if best is None:
            return None
        self._buckets[best_pattern].popleft()
        self._n -= 1
        return best[1]

    def remove_first(self, predicate: Callable[[T], bool]) -> T | None:
        """Remove the (unique) item satisfying ``predicate`` (cold path)."""
        for pattern, bucket in self._buckets.items():
            for entry in bucket:
                if predicate(entry[1]):
                    # identity filter: entries never compare by value
                    self._buckets[pattern] = deque(
                        e for e in bucket if e is not entry)
                    self._n -= 1
                    return entry[1]
        return None

    def drain(self) -> list[T]:
        """Remove and return every item, oldest first."""
        # seqnos are unique, so sorting never compares the items
        entries = sorted(e for bucket in self._buckets.values()
                         for e in bucket)
        self._buckets.clear()
        self._n = 0
        return [entry[1] for entry in entries]

    def __len__(self) -> int:
        return self._n

    def __bool__(self) -> bool:
        return self._n > 0

    def __iter__(self) -> Iterator[T]:
        entries = sorted(e for bucket in self._buckets.values()
                         for e in bucket)
        return (entry[1] for entry in entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IndexedRecvQueue({self.name!r}, {self._n} items)"


class _ScanBase(Generic[T]):
    """Common plumbing of the scan-oracle queues: one flat ordered list."""

    __slots__ = ("name", "stats", "_key", "_any_source", "_any_tag",
                 "_items")

    def __init__(
        self,
        name: str,
        key: Callable[[T], tuple[int, int]],
        any_source: int = -1,
        any_tag: int = -1,
        stats=None,
    ) -> None:
        self.name = name
        self.stats = stats if stats is not None else MatchCounters()
        self._key = key
        self._any_source = any_source
        self._any_tag = any_tag
        self._items: list[T] = []

    def push(self, item: T) -> None:
        self._items.append(item)

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r}, {len(self._items)} items)"


class ScanMessageQueue(_ScanBase[T]):
    """Linear-scan oracle with :class:`IndexedMessageQueue`'s interface.

    This *is* the pre-index matching algorithm (``Mailbox.pop_first``
    with an envelope predicate), kept selectable via ``REPRO_MATCH=scan``
    so the index can be fuzz-pinned against it forever.  Probe counting
    matches the index's metric: one probe per entry examined.
    """

    __slots__ = ()

    def _matches(self, item: T, source: int, tag: int) -> bool:
        src, tg = self._key(item)
        if source != self._any_source and source != src:
            return False
        if tag != self._any_tag and tag != tg:
            return False
        return True

    def pop(self, source: int, tag: int) -> T | None:
        items = self._items
        stats = self.stats
        wildcard = source == self._any_source or tag == self._any_tag
        for index, item in enumerate(items):
            if self._matches(item, source, tag):
                del items[index]
                stats.match_probes += index + 1
                if wildcard:
                    stats.wildcard_scans += 1
                else:
                    stats.match_fast_hits += 1
                return item
        stats.match_probes += len(items) if items else 1
        return None

    def peek(self, source: int, tag: int) -> T | None:
        stats = self.stats
        wildcard = source == self._any_source or tag == self._any_tag
        for index, item in enumerate(self._items):
            if self._matches(item, source, tag):
                stats.match_probes += index + 1
                if wildcard:
                    stats.wildcard_scans += 1
                return item
        stats.match_probes += len(self._items) if self._items else 1
        return None

    def pop_if(self, predicate: Callable[[T], bool]) -> T | None:
        for index, item in enumerate(self._items):
            self.stats.match_probes += 1
            if predicate(item):
                del self._items[index]
                return item
        return None


class ScanRecvQueue(_ScanBase[T]):
    """Linear-scan oracle with :class:`IndexedRecvQueue`'s interface."""

    __slots__ = ()

    def pop(self, source: int, tag: int) -> T | None:
        items = self._items
        stats = self.stats
        for index, item in enumerate(items):
            src, tg = self._key(item)
            if ((src == self._any_source or src == source)
                    and (tg == self._any_tag or tg == tag)):
                del items[index]
                stats.match_probes += index + 1
                if src == self._any_source or tg == self._any_tag:
                    stats.wildcard_scans += 1
                else:
                    stats.match_fast_hits += 1
                return item
        stats.match_probes += len(items) if items else 1
        return None

    def pop_source(self, source: int) -> T | None:
        for index, item in enumerate(self._items):
            self.stats.match_probes += 1
            if self._key(item)[0] == source:
                del self._items[index]
                return item
        return None

    def remove_first(self, predicate: Callable[[T], bool]) -> T | None:
        for index, item in enumerate(self._items):
            if predicate(item):
                del self._items[index]
                return item
        return None

    def drain(self) -> list[T]:
        items, self._items = self._items, []
        return items
