"""Activities: engine actions wrapped for actor-level waiting.

An :class:`Activity` ties a SURF action to the set of actors waiting on
it.  When the engine completes the action, the activity's observer flips
``done`` and wakes every registered waiter through the scheduler.  The MPI
layer builds its request objects on top of these.

``CommActivity`` additionally carries the message payload so that data
really moves between ranks (on-line simulation): the payload set by the
sender is what the receiver's buffer is filled from at completion time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..seq import Sequencer
from ..surf.action import Action, ActionState
from .contexts import run_blocking

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .actor import Actor
    from .context import Scheduler

__all__ = ["Activity", "CommActivity", "ExecActivity", "SleepActivity"]

_ids = Sequencer()


class Activity:
    """Base: completion flag + waiter wake-up for one engine action."""

    def __init__(self, scheduler: "Scheduler", action: Action | None, name: str = ""):
        self.aid = next(_ids)
        self.scheduler = scheduler
        self.action = action
        self.name = name or (action.name if action else f"activity-{self.aid}")
        self.done = False
        self.failed = False
        self.finish_time = float("nan")
        self._waiters: list["Actor"] = []
        #: extra callables invoked (before waiter wake-up) at completion
        self.callbacks: list = []
        if action is not None:
            action.observer = self._on_action_done

    # -- engine callback ----------------------------------------------------------

    def _on_action_done(self, action: Action) -> None:
        self.done = True
        self.failed = action.state is ActionState.FAILED
        self.finish_time = action.finish_time
        self._wake_all()

    def complete_now(self) -> None:
        """Mark done outside any engine action (e.g. locally-satisfied op)."""
        self.done = True
        self.finish_time = self.scheduler.engine.now
        self._wake_all()

    def _wake_all(self) -> None:
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback()
        waiters, self._waiters = self._waiters, []
        for actor in waiters:
            if actor.waiting_on is self:
                actor.waiting_on = None
            self.scheduler.wake(actor)

    # -- actor side -----------------------------------------------------------------

    def add_waiter(self, actor: "Actor") -> None:
        if actor not in self._waiters:
            self._waiters.append(actor)
        actor.waiting_on = self

    def wait(self, actor: "Actor") -> None:
        """Block ``actor`` until this activity completes."""
        run_blocking(self.co_wait(actor), lambda: actor)

    def co_wait(self, actor: "Actor"):
        """Generator twin of :meth:`wait` — ``yield from`` to block.

        This is the canonical implementation (:meth:`wait` drives it), so
        both dialects suspend at exactly the same points: the activity
        ``wait()`` seam is where every MPI-blocking call reaches the
        execution-context backends.
        """
        while not self.done:
            self.add_waiter(actor)
            yield from actor.co_suspend()

    def cancel(self) -> None:
        if self.action is not None and not self.done:
            self.scheduler.engine.cancel(self.action)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else "pending"
        return f"{type(self).__name__}({self.name!r} {state})"


class CommActivity(Activity):
    """A point-to-point transfer carrying a payload end-to-end."""

    def __init__(
        self,
        scheduler: "Scheduler",
        action: Action | None,
        src: str,
        dst: str,
        size: int,
        name: str = "",
    ) -> None:
        super().__init__(scheduler, action, name)
        self.src = src
        self.dst = dst
        self.size = size
        self.payload: Any = None


class ExecActivity(Activity):
    """A CPU burst on the actor's host."""


class SleepActivity(Activity):
    """A pure simulated delay."""
