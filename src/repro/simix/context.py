"""The scheduler: drives actors and the SURF engine in lock-step.

The main loop (:meth:`Scheduler.run`) alternates two phases until every
actor has finished:

1. **drain** — resume every runnable actor, one at a time, until each has
   blocked on an activity or terminated.  New actors spawned meanwhile
   join the queue and run in the same phase (same simulated instant).
2. **advance** — ask the engine for the next completing actions; their
   observers mark waiting actors runnable again.  If nothing can complete
   while actors are still blocked, the application has deadlocked and a
   :class:`~repro.errors.DeadlockError` describes who waits on what.

Because phase 1 runs actors strictly sequentially, the whole simulation is
deterministic: the actor execution order is the queue order, which is
itself determined by completion order and spawn order.
"""

from __future__ import annotations

import sys
from collections import deque
from typing import Any, Callable

from ..errors import ActorFailure, ContextLeakError, DeadlockError
from ..log import get_logger
from ..surf.engine import Engine
from ..surf.resources import Host
from .activity import CommActivity, ExecActivity, SleepActivity
from .actor import Actor
from .contexts import ContextBackend, select_backend

__all__ = ["Scheduler"]

_log = get_logger("simix")


class Scheduler:
    """Cooperative scheduler over one SURF engine.

    ``ctx`` picks the execution-context backend actors run on: a name
    from :func:`repro.simix.contexts.available_backends`, a
    :class:`~repro.simix.contexts.ContextBackend` instance, or ``None``
    to honour the ``REPRO_CTX`` environment variable (default ``auto``).
    """

    def __init__(self, engine: Engine,
                 ctx: str | ContextBackend | None = None) -> None:
        self.engine = engine
        self.backend = select_backend(ctx)
        self.actors: list[Actor] = []
        self._runnable: deque[Actor] = deque()
        self._current: Actor | None = None
        self._running = False
        #: optional callback invoked at every *quiescent cut* of the main
        #: loop: every live actor is blocked on an activity, no actor is
        #: runnable, and the engine has not yet stepped.  Checkpointing
        #: hooks in here (see repro.offline.snapshot) — the callback may
        #: observe but must not mutate simulation state.
        self.on_quiescent: Callable[[], None] | None = None

    # -- setup ------------------------------------------------------------------

    def add_actor(
        self,
        name: str,
        host: Host | str,
        func: Callable[..., Any],
        *args: Any,
        **kwargs: Any,
    ) -> Actor:
        """Register a simulated process; it starts when ``run()`` drains it."""
        if isinstance(host, str):
            host = self.engine.platform.host(host)
        actor = Actor(self, name, host, func, args, kwargs)
        actor._context = self.backend.create(actor)
        self.actors.append(actor)
        self._make_runnable(actor)
        return actor

    # -- actor services (called from actor threads) --------------------------------

    @property
    def current(self) -> Actor:
        """The actor currently holding the baton."""
        assert self._current is not None, "no actor is running"
        return self._current

    def communicate(
        self,
        src: str,
        dst: str,
        size: int,
        name: str = "comm",
        extra_latency: float = 0.0,
        rate_cap: float = float("inf"),
    ) -> CommActivity:
        action = self.engine.communicate(
            src, dst, size, name, rate_cap=rate_cap, extra_latency=extra_latency
        )
        return CommActivity(self, action, src, dst, size, name)

    def execute(self, actor: Actor, flops: float, name: str = "exec") -> ExecActivity:
        action = self.engine.execute(actor.host, flops, name)
        return ExecActivity(self, action, name)

    def sleep_activity(self, duration: float, name: str = "sleep") -> SleepActivity:
        action = self.engine.sleep(duration, name)
        return SleepActivity(self, action, name)

    def wake(self, actor: Actor) -> None:
        """Mark a blocked actor runnable (idempotent)."""
        self._make_runnable(actor)

    def _make_runnable(self, actor: Actor) -> None:
        if not actor.finished and not actor.scheduled:
            actor.scheduled = True
            self._runnable.append(actor)

    def _on_suspend(self, actor: Actor) -> None:
        actor.scheduled = False

    def _on_yield(self, actor: Actor) -> None:
        actor.scheduled = True
        self._runnable.append(actor)

    # -- main loop -----------------------------------------------------------------

    def run(self) -> float:
        """Simulate until every actor finished; return the final clock."""
        self._running = True
        try:
            while True:
                self._drain_runnable()
                alive = [a for a in self.actors if not a.finished]
                if not alive:
                    break
                if self.on_quiescent is not None:
                    self.on_quiescent()
                # Step the engine until some completion made an actor
                # runnable again (several steps may only expire latency
                # phases or finish activities nobody waits on).  The
                # poll is an O(1) peek at the engine's completion heap:
                # when no scheduled event can ever fire, stepping would
                # never wake anyone, so bail out to the deadlock report
                # instead of scanning (or spinning on) the pending set.
                while not self._runnable and self.engine.poll_progress():
                    self.engine.step()
                if not self._runnable:
                    self._raise_deadlock(alive)
            return self.engine.now
        finally:
            self._running = False
            self._teardown()

    def _drain_runnable(self) -> None:
        runnable = self._runnable
        stats = self.engine.stats
        while runnable:
            actor = runnable.popleft()
            while True:
                if actor.finished:
                    break
                self._current = actor
                actor.resume()
                self._current = None
                stats.ctx_switches += 1
                if actor.exception is not None:
                    raise ActorFailure(
                        actor.name, actor.exception
                    ) from actor.exception
                # Fast path: the actor merely yielded (or woke itself) and
                # is the sole runnable — resume it again immediately
                # instead of cycling it through the deque and re-entering
                # the outer scan.
                if len(runnable) == 1 and runnable[0] is actor:
                    runnable.popleft()
                    stats.ctx_fast_resumes += 1
                    continue
                break

    def _raise_deadlock(self, alive: list[Actor]) -> None:
        # Engine may still hold latency-phase actions even when nothing is
        # RUNNING; poll_progress() would have reported those, so reaching
        # here means a genuine application deadlock.  Each actor records
        # the activity it blocked on, so the report can say who waits on
        # what (the classic unmatched-recv shows up by name).
        def describe(actor: Actor) -> str:
            activity = actor.waiting_on
            if activity is not None:
                return f"{actor.name} (waiting on {activity.name!r})"
            if actor.waiting_reason:
                return f"{actor.name} ({actor.waiting_reason})"
            return actor.name

        names = ", ".join(describe(a) for a in alive[:16])
        more = "" if len(alive) <= 16 else f" (+{len(alive) - 16} more)"
        raise DeadlockError(
            f"all {len(alive)} remaining actors are blocked with no pending "
            f"activity: {names}{more}"
        )

    def _teardown(self) -> None:
        """Unwind every still-alive actor context so nothing leaks.

        Contexts that survive the kill+resume+join cycle (e.g. user code
        swallowing :class:`~repro.simix.actor.ActorKilled`, or a wedged
        actor thread) used to leak silently; now they raise a
        :class:`~repro.errors.ContextLeakError` naming the culprits — or
        log it when teardown is already unwinding a primary error, so the
        diagnostic never masks the real failure.
        """
        for actor in self.actors:
            if not actor.finished:
                actor.kill()
                actor.resume()
            actor.join_context()
        leaks = [
            f"{actor.name} ({actor.context_kind})"
            for actor in self.actors
            if actor.context_alive
        ]
        if leaks:
            error = ContextLeakError(leaks)
            if sys.exc_info()[0] is None:
                raise error
            _log.error("%s", error)
