"""SIMIX — the process layer between SURF and the MPI API (paper Fig. 1).

SIMIX turns the passive action kernel into an *on-line* simulator: each
simulated process (:class:`~repro.simix.actor.Actor`) is a real OS thread
running unmodified user Python code, but the :class:`Scheduler` enforces
that **exactly one thread runs at a time** — the paper's fully sequential
design that sidesteps parallel-discrete-event correctness issues.  User
code blocks by waiting on *activities* (communications, executions,
sleeps); the scheduler then advances the SURF clock to the next completion
and resumes whoever it unblocked.
"""

from .activity import Activity, CommActivity, ExecActivity, SleepActivity
from .actor import Actor
from .context import Scheduler
from .mailbox import Mailbox

__all__ = [
    "Activity",
    "Actor",
    "CommActivity",
    "ExecActivity",
    "Mailbox",
    "Scheduler",
    "SleepActivity",
]
