"""SIMIX — the process layer between SURF and the MPI API (paper Fig. 1).

SIMIX turns the passive action kernel into an *on-line* simulator: each
simulated process (:class:`~repro.simix.actor.Actor`) runs unmodified
user Python code on an *execution context* supplied by a pluggable
backend (:mod:`repro.simix.contexts`), and the :class:`Scheduler`
enforces that **exactly one context runs at a time** — the paper's fully
sequential design that sidesteps parallel-discrete-event correctness
issues.  User code blocks by waiting on *activities* (communications,
executions, sleeps); the scheduler then advances the SURF clock to the
next completion and resumes whoever it unblocked.

Three context backends exist, all bit-identical in simulated time:

* ``coroutine`` (default for generator-dialect code) — each actor is a
  plain Python generator resumed on the scheduler's own stack; no kernel
  objects, no synchronisation round-trips.
* ``greenlet`` — cooperative green threads, used automatically for plain
  (non-generator) functions when the optional ``greenlet`` package is
  importable.
* ``thread`` — the original one-OS-thread-per-rank design with an
  Event-pair baton; kept as the equivalence oracle and as the fallback
  for plain functions without greenlet.
"""

from .activity import Activity, CommActivity, ExecActivity, SleepActivity
from .actor import Actor
from .context import Scheduler
from .contexts import (
    CTX_ENV_VAR,
    AutoBackend,
    ContextBackend,
    CoroutineBackend,
    ExecutionContext,
    GreenletBackend,
    ThreadBackend,
    available_backends,
    greenlet_available,
    run_blocking,
    select_backend,
)
from .mailbox import (
    IndexedMessageQueue,
    IndexedRecvQueue,
    Mailbox,
    MatchCounters,
    ScanMessageQueue,
    ScanRecvQueue,
)

__all__ = [
    "Activity",
    "Actor",
    "AutoBackend",
    "CTX_ENV_VAR",
    "CommActivity",
    "ContextBackend",
    "CoroutineBackend",
    "ExecActivity",
    "ExecutionContext",
    "GreenletBackend",
    "IndexedMessageQueue",
    "IndexedRecvQueue",
    "Mailbox",
    "MatchCounters",
    "ScanMessageQueue",
    "ScanRecvQueue",
    "Scheduler",
    "SleepActivity",
    "ThreadBackend",
    "available_backends",
    "greenlet_available",
    "run_blocking",
    "select_backend",
]
