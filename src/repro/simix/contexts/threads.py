"""The thread backend: one OS thread per actor, baton-passed with Events.

This is the historical execution model, retained as the bit-identical
equivalence oracle (in the style of ``--full-reshare``): the scheduler
thread and the actor thread share a pair of :class:`threading.Event`
objects, and at any instant exactly one of them holds the baton.  Every
switch costs two kernel wait/set round-trips — which is precisely what
the coroutine backend exists to retire.
"""

from __future__ import annotations

import inspect
import threading

from ...log import get_logger
from .base import ExecutionContext, drive_on_stack

_log = get_logger("simix")

__all__ = ["ThreadContext"]


class ThreadContext(ExecutionContext):
    """Parks the actor's frames on a dedicated daemon thread."""

    kind = "thread"

    def __init__(self, actor) -> None:
        super().__init__(actor)
        self._baton_actor = threading.Event()  # set -> actor may run
        self._baton_sched = threading.Event()  # set -> scheduler may run
        self._thread = threading.Thread(
            target=self._bootstrap, name=f"actor-{actor.name}", daemon=True
        )
        self._started = False

    # -- scheduler side ----------------------------------------------------------

    def resume(self) -> None:
        if self.actor.finished:
            return
        if not self._started:
            self._started = True
            self._thread.start()
        self._baton_sched.clear()
        self._baton_actor.set()
        self._baton_sched.wait()

    def join(self, timeout: float | None = None) -> None:
        if self._started:
            self._thread.join(timeout)

    @property
    def alive(self) -> bool:
        return self._started and self._thread.is_alive()

    # -- actor side --------------------------------------------------------------

    def block(self) -> None:
        from ..actor import ActorKilled

        self._baton_sched.set()
        self._baton_actor.wait()
        self._baton_actor.clear()
        if self.actor._killed:
            raise ActorKilled()

    def _bootstrap(self) -> None:
        from ..actor import ActorKilled

        actor = self.actor
        try:
            self._baton_actor.wait()
            self._baton_actor.clear()
            if actor._killed:
                raise ActorKilled()
            if inspect.isgeneratorfunction(actor.func):
                # generator-dialect actors run on every backend: here the
                # thread itself trampolines the continuation, blocking
                # in-stack at each yield.
                gen = actor.func(*actor.args, **actor.kwargs)
                actor.result = drive_on_stack(self, gen)
            else:
                actor.result = actor.func(*actor.args, **actor.kwargs)
        except ActorKilled:
            pass
        except BaseException as exc:  # noqa: BLE001 - reported to the scheduler
            actor.exception = exc
        finally:
            actor.finished = True
            self._baton_sched.set()
