"""Execution-context backends: how an actor's frames are suspended.

The scheduler is backend-agnostic: it calls ``resume()`` on an actor and
gets control back when the actor blocks or finishes.  *How* the actor's
call stack is parked meanwhile is the backend's business:

``thread``
    One OS thread per actor, parked on a pair of ``threading.Event``
    objects (two kernel round-trips per switch).  Any Python code can
    block anywhere — this is the semantics oracle, kept bit-identical.

``coroutine``
    The actor is a generator-based continuation resumed directly on the
    scheduler's own stack (``gen.send``): zero kernel objects, zero Event
    round-trips.  The price is the *generator dialect*: every frame
    between the actor's entry point and a blocking call must be a
    generator (``yield from``).  The MPI layer ships such continuations
    for its entire blocking surface, so applications written as generator
    functions run here unmodified.

``greenlet``
    Real stack switching via the optional :mod:`greenlet` extension:
    plain synchronous code blocks anywhere, at user-level switch cost.
    Auto-selected for plain functions when importable.

Actors with different context kinds coexist in one simulation because
execution is strictly sequential — exactly one actor (or the scheduler)
runs at any instant regardless of how its stack is parked.
"""

from __future__ import annotations

import inspect
import os
from typing import TYPE_CHECKING, Any, Callable, Generator

from ...errors import ConfigError, ContextError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..actor import Actor

__all__ = [
    "ContextBackend",
    "ExecutionContext",
    "available_backends",
    "drive_on_stack",
    "run_blocking",
    "select_backend",
]

#: Environment variable overriding the default backend (same values as
#: the ``--ctx`` CLI flag).  CI uses ``REPRO_CTX=thread`` to run the
#: whole suite under the oracle backend.
CTX_ENV_VAR = "REPRO_CTX"


class ExecutionContext:
    """Per-actor strategy for parking and resuming the actor's frames."""

    #: short backend tag shown in stats / diagnostics
    kind = "?"

    def __init__(self, actor: "Actor") -> None:
        self.actor = actor

    # -- scheduler side ----------------------------------------------------------

    def resume(self) -> None:
        """Run the actor until it blocks or finishes; then return."""
        raise NotImplementedError

    def join(self, timeout: float | None = None) -> None:
        """Wait for any kernel resources to unwind after the actor finished."""

    @property
    def alive(self) -> bool:
        """True while the context still holds live frames or kernel objects."""
        raise NotImplementedError

    # -- actor side --------------------------------------------------------------

    def block(self) -> None:
        """Park the *currently running* actor in-stack until next resume.

        Only stack-capable backends (thread, greenlet) implement this;
        the coroutine backend cannot suspend plain frames and raises
        :class:`~repro.errors.ContextError` with a pointer at the
        generator dialect instead.
        """
        raise NotImplementedError


def drive_on_stack(context: ExecutionContext, gen: Generator) -> Any:
    """Run a generator continuation to completion on the current stack.

    Each ``yield`` means "the suspension bookkeeping is done — park me";
    we park via ``context.block()`` which only returns once the scheduler
    resumes the actor.  Used by stack-capable backends to host generator
    actors, and by :func:`run_blocking` to give the canonical generator
    implementations of the MPI blocking calls a synchronous face.
    """
    try:
        next(gen)
    except StopIteration as stop:
        return stop.value
    while True:
        try:
            context.block()
        except BaseException:
            # ActorKilled (teardown) or anything else: run the
            # continuation's ``finally`` blocks now, deterministically,
            # mirroring how a real stack would unwind through them.
            gen.close()
            raise
        try:
            next(gen)
        except StopIteration as stop:
            return stop.value


def run_blocking(gen: Generator, get_actor: Callable[[], "Actor"]) -> Any:
    """Drive a blocking-call continuation from synchronous code.

    The fast path — the continuation completes without ever suspending
    (already-complete request, zero-flop execute) — touches neither the
    actor nor its context, so it also works outside any simulation.
    """
    try:
        next(gen)
    except StopIteration as stop:
        return stop.value
    return drive_on_stack_resumed(get_actor()._context, gen)


def drive_on_stack_resumed(context: ExecutionContext, gen: Generator) -> Any:
    """Continuation of :func:`drive_on_stack` after the first ``yield``."""
    while True:
        try:
            context.block()
        except BaseException:
            gen.close()
            raise
        try:
            next(gen)
        except StopIteration as stop:
            return stop.value


class ContextBackend:
    """Factory choosing the :class:`ExecutionContext` for each new actor."""

    #: registry name (what ``--ctx`` and ``REPRO_CTX`` accept)
    name = "?"

    def create(self, actor: "Actor") -> ExecutionContext:
        """Build the execution context carrying ``actor``'s frames."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


def greenlet_available() -> bool:
    """True when the optional :mod:`greenlet` extension is importable."""
    try:
        import greenlet  # noqa: F401
    except ImportError:
        return False
    return True


class ThreadBackend(ContextBackend):
    """One OS thread per actor — the bit-identical equivalence oracle."""

    name = "thread"

    def create(self, actor: "Actor") -> ExecutionContext:
        from .threads import ThreadContext

        return ThreadContext(actor)


class CoroutineBackend(ContextBackend):
    """Generator continuations on the scheduler's stack (pure Python)."""

    name = "coroutine"

    def create(self, actor: "Actor") -> ExecutionContext:
        from .coroutine import CoroutineContext

        return CoroutineContext(actor)


class GreenletBackend(ContextBackend):
    """Real user-level stack switching via the optional greenlet extension."""

    name = "greenlet"

    def __init__(self) -> None:
        if not greenlet_available():
            raise ConfigError(
                "ctx backend 'greenlet' requested but the greenlet package "
                "is not importable; use 'coroutine', 'thread' or 'auto'"
            )

    def create(self, actor: "Actor") -> ExecutionContext:
        from .greenlets import GreenletContext

        return GreenletContext(actor)


class AutoBackend(ContextBackend):
    """Pick the cheapest context each actor supports.

    Generator functions get the coroutine backend (they speak the
    dialect); plain functions get greenlet when importable, else the
    thread oracle — never the coroutine backend, which cannot suspend
    plain frames.
    """

    name = "auto"

    def __init__(self) -> None:
        self._greenlet = greenlet_available()

    def create(self, actor: "Actor") -> ExecutionContext:
        if inspect.isgeneratorfunction(actor.func):
            from .coroutine import CoroutineContext

            return CoroutineContext(actor)
        if self._greenlet:
            from .greenlets import GreenletContext

            return GreenletContext(actor)
        from .threads import ThreadContext

        return ThreadContext(actor)


_BACKENDS: dict[str, type[ContextBackend]] = {
    "auto": AutoBackend,
    "coroutine": CoroutineBackend,
    "greenlet": GreenletBackend,
    "thread": ThreadBackend,
}


def available_backends() -> list[str]:
    """Names accepted by :func:`select_backend` (and ``--ctx``)."""
    return list(_BACKENDS)


def select_backend(ctx: str | ContextBackend | None = None) -> ContextBackend:
    """Resolve a backend spec: instance, name, ``REPRO_CTX``, or auto."""
    if isinstance(ctx, ContextBackend):
        return ctx
    if ctx is None:
        ctx = os.environ.get(CTX_ENV_VAR) or "auto"
    try:
        cls = _BACKENDS[ctx]
    except KeyError:
        names = ", ".join(sorted(_BACKENDS))
        raise ConfigError(f"unknown ctx backend {ctx!r} (expected one of {names})")
    return cls()


def blocking_unsupported(actor: "Actor") -> ContextError:
    """The diagnostic for a plain synchronous block under ``coroutine``."""
    return ContextError(
        f"actor {actor.name!r} runs on the coroutine backend but tried to "
        "block from a plain (non-generator) call; write the blocking path "
        "in the generator dialect (yield from the co_* twin) or run this "
        "actor on a stack-capable backend (--ctx greenlet/thread/auto)"
    )
