"""Pluggable execution-context backends for SIMIX actors.

See :mod:`repro.simix.contexts.base` for the model.  The public surface
is the backend registry (:func:`select_backend`, :func:`available_backends`)
plus the :class:`ContextBackend`/:class:`ExecutionContext` interfaces;
individual backends live in their own modules and are imported lazily so
the optional greenlet dependency stays optional.
"""

from .base import (
    CTX_ENV_VAR,
    AutoBackend,
    ContextBackend,
    CoroutineBackend,
    ExecutionContext,
    GreenletBackend,
    ThreadBackend,
    available_backends,
    drive_on_stack,
    greenlet_available,
    run_blocking,
    select_backend,
)

__all__ = [
    "CTX_ENV_VAR",
    "AutoBackend",
    "ContextBackend",
    "CoroutineBackend",
    "ExecutionContext",
    "GreenletBackend",
    "ThreadBackend",
    "available_backends",
    "drive_on_stack",
    "greenlet_available",
    "run_blocking",
    "select_backend",
]
