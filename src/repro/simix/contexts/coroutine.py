"""The coroutine backend: actors as generator continuations.

The actor's entry point is a generator function; every blocking library
call it makes is a ``co_*`` generator twin reached through ``yield from``.
A bare ``yield`` therefore always means "my suspension bookkeeping is
done — return to the scheduler", and ``resume()`` is a single
``gen.send(None)`` on the scheduler's own stack: no kernel objects, no
Event round-trips, switch cost is one Python frame activation.

Kill semantics mirror the thread oracle exactly: a killed actor has
:class:`~repro.simix.actor.ActorKilled` thrown *into* its continuation at
the next resume, so ``finally`` blocks along the whole ``yield from``
chain run in the same order a real stack unwind would run them.
"""

from __future__ import annotations

import inspect

from .base import ExecutionContext, blocking_unsupported

__all__ = ["CoroutineContext"]


class CoroutineContext(ExecutionContext):
    """Parks the actor as a suspended generator; resumes via ``send``."""

    kind = "coroutine"

    def __init__(self, actor) -> None:
        super().__init__(actor)
        self._gen = None
        self._started = False

    # -- scheduler side ----------------------------------------------------------

    def resume(self) -> None:
        from ..actor import ActorKilled

        actor = self.actor
        if actor.finished:
            return
        try:
            if not self._started:
                self._started = True
                if actor._killed:
                    raise ActorKilled()
                if not inspect.isgeneratorfunction(actor.func):
                    # A plain function can still run here as long as it
                    # never blocks (any attempt raises ContextError via
                    # block() below); it completes on this first resume.
                    actor.result = actor.func(*actor.args, **actor.kwargs)
                    self._finish()
                    return
                self._gen = actor.func(*actor.args, **actor.kwargs)
            if actor._killed:
                self._gen.throw(ActorKilled())
            else:
                self._gen.send(None)
        except StopIteration as stop:
            actor.result = stop.value
            self._finish()
        except ActorKilled:
            self._finish()
        except BaseException as exc:  # noqa: BLE001 - reported to the scheduler
            actor.exception = exc
            self._finish()

    def _finish(self) -> None:
        self.actor.finished = True
        self._gen = None

    @property
    def alive(self) -> bool:
        return self._started and not self.actor.finished

    # -- actor side --------------------------------------------------------------

    def block(self) -> None:
        raise blocking_unsupported(self.actor)
