"""The greenlet backend: real user-level stack switching.

When the optional :mod:`greenlet` extension is importable, plain
synchronous actors — arbitrarily deep call stacks through ``smpi.pt2pt``
and ``smpi.coll`` — suspend at user-level switch cost instead of paying
the thread backend's kernel round-trips.  This module is only imported
once :func:`~repro.simix.contexts.base.greenlet_available` returned True.
"""

from __future__ import annotations

import inspect

import greenlet

from .base import ExecutionContext, drive_on_stack

__all__ = ["GreenletContext"]


class GreenletContext(ExecutionContext):
    """Parks the actor's frames on a greenlet micro-stack."""

    kind = "greenlet"

    def __init__(self, actor) -> None:
        super().__init__(actor)
        self._glet = greenlet.greenlet(self._bootstrap)
        self._started = False

    # -- scheduler side ----------------------------------------------------------

    def resume(self) -> None:
        if self.actor.finished:
            return
        self._started = True
        # (re)parent to whoever runs the scheduler so that falling off
        # the bootstrap returns control here.
        self._glet.parent = greenlet.getcurrent()
        self._glet.switch()

    @property
    def alive(self) -> bool:
        return self._started and not self._glet.dead

    # -- actor side --------------------------------------------------------------

    def block(self) -> None:
        from ..actor import ActorKilled

        self._glet.parent.switch()
        if self.actor._killed:
            raise ActorKilled()

    def _bootstrap(self) -> None:
        from ..actor import ActorKilled

        actor = self.actor
        try:
            if actor._killed:
                raise ActorKilled()
            if inspect.isgeneratorfunction(actor.func):
                gen = actor.func(*actor.args, **actor.kwargs)
                actor.result = drive_on_stack(self, gen)
            else:
                actor.result = actor.func(*actor.args, **actor.kwargs)
        except ActorKilled:
            pass
        except BaseException as exc:  # noqa: BLE001 - reported to the scheduler
            actor.exception = exc
        finally:
            actor.finished = True
