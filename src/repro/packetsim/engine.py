"""PacketEngine: the Engine-compatible facade of the packet simulator.

Duck-types :class:`repro.surf.engine.Engine` — ``communicate`` /
``execute`` / ``sleep`` / ``step`` / ``busy`` / ``cancel`` / ``now`` /
``platform`` / ``stats`` — so the SIMIX scheduler and the whole SMPI layer
run over it unchanged.  Transfers become windowed packet flows over the
platform's links (store-and-forward, half-duplex queues); computations and
sleeps become plain timed events (the testbed runs one rank per host, so
CPU sharing is not needed for fidelity).

Per-flow measurement noise (lognormal on packet service times and message
start-up) makes repeated "measurements" jitter like a real cluster; it is
fully reproducible from the seed.
"""

from __future__ import annotations

import math

import numpy as np

from .. import rng as rng_mod
from ..errors import SimulationError
from ..log import bind_clock, get_logger
from ..surf.action import Action, ActionState, ComputeAction, NetworkAction, SleepAction
from ..surf.engine import EngineStats
from ..surf.platform import Platform
from ..surf.resources import Host, Link
from .core import EventQueue, FlowState, LinkChannel, segment_sizes, wire_bytes

__all__ = ["PacketEngine", "PacketParams"]

_log = get_logger("packetsim")


class PacketParams:
    """Wire-level knobs of the packet testbed."""

    def __init__(
        self,
        window_bytes: int = 1024 * 1024,
        noise: float = 0.0,
        seed: int | None = None,
        loopback_bandwidth: float = 12.5e9,
    ) -> None:
        if window_bytes < 1460:
            raise SimulationError("window must hold at least one MSS")
        if noise < 0:
            raise SimulationError("noise must be >= 0")
        self.window_bytes = window_bytes
        self.noise = noise
        self.seed = seed
        self.loopback_bandwidth = loopback_bandwidth


class PacketEngine:
    """Packet-level kernel over a :class:`~repro.surf.platform.Platform`."""

    def __init__(self, platform: Platform, params: PacketParams | None = None):
        platform.freeze()
        self.platform = platform
        self.params = params or PacketParams()
        self.now = 0.0
        self.stats = EngineStats()
        self._events = EventQueue()
        self._channels: dict[str, LinkChannel] = {}
        self._flows: dict[int, FlowState] = {}
        self._action_flow: dict[int, FlowState] = {}
        self._completed: list[Action] = []
        self._pending_actions = 0
        self._rng = rng_mod.substream(self.params.seed, "packetsim")
        bind_clock(lambda: self.now)

    # -- Engine-compatible surface -------------------------------------------------------

    @property
    def busy(self) -> bool:
        return bool(self._events) or bool(self._completed)

    def poll_progress(self) -> bool:
        """True while :meth:`step` can make progress (everything the
        packet engine simulates is event-queue driven, so this is just
        ``busy``; the scheduler uses it for deadlock detection)."""
        return self.busy

    @property
    def pending(self) -> list:
        # only used by diagnostics; expose a count-ish stand-in
        return [None] * self._pending_actions

    def communicate(
        self,
        src: str,
        dst: str,
        size: float,
        name: str = "comm",
        rate_cap: float = math.inf,
        extra_latency: float = 0.0,
    ) -> NetworkAction:
        route = self.platform.route(src, dst)
        action = NetworkAction(
            name, size, route.links, latency=0.0, rate_bound=rate_cap,
            src=src, dst=dst,
        )
        # the packet engine drives the action itself; neutralise the state
        # machine the analytical engine would use
        action.state = ActionState.RUNNING
        action.start_time = self.now
        self.stats.actions_created += 1
        self._pending_actions += 1
        self.stats.peak_concurrent = max(self.stats.peak_concurrent, self._pending_actions)

        jitter = self._draw_noise()
        start_at = self.now + extra_latency * jitter

        if not route.links:
            # loopback: memcpy-speed, no network
            duration = max(size, 1) / self.params.loopback_bandwidth + 1e-7
            self._events.push(start_at + duration, lambda: self._finish(action))
            return action

        segments = segment_sizes(int(size))
        seg_unit = max(segments[0], 1)
        rate_factor = self._draw_noise()
        bottleneck = min(link.bandwidth for link in route.links)
        if rate_cap < bottleneck:
            # an implementation that cannot drive the wire at full speed
            # behaves like slightly slower links for this flow
            rate_factor *= bottleneck / rate_cap
        flow = FlowState(
            fid=action.aid,
            links=route.links,
            segments=segments,
            window=self._window_for(segments, route.links),
            # a warmed TCP connection starts around a 64 KiB congestion
            # window; slow start only shows beyond the rendezvous sizes
            init_cwnd=max(4, 65536 // seg_unit),
            rate_factor=rate_factor,
        )
        self._flows[action.aid] = flow
        self._action_flow[action.aid] = flow
        self._events.push(start_at, lambda: self._pump(action, flow))
        return action

    def execute(self, host: Host | str, flops: float, name: str = "exec") -> ComputeAction:
        if isinstance(host, str):
            host = self.platform.host(host)
        action = ComputeAction(name, flops, host)
        action.state = ActionState.RUNNING
        action.start_time = self.now
        self.stats.actions_created += 1
        self._pending_actions += 1
        duration = flops / host.speed
        self._events.push(self.now + duration, lambda: self._finish(action))
        return action

    def sleep(self, duration: float, name: str = "sleep") -> SleepAction:
        action = SleepAction(name, max(duration, 0.0))
        action.state = ActionState.RUNNING
        action.start_time = self.now
        self.stats.actions_created += 1
        self._pending_actions += 1
        self._events.push(self.now + max(duration, 0.0), lambda: self._finish(action))
        return action

    def step(self) -> list[Action]:
        """Process events until at least one action completes (or drained)."""
        if self._completed:
            return self._drain_completed()
        while self._events:
            when, thunk = self._events.pop()
            if when < self.now - 1e-12:
                raise SimulationError("packet event queue went backwards in time")
            self.now = max(self.now, when)
            thunk()
            if self._completed:
                return self._drain_completed()
        return []

    def run(self) -> float:
        """Standalone drain (used by unit tests)."""
        while self.busy:
            self.step()
        return self.now

    def cancel(self, action: Action) -> None:
        flow = self._action_flow.pop(action.aid, None)
        if flow is not None:
            flow.delivered = len(flow.segments)  # stop pumping
        if action.is_pending:
            action.state = ActionState.FAILED
            action.finish_time = self.now
            self._completed.append(action)

    # -- internals ---------------------------------------------------------------------------

    def _drain_completed(self) -> list[Action]:
        done, self._completed = self._completed, []
        for action in done:
            self.stats.actions_completed += 1
            self._pending_actions -= 1
            if action.observer is not None:
                action.observer(action)
        return done

    def _finish(self, action: Action) -> None:
        if action.state is ActionState.RUNNING:
            action.state = ActionState.DONE
            action.finish_time = self.now
            action.remaining = 0.0
            self._completed.append(action)

    def _channel(self, link: Link) -> LinkChannel:
        channel = self._channels.get(link.name)
        if channel is None:
            channel = self._channels[link.name] = LinkChannel(link)
        return channel

    def _window_for(self, segments: list[int], links) -> int:
        """Segments allowed in flight: the byte window over the segment size.

        Very large messages use coarse super-segments; the window must
        still cover the store-and-forward pipeline (one segment per hop
        plus slack) or the flow would be artificially window-bound.
        """
        unit = max(segments[0], 1) if segments else 1460
        pipeline_floor = 2 * len(links) + 2
        return max(2, pipeline_floor, self.params.window_bytes // unit)

    def _draw_noise(self) -> float:
        if self.params.noise <= 0:
            return 1.0
        return float(np.exp(self._rng.normal(0.0, self.params.noise)))

    def _pump(self, action: Action, flow: FlowState) -> None:
        """Inject as many segments as the window allows."""
        while flow.can_inject():
            payload = flow.segments[flow.next_segment]
            flow.next_segment += 1
            flow.in_flight += 1
            self._send_segment(action, flow, payload, hop=0, at=self.now)

    def _send_segment(
        self, action: Action, flow: FlowState, payload: int, hop: int, at: float
    ) -> None:
        """Store-and-forward the segment across hop ``hop``."""
        if hop >= len(flow.links):
            self._delivered(action, flow, at)
            return
        link = flow.links[hop]
        channel = self._channel(link)
        bytes_on_wire = int(wire_bytes(payload) * flow.rate_factor)
        _start, arrival = channel.transmit(max(at, self.now), bytes_on_wire)
        self._events.push(
            arrival, lambda: self._send_segment(action, flow, payload, hop + 1, arrival)
        )

    def _delivered(self, action: Action, flow: FlowState, at: float) -> None:
        flow.delivered += 1
        flow.last_delivery = at
        if flow.done:
            self._flows.pop(flow.fid, None)
            self._action_flow.pop(action.aid, None)
            self._finish(action)
            return
        # ack returns at latency cost only; then the window slides
        ack_latency = sum(link.latency for link in flow.links)

        def on_ack() -> None:
            flow.on_ack()
            self._pump(action, flow)

        self._events.push(at + ack_latency, on_ack)

    # -- inspection --------------------------------------------------------------------------

    def link_utilisation(self) -> dict[str, int]:
        """Bytes carried per link so far (testbed diagnostics)."""
        return {
            name: channel.bytes_carried for name, channel in self._channels.items()
        }
