"""packetsim — a packet-level discrete-event network simulator.

This is the repository's stand-in for the *real clusters* of the paper's
evaluation (griffon/gdx on Grid'5000): a ground truth against which the
analytical flow model is validated, playing the role GTNetS played in the
SimGrid validation literature the paper cites [25, 26].

The model: store-and-forward switches, half-duplex shared links matching
the flow model's SHARED semantics, MTU-sized frames with Ethernet/IP/TCP
header overhead, windowed injection (a TCP-like sliding window bounds the
packets in flight per message) and optional measurement noise.  Messages
are segmented adaptively (at most ~256 segments for very large messages)
to bound event counts; byte accounting stays exact.

:class:`PacketEngine` duck-types :class:`repro.surf.engine.Engine`, so the
*same* simulated MPI applications run unmodified over either the
analytical kernel (SMPI proper) or this packet-level testbed — the
cleanest possible apples-to-apples comparison.
"""

from .engine import PacketEngine, PacketParams

__all__ = ["PacketEngine", "PacketParams"]
