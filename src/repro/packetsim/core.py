"""Event queue, link channels and flow state of the packet simulator."""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Callable

from ..surf.resources import Link, SharingPolicy

__all__ = ["EventQueue", "LinkChannel", "FlowState", "segment_sizes"]

#: Ethernet (incl. preamble + IFG) + IP + TCP headers per frame, bytes
FRAME_OVERHEAD = 78
#: standard Ethernet MSS
MSS = 1460
#: soft cap on segments per message (adaptive coarsening above)
MAX_SEGMENTS = 256


class EventQueue:
    """A plain (time, seq, thunk) binary heap."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()

    def push(self, when: float, thunk: Callable[[], None]) -> None:
        heapq.heappush(self._heap, (when, next(self._seq), thunk))

    def pop(self) -> tuple[float, Callable[[], None]]:
        when, _seq, thunk = heapq.heappop(self._heap)
        return when, thunk

    def peek_time(self) -> float:
        return self._heap[0][0] if self._heap else math.inf

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


@dataclass
class LinkChannel:
    """Serialisation state of one link (half-duplex, SHARED semantics).

    ``busy_until`` is the time the transmitter frees up; packets reserve
    transmission slots in arrival order, which yields approximately fair
    round-robin sharing between windowed flows.  FATPIPE links never
    queue.
    """

    link: Link
    busy_until: float = 0.0
    bytes_carried: int = 0

    def transmit(self, now: float, wire_bytes: int) -> tuple[float, float]:
        """Reserve a slot; returns (tx_start, arrival_at_other_end)."""
        wire_time = wire_bytes / self.link.bandwidth
        if self.link.sharing is SharingPolicy.FATPIPE:
            start = now
        else:
            start = max(now, self.busy_until)
            self.busy_until = start + wire_time
        self.bytes_carried += wire_bytes
        return start, start + wire_time + self.link.latency


def segment_sizes(nbytes: int) -> list[int]:
    """Split a message into frame payload sizes (adaptive coarsening).

    Small messages use MTU frames; huge ones use super-segments that are
    multiples of the MSS so that per-frame overhead stays exact: a
    super-segment of k MSS units carries k frame headers' worth of
    overhead when put on the wire.
    """
    if nbytes <= 0:
        return [0]
    unit = MSS
    if nbytes > MSS * MAX_SEGMENTS:
        units = math.ceil(nbytes / (MSS * MAX_SEGMENTS))
        unit = MSS * units
    full, rest = divmod(nbytes, unit)
    sizes = [unit] * full
    if rest:
        sizes.append(rest)
    return sizes


def wire_bytes(payload: int) -> int:
    """Bytes on the wire for a segment: payload + per-MSS frame headers."""
    if payload <= 0:
        return FRAME_OVERHEAD
    frames = math.ceil(payload / MSS)
    return payload + frames * FRAME_OVERHEAD


@dataclass
class FlowState:
    """One in-flight message transfer.

    ``cwnd`` models TCP slow start: it begins small and grows by one
    segment per acknowledgement (doubling per RTT) up to the receive
    window.  This is what makes *medium* messages latency-bound — the
    regime where the paper shows affine models failing (Fig. 3) — while
    small messages are pure latency and large ones amortise the ramp.
    """

    fid: int
    links: tuple[Link, ...]
    segments: list[int]
    window: int
    rate_factor: float = 1.0  # per-flow noise on service times
    init_cwnd: int = 8
    cwnd: int = field(default=0)
    next_segment: int = 0
    in_flight: int = 0
    delivered: int = 0
    #: when the last byte arrived at the destination
    last_delivery: float = field(default=math.nan)

    def __post_init__(self) -> None:
        self.cwnd = min(self.init_cwnd, self.window)

    @property
    def done(self) -> bool:
        return self.delivered >= len(self.segments)

    def on_ack(self) -> None:
        """Slow-start growth: +1 segment per ack, capped by the window."""
        self.in_flight -= 1
        if self.cwnd < self.window:
            self.cwnd += 1

    def can_inject(self) -> bool:
        return (
            self.next_segment < len(self.segments)
            and self.in_flight < min(self.cwnd, self.window)
        )
