"""SMPI — simulated MPI, the paper's core contribution.

Public surface:

* :func:`~repro.smpi.runtime.smpirun` — run an application function on N
  simulated MPI processes over a platform;
* :class:`~repro.smpi.runtime.Mpi` — the per-rank handle applications
  receive (COMM_WORLD, wtime, sampling macros, shared malloc);
* :class:`~repro.smpi.comm.Communicator` — mpi4py-style API: upper-case
  methods for NumPy buffers, lower-case for picklable objects;
* :mod:`~repro.smpi.datatype`, :mod:`~repro.smpi.op` — datatypes and
  reduction operators;
* :class:`~repro.smpi.config.SmpiConfig` — eager threshold, collective
  algorithm selection, memory enforcement, sampling factor.

Example::

    from repro.smpi import smpirun, SmpiConfig
    from repro.surf import cluster

    def app(mpi):
        import numpy as np
        data = np.full(4, mpi.rank, dtype=np.float64)
        out = np.empty(4)
        mpi.COMM_WORLD.Allreduce(data, out)
        return out.sum()

    result = smpirun(app, 8, cluster("c", 8))
    print(result.simulated_time, result.returns)
"""

from . import constants, datatype, op
from .comm import Communicator
from .config import SmpiConfig
from .constants import ANY_SOURCE, ANY_TAG, IN_PLACE, PROC_NULL, SUCCESS, UNDEFINED
from .datatype import (
    BYTE,
    CHAR,
    ContiguousDatatype,
    Datatype,
    DOUBLE,
    FLOAT,
    INT,
    INT64,
    LONG,
    VectorDatatype,
)
from .group import Group
from .io import File, FileSystem, MODE_APPEND, MODE_CREATE, MODE_EXCL, MODE_RDONLY, MODE_RDWR, MODE_WRONLY
from .memory import MemoryReport, MemoryTracker
from .op import MAX, MIN, PROD, SUM, Op
from .request import (
    PersistentRequest,
    REQUEST_NULL,
    Request,
    startall,
    test,
    testall,
    testany,
    testsome,
    wait,
    waitall,
    waitany,
    waitsome,
)
from .runtime import Mpi, SmpiResult, SmpiWorld, smpirun
from .status import Status
from .topo import CartComm, cart_create, dims_create

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "BYTE",
    "CartComm",
    "CHAR",
    "Communicator",
    "ContiguousDatatype",
    "DOUBLE",
    "Datatype",
    "File",
    "FileSystem",
    "FLOAT",
    "Group",
    "IN_PLACE",
    "INT",
    "INT64",
    "LONG",
    "MAX",
    "MemoryReport",
    "MemoryTracker",
    "MIN",
    "MODE_APPEND",
    "MODE_CREATE",
    "MODE_EXCL",
    "MODE_RDONLY",
    "MODE_RDWR",
    "MODE_WRONLY",
    "Mpi",
    "Op",
    "PersistentRequest",
    "PROC_NULL",
    "PROD",
    "REQUEST_NULL",
    "Request",
    "SmpiConfig",
    "SmpiResult",
    "SmpiWorld",
    "Status",
    "SUCCESS",
    "SUM",
    "UNDEFINED",
    "VectorDatatype",
    "cart_create",
    "constants",
    "datatype",
    "dims_create",
    "op",
    "smpirun",
    "startall",
    "test",
    "testall",
    "testany",
    "testsome",
    "wait",
    "waitall",
    "waitany",
    "waitsome",
]
