"""MPI process groups (paper section 5.1: "process groups ... and their
operations").

A :class:`Group` is an ordered set of *world ranks*: position ``i`` in the
tuple is the group-local rank ``i``, the value is the rank in
``COMM_WORLD``.  All the MPI-1 group calculus is implemented (union,
intersection, difference, incl/excl, range variants, translate, compare).
Groups are immutable and hashable.
"""

from __future__ import annotations

from ..errors import MpiError
from . import constants

__all__ = ["Group", "GROUP_EMPTY", "IDENT", "SIMILAR", "UNEQUAL"]

# comparison results (MPI_IDENT / MPI_SIMILAR / MPI_UNEQUAL)
IDENT = 0
SIMILAR = 1
UNEQUAL = 2


class Group:
    """An immutable ordered set of world ranks."""

    __slots__ = ("ranks", "_index")

    def __init__(self, ranks: tuple[int, ...] | list[int]):
        ranks = tuple(int(r) for r in ranks)
        if len(set(ranks)) != len(ranks):
            raise MpiError(constants.ERR_GROUP, f"duplicate ranks in group: {ranks}")
        if any(r < 0 for r in ranks):
            raise MpiError(constants.ERR_GROUP, f"negative rank in group: {ranks}")
        self.ranks = ranks
        self._index = {world: local for local, world in enumerate(ranks)}

    # -- queries -------------------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self.ranks)

    def rank_of(self, world_rank: int) -> int:
        """Group-local rank of a world rank (UNDEFINED if absent)."""
        return self._index.get(world_rank, constants.UNDEFINED)

    def world_rank(self, local_rank: int) -> int:
        """World rank of a group-local rank."""
        if not 0 <= local_rank < self.size:
            raise MpiError(
                constants.ERR_RANK, f"rank {local_rank} out of range [0,{self.size})"
            )
        return self.ranks[local_rank]

    def contains(self, world_rank: int) -> bool:
        return world_rank in self._index

    def translate_ranks(self, ranks: list[int], other: "Group") -> list[int]:
        """MPI_Group_translate_ranks: map local ranks here to ranks there."""
        out = []
        for rank in ranks:
            world = self.world_rank(rank)
            out.append(other.rank_of(world))
        return out

    def compare(self, other: "Group") -> int:
        """MPI_Group_compare."""
        if self.ranks == other.ranks:
            return IDENT
        if set(self.ranks) == set(other.ranks):
            return SIMILAR
        return UNEQUAL

    # -- set calculus -----------------------------------------------------------------

    def union(self, other: "Group") -> "Group":
        """Members of self, then members of other not in self (MPI order)."""
        extra = [r for r in other.ranks if r not in self._index]
        return Group(self.ranks + tuple(extra))

    def intersection(self, other: "Group") -> "Group":
        return Group(tuple(r for r in self.ranks if other.contains(r)))

    def difference(self, other: "Group") -> "Group":
        return Group(tuple(r for r in self.ranks if not other.contains(r)))

    def incl(self, ranks: list[int]) -> "Group":
        """MPI_Group_incl: subgroup of the listed local ranks, in order."""
        return Group(tuple(self.world_rank(r) for r in ranks))

    def excl(self, ranks: list[int]) -> "Group":
        """MPI_Group_excl: subgroup without the listed local ranks."""
        drop = set(ranks)
        for r in drop:
            self.world_rank(r)  # validates range
        return Group(
            tuple(w for local, w in enumerate(self.ranks) if local not in drop)
        )

    def range_incl(self, ranges: list[tuple[int, int, int]]) -> "Group":
        """MPI_Group_range_incl: ranges are (first, last, stride) triples."""
        picked: list[int] = []
        for first, last, stride in ranges:
            if stride == 0:
                raise MpiError(constants.ERR_ARG, "zero stride in range")
            stop = last + (1 if stride > 0 else -1)
            picked.extend(range(first, stop, stride))
        return self.incl(picked)

    def range_excl(self, ranges: list[tuple[int, int, int]]) -> "Group":
        """MPI_Group_range_excl."""
        picked: set[int] = set()
        for first, last, stride in ranges:
            if stride == 0:
                raise MpiError(constants.ERR_ARG, "zero stride in range")
            stop = last + (1 if stride > 0 else -1)
            picked.update(range(first, stop, stride))
        return self.excl(sorted(picked))

    # -- dunder -------------------------------------------------------------------------

    def __len__(self) -> int:
        return self.size

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Group) and other.ranks == self.ranks

    def __hash__(self) -> int:
        return hash(self.ranks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Group{self.ranks}"


GROUP_EMPTY = Group(())
