"""CPU-burst sampling — the paper's SMPI_SAMPLE_{LOCAL,GLOBAL,DELAY} macros
(sections 3.1 and 5.2).

The C macros wrap a block in hash-table bookkeeping: execute-and-time the
block its first ``n`` occurrences, then skip it and charge the average
measured duration instead.  The Python idiom here is the for-loop form::

    for _ in mpi.sample_local("stencil-sweep", n=10):
        do_the_computation()          # body runs only while sampling

The generator yields exactly once while the site still needs samples
(timing the body with ``perf_counter`` and charging the measured duration,
scaled by the host/target speed factor, as a simulated compute action) and
zero times once the site is warmed up (charging the average instead) —
mirroring the macro's execute-then-bypass behaviour, including the
if-then-else counters keyed by source location.

* ``sample_local``  — each rank samples independently (per-rank counters);
* ``sample_global`` — the first ``n`` executions *anywhere* warm the site
  for every rank, making the simulation cost independent of the process
  count for regular SPMD codes (the paper's scalability argument);
* ``sample_delay``  — never execute: charge a user-supplied flop count
  (enables the compiler-style RAM folding of technique #2);
* ``sample_auto``   — extension (paper section 8 future work): keep
  sampling until the relative standard error of the mean drops below a
  precision target, like SKaMPI's adaptive measurement.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from ..errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .runtime import SmpiWorld

__all__ = ["SampleSite", "Sampler"]


@dataclass
class SampleSite:
    """Counters and accumulated timings of one sampled source location."""

    key: str
    target_samples: int
    count: int = 0
    total_time: float = 0.0
    total_sq: float = 0.0
    durations: list[float] = field(default_factory=list)

    @property
    def mean(self) -> float:
        return self.total_time / self.count if self.count else 0.0

    @property
    def stderr(self) -> float:
        """Relative standard error of the mean (for adaptive sampling)."""
        if self.count < 2 or self.mean == 0:
            return math.inf
        var = max(self.total_sq / self.count - self.mean**2, 0.0)
        return math.sqrt(var / self.count) / self.mean

    def record(self, duration: float) -> None:
        self.count += 1
        self.total_time += duration
        self.total_sq += duration * duration
        self.durations.append(duration)

    def needs_sample(self) -> bool:
        return self.count < self.target_samples


class Sampler:
    """Per-world sampling state: local and global site tables."""

    def __init__(self, world: "SmpiWorld") -> None:
        self.world = world
        self._local: dict[tuple[str, int], SampleSite] = {}
        self._global: dict[str, SampleSite] = {}
        #: wall-clock seconds actually spent executing sampled bursts
        self.executed_time = 0.0
        #: wall-clock seconds *avoided* (bursts replayed from the average)
        self.bypassed_time = 0.0

    # -- the three macros -------------------------------------------------------------

    def sample_local(self, key: str, n: int) -> Iterator[None]:
        """SMPI_SAMPLE_LOCAL(n): per-rank execute-first-n-then-replay."""
        if n < 1:
            raise ConfigError("sample_local needs n >= 1 (use sample_delay for n=0)")
        rank = self.world.current_rank
        site = self._local.setdefault((key, rank), SampleSite(key, n))
        yield from self._run(site)

    def sample_global(self, key: str, n: int) -> Iterator[None]:
        """SMPI_SAMPLE_GLOBAL(n): first n executions over *all* ranks."""
        if n < 1:
            raise ConfigError("sample_global needs n >= 1")
        site = self._global.setdefault(key, SampleSite(key, n))
        yield from self._run(site)

    def sample_delay(self, flops: float) -> None:
        """SMPI_SAMPLE_DELAY: never execute, charge ``flops`` directly."""
        self.world.execute_flops(flops)

    def sample_auto(
        self, key: str, precision: float = 0.05, max_samples: int = 100
    ) -> Iterator[None]:
        """Adaptive sampling: run until stderr/mean <= precision."""
        rank = self.world.current_rank
        site = self._local.setdefault(
            (key, rank), SampleSite(key, max_samples)
        )
        if site.count >= 2 and site.stderr <= precision:
            site.target_samples = site.count  # freeze
        yield from self._run(site)

    # -- shared machinery -----------------------------------------------------------------

    def _run(self, site: SampleSite) -> Iterator[None]:
        if site.needs_sample():
            start = time.perf_counter()
            yield  # caller's body executes here
            duration = time.perf_counter() - start
            site.record(duration)
            self.executed_time += duration
            self._charge(duration)
        else:
            self.bypassed_time += site.mean
            self._charge(site.mean)

    def _charge(self, host_seconds: float) -> None:
        """Convert a host-measured duration into simulated compute time.

        Charged lazily (deferred) so bypassed iterations in tight loops
        cost no scheduler round-trip; see SmpiWorld.defer_flops.
        """
        world = self.world
        target_seconds = host_seconds * world.config.speed_factor
        host = world.engine.platform.host(world.host_of(world.current_rank))
        world.defer_flops(target_seconds * host.speed)

    # -- inspection -------------------------------------------------------------------------

    def site_stats(self) -> dict[str, dict]:
        """Summary per site (tests and the Fig. 18 bench read this)."""
        out: dict[str, dict] = {}
        for (key, rank), site in self._local.items():
            entry = out.setdefault(
                key, {"kind": "local", "samples": 0, "mean": 0.0, "sites": 0}
            )
            entry["samples"] += site.count
            entry["sites"] += 1
            entry["mean"] += site.mean
        for key, site in self._global.items():
            out[key] = {
                "kind": "global",
                "samples": site.count,
                "mean": site.mean,
                "sites": 1,
            }
        for entry in out.values():
            if entry["kind"] == "local" and entry["sites"]:
                entry["mean"] /= entry["sites"]
        return out
