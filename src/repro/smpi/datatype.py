"""MPI datatypes, predefined and derived.

A :class:`Datatype` knows its element size and, for the predefined types,
the matching NumPy dtype so buffers can be checked and copied with
vectorised operations.  Derived types — ``Contiguous`` and ``Vector``,
an extension beyond the paper's predefined-only subset — describe
non-contiguous layouts through pack/unpack methods operating on flat
NumPy views.

The pack/unpack path is the single place where message bytes are
marshalled, so the on-line property (real data movement, applications
compute correct results in simulation) is concentrated here and heavily
tested.
"""

from __future__ import annotations

import itertools

import numpy as np

from ..errors import MpiError
from . import constants

__all__ = [
    "Datatype",
    "PredefinedDatatype",
    "ContiguousDatatype",
    "VectorDatatype",
    "BYTE",
    "CHAR",
    "SHORT",
    "INT",
    "LONG",
    "LONG_LONG",
    "UNSIGNED",
    "UNSIGNED_LONG",
    "FLOAT",
    "DOUBLE",
    "C_BOOL",
    "INT8",
    "INT16",
    "INT32",
    "INT64",
    "UINT8",
    "UINT16",
    "UINT32",
    "UINT64",
    "COMPLEX",
    "DOUBLE_COMPLEX",
    "PACKED",
    "from_numpy_dtype",
]

_ids = itertools.count()


class Datatype:
    """Base class: a recipe for interpreting a buffer."""

    def __init__(self, name: str, size: int, extent: int | None = None):
        self.tid = next(_ids)
        self.name = name
        #: bytes of actual data per element (what travels on the network)
        self.size = int(size)
        #: bytes the element spans in memory (>= size for strided types)
        self.extent = int(extent if extent is not None else size)
        self.committed = True

    def commit(self) -> None:
        """MPI_Type_commit (no-op here, kept for API fidelity)."""
        self.committed = True

    def free(self) -> None:
        """MPI_Type_free (no-op; garbage collection handles storage)."""
        self.committed = False

    # -- marshalling ---------------------------------------------------------------

    def pack(self, buf: np.ndarray, count: int) -> np.ndarray:
        """Serialise ``count`` elements of ``buf`` into contiguous bytes."""
        raise NotImplementedError

    def unpack(self, data: np.ndarray, buf: np.ndarray, count: int) -> None:
        """Write ``count`` elements from contiguous bytes into ``buf``."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r}, size={self.size})"


class PredefinedDatatype(Datatype):
    """A basic type backed by one NumPy dtype."""

    def __init__(self, name: str, np_dtype: str):
        self.np_dtype = np.dtype(np_dtype)
        super().__init__(name, self.np_dtype.itemsize)

    def _check(self, buf: np.ndarray, count: int) -> np.ndarray:
        arr = np.asarray(buf)
        flat = arr.reshape(-1)
        if flat.size < count:
            raise MpiError(
                constants.ERR_COUNT,
                f"buffer holds {flat.size} elements, {count} requested",
            )
        return flat

    def pack(self, buf: np.ndarray, count: int) -> np.ndarray:
        flat = self._check(buf, count)
        # exactly one copy: the MPI snapshot of the send buffer
        out = np.empty(count, dtype=self.np_dtype)
        out[:] = flat[:count]
        return out.view(np.uint8).reshape(-1)

    def unpack(self, data: np.ndarray, buf: np.ndarray, count: int) -> None:
        if not np.asarray(buf).flags.c_contiguous:
            # a reshape(-1) of a non-contiguous array is a copy, so writes
            # would be lost silently — reject instead
            raise MpiError(
                constants.ERR_BUFFER, "receive buffers must be C-contiguous"
            )
        flat = self._check(buf, count)
        if flat.dtype != self.np_dtype:
            raise MpiError(
                constants.ERR_TYPE,
                f"receive buffer dtype {flat.dtype} != {self.np_dtype}",
            )
        if not flat.flags.writeable:
            raise MpiError(constants.ERR_BUFFER, "receive buffer is read-only")
        # exactly one copy: wire bytes into the receive buffer
        wire = np.ascontiguousarray(data[: count * self.size])
        flat[:count] = wire.view(self.np_dtype)


class ContiguousDatatype(Datatype):
    """MPI_Type_contiguous: ``count`` consecutive elements of a base type."""

    def __init__(self, count: int, base: Datatype, name: str = ""):
        if count < 1:
            raise MpiError(constants.ERR_COUNT, "contiguous count must be >= 1")
        self.base = base
        self.count = count
        super().__init__(
            name or f"contig({count},{base.name})",
            count * base.size,
            count * base.extent,
        )
        self.committed = False

    def pack(self, buf: np.ndarray, count: int) -> np.ndarray:
        return self.base.pack(buf, count * self.count)

    def unpack(self, data: np.ndarray, buf: np.ndarray, count: int) -> None:
        self.base.unpack(data, buf, count * self.count)


class VectorDatatype(Datatype):
    """MPI_Type_vector: ``count`` blocks of ``blocklength`` elements, the
    starts of consecutive blocks ``stride`` elements apart."""

    def __init__(
        self, count: int, blocklength: int, stride: int, base: PredefinedDatatype,
        name: str = "",
    ) -> None:
        if count < 1 or blocklength < 1:
            raise MpiError(constants.ERR_COUNT, "vector count/blocklength >= 1")
        if stride < blocklength:
            raise MpiError(constants.ERR_ARG, "overlapping vector stride")
        if not isinstance(base, PredefinedDatatype):
            raise MpiError(constants.ERR_TYPE, "vector base must be predefined")
        self.base = base
        self.count = count
        self.blocklength = blocklength
        self.stride = stride
        span = ((count - 1) * stride + blocklength) * base.extent
        super().__init__(
            name or f"vector({count},{blocklength},{stride},{base.name})",
            count * blocklength * base.size,
            span,
        )
        self.committed = False

    def _indices(self, count: int) -> np.ndarray:
        """Flat element indices covered by ``count`` vector elements."""
        one = (
            np.arange(self.count)[:, None] * self.stride
            + np.arange(self.blocklength)[None, :]
        ).reshape(-1)
        span_elems = (self.count - 1) * self.stride + self.blocklength
        reps = one[None, :] + np.arange(count)[:, None] * span_elems
        return reps.reshape(-1)

    def pack(self, buf: np.ndarray, count: int) -> np.ndarray:
        flat = np.asarray(buf).reshape(-1)
        idx = self._indices(count)
        if flat.size < int(idx[-1]) + 1:
            raise MpiError(constants.ERR_COUNT, "buffer too small for vector type")
        picked = np.empty(idx.size, dtype=self.base.np_dtype)
        picked[:] = flat[idx]
        return picked.view(np.uint8).reshape(-1)

    def unpack(self, data: np.ndarray, buf: np.ndarray, count: int) -> None:
        flat = np.asarray(buf).reshape(-1)
        idx = self._indices(count)
        if flat.size < int(idx[-1]) + 1:
            raise MpiError(constants.ERR_COUNT, "buffer too small for vector type")
        wire = np.ascontiguousarray(data[: idx.size * self.base.size])
        flat[idx] = wire.view(self.base.np_dtype)


# -- predefined instances ------------------------------------------------------------

BYTE = PredefinedDatatype("MPI_BYTE", "uint8")
CHAR = PredefinedDatatype("MPI_CHAR", "int8")
SHORT = PredefinedDatatype("MPI_SHORT", "int16")
INT = PredefinedDatatype("MPI_INT", "int32")
LONG = PredefinedDatatype("MPI_LONG", "int64")
LONG_LONG = PredefinedDatatype("MPI_LONG_LONG", "int64")
UNSIGNED = PredefinedDatatype("MPI_UNSIGNED", "uint32")
UNSIGNED_LONG = PredefinedDatatype("MPI_UNSIGNED_LONG", "uint64")
FLOAT = PredefinedDatatype("MPI_FLOAT", "float32")
DOUBLE = PredefinedDatatype("MPI_DOUBLE", "float64")
C_BOOL = PredefinedDatatype("MPI_C_BOOL", "bool")
INT8 = PredefinedDatatype("MPI_INT8_T", "int8")
INT16 = PredefinedDatatype("MPI_INT16_T", "int16")
INT32 = PredefinedDatatype("MPI_INT32_T", "int32")
INT64 = PredefinedDatatype("MPI_INT64_T", "int64")
UINT8 = PredefinedDatatype("MPI_UINT8_T", "uint8")
UINT16 = PredefinedDatatype("MPI_UINT16_T", "uint16")
UINT32 = PredefinedDatatype("MPI_UINT32_T", "uint32")
UINT64 = PredefinedDatatype("MPI_UINT64_T", "uint64")
COMPLEX = PredefinedDatatype("MPI_COMPLEX", "complex64")
DOUBLE_COMPLEX = PredefinedDatatype("MPI_DOUBLE_COMPLEX", "complex128")
PACKED = PredefinedDatatype("MPI_PACKED", "uint8")

_BY_NP_DTYPE = {
    dtype.np_dtype: dtype
    for dtype in (
        CHAR, SHORT, INT, LONG, UNSIGNED, UNSIGNED_LONG, FLOAT, DOUBLE,
        C_BOOL, UINT8, UINT16, COMPLEX, DOUBLE_COMPLEX,
    )
}
_BY_NP_DTYPE[np.dtype("uint8")] = BYTE


def from_numpy_dtype(dtype: np.dtype) -> PredefinedDatatype:
    """Automatic datatype discovery for NumPy buffers (mpi4py-style)."""
    dt = np.dtype(dtype)
    try:
        return _BY_NP_DTYPE[dt]
    except KeyError:
        raise MpiError(
            constants.ERR_TYPE, f"no MPI datatype for numpy dtype {dt}"
        ) from None
