"""Point-to-point protocol engine: matching, eager and rendezvous modes.

The protocol follows what the paper observes about real MPI
implementations (section 4.1): below the *eager threshold* a send is
buffered — its transfer starts immediately and the send completes when the
bytes have left, whether or not the receive is posted; above the
threshold the *rendezvous* protocol holds the data until the receive is
posted, paying a handshake round-trip, and both sides complete with the
transfer.  The 64 KiB protocol switch is precisely where the piece-wise
linear model places a segment boundary.

Matching is MPI-conformant: per (context, destination) there is a posted-
receive queue and an unexpected-message queue; ``ANY_SOURCE``/``ANY_TAG``
wildcards are supported; messages between the same (source, destination,
tag) triple are non-overtaking because every queue entry carries its
arrival order.  Two interchangeable queue families implement this
(``REPRO_MATCH`` / ``SmpiConfig.match``): the default ``index`` mode uses
the seqno-bucketed match queues of :mod:`repro.simix.mailbox` (O(1)
exact matches), while ``scan`` keeps the original oldest-first linear
scan as a bit-identical oracle.  Matching is predicate-free on the hot
path — envelopes travel as ``(source, tag)`` ints, not closures.

Allocation churn is bounded the same way: ``Message`` and ``_PostedRecv``
are slotted dataclasses recycled through free-list pools (a message
returns to :meth:`SmpiWorld.release_message` when it *closes* — payload
delivered or terminally failed), and completed requests recycle through
:meth:`SmpiWorld.release_request`.  Pooled objects draw fresh
``mid``/``rid`` numbers on reuse, so id streams — and therefore simulated
clocks, snapshots and traces — are bit-identical with and without
pooling.

Everything here runs inside actor threads under the scheduler's baton, so
there is no concurrency to guard against — the code reads like the
sequential protocol automaton it is.
"""

from __future__ import annotations

import itertools
import math
import os
from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING

import numpy as np

from ..errors import ConfigError, MpiError
from ..log import get_logger
from ..simix.contexts import run_blocking
from ..simix.mailbox import (
    IndexedMessageQueue,
    IndexedRecvQueue,
    ScanMessageQueue,
    ScanRecvQueue,
)
from . import constants
from .buffer import BufferSpec
from .intern import intern_meta, payload_key
from .request import Request

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .runtime import SmpiWorld

__all__ = ["MATCH_MODES", "Message", "Protocol", "resolve_match_mode"]

_log = get_logger("smpi.pt2pt")
#: fallback allocator for messages built outside a Protocol (tests);
#: protocol-created messages draw from the per-world sequencer so runs
#: are reproducible within one process and snapshots can restore it
_msg_ids = itertools.count()

#: the payload sentinel pooled messages park on between lives
EMPTY_PAYLOAD = np.zeros(0, dtype=np.uint8)

#: selectable matching implementations (see :func:`resolve_match_mode`)
MATCH_MODES = ("index", "scan")


def resolve_match_mode(mode: str | None = None) -> str:
    """The effective matching mode: argument, ``REPRO_MATCH``, ``index``.

    Mirrors the engine's sharing dial: an explicit value (usually
    ``SmpiConfig.match``) wins, then the ``REPRO_MATCH`` environment
    variable, then the indexed default.
    """
    if mode is None:
        mode = os.environ.get("REPRO_MATCH") or "index"
    if mode not in MATCH_MODES:
        raise ConfigError(
            f"unknown match mode {mode!r}; expected one of {MATCH_MODES}")
    return mode


@dataclass(slots=True)
class Message:
    """One in-flight message: envelope + payload + protocol state.

    Under ``zero_copy`` the payload is an empty sentinel while
    ``wire_bytes`` still drives the simulated transfer timing.
    """

    src: int  # world rank
    dst: int  # world rank
    tag: int
    ctx: int
    data: np.ndarray  # packed payload bytes (uint8); empty when zero-copy
    eager: bool
    wire_bytes: int = -1
    mid: int = field(default_factory=lambda: next(_msg_ids))
    send_req: Request | None = None
    recv_req: Request | None = None
    #: set when the wire transfer has finished
    delivered: bool = False
    #: the network activity, once started
    transfer: object = None
    #: transfer attempts so far (retry accounting, ``comm_retries``)
    attempts: int = 0
    #: the last attempt was cancelled by the ``comm_timeout`` watchdog
    timed_out: bool = False
    #: the armed watchdog action (``engine.at`` sleep), disarmed on
    #: completion so a stale watchdog can never outlive its transfer
    watchdog: object = None
    #: whether the transfer pays the rendezvous handshake (memoised so
    #: retries reproduce the protocol timing of the original attempt)
    handshake: bool = False
    #: content key of the interned payload (None when the payload was not
    #: interned); released back to the world's pool at delivery/failure
    payload_key: tuple | None = None
    #: terminal state: payload consumed or terminally failed; the only
    #: state a pooled message may be recycled from
    closed: bool = False
    #: surfaced to the application by Probe/Iprobe — such a message may
    #: be user-held and is never recycled
    probed: bool = False

    def __post_init__(self) -> None:
        if self.wire_bytes < 0:
            self.wire_bytes = int(self.data.size)

    @property
    def nbytes(self) -> int:
        return self.wire_bytes

    def matches(self, source: int, tag: int) -> bool:
        """Does this message satisfy a recv posted for (source, tag)?"""
        if source != constants.ANY_SOURCE and source != self.src:
            return False
        if tag != constants.ANY_TAG and tag != self.tag:
            return False
        return True


@dataclass(slots=True)
class _PostedRecv:
    """A receive waiting in the posted queue."""

    source: int
    tag: int
    ctx: int
    request: Request | None
    buffer: BufferSpec | None  # None => raw-bytes receive (object API)


def _message_envelope(message: Message) -> tuple[int, int]:
    """Queue key extractor for unexpected messages (concrete envelope)."""
    return message.src, message.tag


def _recv_pattern(recv: _PostedRecv) -> tuple[int, int]:
    """Queue key extractor for posted receives (possibly-wildcard)."""
    return recv.source, recv.tag


class Protocol:
    """Owns the match queues and drives message life cycles."""

    def __init__(self, world: "SmpiWorld") -> None:
        self.world = world
        self.match_mode = resolve_match_mode(world.config.match)
        #: the engine's counter sink (duck-typed kernels share the class)
        self._stats = world.engine.stats
        #: the world's hot-path profiler, or None (see repro.profile)
        self.profiler = getattr(world, "profiler", None)
        # (ctx, dst_world_rank) -> queues
        self._posted: dict[tuple[int, int], object] = {}
        self._unexpected: dict[tuple[int, int], object] = {}
        # actors blocked in Probe, keyed like the queues
        self._probe_waiters: dict[tuple[int, int], list] = {}
        #: queue keys by destination rank, so a dead-rank purge touches
        #: only the affected rank's queues instead of every queue pair
        self._keys_by_dst: dict[int, list[tuple[int, int]]] = {}
        #: queue keys holding receives pinned to a concrete source, by
        #: that source rank — the other half of the dead-rank index
        self._posted_sources: dict[int, dict[tuple[int, int], None]] = {}
        #: free list recycling _PostedRecv envelopes
        self._recv_pool: list[_PostedRecv] = []

    def _queues(self, ctx: int, dst: int):
        key = (ctx, dst)
        posted = self._posted.get(key)
        if posted is None:
            if self.match_mode == "index":
                posted = IndexedRecvQueue(
                    f"posted-{key}", _recv_pattern,
                    any_source=constants.ANY_SOURCE,
                    any_tag=constants.ANY_TAG, stats=self._stats)
                unexpected = IndexedMessageQueue(
                    f"unexpected-{key}", _message_envelope,
                    any_source=constants.ANY_SOURCE,
                    any_tag=constants.ANY_TAG, stats=self._stats)
            else:
                posted = ScanRecvQueue(
                    f"posted-{key}", _recv_pattern,
                    any_source=constants.ANY_SOURCE,
                    any_tag=constants.ANY_TAG, stats=self._stats)
                unexpected = ScanMessageQueue(
                    f"unexpected-{key}", _message_envelope,
                    any_source=constants.ANY_SOURCE,
                    any_tag=constants.ANY_TAG, stats=self._stats)
            self._posted[key] = posted
            self._unexpected[key] = unexpected
            self._keys_by_dst.setdefault(dst, []).append(key)
        return posted, self._unexpected[key]

    # -- posted-receive envelope pool ----------------------------------------------------

    def _acquire_recv(self, source: int, tag: int, ctx: int,
                      request: Request, buffer: BufferSpec | None
                      ) -> _PostedRecv:
        pool = self._recv_pool
        if pool:
            recv = pool.pop()
            recv.source = source
            recv.tag = tag
            recv.ctx = ctx
            recv.request = request
            recv.buffer = buffer
            self._stats.pooled_reuses += 1
            return recv
        return _PostedRecv(source, tag, ctx, request, buffer)

    def _release_recv(self, recv: _PostedRecv) -> None:
        recv.request = None
        recv.buffer = None
        if len(self._recv_pool) < 4096:
            self._recv_pool.append(recv)

    def post_restored_recv(self, ctx: int, dst: int,
                           recv: _PostedRecv) -> None:
        """Re-queue a checkpointed posted receive (snapshot restore).

        Goes through the same bookkeeping as :meth:`start_recv` so the
        dead-rank source index survives a checkpoint/resume cycle.
        """
        posted, _unexpected = self._queues(ctx, dst)
        posted.push(recv)
        if recv.source != constants.ANY_SOURCE:
            self._posted_sources.setdefault(recv.source, {})[(ctx, dst)] = None

    # -- send side ---------------------------------------------------------------------

    def start_send(
        self,
        src: int,
        dst: int,
        tag: int,
        ctx: int,
        data: np.ndarray,
        request: Request,
        wire_bytes: int | None = None,
        mode: str = "standard",
    ) -> None:
        """Initiate a send; the request completes per protocol rules.

        ``wire_bytes`` (zero-copy mode) sets the simulated message size
        when ``data`` is an empty payload sentinel.  ``mode`` selects the
        MPI send mode: ``standard`` follows the eager threshold,
        ``synchronous`` (Ssend) always uses rendezvous, ``buffered``
        (Bsend) always eager, ``ready`` (Rsend) behaves like standard
        (its constraint is on the application, not the timing).
        """
        self.world.flush_deferred()
        if dst in self.world.dead_ranks:
            raise MpiError(
                constants.ERR_PROC_FAILED,
                f"cannot send to rank {dst}: peer is dead (host failure)",
            )
        cfg = self.world.config
        nbytes = int(data.size) if wire_bytes is None else wire_bytes
        if mode == "synchronous":
            eager = False
        elif mode == "buffered":
            eager = True
        else:
            eager = nbytes <= cfg.eager_threshold
        request.meta = intern_meta("send", tag, ctx, nbytes, eager)
        key: tuple | None = None
        pool = getattr(self.world, "payload_pool", None)
        if pool is not None and cfg.payload_interning and data.size:
            # Fold byte-identical payloads: the array becomes pool-owned
            # and read-only (receivers only copy out of it), so 10k ranks
            # sending the same panel share one copy.  ``data`` must be a
            # freshly packed array, which every library call site passes.
            key = payload_key(data)
            local = data

            def freeze() -> np.ndarray:
                local.setflags(write=False)
                return local

            data = pool.acquire(key, freeze, int(local.size))
        message = self.world.acquire_message(
            src, dst, tag, ctx, data, eager, nbytes, request, key)
        if self.world.recorder is not None:
            request.trace_id = self.world.recorder.send(src, dst, nbytes, tag, ctx)
        request.message = message
        request.source = src
        request.tag = tag

        posted, unexpected = self._queues(ctx, dst)
        prof = self.profiler
        if prof is None:
            recv = posted.pop(src, tag)
        else:
            t0 = perf_counter()
            recv = posted.pop(src, tag)
            prof.add("match.send", perf_counter() - t0)
        if recv is not None:
            self._bind(message, recv.request, recv.buffer)
            self._release_recv(recv)
            self._start_transfer(message, handshake=not eager)
        else:
            unexpected.push(message)
            self._wake_probers(ctx, dst)
            if eager:
                # buffered mode: bytes start flowing immediately
                self._start_transfer(message, handshake=False)
            # rendezvous: wait for the receive; only the envelope travelled

    # -- receive side -------------------------------------------------------------------

    def start_recv(
        self,
        dst: int,
        source: int,
        tag: int,
        ctx: int,
        buffer: BufferSpec | None,
        request: Request,
    ) -> None:
        """Post a receive; matches an unexpected message or queues up."""
        self.world.flush_deferred()
        if source != constants.ANY_SOURCE and source in self.world.dead_ranks:
            raise MpiError(
                constants.ERR_PROC_FAILED,
                f"cannot receive from rank {source}: peer is dead "
                f"(host failure)",
            )
        if self.world.recorder is not None:
            request.trace_id = self.world.recorder.recv(dst, source, tag, ctx)
        request.meta = intern_meta(
            "recv", tag, ctx,
            -1 if buffer is None else buffer.descriptor.nbytes,
        )
        posted, unexpected = self._queues(ctx, dst)
        prof = self.profiler
        if prof is None:
            message = unexpected.pop(source, tag)
        else:
            t0 = perf_counter()
            message = unexpected.pop(source, tag)
            prof.add("match.recv", perf_counter() - t0)
        if message is None:
            posted.push(self._acquire_recv(source, tag, ctx, request, buffer))
            if source != constants.ANY_SOURCE:
                self._posted_sources.setdefault(source, {})[(ctx, dst)] = None
            return
        self._bind(message, request, buffer)
        if message.eager:
            if message.delivered:
                self._deliver(message)
            # else: transfer in flight; _on_transfer_done delivers
        else:
            self._start_transfer(message, handshake=True)

    def cancel_recv(self, request: Request) -> None:
        """Remove a not-yet-matched posted receive (MPI_Cancel)."""
        meta = request.meta
        if meta is not None and meta[0] == "recv":
            keys = ((meta[2], request.owner_rank),)
        else:  # request never reached start_recv; search everywhere
            keys = tuple(self._posted)
        for key in keys:
            queue = self._posted.get(key)
            if queue is None:
                continue
            recv = queue.remove_first(lambda r: r.request is request)
            if recv is not None:
                self._release_recv(recv)
                return

    # -- probing (extension beyond the paper's subset) ----------------------------------

    def iprobe(self, dst: int, source: int, tag: int, ctx: int
               ) -> Message | None:
        """Non-destructive check for a matching announced message."""
        _posted, unexpected = self._queues(ctx, dst)
        prof = self.profiler
        if prof is None:
            message = unexpected.peek(source, tag)
        else:
            t0 = perf_counter()
            message = unexpected.peek(source, tag)
            prof.add("match.probe", perf_counter() - t0)
        if message is not None:
            # the application may hold this envelope: never recycle it
            message.probed = True
        return message

    def probe(self, dst: int, source: int, tag: int, ctx: int) -> Message:
        """Block until a matching message is announced; returns it."""
        return run_blocking(self.co_probe(dst, source, tag, ctx),
                            lambda: self.world.current_actor)

    def co_probe(self, dst: int, source: int, tag: int, ctx: int):
        """Generator twin of :meth:`probe` (canonical implementation)."""
        actor = self.world.current_actor
        while True:
            message = self.iprobe(dst, source, tag, ctx)
            if message is not None:
                return message
            waiters = self._probe_waiters.setdefault((ctx, dst), [])
            if actor not in waiters:
                waiters.append(actor)
            yield from actor.co_suspend()

    def _wake_probers(self, ctx: int, dst: int) -> None:
        waiters = self._probe_waiters.pop((ctx, dst), [])
        for actor in waiters:
            self.world.scheduler.wake(actor)

    # -- internals -----------------------------------------------------------------------

    def _release_payload(self, message: Message) -> None:
        """Drop the message's pool reference once its payload was consumed."""
        key, message.payload_key = message.payload_key, None
        if key is not None:
            pool = getattr(self.world, "payload_pool", None)
            if pool is not None:
                pool.release(key)

    def _close_message(self, message: Message) -> None:
        """Terminal point of a message's life: detach and recycle.

        Both endpoint requests are complete here (delivery and terminal
        failure finish them first), so dropping their ``message`` link is
        safe — nothing reads it after completion — and required: a
        recycled envelope must not be reachable from old handles.
        """
        self._release_payload(message)
        message.closed = True
        send_req, recv_req = message.send_req, message.recv_req
        if send_req is not None and send_req.complete \
                and send_req.message is message:
            send_req.message = None
        if recv_req is not None and recv_req.complete \
                and recv_req.message is message:
            recv_req.message = None
        self.world.release_message(message)

    def _bind(self, message: Message, request: Request,
              buffer: BufferSpec | None) -> None:
        message.recv_req = request
        request.message = message
        request.source = message.src
        request.tag = message.tag
        # stash the buffer on the request for delivery time
        request._recv_buffer = buffer

    def _start_transfer(self, message: Message, handshake: bool) -> None:
        world = self.world
        cfg = world.config
        src_host = world.host_of(message.src)
        dst_host = world.host_of(message.dst)
        extra = cfg.send_overhead + cfg.recv_overhead
        route = world.engine.platform.route(src_host, dst_host)
        if message.eager:
            # buffered mode pays extra copies proportional to the payload
            extra += message.nbytes / cfg.eager_copy_bandwidth
        elif handshake:
            extra += cfg.handshake_rtts * 2.0 * route.latency
        rate_cap = math.inf
        if cfg.wire_efficiency < 1.0 and route.links:
            rate_cap = cfg.wire_efficiency * route.bandwidth
        activity = world.scheduler.communicate(
            src_host,
            dst_host,
            max(message.nbytes, 1),
            name=f"msg-{message.mid}:{message.src}->{message.dst}",
            extra_latency=extra,
            rate_cap=rate_cap,
        )
        message.transfer = activity
        message.attempts += 1
        message.handshake = handshake
        if cfg.tracing and message.attempts == 1:
            world.trace.comm_start(message)
        if cfg.comm_timeout is not None:
            self._arm_timeout(message, activity, cfg.comm_timeout)
        if activity.done:
            self._on_transfer_done(message)
        else:
            activity.callbacks.append(lambda: self._on_transfer_done(message))

    def _arm_timeout(self, message: Message, activity, timeout: float) -> None:
        """Cancel the attempt if it is still in flight after ``timeout``."""
        engine = self.world.scheduler.engine
        at = getattr(engine, "at", None)
        if at is None:  # duck-typed kernels without scheduled observers
            return

        def expire() -> None:
            if not activity.done:
                message.timed_out = True
                activity.cancel()

        # fire_on_cancel=False: disarming (cancelling the sleep) must also
        # suppress the callback, so a watchdog cancelled at completion time
        # can never expire a later attempt's activity
        try:
            message.watchdog = at(engine.now + timeout, expire,
                                  fire_on_cancel=False)
        except TypeError:  # duck-typed engines with a 2-arg ``at``
            message.watchdog = at(engine.now + timeout, expire)

    def _disarm_timeout(self, message: Message) -> None:
        """Cancel a still-pending ``comm_timeout`` watchdog, if any."""
        watchdog = message.watchdog
        if watchdog is None:
            return
        message.watchdog = None
        engine = self.world.scheduler.engine
        cancel = getattr(engine, "cancel", None)
        if cancel is not None and getattr(watchdog, "is_pending", False):
            cancel(watchdog)

    def _on_transfer_done(self, message: Message) -> None:
        self._disarm_timeout(message)
        transfer = message.transfer
        if transfer is not None and getattr(transfer, "failed", False):
            self._on_transfer_failed(message)
            return
        message.delivered = True
        if self.world.config.tracing:
            self.world.trace.comm_end(message)
        if message.send_req is not None:
            message.send_req.finish()
        if message.recv_req is not None:
            self._deliver(message)

    def _on_transfer_failed(self, message: Message) -> None:
        """A transfer attempt died (link failure or timeout cancel).

        With retries budgeted, re-issue the transfer after an exponential
        backoff; otherwise surface the error in both ranks.  Runs in
        engine-callback context (no actor holds the baton), exactly like
        the completion path.
        """
        world = self.world
        cfg = world.config
        if message.attempts <= cfg.comm_retries:
            delay = cfg.retry_backoff * (2.0 ** (message.attempts - 1))
            _log.debug(
                "msg %d attempt %d failed; retrying in %g s",
                message.mid, message.attempts, delay,
            )
            message.timed_out = False
            message.transfer = None
            handshake = message.handshake

            def retry() -> None:
                self._start_transfer(message, handshake=handshake)

            at = getattr(world.scheduler.engine, "at", None)
            if at is not None and delay > 0:
                at(world.scheduler.engine.now + delay, retry)
            else:
                retry()
            return
        if cfg.tracing:
            world.trace.comm_fail(message)
        if message.timed_out:
            error = MpiError(
                constants.ERR_OTHER,
                f"message {message.src}->{message.dst} (tag {message.tag}) "
                f"timed out after {message.attempts} attempt(s)",
            )
        else:
            error = MpiError(
                constants.ERR_OTHER,
                f"network failure while transferring message "
                f"{message.src}->{message.dst} (tag {message.tag})",
            )
        for req in (message.send_req, message.recv_req):
            if req is not None:
                req.error_exc = error
                req.finish()
        self._close_message(message)

    def fail_peer(self, rank: int) -> None:
        """Fail every pending operation talking to a now-dead rank.

        Called by the runtime when ``on_host_down="kill-rank"`` terminates
        the ranks of a failed host: receives posted *from* the dead rank
        and unmatched rendezvous sends *to* it complete with
        MPI_ERR_PROC_FAILED in their (live) owner ranks; queues owned by
        the dead rank itself are simply dropped.  Only the queues the
        dead-rank indexes name are touched — a kill at 16k ranks no
        longer walks every queue pair in the world.
        """
        error = MpiError(
            constants.ERR_PROC_FAILED,
            f"peer rank {rank} died (host failure)",
        )
        # receives posted by live ranks naming the dead rank as source
        for key in self._posted_sources.pop(rank, ()):
            if key[1] == rank:
                continue  # the dead rank's own queues are dropped below
            posted = self._posted.get(key)
            if posted is None:
                continue
            while True:
                recv = posted.pop_source(rank)
                if recv is None:
                    break
                recv.request.error_exc = error
                recv.request.finish()
                self._release_recv(recv)
        # the dead rank's own queue pairs
        for key in self._keys_by_dst.get(rank, ()):
            for recv in self._posted[key].drain():
                self._release_recv(recv)
            unexpected = self._unexpected[key]
            while True:  # rendezvous senders still holding their payload
                message = unexpected.pop_if(lambda m: not m.eager)
                if message is None:
                    break
                if message.send_req is not None:
                    message.send_req.error_exc = error
                    message.send_req.finish()
                self._close_message(message)

    def _deliver(self, message: Message) -> None:
        """Copy payload into the receive buffer and complete the recv."""
        request = message.recv_req
        assert request is not None
        if request.complete:
            return
        prof = self.profiler
        t0 = perf_counter() if prof is not None else 0.0
        buffer: BufferSpec | None = request._recv_buffer
        try:
            if int(message.data.size) != message.wire_bytes:
                pass  # zero-copy: payload was never carried (results wrong)
            elif buffer is not None:
                buffer.unpack(message.data)
            else:
                request.raw_data = message.data
        except Exception as exc:  # delivery failure: report in the owner rank
            request.error_exc = exc
        finally:
            # buffered deliveries copied the bytes out; raw-data receives
            # hold their own array reference, so the pool ref can drop
            self._release_payload(message)
        request.received_bytes = message.nbytes
        request.finish()
        self._close_message(message)
        if prof is not None:
            prof.add("pt2pt.deliver", perf_counter() - t0)
