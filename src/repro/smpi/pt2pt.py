"""Point-to-point protocol engine: matching, eager and rendezvous modes.

The protocol follows what the paper observes about real MPI
implementations (section 4.1): below the *eager threshold* a send is
buffered — its transfer starts immediately and the send completes when the
bytes have left, whether or not the receive is posted; above the
threshold the *rendezvous* protocol holds the data until the receive is
posted, paying a handshake round-trip, and both sides complete with the
transfer.  The 64 KiB protocol switch is precisely where the piece-wise
linear model places a segment boundary.

Matching is MPI-conformant: per (context, destination) there is a posted-
receive queue and an unexpected-message queue, both scanned oldest-first;
``ANY_SOURCE``/``ANY_TAG`` wildcards are supported; messages between the
same (source, destination, tag) triple are non-overtaking because queue
order is arrival order.

Everything here runs inside actor threads under the scheduler's baton, so
there is no concurrency to guard against — the code reads like the
sequential protocol automaton it is.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..errors import MpiError
from ..log import get_logger
from ..simix.contexts import run_blocking
from ..simix.mailbox import Mailbox
from . import constants
from .buffer import BufferSpec
from .intern import intern_meta, payload_key
from .request import Request

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .runtime import SmpiWorld

__all__ = ["Message", "Protocol"]

_log = get_logger("smpi.pt2pt")
#: fallback allocator for messages built outside a Protocol (tests);
#: protocol-created messages draw from the per-world sequencer so runs
#: are reproducible within one process and snapshots can restore it
_msg_ids = itertools.count()


@dataclass
class Message:
    """One in-flight message: envelope + payload + protocol state.

    Under ``zero_copy`` the payload is an empty sentinel while
    ``wire_bytes`` still drives the simulated transfer timing.
    """

    src: int  # world rank
    dst: int  # world rank
    tag: int
    ctx: int
    data: np.ndarray  # packed payload bytes (uint8); empty when zero-copy
    eager: bool
    wire_bytes: int = -1
    mid: int = field(default_factory=lambda: next(_msg_ids))
    send_req: Request | None = None
    recv_req: Request | None = None
    #: set when the wire transfer has finished
    delivered: bool = False
    #: the network activity, once started
    transfer: object = None
    #: transfer attempts so far (retry accounting, ``comm_retries``)
    attempts: int = 0
    #: the last attempt was cancelled by the ``comm_timeout`` watchdog
    timed_out: bool = False
    #: the armed watchdog action (``engine.at`` sleep), disarmed on
    #: completion so a stale watchdog can never outlive its transfer
    watchdog: object = None
    #: whether the transfer pays the rendezvous handshake (memoised so
    #: retries reproduce the protocol timing of the original attempt)
    handshake: bool = False
    #: content key of the interned payload (None when the payload was not
    #: interned); released back to the world's pool at delivery/failure
    payload_key: tuple | None = None

    def __post_init__(self) -> None:
        if self.wire_bytes < 0:
            self.wire_bytes = int(self.data.size)

    @property
    def nbytes(self) -> int:
        return self.wire_bytes

    def matches(self, source: int, tag: int) -> bool:
        """Does this message satisfy a recv posted for (source, tag)?"""
        if source != constants.ANY_SOURCE and source != self.src:
            return False
        if tag != constants.ANY_TAG and tag != self.tag:
            return False
        return True


@dataclass
class _PostedRecv:
    """A receive waiting in the posted queue."""

    source: int
    tag: int
    ctx: int
    request: Request
    buffer: BufferSpec | None  # None => raw-bytes receive (object API)


class Protocol:
    """Owns the match queues and drives message life cycles."""

    def __init__(self, world: "SmpiWorld") -> None:
        self.world = world
        # (ctx, dst_world_rank) -> queues
        self._posted: dict[tuple[int, int], Mailbox[_PostedRecv]] = {}
        self._unexpected: dict[tuple[int, int], Mailbox[Message]] = {}
        # actors blocked in Probe, keyed like the queues
        self._probe_waiters: dict[tuple[int, int], list] = {}

    def _queues(
        self, ctx: int, dst: int
    ) -> tuple[Mailbox[_PostedRecv], Mailbox[Message]]:
        key = (ctx, dst)
        posted = self._posted.get(key)
        if posted is None:
            posted = self._posted[key] = Mailbox(f"posted-{key}")
            self._unexpected[key] = Mailbox(f"unexpected-{key}")
        return posted, self._unexpected[key]

    # -- send side ---------------------------------------------------------------------

    def start_send(
        self,
        src: int,
        dst: int,
        tag: int,
        ctx: int,
        data: np.ndarray,
        request: Request,
        wire_bytes: int | None = None,
        mode: str = "standard",
    ) -> None:
        """Initiate a send; the request completes per protocol rules.

        ``wire_bytes`` (zero-copy mode) sets the simulated message size
        when ``data`` is an empty payload sentinel.  ``mode`` selects the
        MPI send mode: ``standard`` follows the eager threshold,
        ``synchronous`` (Ssend) always uses rendezvous, ``buffered``
        (Bsend) always eager, ``ready`` (Rsend) behaves like standard
        (its constraint is on the application, not the timing).
        """
        self.world.flush_deferred()
        if dst in self.world.dead_ranks:
            raise MpiError(
                constants.ERR_PROC_FAILED,
                f"cannot send to rank {dst}: peer is dead (host failure)",
            )
        cfg = self.world.config
        nbytes = int(data.size) if wire_bytes is None else wire_bytes
        if mode == "synchronous":
            eager = False
        elif mode == "buffered":
            eager = True
        else:
            eager = nbytes <= cfg.eager_threshold
        request.meta = intern_meta("send", tag, ctx, nbytes, eager)
        key: tuple | None = None
        pool = getattr(self.world, "payload_pool", None)
        if pool is not None and cfg.payload_interning and data.size:
            # Fold byte-identical payloads: the array becomes pool-owned
            # and read-only (receivers only copy out of it), so 10k ranks
            # sending the same panel share one copy.  ``data`` must be a
            # freshly packed array, which every library call site passes.
            key = payload_key(data)
            local = data

            def freeze() -> np.ndarray:
                local.setflags(write=False)
                return local

            data = pool.acquire(key, freeze, int(local.size))
        message = Message(src, dst, tag, ctx, data, eager,
                          wire_bytes=nbytes, send_req=request,
                          payload_key=key, mid=next(self.world.msg_seq))
        if self.world.recorder is not None:
            request.trace_id = self.world.recorder.send(src, dst, nbytes, tag, ctx)
        request.message = message
        request.source = src
        request.tag = tag

        posted, unexpected = self._queues(ctx, dst)
        recv = posted.pop_first(lambda r: message.matches(r.source, r.tag))
        if recv is not None:
            self._bind(message, recv)
            self._start_transfer(message, handshake=not eager)
        else:
            unexpected.push(message)
            self._wake_probers(ctx, dst)
            if eager:
                # buffered mode: bytes start flowing immediately
                self._start_transfer(message, handshake=False)
            # rendezvous: wait for the receive; only the envelope travelled

    # -- receive side -------------------------------------------------------------------

    def start_recv(
        self,
        dst: int,
        source: int,
        tag: int,
        ctx: int,
        buffer: BufferSpec | None,
        request: Request,
    ) -> None:
        """Post a receive; matches an unexpected message or queues up."""
        self.world.flush_deferred()
        if source != constants.ANY_SOURCE and source in self.world.dead_ranks:
            raise MpiError(
                constants.ERR_PROC_FAILED,
                f"cannot receive from rank {source}: peer is dead "
                f"(host failure)",
            )
        if self.world.recorder is not None:
            request.trace_id = self.world.recorder.recv(dst, source, tag, ctx)
        request.meta = intern_meta(
            "recv", tag, ctx,
            -1 if buffer is None else buffer.descriptor.nbytes,
        )
        posted, unexpected = self._queues(ctx, dst)
        recv = _PostedRecv(source, tag, ctx, request, buffer)
        message = unexpected.pop_first(lambda m: m.matches(source, tag))
        if message is None:
            posted.push(recv)
            return
        self._bind(message, recv)
        if message.eager:
            if message.delivered:
                self._deliver(message)
            # else: transfer in flight; _on_transfer_done delivers
        else:
            self._start_transfer(message, handshake=True)

    def cancel_recv(self, request: Request) -> None:
        """Remove a not-yet-matched posted receive (MPI_Cancel)."""
        for mailbox in self._posted.values():
            if mailbox.pop_first(lambda r: r.request is request) is not None:
                return

    # -- probing (extension beyond the paper's subset) ----------------------------------

    def iprobe(self, dst: int, source: int, tag: int, ctx: int
               ) -> Message | None:
        """Non-destructive check for a matching announced message."""
        _posted, unexpected = self._queues(ctx, dst)
        return unexpected.peek_first(lambda m: m.matches(source, tag))

    def probe(self, dst: int, source: int, tag: int, ctx: int) -> Message:
        """Block until a matching message is announced; returns it."""
        return run_blocking(self.co_probe(dst, source, tag, ctx),
                            lambda: self.world.current_actor)

    def co_probe(self, dst: int, source: int, tag: int, ctx: int):
        """Generator twin of :meth:`probe` (canonical implementation)."""
        actor = self.world.current_actor
        while True:
            message = self.iprobe(dst, source, tag, ctx)
            if message is not None:
                return message
            waiters = self._probe_waiters.setdefault((ctx, dst), [])
            if actor not in waiters:
                waiters.append(actor)
            yield from actor.co_suspend()

    def _wake_probers(self, ctx: int, dst: int) -> None:
        waiters = self._probe_waiters.pop((ctx, dst), [])
        for actor in waiters:
            self.world.scheduler.wake(actor)

    # -- internals -----------------------------------------------------------------------

    def _release_payload(self, message: Message) -> None:
        """Drop the message's pool reference once its payload was consumed."""
        key, message.payload_key = message.payload_key, None
        if key is not None:
            pool = getattr(self.world, "payload_pool", None)
            if pool is not None:
                pool.release(key)

    def _bind(self, message: Message, recv: _PostedRecv) -> None:
        message.recv_req = recv.request
        recv.request.message = message
        recv.request.source = message.src
        recv.request.tag = message.tag
        # stash the buffer on the request for delivery time
        recv.request._recv_buffer = recv.buffer  # type: ignore[attr-defined]

    def _start_transfer(self, message: Message, handshake: bool) -> None:
        world = self.world
        cfg = world.config
        src_host = world.host_of(message.src)
        dst_host = world.host_of(message.dst)
        extra = cfg.send_overhead + cfg.recv_overhead
        route = world.engine.platform.route(src_host, dst_host)
        if message.eager:
            # buffered mode pays extra copies proportional to the payload
            extra += message.nbytes / cfg.eager_copy_bandwidth
        elif handshake:
            extra += cfg.handshake_rtts * 2.0 * route.latency
        rate_cap = math.inf
        if cfg.wire_efficiency < 1.0 and route.links:
            rate_cap = cfg.wire_efficiency * route.bandwidth
        activity = world.scheduler.communicate(
            src_host,
            dst_host,
            max(message.nbytes, 1),
            name=f"msg-{message.mid}:{message.src}->{message.dst}",
            extra_latency=extra,
            rate_cap=rate_cap,
        )
        message.transfer = activity
        message.attempts += 1
        message.handshake = handshake
        if cfg.tracing and message.attempts == 1:
            world.trace.comm_start(message)
        if cfg.comm_timeout is not None:
            self._arm_timeout(message, activity, cfg.comm_timeout)
        if activity.done:
            self._on_transfer_done(message)
        else:
            activity.callbacks.append(lambda: self._on_transfer_done(message))

    def _arm_timeout(self, message: Message, activity, timeout: float) -> None:
        """Cancel the attempt if it is still in flight after ``timeout``."""
        engine = self.world.scheduler.engine
        at = getattr(engine, "at", None)
        if at is None:  # duck-typed kernels without scheduled observers
            return

        def expire() -> None:
            if not activity.done:
                message.timed_out = True
                activity.cancel()

        # fire_on_cancel=False: disarming (cancelling the sleep) must also
        # suppress the callback, so a watchdog cancelled at completion time
        # can never expire a later attempt's activity
        try:
            message.watchdog = at(engine.now + timeout, expire,
                                  fire_on_cancel=False)
        except TypeError:  # duck-typed engines with a 2-arg ``at``
            message.watchdog = at(engine.now + timeout, expire)

    def _disarm_timeout(self, message: Message) -> None:
        """Cancel a still-pending ``comm_timeout`` watchdog, if any."""
        watchdog = message.watchdog
        if watchdog is None:
            return
        message.watchdog = None
        engine = self.world.scheduler.engine
        cancel = getattr(engine, "cancel", None)
        if cancel is not None and getattr(watchdog, "is_pending", False):
            cancel(watchdog)

    def _on_transfer_done(self, message: Message) -> None:
        self._disarm_timeout(message)
        transfer = message.transfer
        if transfer is not None and getattr(transfer, "failed", False):
            self._on_transfer_failed(message)
            return
        message.delivered = True
        if self.world.config.tracing:
            self.world.trace.comm_end(message)
        if message.send_req is not None:
            message.send_req.finish()
        if message.recv_req is not None:
            self._deliver(message)

    def _on_transfer_failed(self, message: Message) -> None:
        """A transfer attempt died (link failure or timeout cancel).

        With retries budgeted, re-issue the transfer after an exponential
        backoff; otherwise surface the error in both ranks.  Runs in
        engine-callback context (no actor holds the baton), exactly like
        the completion path.
        """
        world = self.world
        cfg = world.config
        if message.attempts <= cfg.comm_retries:
            delay = cfg.retry_backoff * (2.0 ** (message.attempts - 1))
            _log.debug(
                "msg %d attempt %d failed; retrying in %g s",
                message.mid, message.attempts, delay,
            )
            message.timed_out = False
            message.transfer = None
            handshake = message.handshake

            def retry() -> None:
                self._start_transfer(message, handshake=handshake)

            at = getattr(world.scheduler.engine, "at", None)
            if at is not None and delay > 0:
                at(world.scheduler.engine.now + delay, retry)
            else:
                retry()
            return
        if cfg.tracing:
            world.trace.comm_fail(message)
        if message.timed_out:
            error = MpiError(
                constants.ERR_OTHER,
                f"message {message.src}->{message.dst} (tag {message.tag}) "
                f"timed out after {message.attempts} attempt(s)",
            )
        else:
            error = MpiError(
                constants.ERR_OTHER,
                f"network failure while transferring message "
                f"{message.src}->{message.dst} (tag {message.tag})",
            )
        for req in (message.send_req, message.recv_req):
            if req is not None:
                req.error_exc = error
                req.finish()
        self._release_payload(message)

    def fail_peer(self, rank: int) -> None:
        """Fail every pending operation talking to a now-dead rank.

        Called by the runtime when ``on_host_down="kill-rank"`` terminates
        the ranks of a failed host: receives posted *from* the dead rank
        and unmatched rendezvous sends *to* it complete with
        MPI_ERR_PROC_FAILED in their (live) owner ranks; queues owned by
        the dead rank itself are simply dropped.
        """
        error = MpiError(
            constants.ERR_PROC_FAILED,
            f"peer rank {rank} died (host failure)",
        )
        for (_ctx, dst), posted in self._posted.items():
            if dst == rank:  # receives posted by the dead rank: drop
                while posted.pop_first(lambda r: True) is not None:
                    pass
                continue
            while True:
                recv = posted.pop_first(lambda r: r.source == rank)
                if recv is None:
                    break
                recv.request.error_exc = error
                recv.request.finish()
        for (_ctx, dst), unexpected in self._unexpected.items():
            if dst != rank:
                continue
            while True:  # rendezvous senders still holding their payload
                message = unexpected.pop_first(lambda m: not m.eager)
                if message is None:
                    break
                if message.send_req is not None:
                    message.send_req.error_exc = error
                    message.send_req.finish()
                self._release_payload(message)

    def _deliver(self, message: Message) -> None:
        """Copy payload into the receive buffer and complete the recv."""
        request = message.recv_req
        assert request is not None
        if request.complete:
            return
        buffer: BufferSpec | None = getattr(request, "_recv_buffer", None)
        try:
            if int(message.data.size) != message.wire_bytes:
                pass  # zero-copy: payload was never carried (results wrong)
            elif buffer is not None:
                buffer.unpack(message.data)
            else:
                request.raw_data = message.data  # type: ignore[attr-defined]
        except Exception as exc:  # delivery failure: report in the owner rank
            request.error_exc = exc
        finally:
            # buffered deliveries copied the bytes out; raw-data receives
            # hold their own array reference, so the pool ref can drop
            self._release_payload(message)
        request.received_bytes = message.nbytes
        request.finish()
