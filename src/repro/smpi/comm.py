"""Communicators: the MPI user-facing object (paper section 5.1).

Follows mpi4py's well-known convention: **upper-case** methods move NumPy
buffers (``Send``, ``Recv``, ``Isend`` ...), **lower-case** methods move
arbitrary picklable Python objects (``send``, ``recv``, ``bcast`` ...).
Collective operations are *not* monolithic: every one dispatches to an
algorithm built from point-to-point messages (:mod:`repro.smpi.coll`), so
collective traffic contends in the simulated network exactly as the paper
prescribes (section 4.2).

Communicator management covers ``Dup``, ``Create``, ``Split`` (an
extension — the paper's subset excludes split), ``Free`` and the group
accessors.  Each communicator owns two context ids: an even one for
point-to-point traffic and the next odd one for collective-internal
traffic, which keeps the two planes from ever matching each other —
the standard MPICH2 trick.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import numpy as np

from ..errors import MpiError
from ..simix.contexts import run_blocking
from . import constants, request as rq
from .constants import IN_PLACE
from .buffer import BufferSpec, pack_object, resolve, unpack_object
from .datatype import BYTE
from .group import Group
from .op import Op, SUM
from .request import PersistentRequest, Request
from .status import Status

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .runtime import SmpiWorld

__all__ = ["Communicator", "CoCommunicator"]

#: shared sentinel for zero-copy sends (never read)
_EMPTY_PAYLOAD = np.zeros(0, dtype=np.uint8)


class Communicator:
    """A process group plus an isolated communication context."""

    def __init__(self, world: "SmpiWorld", group: Group, ctx: int, name: str = ""):
        self.world = world
        self.group = group
        self.ctx = ctx  # even: pt2pt plane; ctx+1: collective plane
        self.name = name or f"comm-{ctx}"
        self.freed = False

    # -- identity -------------------------------------------------------------------

    def Get_size(self) -> int:
        return self.group.size

    @property
    def size(self) -> int:
        return self.group.size

    def Get_rank(self) -> int:
        """Rank of the *calling* actor in this communicator."""
        return self.group.rank_of(self.world.current_rank)

    @property
    def rank(self) -> int:
        return self.Get_rank()

    def Get_group(self) -> Group:
        return self.group

    def _check(self) -> None:
        if self.freed:
            raise MpiError(constants.ERR_COMM, f"{self.name} was freed")

    def _world_rank(self, local: int, what: str = "rank") -> int:
        if local == constants.PROC_NULL:
            return constants.PROC_NULL
        if not 0 <= local < self.group.size:
            raise MpiError(
                constants.ERR_RANK,
                f"{what} {local} out of range [0,{self.group.size}) in {self.name}",
            )
        return self.group.world_rank(local)

    def _check_tag(self, tag: int, allow_any: bool) -> None:
        if tag == constants.ANY_TAG:
            if allow_any:
                return
            raise MpiError(constants.ERR_TAG, "ANY_TAG is only valid for receives")
        if not 0 <= tag <= constants.TAG_UB:
            raise MpiError(constants.ERR_TAG, f"tag {tag} out of range")

    def _run(self, gen):
        """Drive a canonical ``_co_*`` generator to completion (sync dialect)."""
        return run_blocking(gen, lambda: self.world.current_actor)

    @property
    def co(self) -> "CoCommunicator":
        """Generator-dialect view: ``yield from comm.co.Send(...)``.

        Every blocking method of the communicator has a generator twin
        reachable through this view; nonblocking calls (``Isend`` & co)
        need no twin and stay on the communicator itself.
        """
        return CoCommunicator(self)

    # =====================================================================
    # point-to-point, buffer flavour
    # =====================================================================

    def Isend(self, buf: Any, dest: int, tag: int = 0,
              _ctx: int | None = None, _mode: str = "standard") -> Request:
        """Nonblocking buffered/rendezvous send of a NumPy buffer."""
        self._check()
        self._check_tag(tag, allow_any=False)
        dst_world = self._world_rank(dest, "destination")
        me = self.Get_rank()
        req = self.world.acquire_request("send", self.group.world_rank(me))
        if dst_world == constants.PROC_NULL:
            req.finish()
            return req
        spec = resolve(buf)
        if self.world.config.zero_copy:
            data, wire = _EMPTY_PAYLOAD, spec.nbytes
        else:
            data, wire = spec.pack(), None
        self.world.protocol.start_send(
            src=self.group.world_rank(me),
            dst=dst_world,
            tag=tag,
            ctx=self.ctx if _ctx is None else _ctx,
            data=data,
            request=req,
            wire_bytes=wire,
            mode=_mode,
        )
        return req

    # -- explicit send modes (MPI_Ssend/Bsend/Rsend family) -------------------------

    def Issend(self, buf: Any, dest: int, tag: int = 0) -> Request:
        """Nonblocking synchronous send: always rendezvous — completes
        only once the matching receive is posted, whatever the size."""
        return self.Isend(buf, dest, tag, _mode="synchronous")

    def Ssend(self, buf: Any, dest: int, tag: int = 0) -> None:
        self._run(self._co_Ssend(buf, dest, tag))

    def _co_Ssend(self, buf: Any, dest: int, tag: int = 0):
        req = self.Issend(buf, dest, tag)
        got = yield from rq.co_wait(req)
        self.world.release_request(req)
        return got

    def Ibsend(self, buf: Any, dest: int, tag: int = 0) -> Request:
        """Nonblocking buffered send: always eager, never waits for the
        receiver (the attach-buffer bookkeeping of MPI_Bsend is implicit —
        simulated buffering is unbounded)."""
        return self.Isend(buf, dest, tag, _mode="buffered")

    def Bsend(self, buf: Any, dest: int, tag: int = 0) -> None:
        self._run(self._co_Bsend(buf, dest, tag))

    def _co_Bsend(self, buf: Any, dest: int, tag: int = 0):
        req = self.Ibsend(buf, dest, tag)
        got = yield from rq.co_wait(req)
        self.world.release_request(req)
        return got

    def Irsend(self, buf: Any, dest: int, tag: int = 0) -> Request:
        """Ready send: timing-wise a standard send (the "receive must be
        posted" obligation is on the application, per the standard)."""
        return self.Isend(buf, dest, tag, _mode="ready")

    def Rsend(self, buf: Any, dest: int, tag: int = 0) -> None:
        self._run(self._co_Rsend(buf, dest, tag))

    def _co_Rsend(self, buf: Any, dest: int, tag: int = 0):
        req = self.Irsend(buf, dest, tag)
        got = yield from rq.co_wait(req)
        self.world.release_request(req)
        return got

    def Irecv(
        self,
        buf: Any,
        source: int = constants.ANY_SOURCE,
        tag: int = constants.ANY_TAG,
        _ctx: int | None = None,
    ) -> Request:
        """Nonblocking receive into a NumPy buffer."""
        self._check()
        self._check_tag(tag, allow_any=True)
        me_world = self.group.world_rank(self.Get_rank())
        req = self.world.acquire_request("recv", me_world)
        if source == constants.PROC_NULL:
            req.finish()
            return req
        src_world = (
            constants.ANY_SOURCE
            if source == constants.ANY_SOURCE
            else self._world_rank(source, "source")
        )
        spec = resolve(buf)
        self.world.protocol.start_recv(
            dst=me_world,
            source=src_world,
            tag=tag,
            ctx=self.ctx if _ctx is None else _ctx,
            buffer=spec,
            request=req,
        )
        # translate the world-rank source back at completion
        req.add_completion_hook(lambda: self._localise_source(req))
        return req

    def _localise_source(self, req: Request) -> None:
        if req.source >= 0:
            req.source = self.group.rank_of(req.source)

    def Send(self, buf: Any, dest: int, tag: int = 0) -> None:
        """Blocking send (eager below the threshold, rendezvous above)."""
        self._run(self._co_Send(buf, dest, tag))

    def _co_Send(self, buf: Any, dest: int, tag: int = 0):
        # a real generator (not a co_wait pass-through) so the completed
        # request can go back to the world's free list
        req = self.Isend(buf, dest, tag)
        got = yield from rq.co_wait(req)
        self.world.release_request(req)
        return got

    def Recv(
        self,
        buf: Any,
        source: int = constants.ANY_SOURCE,
        tag: int = constants.ANY_TAG,
        status: Status | None = None,
    ) -> None:
        """Blocking receive."""
        self._run(self._co_Recv(buf, source, tag, status))

    def _co_Recv(
        self,
        buf: Any,
        source: int = constants.ANY_SOURCE,
        tag: int = constants.ANY_TAG,
        status: Status | None = None,
    ):
        req = self.Irecv(buf, source, tag)
        got = yield from rq.co_wait(req)
        if status is not None:
            status.source = got.source
            status.tag = got.tag
            status.error = got.error
            status.count_bytes = got.count_bytes
        self.world.release_request(req)

    def Sendrecv(
        self,
        sendbuf: Any,
        dest: int,
        sendtag: int = 0,
        recvbuf: Any = None,
        source: int = constants.ANY_SOURCE,
        recvtag: int = constants.ANY_TAG,
        status: Status | None = None,
    ) -> None:
        """Simultaneous send and receive (deadlock-free by construction)."""
        self._run(self._co_Sendrecv(
            sendbuf, dest, sendtag, recvbuf, source, recvtag, status
        ))

    def _co_Sendrecv(
        self,
        sendbuf: Any,
        dest: int,
        sendtag: int = 0,
        recvbuf: Any = None,
        source: int = constants.ANY_SOURCE,
        recvtag: int = constants.ANY_TAG,
        status: Status | None = None,
    ):
        recv_req = self.Irecv(recvbuf, source, recvtag)
        send_req = self.Isend(sendbuf, dest, sendtag)
        yield from rq.co_waitall([recv_req, send_req])
        if status is not None:
            got = recv_req.make_status()
            status.source = got.source
            status.tag = got.tag
            status.count_bytes = got.count_bytes
        self.world.release_request(recv_req)
        self.world.release_request(send_req)

    def Iprobe(
        self,
        source: int = constants.ANY_SOURCE,
        tag: int = constants.ANY_TAG,
        status: Status | None = None,
    ) -> bool:
        """MPI_Iprobe (extension): has a matching message been announced?

        Costs one test-poll of simulated time, like MPI_Test, so Iprobe
        spin-loops cannot stall the simulated clock.
        """
        return self._run(self._co_Iprobe(source, tag, status))

    def _co_Iprobe(
        self,
        source: int = constants.ANY_SOURCE,
        tag: int = constants.ANY_TAG,
        status: Status | None = None,
    ):
        self._check()
        me_world = self.group.world_rank(self.Get_rank())
        src_world = (
            constants.ANY_SOURCE
            if source == constants.ANY_SOURCE
            else self._world_rank(source, "source")
        )
        message = self.world.protocol.iprobe(me_world, src_world, tag, self.ctx)
        if message is None:
            yield from self.world.co_tiny_progress()
            message = self.world.protocol.iprobe(me_world, src_world, tag, self.ctx)
        if message is None:
            return False
        if status is not None:
            status.source = self.group.rank_of(message.src)
            status.tag = message.tag
            status.count_bytes = message.nbytes
        return True

    def Probe(
        self,
        source: int = constants.ANY_SOURCE,
        tag: int = constants.ANY_TAG,
        status: Status | None = None,
    ) -> None:
        """MPI_Probe (extension): block until a matching message arrives."""
        self._run(self._co_Probe(source, tag, status))

    def _co_Probe(
        self,
        source: int = constants.ANY_SOURCE,
        tag: int = constants.ANY_TAG,
        status: Status | None = None,
    ):
        self._check()
        me_world = self.group.world_rank(self.Get_rank())
        src_world = (
            constants.ANY_SOURCE
            if source == constants.ANY_SOURCE
            else self._world_rank(source, "source")
        )
        message = yield from self.world.protocol.co_probe(
            me_world, src_world, tag, self.ctx
        )
        if status is not None:
            status.source = self.group.rank_of(message.src)
            status.tag = message.tag
            status.count_bytes = message.nbytes

    # -- persistent requests -------------------------------------------------------------

    def Send_init(self, buf: Any, dest: int, tag: int = 0) -> PersistentRequest:
        """MPI_Send_init: build a reusable send request (paper list)."""
        self._check()
        me_world = self.group.world_rank(self.Get_rank())
        return PersistentRequest(
            self.world, "send", me_world, lambda: self.Isend(buf, dest, tag)
        )

    def Recv_init(
        self,
        buf: Any,
        source: int = constants.ANY_SOURCE,
        tag: int = constants.ANY_TAG,
    ) -> PersistentRequest:
        """MPI_Recv_init: build a reusable receive request."""
        self._check()
        me_world = self.group.world_rank(self.Get_rank())
        return PersistentRequest(
            self.world, "recv", me_world, lambda: self.Irecv(buf, source, tag)
        )

    # =====================================================================
    # point-to-point, generic-object flavour (pickle, mpi4py-style)
    # =====================================================================

    def isend(self, obj: Any, dest: int, tag: int = 0,
              _ctx: int | None = None) -> Request:
        self._check()
        if _ctx is None:
            self._check_tag(tag, allow_any=False)
        me_world = self.group.world_rank(self.Get_rank())
        dst_world = self._world_rank(dest, "destination")
        req = self.world.acquire_request("send", me_world)
        if dst_world == constants.PROC_NULL:
            req.finish()
            return req
        spec = pack_object(obj)
        self.world.protocol.start_send(
            src=me_world, dst=dst_world, tag=tag,
            ctx=self.ctx if _ctx is None else _ctx,
            data=spec.pack(), request=req,
        )
        return req

    def irecv(
        self, source: int = constants.ANY_SOURCE, tag: int = constants.ANY_TAG,
        _ctx: int | None = None,
    ) -> Request:
        """Object receive; the object comes back from ``wait``-side helpers."""
        self._check()
        if _ctx is None:
            self._check_tag(tag, allow_any=True)
        me_world = self.group.world_rank(self.Get_rank())
        req = self.world.acquire_request("recv", me_world)
        if source == constants.PROC_NULL:
            req.finish()
            return req
        src_world = (
            constants.ANY_SOURCE
            if source == constants.ANY_SOURCE
            else self._world_rank(source, "source")
        )
        self.world.protocol.start_recv(
            dst=me_world, source=src_world, tag=tag,
            ctx=self.ctx if _ctx is None else _ctx,
            buffer=None, request=req,
        )
        req.add_completion_hook(lambda: self._localise_source(req))
        return req

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        self._run(self._co_send(obj, dest, tag))

    def _co_send(self, obj: Any, dest: int, tag: int = 0):
        req = self.isend(obj, dest, tag)
        got = yield from rq.co_wait(req)
        self.world.release_request(req)
        return got

    def recv(
        self,
        source: int = constants.ANY_SOURCE,
        tag: int = constants.ANY_TAG,
        status: Status | None = None,
    ) -> Any:
        return self._run(self._co_recv(source, tag, status))

    def _co_recv(
        self,
        source: int = constants.ANY_SOURCE,
        tag: int = constants.ANY_TAG,
        status: Status | None = None,
    ):
        req = self.irecv(source, tag)
        got = yield from rq.co_wait(req)
        if status is not None:
            status.source = got.source
            status.tag = got.tag
            status.count_bytes = got.count_bytes
        raw = req.raw_data  # consume before the request goes back to the pool
        self.world.release_request(req)
        return unpack_object(raw) if raw is not None else None

    def sendrecv(self, obj: Any, dest: int, sendtag: int = 0,
                 source: int = constants.ANY_SOURCE,
                 recvtag: int = constants.ANY_TAG) -> Any:
        return self._run(self._co_sendrecv(obj, dest, sendtag, source, recvtag))

    def _co_sendrecv(self, obj: Any, dest: int, sendtag: int = 0,
                     source: int = constants.ANY_SOURCE,
                     recvtag: int = constants.ANY_TAG):
        recv_req = self.irecv(source, recvtag)
        send_req = self.isend(obj, dest, sendtag)
        yield from rq.co_waitall([recv_req, send_req])
        raw = recv_req.raw_data
        self.world.release_request(recv_req)
        self.world.release_request(send_req)
        return unpack_object(raw) if raw is not None else None

    # =====================================================================
    # collectives (implemented over point-to-point in repro.smpi.coll)
    # =====================================================================

    def _coll(self):
        from . import coll

        return coll

    def Barrier(self) -> None:
        self._check()
        self._run(self._co_Barrier())

    def _co_Barrier(self):
        self._check()
        return self._coll().barrier(self)

    def Bcast(self, buf: Any, root: int = 0) -> None:
        self._check()
        self._run(self._co_Bcast(buf, root))

    def _co_Bcast(self, buf: Any, root: int = 0):
        self._check()
        return self._coll().bcast(self, resolve(buf), self._check_root(root))

    def _inplace_block(self, recvbuf: Any, block_rank: int) -> BufferSpec:
        """A view of ``recvbuf``'s per-rank block (IN_PLACE helpers)."""
        spec = resolve(recvbuf)
        chunk = spec.count // self.group.size
        flat = np.asarray(spec.array).reshape(-1)
        view = flat[block_rank * chunk : (block_rank + 1) * chunk]
        return resolve([view, chunk, spec.datatype])

    def Scatter(self, sendbuf: Any, recvbuf: Any, root: int = 0) -> None:
        self._check()
        root = self._check_root(root)
        if recvbuf is IN_PLACE:
            if self.Get_rank() != root:
                raise MpiError(
                    constants.ERR_BUFFER, "IN_PLACE recv only valid at the root"
                )
            recvbuf = self._inplace_block(sendbuf, root).array
        self._run(self._coll().scatter(self, sendbuf, resolve(recvbuf), root))

    def _co_Scatter(self, sendbuf: Any, recvbuf: Any, root: int = 0):
        self._check()
        root = self._check_root(root)
        if recvbuf is IN_PLACE:
            if self.Get_rank() != root:
                raise MpiError(
                    constants.ERR_BUFFER, "IN_PLACE recv only valid at the root"
                )
            recvbuf = self._inplace_block(sendbuf, root).array
        return self._coll().scatter(self, sendbuf, resolve(recvbuf), root)

    def Scatterv(
        self, sendbuf: Any, counts: list[int], displs: list[int],
        recvbuf: Any, root: int = 0,
    ) -> None:
        self._check()
        self._run(self._coll().scatterv(
            self, sendbuf, list(counts), list(displs), resolve(recvbuf),
            self._check_root(root),
        ))

    def _co_Scatterv(self, sendbuf: Any, counts: list[int], displs: list[int],
                     recvbuf: Any, root: int = 0):
        self._check()
        return self._coll().scatterv(
            self, sendbuf, list(counts), list(displs), resolve(recvbuf),
            self._check_root(root),
        )

    def Gather(self, sendbuf: Any, recvbuf: Any, root: int = 0) -> None:
        self._check()
        root = self._check_root(root)
        if sendbuf is IN_PLACE:
            if self.Get_rank() != root:
                raise MpiError(
                    constants.ERR_BUFFER, "IN_PLACE send only valid at the root"
                )
            sendbuf = self._inplace_block(recvbuf, root).array
        spec = None if recvbuf is None else resolve(recvbuf)
        self._run(self._coll().gather(self, resolve(sendbuf), spec, root))

    def _co_Gather(self, sendbuf: Any, recvbuf: Any, root: int = 0):
        self._check()
        root = self._check_root(root)
        if sendbuf is IN_PLACE:
            if self.Get_rank() != root:
                raise MpiError(
                    constants.ERR_BUFFER, "IN_PLACE send only valid at the root"
                )
            sendbuf = self._inplace_block(recvbuf, root).array
        spec = None if recvbuf is None else resolve(recvbuf)
        return self._coll().gather(self, resolve(sendbuf), spec, root)

    def Gatherv(
        self, sendbuf: Any, recvbuf: Any, counts: list[int], displs: list[int],
        root: int = 0,
    ) -> None:
        self._check()
        spec = None if recvbuf is None else resolve(recvbuf)
        self._run(self._coll().gatherv(
            self, resolve(sendbuf), spec, list(counts), list(displs),
            self._check_root(root),
        ))

    def _co_Gatherv(self, sendbuf: Any, recvbuf: Any, counts: list[int],
                    displs: list[int], root: int = 0):
        self._check()
        spec = None if recvbuf is None else resolve(recvbuf)
        return self._coll().gatherv(
            self, resolve(sendbuf), spec, list(counts), list(displs),
            self._check_root(root),
        )

    def Allgather(self, sendbuf: Any, recvbuf: Any) -> None:
        self._check()
        if sendbuf is IN_PLACE:
            sendbuf = self._inplace_block(recvbuf, self.Get_rank()).array
        self._run(self._coll().allgather(self, resolve(sendbuf), resolve(recvbuf)))

    def _co_Allgather(self, sendbuf: Any, recvbuf: Any):
        self._check()
        if sendbuf is IN_PLACE:
            sendbuf = self._inplace_block(recvbuf, self.Get_rank()).array
        return self._coll().allgather(self, resolve(sendbuf), resolve(recvbuf))

    def Allgatherv(
        self, sendbuf: Any, recvbuf: Any, counts: list[int], displs: list[int]
    ) -> None:
        self._check()
        self._run(self._coll().allgatherv(
            self, resolve(sendbuf), resolve(recvbuf), list(counts), list(displs)
        ))

    def _co_Allgatherv(self, sendbuf: Any, recvbuf: Any, counts: list[int],
                       displs: list[int]):
        self._check()
        return self._coll().allgatherv(
            self, resolve(sendbuf), resolve(recvbuf), list(counts), list(displs)
        )

    def Reduce(self, sendbuf: Any, recvbuf: Any, op: Op = SUM, root: int = 0) -> None:
        self._check()
        root = self._check_root(root)
        if sendbuf is IN_PLACE:
            if self.Get_rank() != root:
                raise MpiError(
                    constants.ERR_BUFFER, "IN_PLACE send only valid at the root"
                )
            sendbuf = recvbuf
        spec = None if recvbuf is None else resolve(recvbuf)
        self._run(self._coll().reduce(self, resolve(sendbuf), spec, op, root))

    def _co_Reduce(self, sendbuf: Any, recvbuf: Any, op: Op = SUM, root: int = 0):
        self._check()
        root = self._check_root(root)
        if sendbuf is IN_PLACE:
            if self.Get_rank() != root:
                raise MpiError(
                    constants.ERR_BUFFER, "IN_PLACE send only valid at the root"
                )
            sendbuf = recvbuf
        spec = None if recvbuf is None else resolve(recvbuf)
        return self._coll().reduce(self, resolve(sendbuf), spec, op, root)

    def Allreduce(self, sendbuf: Any, recvbuf: Any, op: Op = SUM) -> None:
        self._check()
        if sendbuf is IN_PLACE:
            sendbuf = recvbuf
        self._run(self._coll().allreduce(self, resolve(sendbuf), resolve(recvbuf), op))

    def _co_Allreduce(self, sendbuf: Any, recvbuf: Any, op: Op = SUM):
        self._check()
        if sendbuf is IN_PLACE:
            sendbuf = recvbuf
        return self._coll().allreduce(self, resolve(sendbuf), resolve(recvbuf), op)

    def Scan(self, sendbuf: Any, recvbuf: Any, op: Op = SUM) -> None:
        self._check()
        self._run(self._coll().scan(self, resolve(sendbuf), resolve(recvbuf), op))

    def _co_Scan(self, sendbuf: Any, recvbuf: Any, op: Op = SUM):
        self._check()
        return self._coll().scan(self, resolve(sendbuf), resolve(recvbuf), op)

    def Exscan(self, sendbuf: Any, recvbuf: Any, op: Op = SUM) -> None:
        self._check()
        self._run(self._coll().exscan(self, resolve(sendbuf), resolve(recvbuf), op))

    def _co_Exscan(self, sendbuf: Any, recvbuf: Any, op: Op = SUM):
        self._check()
        return self._coll().exscan(self, resolve(sendbuf), resolve(recvbuf), op)

    def Reduce_scatter(self, sendbuf: Any, recvbuf: Any, counts: list[int],
                       op: Op = SUM) -> None:
        self._check()
        self._run(self._coll().reduce_scatter(
            self, resolve(sendbuf), resolve(recvbuf), list(counts), op
        ))

    def _co_Reduce_scatter(self, sendbuf: Any, recvbuf: Any, counts: list[int],
                           op: Op = SUM):
        self._check()
        return self._coll().reduce_scatter(
            self, resolve(sendbuf), resolve(recvbuf), list(counts), op
        )

    def Alltoall(self, sendbuf: Any, recvbuf: Any) -> None:
        self._check()
        self._run(self._coll().alltoall(self, resolve(sendbuf), resolve(recvbuf)))

    def _co_Alltoall(self, sendbuf: Any, recvbuf: Any):
        self._check()
        return self._coll().alltoall(self, resolve(sendbuf), resolve(recvbuf))

    def Alltoallv(
        self, sendbuf: Any, sendcounts: list[int], sdispls: list[int],
        recvbuf: Any, recvcounts: list[int], rdispls: list[int],
    ) -> None:
        self._check()
        self._run(self._coll().alltoallv(
            self, resolve(sendbuf), list(sendcounts), list(sdispls),
            resolve(recvbuf), list(recvcounts), list(rdispls),
        ))

    def _co_Alltoallv(self, sendbuf: Any, sendcounts: list[int],
                      sdispls: list[int], recvbuf: Any, recvcounts: list[int],
                      rdispls: list[int]):
        self._check()
        return self._coll().alltoallv(
            self, resolve(sendbuf), list(sendcounts), list(sdispls),
            resolve(recvbuf), list(recvcounts), list(rdispls),
        )

    def _check_root(self, root: int) -> int:
        if not 0 <= root < self.group.size:
            raise MpiError(constants.ERR_ROOT, f"root {root} out of range")
        return root

    # -- object-flavour collectives --------------------------------------------------

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Broadcast a picklable object; returns it on every rank."""
        self._check()
        return self._run(self._co_bcast(obj, root))

    def _co_bcast(self, obj: Any, root: int = 0):
        self._check()
        return self._coll().bcast_object(self, obj, self._check_root(root))

    def scatter(self, objs: list[Any] | None, root: int = 0) -> Any:
        self._check()
        return self._run(self._co_scatter(objs, root))

    def _co_scatter(self, objs: list[Any] | None, root: int = 0):
        self._check()
        return self._coll().scatter_object(self, objs, self._check_root(root))

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        self._check()
        return self._run(self._co_gather(obj, root))

    def _co_gather(self, obj: Any, root: int = 0):
        self._check()
        return self._coll().gather_object(self, obj, self._check_root(root))

    def allgather(self, obj: Any) -> list[Any]:
        self._check()
        return self._run(self._co_allgather(obj))

    def _co_allgather(self, obj: Any):
        self._check()
        return self._coll().allgather_object(self, obj)

    def alltoall(self, objs: list[Any]) -> list[Any]:
        self._check()
        return self._run(self._co_alltoall(objs))

    def _co_alltoall(self, objs: list[Any]):
        self._check()
        return self._coll().alltoall_object(self, objs)

    def reduce(self, obj: Any, op=None, root: int = 0) -> Any:
        """Object reduce with a Python callable (default: +)."""
        self._check()
        return self._run(self._co_reduce(obj, op, root))

    def _co_reduce(self, obj: Any, op=None, root: int = 0):
        self._check()
        return self._coll().reduce_object(self, obj, op, self._check_root(root))

    def allreduce(self, obj: Any, op=None) -> Any:
        self._check()
        return self._run(self._co_allreduce(obj, op))

    def _co_allreduce(self, obj: Any, op=None):
        self._check()
        return self._coll().allreduce_object(self, obj, op)

    def barrier(self) -> None:
        self.Barrier()

    def _co_barrier(self):
        return self._co_Barrier()

    # =====================================================================
    # communicator management
    # =====================================================================

    def Dup(self) -> "Communicator":
        """MPI_Comm_dup: same group, fresh agreed-upon context (collective)."""
        self._check()
        token = self.world.comm_token("dup", self.ctx)
        return self.world.new_communicator(self.group, f"{self.name}+dup", token)

    def Create(self, group: Group) -> "Communicator | None":
        """MPI_Comm_create: new communicator over a subgroup (collective).

        Returns None on ranks outside ``group`` (MPI_COMM_NULL).
        """
        self._check()
        for world_rank in group.ranks:
            if not self.group.contains(world_rank):
                raise MpiError(
                    constants.ERR_GROUP,
                    "Comm_create group must be a subset of the communicator",
                )
        token = self.world.comm_token("create", self.ctx)
        new = self.world.new_communicator(group, f"{self.name}+create", token)
        if not group.contains(self.world.current_rank):
            return None
        return new

    def Split(self, color: int, key: int = 0) -> "Communicator | None":
        """MPI_Comm_split — an extension over the paper's subset.

        All ranks of the communicator must call; ranks sharing a ``color``
        end up in the same new communicator, ordered by ``key`` then by
        original rank.  ``color = UNDEFINED`` opts out (returns None).
        """
        return self._run(self._co_Split(color, key))

    def _co_Split(self, color: int, key: int = 0):
        self._check()
        me = self.Get_rank()
        contributions = yield from self._coll().allgather_object(
            self, (color, key, me)
        )
        token = self.world.comm_token("split", self.ctx, extra=color)
        if color == constants.UNDEFINED:
            return None
        members = sorted((k, r) for (c, k, r) in contributions if c == color)
        group = Group(tuple(self.group.world_rank(r) for _, r in members))
        return self.world.new_communicator(
            group, f"{self.name}+split({color})", token
        )

    def Split_type(self, kind: str = "shared", key: int = 0) -> "Communicator":
        """MPI_Comm_split_type-flavoured topology split (collective).

        ``kind`` picks the grouping granularity:

        * ``"shared"`` — ranks placed on the same *host* end up together
          (the MPI_COMM_TYPE_SHARED behaviour);
        * ``"cabinet"`` — ranks whose hosts hang off the same cabinet
          switch end up together.  Cabinet membership comes from the
          host's ``group`` label, which the hierarchical platform
          builders set; hosts without one fall back to grouping by host
          name, so the split degrades to ``"shared"`` on flat clusters.

        Every rank receives a communicator (no UNDEFINED opt-out), with
        members ordered by ``key`` then original rank, as in ``Split``.
        """
        return self._run(self._co_Split_type(kind, key))

    def _co_Split_type(self, kind: str = "shared", key: int = 0):
        """Generator twin of :meth:`Split_type`."""
        self._check()
        color = self._split_type_color(kind)
        return (yield from self._co_Split(color, key))

    def _split_type_color(self, kind: str) -> int:
        """Dense split color of the calling rank for a topology ``kind``.

        Simulator state is global, so every rank derives the identical
        label→color mapping locally (first-appearance order over the
        communicator's ranks) without exchanging messages; the collective
        agreement still happens inside :meth:`Split`'s allgather.
        """
        if kind not in ("shared", "cabinet"):
            raise MpiError(
                constants.ERR_ARG,
                f"unknown split type {kind!r}; expected 'shared' or 'cabinet'",
            )
        platform = self.world.engine.platform

        def label(world_rank: int) -> str:
            hostname = self.world.host_of(world_rank)
            if kind == "shared":
                return hostname
            group = getattr(platform.host(hostname), "group", None)
            return group if group is not None else hostname

        colors: dict[str, int] = {}
        for world_rank in self.group.ranks:
            colors.setdefault(label(world_rank), len(colors))
        return colors[label(self.group.world_rank(self.Get_rank()))]

    def Free(self) -> None:
        """MPI_Comm_free: mark unusable (the world forgets it)."""
        self.freed = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Communicator({self.name!r}, size={self.group.size})"


#: blocking operations exposed through the :attr:`Communicator.co` view
_CO_OPS = frozenset({
    "Ssend", "Bsend", "Rsend", "Send", "Recv", "Sendrecv",
    "Iprobe", "Probe", "send", "recv", "sendrecv",
    "Barrier", "Bcast", "Scatter", "Scatterv", "Gather", "Gatherv",
    "Allgather", "Allgatherv", "Reduce", "Allreduce", "Scan", "Exscan",
    "Reduce_scatter", "Alltoall", "Alltoallv",
    "bcast", "scatter", "gather", "allgather", "alltoall",
    "reduce", "allreduce", "barrier", "Split", "Split_type",
})


class CoCommunicator:
    """Generator-dialect twin of :class:`Communicator` (see ``comm.co``).

    ``comm.co.<op>(...)`` returns the canonical generator that the plain
    blocking method drives, so generator-dialect applications write
    ``yield from comm.co.Recv(buf)`` and suspend cooperatively instead of
    blocking an execution context in-stack.  Only the blocking subset is
    exposed; nonblocking operations (``Isend``, ``Irecv``, ...) never
    suspend and remain on the communicator itself.
    """

    __slots__ = ("_comm",)

    def __init__(self, comm: Communicator):
        self._comm = comm

    def __getattr__(self, name: str):
        if name not in _CO_OPS:
            raise AttributeError(
                f"{name!r} has no generator twin (nonblocking calls live on "
                f"the Communicator itself)"
            )
        return getattr(self._comm, "_co_" + name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CoCommunicator({self._comm.name!r})"
