"""Gather algorithms: binomial tree (MPICH2 default) and linear.

Binomial gather is the mirror image of the binomial scatter of Fig. 6:
leaves push their chunk to their parent, interior nodes accumulate the
chunks of their whole subtree before forwarding, and the root ends up
with everything.  Gatherv uses the linear schedule, like MPICH2.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ...errors import MpiError
from .. import constants
from ..buffer import BufferSpec
from .util import (base_dtype, co_complete, co_recv_view, co_send_view,
                   elements_of, flat_view, irecv_view)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..comm import Communicator

__all__ = ["gather_binomial", "gather_linear", "gatherv_linear"]


def _scatter_root_order(recv_flat: np.ndarray, held: np.ndarray, chunk: int,
                        size: int, root: int) -> None:
    """Un-rotate relative-rank chunk order into communicator-rank order."""
    shift = root * chunk
    total = size * chunk
    if shift == 0:
        recv_flat[:total] = held
    else:
        recv_flat[shift:total] = held[: total - shift]
        recv_flat[:shift] = held[total - shift :]


def gather_binomial(
    comm: "Communicator", sendspec: BufferSpec, recvspec: BufferSpec | None,
    root: int,
) -> None:
    """Binomial-tree gather (mirror of the Fig. 6 scatter tree)."""
    size = comm.size
    rank = comm.Get_rank()
    relative = (rank - root) % size
    chunk = elements_of(sendspec)
    dtype = base_dtype(sendspec)

    if rank == root and recvspec is None:
        raise MpiError(constants.ERR_BUFFER, "gather root needs a receive buffer")

    if size == 1:
        assert recvspec is not None
        flat_view(recvspec)[:chunk] = flat_view(sendspec)[:chunk]
        return

    # ``held`` accumulates the chunks of my subtree, relative order,
    # starting with my own chunk at offset 0.
    n_subtree = _subtree_size(relative, size)
    held = np.empty(n_subtree * chunk, dtype=dtype.np_dtype)
    held[:chunk] = flat_view(sendspec)[:chunk]

    mask = 1
    filled = 1  # chunks present in ``held``
    while mask < size:
        if relative & mask:
            parent = (relative - mask + root) % size
            yield from co_send_view(
                comm, held, 0, filled * chunk, parent, "gather"
            )
            break
        child_rel = relative + mask
        if child_rel < size:
            n_child = min(mask, size - child_rel)
            yield from co_recv_view(
                comm, held, mask * chunk, n_child * chunk,
                (child_rel + root) % size, "gather",
            )
            filled = mask + n_child
        mask <<= 1

    if relative == 0:
        assert recvspec is not None
        recv_flat = flat_view(recvspec)
        if recv_flat.size < size * chunk:
            raise MpiError(constants.ERR_COUNT, "gather recv buffer too small")
        _scatter_root_order(recv_flat, held, chunk, size, root)


def _subtree_size(relative: int, size: int) -> int:
    """Chunks rank ``relative`` accumulates in the binomial gather tree."""
    if relative == 0:
        return size
    lowbit = relative & (-relative)
    return min(lowbit, size - relative)


def gather_linear(
    comm: "Communicator", sendspec: BufferSpec, recvspec: BufferSpec | None,
    root: int,
) -> None:
    """Everyone sends straight to the root (ablation variant)."""
    size = comm.size
    rank = comm.Get_rank()
    chunk = elements_of(sendspec)
    if rank == root:
        if recvspec is None:
            raise MpiError(constants.ERR_BUFFER, "gather root needs a receive buffer")
        recv_flat = flat_view(recvspec)
        recv_flat[root * chunk : (root + 1) * chunk] = flat_view(sendspec)[:chunk]
        reqs = [
            irecv_view(comm, recv_flat, src * chunk, chunk, src, "gather")
            for src in range(size)
            if src != root
        ]
        yield from co_complete(comm, reqs)
    else:
        yield from co_send_view(comm, flat_view(sendspec), 0, chunk, root, "gather")


def gatherv_linear(
    comm: "Communicator",
    sendspec: BufferSpec,
    recvspec: BufferSpec | None,
    counts: list[int],
    displs: list[int],
    root: int,
) -> None:
    """MPI_Gatherv (linear, like MPICH2)."""
    size = comm.size
    rank = comm.Get_rank()
    if len(counts) != size or len(displs) != size:
        raise MpiError(
            constants.ERR_COUNT, "gatherv needs one count and displ per rank"
        )
    my_count = elements_of(sendspec)
    if my_count < counts[rank]:
        raise MpiError(
            constants.ERR_COUNT,
            f"rank {rank} sends {counts[rank]} but buffer holds {my_count}",
        )
    if rank == root:
        if recvspec is None:
            raise MpiError(constants.ERR_BUFFER, "gatherv root needs a receive buffer")
        recv_flat = flat_view(recvspec)
        recv_flat[displs[rank] : displs[rank] + counts[rank]] = flat_view(sendspec)[
            : counts[rank]
        ]
        reqs = [
            irecv_view(comm, recv_flat, displs[src], counts[src], src, "gatherv")
            for src in range(size)
            if src != root and counts[src] > 0
        ]
        yield from co_complete(comm, reqs)
    elif counts[rank] > 0:
        yield from co_send_view(
            comm, flat_view(sendspec), 0, counts[rank], root, "gatherv"
        )
