"""Scan / Exscan: recursive-doubling prefix reductions.

The classic algorithm keeps two accumulators per rank: ``prefix`` (the
inclusive prefix result so far) and ``total`` (the reduction of every
contribution seen, needed to forward).  Each round exchanges ``total``
with rank ^ mask; data arriving from a lower rank is folded *in front*,
which preserves rank order and therefore supports non-commutative
operators.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..buffer import BufferSpec
from ..op import Op
from .util import (base_dtype, co_complete, elements_of, flat_view,
                   irecv_view, isend_view)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..comm import Communicator

__all__ = ["scan_recursive_doubling", "exscan_recursive_doubling"]


def scan_recursive_doubling(
    comm: "Communicator", sendspec: BufferSpec, recvspec: BufferSpec, op: Op
) -> None:
    size = comm.size
    rank = comm.Get_rank()
    count = elements_of(sendspec)
    dtype = base_dtype(sendspec)

    prefix = np.array(flat_view(sendspec)[:count], dtype=dtype.np_dtype)
    total = prefix.copy()
    incoming = np.empty(count, dtype=dtype.np_dtype)

    mask = 1
    while mask < size:
        partner = rank ^ mask
        if partner < size:
            sreq = isend_view(comm, total, 0, count, partner, "scan")
            rreq = irecv_view(comm, incoming, 0, count, partner, "scan")
            yield from co_complete(comm, [sreq, rreq])
            if partner < rank:
                prefix = op(incoming, prefix)
                total = op(incoming, total)
            else:
                total = op(total, incoming)
        mask <<= 1

    flat_view(recvspec)[:count] = prefix


def exscan_recursive_doubling(
    comm: "Communicator", sendspec: BufferSpec, recvspec: BufferSpec, op: Op
) -> None:
    """Exclusive scan: rank r gets the reduction of ranks [0, r).

    Rank 0's receive buffer is left untouched (its value is undefined by
    the standard).
    """
    size = comm.size
    rank = comm.Get_rank()
    count = elements_of(sendspec)
    dtype = base_dtype(sendspec)

    total = np.array(flat_view(sendspec)[:count], dtype=dtype.np_dtype)
    prefix_excl: np.ndarray | None = None
    incoming = np.empty(count, dtype=dtype.np_dtype)

    mask = 1
    while mask < size:
        partner = rank ^ mask
        if partner < size:
            sreq = isend_view(comm, total, 0, count, partner, "exscan")
            rreq = irecv_view(comm, incoming, 0, count, partner, "exscan")
            yield from co_complete(comm, [sreq, rreq])
            if partner < rank:
                if prefix_excl is None:
                    prefix_excl = incoming.copy()
                else:
                    prefix_excl = op(incoming, prefix_excl)
                total = op(incoming, total)
            else:
                total = op(total, incoming)
        mask <<= 1

    if rank != 0 and prefix_excl is not None:
        flat_view(recvspec)[:count] = prefix_excl
