"""Collective operations: algorithm registry and selection.

The paper implements one variant per collective and announces selectable
variants as future work (section 5.3); we provide both.  Every collective
dispatches through :func:`select`:

* if the SMPI config names an algorithm (``coll_algorithms={"alltoall":
  "pairwise"}``) it is forced;
* otherwise ``auto`` applies MPICH2-flavoured rules on message size,
  communicator size and operator commutativity.

All algorithms decompose into point-to-point messages on the collective
context plane, so they contend in the simulated network — the central
modelling claim of paper section 4.2.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ...errors import ConfigError
from ..buffer import BufferSpec
from ..op import Op
from .allgather import (
    allgather_bruck,
    allgather_recursive_doubling,
    allgather_ring,
    allgatherv_ring,
)
from .allreduce import (
    allreduce_rabenseifner,
    allreduce_recursive_doubling,
    allreduce_reduce_bcast,
    allreduce_ring,
    allreduce_two_level,
)
from .alltoall import (
    alltoall_basic_linear,
    alltoall_bruck,
    alltoall_pairwise,
    alltoallv_basic_linear,
    alltoallv_pairwise,
    pairwise_schedule,
)
from .barrier import barrier_dissemination, barrier_tree
from .bcast import bcast_binomial, bcast_linear, bcast_scatter_allgather
from .gather import gather_binomial, gather_linear, gatherv_linear
from .objects import (
    allgather_object,
    allreduce_object,
    alltoall_object,
    bcast_object,
    gather_object,
    reduce_object,
    scatter_object,
)
from .reduce import reduce_binomial, reduce_linear
from .reduce_scatter import reduce_scatter_pairwise, reduce_scatter_reduce_scatterv
from .scan import exscan_recursive_doubling, scan_recursive_doubling
from .scatter import (
    binomial_tree_edges,
    scatter_binomial,
    scatter_linear,
    scatterv_linear,
)
from .util import base_dtype, elements_of

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..comm import Communicator

__all__ = [
    "ALGORITHMS",
    "barrier",
    "bcast",
    "scatter",
    "scatterv",
    "gather",
    "gatherv",
    "allgather",
    "allgatherv",
    "reduce",
    "allreduce",
    "scan",
    "exscan",
    "reduce_scatter",
    "alltoall",
    "alltoallv",
    "bcast_object",
    "scatter_object",
    "gather_object",
    "allgather_object",
    "alltoall_object",
    "reduce_object",
    "allreduce_object",
    "binomial_tree_edges",
    "pairwise_schedule",
]

#: every selectable algorithm, per collective (ablation benches iterate this)
ALGORITHMS: dict[str, dict[str, object]] = {
    "barrier": {
        "dissemination": barrier_dissemination,
        "tree": barrier_tree,
    },
    "bcast": {
        "binomial": bcast_binomial,
        "linear": bcast_linear,
        "scatter_allgather": bcast_scatter_allgather,
    },
    "scatter": {"binomial": scatter_binomial, "linear": scatter_linear},
    "gather": {"binomial": gather_binomial, "linear": gather_linear},
    "allgather": {
        "ring": allgather_ring,
        "recursive_doubling": allgather_recursive_doubling,
        "bruck": allgather_bruck,
    },
    "reduce": {"binomial": reduce_binomial, "linear": reduce_linear},
    "allreduce": {
        "recursive_doubling": allreduce_recursive_doubling,
        "reduce_bcast": allreduce_reduce_bcast,
        "rabenseifner": allreduce_rabenseifner,
        "ring": allreduce_ring,
        "two_level": allreduce_two_level,
    },
    "reduce_scatter": {
        "pairwise": reduce_scatter_pairwise,
        "reduce_scatterv": reduce_scatter_reduce_scatterv,
    },
    "alltoall": {
        "pairwise": alltoall_pairwise,
        "basic_linear": alltoall_basic_linear,
        "bruck": alltoall_bruck,
    },
    "alltoallv": {
        "pairwise": alltoallv_pairwise,
        "basic_linear": alltoallv_basic_linear,
    },
}

# MPICH2-flavoured thresholds (bytes)
_BCAST_SHORT = 12288
_ALLGATHER_LONG = 512 * 1024
_ALLTOALL_SHORT = 256
_ALLTOALL_MEDIUM = 32 * 1024


def select(comm: "Communicator", collective: str, chosen: str):
    """Resolve a (collective, algorithm-name) pair to its function."""
    table = ALGORITHMS[collective]
    if chosen != "auto":
        try:
            return table[chosen]
        except KeyError:
            raise ConfigError(
                f"unknown {collective} algorithm {chosen!r}; "
                f"available: {sorted(table)} or 'auto'"
            ) from None
    return None  # caller applies its auto rule


def _config_choice(comm: "Communicator", collective: str) -> str:
    return comm.world.config.algorithm_for(collective)


# -- dispatchers ----------------------------------------------------------------------


def barrier(comm: "Communicator") -> None:
    forced = select(comm, "barrier", _config_choice(comm, "barrier"))
    yield from (forced or barrier_dissemination)(comm)


def bcast(comm: "Communicator", spec: BufferSpec, root: int) -> None:
    forced = select(comm, "bcast", _config_choice(comm, "bcast"))
    if forced is not None:
        yield from forced(comm, spec, root)
        return
    nbytes = spec.nbytes
    if nbytes < _BCAST_SHORT or comm.size < 8:
        yield from bcast_binomial(comm, spec, root)
    else:
        yield from bcast_scatter_allgather(comm, spec, root)


def scatter(comm: "Communicator", sendbuf, recvspec: BufferSpec, root: int) -> None:
    forced = select(comm, "scatter", _config_choice(comm, "scatter"))
    yield from (forced or scatter_binomial)(comm, sendbuf, recvspec, root)


def scatterv(comm, sendbuf, counts, displs, recvspec, root) -> None:
    yield from scatterv_linear(comm, sendbuf, counts, displs, recvspec, root)


def gather(comm, sendspec: BufferSpec, recvspec, root: int) -> None:
    forced = select(comm, "gather", _config_choice(comm, "gather"))
    yield from (forced or gather_binomial)(comm, sendspec, recvspec, root)


def gatherv(comm, sendspec, recvspec, counts, displs, root) -> None:
    yield from gatherv_linear(comm, sendspec, recvspec, counts, displs, root)


def allgather(comm, sendspec: BufferSpec, recvspec: BufferSpec) -> None:
    forced = select(comm, "allgather", _config_choice(comm, "allgather"))
    if forced is not None:
        yield from forced(comm, sendspec, recvspec)
        return
    total = sendspec.nbytes * comm.size
    power_of_two = comm.size & (comm.size - 1) == 0
    if total >= _ALLGATHER_LONG or comm.size < 2:
        yield from allgather_ring(comm, sendspec, recvspec)
    elif power_of_two:
        yield from allgather_recursive_doubling(comm, sendspec, recvspec)
    else:
        yield from allgather_bruck(comm, sendspec, recvspec)


def allgatherv(comm, sendspec, recvspec, counts, displs) -> None:
    yield from allgatherv_ring(comm, sendspec, recvspec, counts, displs)


def reduce(comm, sendspec: BufferSpec, recvspec, op: Op, root: int) -> None:
    forced = select(comm, "reduce", _config_choice(comm, "reduce"))
    if forced is not None:
        yield from forced(comm, sendspec, recvspec, op, root)
        return
    if op.commutative:
        yield from reduce_binomial(comm, sendspec, recvspec, op, root)
    else:
        yield from reduce_linear(comm, sendspec, recvspec, op, root)


_ALLREDUCE_LONG = 512 * 1024


def allreduce(comm, sendspec: BufferSpec, recvspec: BufferSpec, op: Op) -> None:
    forced = select(comm, "allreduce", _config_choice(comm, "allreduce"))
    if forced is not None:
        yield from forced(comm, sendspec, recvspec, op)
        return
    if not op.commutative:
        yield from allreduce_reduce_bcast(comm, sendspec, recvspec, op)
    elif sendspec.nbytes >= _ALLREDUCE_LONG and comm.size > 2:
        yield from allreduce_rabenseifner(comm, sendspec, recvspec, op)
    else:
        yield from allreduce_recursive_doubling(comm, sendspec, recvspec, op)


def scan(comm, sendspec, recvspec, op: Op) -> None:
    yield from scan_recursive_doubling(comm, sendspec, recvspec, op)


def exscan(comm, sendspec, recvspec, op: Op) -> None:
    yield from exscan_recursive_doubling(comm, sendspec, recvspec, op)


def reduce_scatter(comm, sendspec, recvspec, counts, op: Op) -> None:
    forced = select(comm, "reduce_scatter", _config_choice(comm, "reduce_scatter"))
    if forced is not None:
        yield from forced(comm, sendspec, recvspec, counts, op)
        return
    if op.commutative:
        yield from reduce_scatter_pairwise(comm, sendspec, recvspec, counts, op)
    else:
        yield from reduce_scatter_reduce_scatterv(comm, sendspec, recvspec, counts, op)


def alltoall(comm, sendspec: BufferSpec, recvspec: BufferSpec) -> None:
    forced = select(comm, "alltoall", _config_choice(comm, "alltoall"))
    if forced is not None:
        yield from forced(comm, sendspec, recvspec)
        return
    per_peer = sendspec.nbytes // max(comm.size, 1)
    if per_peer <= _ALLTOALL_SHORT and comm.size >= 8:
        yield from alltoall_bruck(comm, sendspec, recvspec)
    elif per_peer <= _ALLTOALL_MEDIUM:
        yield from alltoall_basic_linear(comm, sendspec, recvspec)
    else:
        yield from alltoall_pairwise(comm, sendspec, recvspec)


def alltoallv(comm, sendspec, sendcounts, sdispls, recvspec, recvcounts,
              rdispls) -> None:
    forced = select(comm, "alltoallv", _config_choice(comm, "alltoallv"))
    yield from (forced or alltoallv_basic_linear)(
        comm, sendspec, sendcounts, sdispls, recvspec, recvcounts, rdispls
    )
