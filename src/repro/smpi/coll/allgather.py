"""Allgather algorithms: ring, recursive doubling, Bruck.

MPICH2's selection: recursive doubling for short messages on power-of-two
communicators, Bruck for short messages otherwise, ring for long messages.
All three are implemented; the dispatcher applies the same rules.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ...errors import MpiError
from .. import constants
from ..buffer import BufferSpec
from .util import (base_dtype, co_complete, elements_of, flat_view,
                   irecv_view, isend_view)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..comm import Communicator

__all__ = [
    "allgather_ring",
    "allgather_recursive_doubling",
    "allgather_bruck",
    "allgatherv_ring",
]


def _init(comm, sendspec, recvspec):
    size = comm.size
    rank = comm.Get_rank()
    chunk = elements_of(sendspec)
    recv_flat = flat_view(recvspec)
    if recv_flat.size < size * chunk:
        raise MpiError(constants.ERR_COUNT, "allgather recv buffer too small")
    recv_flat[rank * chunk : (rank + 1) * chunk] = flat_view(sendspec)[:chunk]
    return size, rank, chunk, recv_flat


def allgather_ring(
    comm: "Communicator", sendspec: BufferSpec, recvspec: BufferSpec
) -> None:
    """P-1 steps around a ring; bandwidth-optimal for long messages."""
    size, rank, chunk, recv_flat = _init(comm, sendspec, recvspec)
    if size == 1:
        return
    right = (rank + 1) % size
    left = (rank - 1) % size
    send_block = rank
    recv_block = left
    for _ in range(size - 1):
        sreq = isend_view(
            comm, recv_flat, send_block * chunk, chunk, right, "allgather"
        )
        rreq = irecv_view(
            comm, recv_flat, recv_block * chunk, chunk, left, "allgather"
        )
        yield from co_complete(comm, [sreq, rreq])
        send_block = recv_block
        recv_block = (recv_block - 1) % size


def allgather_recursive_doubling(
    comm: "Communicator", sendspec: BufferSpec, recvspec: BufferSpec
) -> None:
    """log2 P exchange rounds; requires a power-of-two communicator."""
    size, rank, chunk, recv_flat = _init(comm, sendspec, recvspec)
    if size & (size - 1):
        raise MpiError(
            constants.ERR_ARG,
            "recursive-doubling allgather needs a power-of-two size",
        )
    mask = 1
    have_lo = rank  # block range currently held: [have_lo, have_lo + have_n)
    have_n = 1
    while mask < size:
        partner = rank ^ mask
        # my block range is my mask-aligned group; the partner holds the
        # sibling group, and after the exchange both hold the union
        partner_lo = have_lo ^ mask
        sreq = isend_view(
            comm, recv_flat, have_lo * chunk, have_n * chunk, partner, "allgather"
        )
        rreq = irecv_view(
            comm, recv_flat, partner_lo * chunk, have_n * chunk, partner, "allgather"
        )
        yield from co_complete(comm, [sreq, rreq])
        have_lo = min(have_lo, partner_lo)
        have_n *= 2
        mask <<= 1


def allgather_bruck(
    comm: "Communicator", sendspec: BufferSpec, recvspec: BufferSpec
) -> None:
    """Bruck's algorithm: ceil(log2 P) rounds, any communicator size."""
    size, rank, chunk, recv_flat = _init(comm, sendspec, recvspec)
    if size == 1:
        return
    dtype = base_dtype(sendspec)
    # working buffer in rotated order: block i holds rank (rank + i) % size
    work = np.empty(size * chunk, dtype=dtype.np_dtype)
    work[:chunk] = flat_view(sendspec)[:chunk]
    have = 1
    pof2 = 1
    while pof2 < size:
        send_n = min(pof2, size - have)
        src = (rank + pof2) % size
        dst = (rank - pof2) % size
        sreq = isend_view(comm, work, 0, send_n * chunk, dst, "allgather")
        rreq = irecv_view(comm, work, have * chunk, send_n * chunk, src, "allgather")
        yield from co_complete(comm, [sreq, rreq])
        have += send_n
        pof2 <<= 1
    # un-rotate: work block i -> recv block (rank + i) % size
    for i in range(size):
        block = (rank + i) % size
        recv_flat[block * chunk : (block + 1) * chunk] = work[
            i * chunk : (i + 1) * chunk
        ]


def allgatherv_ring(
    comm: "Communicator",
    sendspec: BufferSpec,
    recvspec: BufferSpec,
    counts: list[int],
    displs: list[int],
) -> None:
    """MPI_Allgatherv over the ring schedule."""
    size = comm.size
    rank = comm.Get_rank()
    if len(counts) != size or len(displs) != size:
        raise MpiError(
            constants.ERR_COUNT, "allgatherv needs one count and displ per rank"
        )
    recv_flat = flat_view(recvspec)
    recv_flat[displs[rank] : displs[rank] + counts[rank]] = flat_view(sendspec)[
        : counts[rank]
    ]
    if size == 1:
        return
    right = (rank + 1) % size
    left = (rank - 1) % size
    send_block = rank
    recv_block = left
    for _ in range(size - 1):
        reqs = []
        if counts[send_block] > 0:
            reqs.append(
                isend_view(
                    comm, recv_flat, displs[send_block], counts[send_block],
                    right, "allgatherv",
                )
            )
        if counts[recv_block] > 0:
            reqs.append(
                irecv_view(
                    comm, recv_flat, displs[recv_block], counts[recv_block],
                    left, "allgatherv",
                )
            )
        yield from co_complete(comm, reqs)
        send_block = recv_block
        recv_block = (recv_block - 1) % size
