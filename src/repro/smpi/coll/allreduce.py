"""Allreduce algorithms: recursive doubling and reduce + broadcast.

Recursive doubling is MPICH2's short-message default.  Non-power-of-two
sizes use the standard pre/post phases: the first ``2r`` ranks (where
``r = P - 2^floor(log2 P)``) pair up so the even partner absorbs the odd
one, the surviving ``2^k`` ranks run recursive doubling, then results are
pushed back to the absorbed ranks.

Recursive doubling mixes combination order, so the dispatcher only
selects it for commutative operators; otherwise reduce+bcast runs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from .. import request as rq
from ..buffer import BufferSpec
from ..op import Op
from .util import base_dtype, elements_of, flat_view, irecv_view, isend_view

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..comm import Communicator

__all__ = ["allreduce_rabenseifner", "allreduce_recursive_doubling", "allreduce_reduce_bcast"]


def allreduce_recursive_doubling(
    comm: "Communicator", sendspec: BufferSpec, recvspec: BufferSpec, op: Op
) -> None:
    size = comm.size
    rank = comm.Get_rank()
    count = elements_of(sendspec)
    dtype = base_dtype(sendspec)

    acc = np.array(flat_view(sendspec)[:count], dtype=dtype.np_dtype)
    incoming = np.empty(count, dtype=dtype.np_dtype)

    pof2 = 1
    while pof2 * 2 <= size:
        pof2 *= 2
    rem = size - pof2

    # pre-phase: fold the ``rem`` trailing odd ranks into their even peers
    if rank < 2 * rem:
        if rank % 2:  # odd: hand my data over, sit out the core phase
            yield from rq.co_wait(isend_view(comm, acc, 0, count, rank - 1, "allreduce"))
            new_rank = -1
        else:
            yield from rq.co_wait(irecv_view(comm, incoming, 0, count, rank + 1, "allreduce"))
            acc = op(acc, incoming)
            new_rank = rank // 2
    else:
        new_rank = rank - rem

    if new_rank >= 0:
        mask = 1
        while mask < pof2:
            partner_new = new_rank ^ mask
            partner = (
                partner_new * 2 if partner_new < rem else partner_new + rem
            )
            sreq = isend_view(comm, acc, 0, count, partner, "allreduce")
            rreq = irecv_view(comm, incoming, 0, count, partner, "allreduce")
            yield from rq.co_waitall([sreq, rreq])
            if partner_new < new_rank:
                acc = op(incoming, acc)
            else:
                acc = op(acc, incoming)
            mask <<= 1

    # post-phase: return results to the ranks folded away in the pre-phase
    if rank < 2 * rem:
        if rank % 2:
            yield from rq.co_wait(irecv_view(comm, acc, 0, count, rank - 1, "allreduce"))
        else:
            yield from rq.co_wait(isend_view(comm, acc, 0, count, rank + 1, "allreduce"))

    flat_view(recvspec)[:count] = acc


def allreduce_reduce_bcast(
    comm: "Communicator", sendspec: BufferSpec, recvspec: BufferSpec, op: Op
) -> None:
    """Reduce to rank 0 then broadcast — valid for any operator."""
    from .bcast import bcast_binomial
    from .reduce import reduce_binomial, reduce_linear

    if op.commutative:
        yield from reduce_binomial(comm, sendspec, recvspec, op, 0)
    else:
        yield from reduce_linear(comm, sendspec, recvspec, op, 0)
    yield from bcast_binomial(comm, recvspec, 0)


def allreduce_rabenseifner(
    comm: "Communicator", sendspec: BufferSpec, recvspec: BufferSpec, op: Op
) -> None:
    """Rabenseifner's algorithm: reduce-scatter + allgather.

    MPICH2's long-message choice: each rank ends the first phase owning
    the fully-reduced values of one block (pairwise-exchange
    reduce-scatter), then a ring allgather reassembles the full vector.
    Bandwidth-optimal — every byte crosses each rank's link ~2x instead of
    ~2·log P times.  Commutative operators only (like MPICH2).
    """
    from ...errors import MpiError
    from .. import constants
    from ..buffer import BufferSpec as BS
    from .allgather import allgatherv_ring
    from .reduce_scatter import reduce_scatter_pairwise

    if not op.commutative:
        raise MpiError(
            constants.ERR_OP, "rabenseifner allreduce needs a commutative op"
        )
    size = comm.size
    count = elements_of(sendspec)
    dtype = base_dtype(sendspec)
    if size == 1 or count < size:
        yield from allreduce_recursive_doubling(comm, sendspec, recvspec, op)
        return

    base = count // size
    counts = [base] * size
    counts[-1] = count - base * (size - 1)
    displs = [sum(counts[:i]) for i in range(size)]
    rank = comm.Get_rank()

    my_block = np.empty(counts[rank], dtype=dtype.np_dtype)
    yield from reduce_scatter_pairwise(
        comm, sendspec, BS(my_block, counts[rank], dtype), counts, op
    )
    yield from allgatherv_ring(
        comm, BS(my_block, counts[rank], dtype), recvspec, counts, displs
    )
