"""Allreduce algorithms: recursive doubling and reduce + broadcast.

Recursive doubling is MPICH2's short-message default.  Non-power-of-two
sizes use the standard pre/post phases: the first ``2r`` ranks (where
``r = P - 2^floor(log2 P)``) pair up so the even partner absorbs the odd
one, the surviving ``2^k`` ranks run recursive doubling, then results are
pushed back to the absorbed ranks.

Recursive doubling mixes combination order, so the dispatcher only
selects it for commutative operators; otherwise reduce+bcast runs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..buffer import BufferSpec
from ..op import Op
from .util import (base_dtype, co_complete, co_recv_view, co_send_view,
                   elements_of, flat_view, irecv_view, isend_view)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..comm import Communicator

__all__ = [
    "allreduce_rabenseifner",
    "allreduce_recursive_doubling",
    "allreduce_reduce_bcast",
    "allreduce_ring",
    "allreduce_two_level",
]


def allreduce_recursive_doubling(
    comm: "Communicator", sendspec: BufferSpec, recvspec: BufferSpec, op: Op
) -> None:
    size = comm.size
    rank = comm.Get_rank()
    count = elements_of(sendspec)
    dtype = base_dtype(sendspec)

    acc = np.array(flat_view(sendspec)[:count], dtype=dtype.np_dtype)
    incoming = np.empty(count, dtype=dtype.np_dtype)

    pof2 = 1
    while pof2 * 2 <= size:
        pof2 *= 2
    rem = size - pof2

    # pre-phase: fold the ``rem`` trailing odd ranks into their even peers
    if rank < 2 * rem:
        if rank % 2:  # odd: hand my data over, sit out the core phase
            yield from co_send_view(comm, acc, 0, count, rank - 1, "allreduce")
            new_rank = -1
        else:
            yield from co_recv_view(comm, incoming, 0, count, rank + 1, "allreduce")
            acc = op(acc, incoming)
            new_rank = rank // 2
    else:
        new_rank = rank - rem

    if new_rank >= 0:
        mask = 1
        while mask < pof2:
            partner_new = new_rank ^ mask
            partner = (
                partner_new * 2 if partner_new < rem else partner_new + rem
            )
            sreq = isend_view(comm, acc, 0, count, partner, "allreduce")
            rreq = irecv_view(comm, incoming, 0, count, partner, "allreduce")
            yield from co_complete(comm, [sreq, rreq])
            if partner_new < new_rank:
                acc = op(incoming, acc)
            else:
                acc = op(acc, incoming)
            mask <<= 1

    # post-phase: return results to the ranks folded away in the pre-phase
    if rank < 2 * rem:
        if rank % 2:
            yield from co_recv_view(comm, acc, 0, count, rank - 1, "allreduce")
        else:
            yield from co_send_view(comm, acc, 0, count, rank + 1, "allreduce")

    flat_view(recvspec)[:count] = acc


def allreduce_reduce_bcast(
    comm: "Communicator", sendspec: BufferSpec, recvspec: BufferSpec, op: Op
) -> None:
    """Reduce to rank 0 then broadcast — valid for any operator."""
    from .bcast import bcast_binomial
    from .reduce import reduce_binomial, reduce_linear

    if op.commutative:
        yield from reduce_binomial(comm, sendspec, recvspec, op, 0)
    else:
        yield from reduce_linear(comm, sendspec, recvspec, op, 0)
    yield from bcast_binomial(comm, recvspec, 0)


def allreduce_rabenseifner(
    comm: "Communicator", sendspec: BufferSpec, recvspec: BufferSpec, op: Op
) -> None:
    """Rabenseifner's algorithm: reduce-scatter + allgather.

    MPICH2's long-message choice: each rank ends the first phase owning
    the fully-reduced values of one block (pairwise-exchange
    reduce-scatter), then a ring allgather reassembles the full vector.
    Bandwidth-optimal — every byte crosses each rank's link ~2x instead of
    ~2·log P times.  Commutative operators only (like MPICH2).
    """
    from ...errors import MpiError
    from .. import constants
    from ..buffer import BufferSpec as BS
    from .allgather import allgatherv_ring
    from .reduce_scatter import reduce_scatter_pairwise

    if not op.commutative:
        raise MpiError(
            constants.ERR_OP, "rabenseifner allreduce needs a commutative op"
        )
    size = comm.size
    count = elements_of(sendspec)
    dtype = base_dtype(sendspec)
    if size == 1 or count < size:
        yield from allreduce_recursive_doubling(comm, sendspec, recvspec, op)
        return

    base = count // size
    counts = [base] * size
    counts[-1] = count - base * (size - 1)
    displs = [sum(counts[:i]) for i in range(size)]
    rank = comm.Get_rank()

    my_block = np.empty(counts[rank], dtype=dtype.np_dtype)
    yield from reduce_scatter_pairwise(
        comm, sendspec, BS(my_block, counts[rank], dtype), counts, op
    )
    yield from allgatherv_ring(
        comm, BS(my_block, counts[rank], dtype), recvspec, counts, displs
    )


def _block_layout(count: int, size: int) -> tuple[list[int], list[int]]:
    """Near-even block counts and displacements for segmented algorithms."""
    base = count // size
    counts = [base] * size
    counts[-1] = count - base * (size - 1)
    displs = [sum(counts[:i]) for i in range(size)]
    return counts, displs


def allreduce_ring(
    comm: "Communicator", sendspec: BufferSpec, recvspec: BufferSpec, op: Op
) -> None:
    """Segmented ring allreduce (the DL-training classic, à la Baidu/NCCL).

    ``P-1`` reduce-scatter steps followed by ``P-1`` allgather steps,
    each exchanging one ``count/P`` block with the ring neighbours.  Like
    Rabenseifner, every byte crosses each rank's access link ~2x, but the
    strictly nearest-neighbour schedule keeps at most ``2P`` flows alive
    at any instant — friendlier under backbone contention than the
    pairwise exchanges.  Latency grows linearly in ``P``, so it only pays
    off for large messages.  Commutative operators only.
    """
    from ...errors import MpiError
    from .. import constants

    if not op.commutative:
        raise MpiError(constants.ERR_OP, "ring allreduce needs a commutative op")
    size = comm.size
    count = elements_of(sendspec)
    dtype = base_dtype(sendspec)
    if size == 1 or count < size:
        yield from allreduce_recursive_doubling(comm, sendspec, recvspec, op)
        return

    counts, displs = _block_layout(count, size)
    rank = comm.Get_rank()
    right = (rank + 1) % size
    left = (rank - 1) % size

    acc = flat_view(recvspec)
    src = flat_view(sendspec)
    if not np.shares_memory(acc[:count], src[:count]):
        acc[:count] = src[:count]
    incoming = np.empty(max(counts), dtype=dtype.np_dtype)

    # reduce-scatter phase: after step s my block (rank - s - 1) holds the
    # partial sum of s + 2 contributions; after P-1 steps block (rank + 1)
    # is fully reduced at this rank
    for step in range(size - 1):
        send_block = (rank - step) % size
        recv_block = (rank - step - 1) % size
        sreq = isend_view(
            comm, acc, displs[send_block], counts[send_block], right, "allreduce"
        )
        rreq = irecv_view(
            comm, incoming, 0, counts[recv_block], left, "allreduce"
        )
        yield from co_complete(comm, [sreq, rreq])
        seg = acc[displs[recv_block] : displs[recv_block] + counts[recv_block]]
        seg[:] = op(incoming[: counts[recv_block]], seg)

    # allgather phase: circulate the fully-reduced blocks around the ring
    for step in range(size - 1):
        send_block = (rank + 1 - step) % size
        recv_block = (rank - step) % size
        sreq = isend_view(
            comm, acc, displs[send_block], counts[send_block], right, "allreduce"
        )
        rreq = irecv_view(
            comm, acc, displs[recv_block], counts[recv_block], left, "allreduce"
        )
        yield from co_complete(comm, [sreq, rreq])


def _co_two_level_comms(comm: "Communicator"):
    """Cabinet-local and leader subcommunicators of ``comm`` (cached).

    Built with ``Split_type("cabinet")`` + a leaders-only ``Split`` on
    first use and memoized on the communicator object.  The cache state
    evolves identically on every rank — a collective creation only
    completes once all ranks participate — so later calls agree without
    extra messages.  Creation traffic is charged to the first collective
    that needs it (warmup iterations absorb it in sweeps).
    """
    from .. import constants

    # one cache slot per rank: the Communicator object is shared by every
    # rank of this single-process simulation, but each rank's (local,
    # leaders) pair is its own
    cache = getattr(comm, "_two_level_cache", None)
    if cache is None:
        cache = comm._two_level_cache = {}
    me = comm.Get_rank()
    if me not in cache:
        local = yield from comm._co_Split_type("cabinet")
        leader_color = 0 if local.Get_rank() == 0 else constants.UNDEFINED
        leaders = yield from comm._co_Split(leader_color, 0)
        cache[me] = (local, leaders)
    return cache[me]


def allreduce_two_level(
    comm: "Communicator", sendspec: BufferSpec, recvspec: BufferSpec, op: Op
) -> None:
    """Hierarchical allreduce over the cabinet topology.

    Phase 1 reduces within each cabinet to a local leader (binomial tree
    over the cabinet backbone), phase 2 runs an allreduce among the
    leaders only — the sole phase crossing the inter-cabinet uplinks —
    and phase 3 broadcasts the result back inside each cabinet.  Wins
    when the uplinks are the bottleneck: only one rank per cabinet sends
    the vector across them, instead of every rank as in the flat
    schedules.  On flat platforms the split degrades to per-host groups
    and the algorithm behaves like its leader-phase fallback.
    Commutative operators only.
    """
    from ...errors import MpiError
    from .. import constants
    from .bcast import bcast_binomial
    from .reduce import reduce_binomial

    if not op.commutative:
        raise MpiError(
            constants.ERR_OP, "two-level allreduce needs a commutative op"
        )
    count = elements_of(sendspec)
    if comm.size == 1:
        flat_view(recvspec)[:count] = flat_view(sendspec)[:count]
        return

    local, leaders = yield from _co_two_level_comms(comm)
    if local.size == 1:
        # degenerate hierarchy (one rank per cabinet): leaders == comm
        yield from allreduce_recursive_doubling(leaders, sendspec, recvspec, op)
        return
    yield from reduce_binomial(local, sendspec, recvspec, op, 0)
    if leaders is not None and leaders.size > 1:
        yield from allreduce_recursive_doubling(leaders, recvspec, recvspec, op)
    yield from bcast_binomial(local, recvspec, 0)
