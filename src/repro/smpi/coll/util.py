"""Shared helpers for collective algorithms.

Collectives operate on :class:`~repro.smpi.buffer.BufferSpec`s.  The
helpers here give element-level views into those buffers and wrap the
point-to-point calls with the *collective context* (``comm.ctx + 1``) so
that collective-internal traffic can never match application receives.

All data movement inside collectives goes through these functions, which
keeps each algorithm file focused on its communication schedule — the
thing the paper actually models.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ...errors import MpiError
from .. import constants
from ..buffer import BufferSpec
from ..datatype import PredefinedDatatype
from ..request import Request

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..comm import Communicator

__all__ = [
    "base_dtype",
    "flat_view",
    "elements_of",
    "isend_view",
    "irecv_view",
    "send_view",
    "recv_view",
    "co_send_view",
    "co_recv_view",
    "co_complete",
    "coll_tag",
]

# one reserved tag per collective kind (readability of traces; correctness
# comes from the separate context and MPI's non-overtaking rule)
_TAGS = {
    "barrier": 1,
    "bcast": 2,
    "gather": 3,
    "gatherv": 4,
    "scatter": 5,
    "scatterv": 6,
    "allgather": 7,
    "allgatherv": 8,
    "reduce": 9,
    "allreduce": 10,
    "reduce_scatter": 11,
    "scan": 12,
    "exscan": 13,
    "alltoall": 14,
    "alltoallv": 15,
    "object": 16,
    "split": 17,
}


def coll_tag(kind: str) -> int:
    return constants.TAG_UB - _TAGS[kind]


def base_dtype(spec: BufferSpec) -> PredefinedDatatype:
    """The predefined element type backing a buffer spec."""
    datatype = spec.datatype
    while not isinstance(datatype, PredefinedDatatype):
        inner = getattr(datatype, "base", None)
        if inner is None:
            raise MpiError(
                constants.ERR_TYPE,
                f"collectives need an array-backed datatype, got {datatype.name}",
            )
        datatype = inner
    return datatype


def elements_of(spec: BufferSpec) -> int:
    """Number of *base* elements covered by the spec's count."""
    return spec.nbytes // base_dtype(spec).size


def flat_view(spec: BufferSpec) -> np.ndarray:
    """1-D element view of the spec's array (no copy)."""
    arr = np.asarray(spec.array)
    if not arr.flags.c_contiguous:
        raise MpiError(
            constants.ERR_BUFFER, "collective buffers must be C-contiguous"
        )
    return arr.reshape(-1)


def _sub(spec_or_array, offset: int, count: int) -> np.ndarray:
    if isinstance(spec_or_array, BufferSpec):
        arr = flat_view(spec_or_array)
    else:
        arr = np.asarray(spec_or_array)
        if not arr.flags.c_contiguous:
            raise MpiError(
                constants.ERR_BUFFER, "collective buffers must be C-contiguous"
            )
        arr = arr.reshape(-1)
    if offset < 0 or offset + count > arr.size:
        raise MpiError(
            constants.ERR_COUNT,
            f"slice [{offset},{offset + count}) outside buffer of {arr.size}",
        )
    return arr[offset : offset + count]


def isend_view(
    comm: "Communicator", src_arr, offset: int, count: int, dest: int, kind: str
) -> Request:
    """Nonblocking send of ``count`` elements at ``offset`` of an array."""
    view = _sub(src_arr, offset, count)
    return comm.Isend([view, count], dest, coll_tag(kind), _ctx=comm.ctx + 1)


def irecv_view(
    comm: "Communicator", dst_arr, offset: int, count: int, source: int, kind: str
) -> Request:
    """Nonblocking receive into ``count`` elements at ``offset``."""
    view = _sub(dst_arr, offset, count)
    return comm.Irecv([view, count], source, coll_tag(kind), _ctx=comm.ctx + 1)


def send_view(comm, src_arr, offset, count, dest, kind) -> None:
    """Blocking send of a buffer slice (drives :func:`co_send_view`)."""
    from ...simix.contexts import run_blocking

    run_blocking(co_send_view(comm, src_arr, offset, count, dest, kind),
                 lambda: comm.world.current_actor)


def co_send_view(comm, src_arr, offset, count, dest, kind):
    """Generator twin of :func:`send_view`."""
    from .. import request as rq

    req = isend_view(comm, src_arr, offset, count, dest, kind)
    yield from rq.co_wait(req)
    comm.world.release_request(req)


def recv_view(comm, dst_arr, offset, count, source, kind) -> None:
    """Blocking receive into a buffer slice (drives :func:`co_recv_view`)."""
    from ...simix.contexts import run_blocking

    run_blocking(co_recv_view(comm, dst_arr, offset, count, source, kind),
                 lambda: comm.world.current_actor)


def co_recv_view(comm, dst_arr, offset, count, source, kind):
    """Generator twin of :func:`recv_view`."""
    from .. import request as rq

    req = irecv_view(comm, dst_arr, offset, count, source, kind)
    yield from rq.co_wait(req)
    comm.world.release_request(req)


def co_complete(comm, requests):
    """Wait on a batch of collective-internal requests, then recycle them.

    The algorithm files pair ``isend_view``/``irecv_view`` batches with a
    single waitall; routing the wait through here returns every request
    to the world's free list once its round is over.
    """
    from .. import request as rq

    yield from rq.co_waitall(requests)
    release = comm.world.release_request
    for req in requests:
        release(req)
