"""Generic-object (pickle) collectives — the mpi4py "lower-case" flavour.

These move pickled payloads through the same point-to-point protocol, so
their simulated timing reflects the actual serialised sizes.  Schedules
are simple (binomial where natural, linear otherwise); applications that
care about collective performance should use the buffer flavour.
"""

from __future__ import annotations

import operator
from typing import TYPE_CHECKING, Any, Callable

from .. import request as rq
from ..buffer import pack_object, unpack_object
from .util import coll_tag

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..comm import Communicator

__all__ = [
    "bcast_object",
    "scatter_object",
    "gather_object",
    "allgather_object",
    "alltoall_object",
    "reduce_object",
    "allreduce_object",
]


def _send_obj(comm: "Communicator", obj: Any, dest: int) -> None:
    spec = pack_object(obj)
    req = comm.Isend([spec.array, spec.count], dest, coll_tag("object"),
                     _ctx=comm.ctx + 1)
    yield from rq.co_wait(req)
    comm.world.release_request(req)


def _recv_obj(comm: "Communicator", source: int) -> Any:
    req = comm.irecv(source, coll_tag("object"), _ctx=comm.ctx + 1)
    yield from rq.co_wait(req)
    raw = req.raw_data  # consume before recycling the request
    comm.world.release_request(req)
    return unpack_object(raw) if raw is not None else None


def bcast_object(comm: "Communicator", obj: Any, root: int) -> Any:
    """Binomial-tree broadcast of one pickled object."""
    size = comm.size
    if size == 1:
        return obj
    rank = comm.Get_rank()
    relative = (rank - root) % size
    mask = 1
    if relative != 0:
        while not (relative & mask):
            mask <<= 1
        obj = yield from _recv_obj(comm, (relative - mask + root) % size)
        mask >>= 1
    else:
        while mask < size:
            mask <<= 1
        mask >>= 1
    while mask >= 1:
        child_rel = relative + mask
        if child_rel < size:
            yield from _send_obj(comm, obj, (child_rel + root) % size)
        mask >>= 1
    return obj


def scatter_object(comm: "Communicator", objs: list[Any] | None, root: int) -> Any:
    """Linear object scatter: root sends item i to rank i."""
    size = comm.size
    rank = comm.Get_rank()
    if rank == root:
        if objs is None or len(objs) != size:
            from ...errors import MpiError
            from .. import constants

            raise MpiError(
                constants.ERR_COUNT, f"scatter needs a list of {size} objects at root"
            )
        for dest in range(size):
            if dest != root:
                yield from _send_obj(comm, objs[dest], dest)
        return objs[root]
    return (yield from _recv_obj(comm, root))


def gather_object(comm: "Communicator", obj: Any, root: int) -> list[Any] | None:
    """Linear object gather (root receives in rank order)."""
    rank = comm.Get_rank()
    if rank == root:
        out = []
        for src in range(comm.size):
            out.append(obj if src == root
                       else (yield from _recv_obj(comm, src)))
        return out
    yield from _send_obj(comm, obj, root)
    return None


def allgather_object(comm: "Communicator", obj: Any) -> list[Any]:
    """Gather to 0, then broadcast the list."""
    gathered = yield from gather_object(comm, obj, 0)
    return (yield from bcast_object(comm, gathered, 0))


def alltoall_object(comm: "Communicator", objs: list[Any]) -> list[Any]:
    """Pairwise object exchange: item i of my list goes to rank i."""
    size = comm.size
    rank = comm.Get_rank()
    if len(objs) != size:
        from ...errors import MpiError
        from .. import constants

        raise MpiError(constants.ERR_COUNT, f"alltoall needs {size} objects")
    out: list[Any] = [None] * size
    out[rank] = objs[rank]
    for step in range(1, size):
        dst = (rank + step) % size
        src = (rank - step) % size
        spec = pack_object(objs[dst])
        sreq = comm.Isend([spec.array, spec.count], dst, coll_tag("object"),
                          _ctx=comm.ctx + 1)
        rreq = comm.irecv(src, coll_tag("object"), _ctx=comm.ctx + 1)
        yield from rq.co_waitall([sreq, rreq])
        raw = rreq.raw_data
        comm.world.release_request(sreq)
        comm.world.release_request(rreq)
        out[src] = unpack_object(raw) if raw is not None else None
    return out


def reduce_object(
    comm: "Communicator", obj: Any, op: Callable[[Any, Any], Any] | None, root: int
) -> Any:
    """Gather to root, fold in rank order with ``op`` (default ``+``)."""
    fold = op or operator.add
    gathered = yield from gather_object(comm, obj, root)
    if gathered is None:
        return None
    acc = gathered[0]
    for item in gathered[1:]:
        acc = fold(acc, item)
    return acc


def allreduce_object(
    comm: "Communicator", obj: Any, op: Callable[[Any, Any], Any] | None
) -> Any:
    result = yield from reduce_object(comm, obj, op, 0)
    return (yield from bcast_object(comm, result, 0))
