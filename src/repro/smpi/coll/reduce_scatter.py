"""Reduce_scatter algorithms: pairwise exchange and reduce + scatterv.

The pairwise-exchange algorithm (MPICH2's long-message commutative
choice) runs P-1 rounds; in round s each rank sends the block destined
for rank ``(rank + s) % P`` directly to it and folds the block it
receives into its own accumulator.  The fallback composes a rank-ordered
reduce with a scatterv and therefore works for any operator.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ...errors import MpiError
from .. import constants
from ..buffer import BufferSpec
from ..op import Op
from .util import (base_dtype, co_complete, elements_of, flat_view,
                   irecv_view, isend_view)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..comm import Communicator

__all__ = ["reduce_scatter_pairwise", "reduce_scatter_reduce_scatterv"]


def _check(comm, sendspec, recvspec, counts):
    size = comm.size
    if len(counts) != size:
        raise MpiError(constants.ERR_COUNT, "reduce_scatter needs one count per rank")
    total = sum(counts)
    if elements_of(sendspec) < total:
        raise MpiError(constants.ERR_COUNT, "reduce_scatter send buffer too small")
    rank = comm.Get_rank()
    if elements_of(recvspec) < counts[rank]:
        raise MpiError(constants.ERR_COUNT, "reduce_scatter recv buffer too small")
    displs = np.concatenate([[0], np.cumsum(counts)[:-1]]).astype(int)
    return size, rank, total, displs


def reduce_scatter_pairwise(
    comm: "Communicator", sendspec: BufferSpec, recvspec: BufferSpec,
    counts: list[int], op: Op,
) -> None:
    """P-1 pairwise rounds (commutative operators only)."""
    if not op.commutative:
        raise MpiError(
            constants.ERR_OP, "pairwise reduce_scatter needs a commutative op"
        )
    size, rank, _total, displs = _check(comm, sendspec, recvspec, counts)
    send_flat = flat_view(sendspec)
    dtype = base_dtype(sendspec)
    my_count = counts[rank]
    acc = np.array(
        send_flat[displs[rank] : displs[rank] + my_count], dtype=dtype.np_dtype
    )
    incoming = np.empty(my_count, dtype=dtype.np_dtype)
    for step in range(1, size):
        dst = (rank + step) % size
        src = (rank - step) % size
        reqs = []
        if counts[dst] > 0:
            reqs.append(
                isend_view(
                    comm, send_flat, int(displs[dst]), counts[dst], dst,
                    "reduce_scatter",
                )
            )
        if my_count > 0:
            reqs.append(
                irecv_view(comm, incoming, 0, my_count, src, "reduce_scatter")
            )
        yield from co_complete(comm, reqs)
        if my_count > 0:
            acc = op(acc, incoming)
    flat_view(recvspec)[:my_count] = acc


def reduce_scatter_reduce_scatterv(
    comm: "Communicator", sendspec: BufferSpec, recvspec: BufferSpec,
    counts: list[int], op: Op,
) -> None:
    """Rank-ordered reduce to 0, then scatterv (any operator)."""
    from ..buffer import BufferSpec as BS
    from .reduce import reduce_binomial, reduce_linear
    from .scatter import scatterv_linear

    size, rank, total, displs = _check(comm, sendspec, recvspec, counts)
    dtype = base_dtype(sendspec)
    reduced = np.empty(total, dtype=dtype.np_dtype) if rank == 0 else None
    redspec = None if reduced is None else BS(reduced, total, dtype)
    sendfull = BS(flat_view(sendspec)[:total], total, dtype)
    if op.commutative:
        yield from reduce_binomial(comm, sendfull, redspec, op, 0)
    else:
        yield from reduce_linear(comm, sendfull, redspec, op, 0)
    yield from scatterv_linear(
        comm,
        redspec if rank == 0 else BS(np.empty(0, dtype=dtype.np_dtype), 0, dtype),
        list(counts),
        [int(d) for d in displs],
        recvspec,
        0,
    )
