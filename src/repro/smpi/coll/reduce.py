"""Reduce algorithms: binomial tree and linear gather-fold.

The binomial tree halves the number of active senders each round and is
MPICH2's default for commutative operators.  For non-commutative
operators the linear variant gathers all contributions at the root and
folds them in rank order, which is always valid.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ...errors import MpiError
from .. import constants
from ..buffer import BufferSpec
from ..op import Op
from .util import (base_dtype, co_complete, co_recv_view, co_send_view,
                   elements_of, flat_view, irecv_view)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..comm import Communicator

__all__ = ["reduce_binomial", "reduce_linear"]


def reduce_binomial(
    comm: "Communicator", sendspec: BufferSpec, recvspec: BufferSpec | None,
    op: Op, root: int,
) -> None:
    """Binomial-tree reduction (commutative operators)."""
    size = comm.size
    rank = comm.Get_rank()
    relative = (rank - root) % size
    count = elements_of(sendspec)
    dtype = base_dtype(sendspec)

    if rank == root and recvspec is None:
        raise MpiError(constants.ERR_BUFFER, "reduce root needs a receive buffer")

    acc = np.array(flat_view(sendspec)[:count], dtype=dtype.np_dtype)
    incoming = np.empty(count, dtype=dtype.np_dtype)
    mask = 1
    while mask < size:
        if relative & mask:
            parent = (relative - mask + root) % size
            yield from co_send_view(comm, acc, 0, count, parent, "reduce")
            break
        child_rel = relative + mask
        if child_rel < size:
            child = (child_rel + root) % size
            yield from co_recv_view(comm, incoming, 0, count, child, "reduce")
            # ``acc`` covers lower relative ranks than the child subtree,
            # so acc-first ordering is also valid for non-commutative ops
            # when root == 0; the dispatcher is conservative anyway.
            acc = op(acc, incoming)
        mask <<= 1

    if relative == 0:
        assert recvspec is not None
        flat_view(recvspec)[:count] = acc


def reduce_linear(
    comm: "Communicator", sendspec: BufferSpec, recvspec: BufferSpec | None,
    op: Op, root: int,
) -> None:
    """Gather everything at the root, fold strictly in rank order.

    Correct for any operator; O(P) messages converging on the root.
    """
    size = comm.size
    rank = comm.Get_rank()
    count = elements_of(sendspec)
    dtype = base_dtype(sendspec)

    if rank != root:
        yield from co_send_view(comm, flat_view(sendspec), 0, count, root, "reduce")
        return
    if recvspec is None:
        raise MpiError(constants.ERR_BUFFER, "reduce root needs a receive buffer")

    # receive every contribution, then fold 0,1,2,... in order
    parts: list[np.ndarray] = []
    reqs = []
    for src in range(size):
        if src == rank:
            parts.append(np.array(flat_view(sendspec)[:count], dtype=dtype.np_dtype))
            reqs.append(None)
        else:
            buf = np.empty(count, dtype=dtype.np_dtype)
            parts.append(buf)
            reqs.append(irecv_view(comm, buf, 0, count, src, "reduce"))
    yield from co_complete(comm, [r for r in reqs if r is not None])
    acc = parts[0]
    for part in parts[1:]:
        acc = op(acc, part)
    flat_view(recvspec)[:count] = acc
