"""Broadcast algorithms: binomial tree, linear, scatter + ring-allgather.

``binomial`` is MPICH2's default for short messages; ``scatter_allgather``
is its long-message algorithm (split the buffer, binomial-scatter the
pieces, ring-allgather them back), which trades latency for bandwidth.
``linear`` is the naive root-sends-everyone variant for ablations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..buffer import BufferSpec
from .util import (base_dtype, co_complete, co_recv_view, co_send_view,
                   elements_of, flat_view, irecv_view, isend_view)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..comm import Communicator

__all__ = ["bcast_binomial", "bcast_linear", "bcast_scatter_allgather"]


def bcast_binomial(comm: "Communicator", spec: BufferSpec, root: int) -> None:
    """Binomial-tree broadcast (MPICH2 short-message algorithm)."""
    size = comm.size
    if size == 1:
        return
    rank = comm.Get_rank()
    relative = (rank - root) % size
    count = elements_of(spec)
    flat = flat_view(spec)

    # receive once from the parent...
    mask = 1
    if relative != 0:
        while not (relative & mask):
            mask <<= 1
        parent = (relative - mask + root) % size
        yield from co_recv_view(comm, flat, 0, count, parent, "bcast")
        mask >>= 1
    else:
        while mask < size:
            mask <<= 1
        mask >>= 1

    # ...then forward down the tree, largest subtree first
    while mask >= 1:
        child_rel = relative + mask
        if child_rel < size:
            child = (child_rel + root) % size
            yield from co_send_view(comm, flat, 0, count, child, "bcast")
        mask >>= 1


def bcast_linear(comm: "Communicator", spec: BufferSpec, root: int) -> None:
    """Root sends the full buffer to every rank (ablation variant)."""
    size = comm.size
    if size == 1:
        return
    rank = comm.Get_rank()
    count = elements_of(spec)
    flat = flat_view(spec)
    if rank == root:
        reqs = [
            isend_view(comm, flat, 0, count, dest, "bcast")
            for dest in range(size)
            if dest != root
        ]
        yield from co_complete(comm, reqs)
    else:
        yield from co_recv_view(comm, flat, 0, count, root, "bcast")


def bcast_scatter_allgather(comm: "Communicator", spec: BufferSpec, root: int) -> None:
    """MPICH2 long-message broadcast: binomial scatter + ring allgather.

    The buffer is cut into P near-equal pieces; the pieces are scattered
    down a binomial tree, then a P-1-step ring allgather reassembles the
    full buffer everywhere.  Total bytes moved per link ~ 2·s instead of
    s·log P.
    """
    size = comm.size
    if size == 1:
        return
    rank = comm.Get_rank()
    relative = (rank - root) % size
    count = elements_of(spec)
    flat = flat_view(spec)
    dtype = base_dtype(spec)

    # piece boundaries (last piece absorbs the remainder)
    base = count // size
    counts = [base] * size
    counts[-1] = count - base * (size - 1)
    displs = np.concatenate([[0], np.cumsum(counts)[:-1]]).astype(int)

    if base == 0:
        # message shorter than the process count: fall back
        yield from bcast_binomial(comm, spec, root)
        return

    # --- phase 1: binomial scatter of the pieces (by relative rank) -----------
    if relative == 0:
        held_lo, held_n = 0, size  # piece range currently held
        mask = 1
        while mask < size:
            mask <<= 1
        mask >>= 1
    else:
        mask = 1
        while not (relative & mask):
            mask <<= 1
        parent = (relative - mask + root) % size
        held_lo = relative
        held_n = min(mask, size - relative)
        lo = int(displs[held_lo])
        n_elems = int(sum(counts[held_lo : held_lo + held_n]))
        yield from co_recv_view(comm, flat, lo, n_elems, parent, "bcast")
        mask >>= 1

    while mask >= 1:
        child_rel = relative + mask
        if child_rel < size:
            n_child = min(mask, size - child_rel)
            child = (child_rel + root) % size
            lo = int(displs[child_rel])
            n_elems = int(sum(counts[child_rel : child_rel + n_child]))
            yield from co_send_view(comm, flat, lo, n_elems, child, "bcast")
        mask >>= 1

    # --- phase 2: ring allgather of the pieces ---------------------------------
    right = (relative + 1) % size
    left = (relative - 1) % size
    right_rank = (right + root) % size
    left_rank = (left + root) % size
    send_piece = relative
    recv_piece = left
    for _ in range(size - 1):
        sreq = isend_view(
            comm, flat, int(displs[send_piece]), counts[send_piece],
            right_rank, "allgather",
        )
        rreq = irecv_view(
            comm, flat, int(displs[recv_piece]), counts[recv_piece],
            left_rank, "allgather",
        )
        yield from co_complete(comm, [sreq, rreq])
        send_piece = recv_piece
        recv_piece = (recv_piece - 1) % size
    del dtype
