"""All-to-all algorithms: pairwise, basic linear, Bruck.

``pairwise`` is the algorithm of paper Figs. 10-12: P steps; in step s
every rank sends to ``(rank + s) % P`` while receiving from
``(rank - s) % P`` (step 0 is the local copy), so at every instant the
network carries a perfect matching of P simultaneous transfers — the
maximum-contention pattern the evaluation uses.  ``basic_linear`` posts
everything at once (OpenMPI's medium-size choice); ``bruck`` is the
log-round algorithm for short messages.  The vector variants reuse the
same schedules with per-peer counts/displacements.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ...errors import MpiError
from .. import constants
from ..buffer import BufferSpec
from .util import (base_dtype, co_complete, elements_of, flat_view,
                   irecv_view, isend_view)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..comm import Communicator

__all__ = [
    "alltoall_pairwise",
    "alltoall_basic_linear",
    "alltoall_bruck",
    "alltoallv_basic_linear",
    "alltoallv_pairwise",
    "pairwise_schedule",
]


def _init(comm, sendspec, recvspec):
    size = comm.size
    rank = comm.Get_rank()
    send_flat = flat_view(sendspec)
    recv_flat = flat_view(recvspec)
    chunk = elements_of(sendspec) // size
    if chunk * size != elements_of(sendspec):
        raise MpiError(
            constants.ERR_COUNT, "alltoall send buffer must split evenly"
        )
    if recv_flat.size < size * chunk:
        raise MpiError(constants.ERR_COUNT, "alltoall recv buffer too small")
    return size, rank, chunk, send_flat, recv_flat


def pairwise_schedule(size: int) -> list[list[tuple[int, int]]]:
    """The (sender, receiver) pairs of every pairwise step (paper Fig. 10)."""
    steps = []
    for s in range(size):
        steps.append([(r, (r + s) % size) for r in range(size)])
    return steps


def alltoall_pairwise(
    comm: "Communicator", sendspec: BufferSpec, recvspec: BufferSpec
) -> None:
    """P-step pairwise exchange (paper Fig. 10)."""
    size, rank, chunk, send_flat, recv_flat = _init(comm, sendspec, recvspec)
    # step 0: local copy
    recv_flat[rank * chunk : (rank + 1) * chunk] = send_flat[
        rank * chunk : (rank + 1) * chunk
    ]
    for step in range(1, size):
        dst = (rank + step) % size
        src = (rank - step) % size
        sreq = isend_view(comm, send_flat, dst * chunk, chunk, dst, "alltoall")
        rreq = irecv_view(comm, recv_flat, src * chunk, chunk, src, "alltoall")
        yield from co_complete(comm, [sreq, rreq])


def alltoall_basic_linear(
    comm: "Communicator", sendspec: BufferSpec, recvspec: BufferSpec
) -> None:
    """Post every send and receive at once, wait for all."""
    size, rank, chunk, send_flat, recv_flat = _init(comm, sendspec, recvspec)
    recv_flat[rank * chunk : (rank + 1) * chunk] = send_flat[
        rank * chunk : (rank + 1) * chunk
    ]
    reqs = []
    for peer in range(size):
        if peer == rank:
            continue
        reqs.append(irecv_view(comm, recv_flat, peer * chunk, chunk, peer, "alltoall"))
    for peer in range(size):
        if peer == rank:
            continue
        reqs.append(isend_view(comm, send_flat, peer * chunk, chunk, peer, "alltoall"))
    yield from co_complete(comm, reqs)


def alltoall_bruck(
    comm: "Communicator", sendspec: BufferSpec, recvspec: BufferSpec
) -> None:
    """Bruck's log-round algorithm for short messages."""
    size, rank, chunk, send_flat, recv_flat = _init(comm, sendspec, recvspec)
    dtype = base_dtype(sendspec)
    if size == 1:
        recv_flat[:chunk] = send_flat[:chunk]
        return
    # phase 1: local rotation so block i is destined to (rank + i) % size
    work = np.empty(size * chunk, dtype=dtype.np_dtype)
    for i in range(size):
        src_block = (rank + i) % size
        work[i * chunk : (i + 1) * chunk] = send_flat[
            src_block * chunk : (src_block + 1) * chunk
        ]
    # phase 2: log rounds; round k ships every block whose index has bit k
    incoming = np.empty(size * chunk, dtype=dtype.np_dtype)
    pof2 = 1
    while pof2 < size:
        blocks = [i for i in range(size) if i & pof2]
        n = len(blocks)
        dst = (rank + pof2) % size
        src = (rank - pof2) % size
        outbound = np.concatenate(
            [work[b * chunk : (b + 1) * chunk] for b in blocks]
        ) if n else np.empty(0, dtype=dtype.np_dtype)
        sreq = isend_view(comm, outbound, 0, n * chunk, dst, "alltoall")
        rreq = irecv_view(comm, incoming, 0, n * chunk, src, "alltoall")
        yield from co_complete(comm, [sreq, rreq])
        for j, b in enumerate(blocks):
            work[b * chunk : (b + 1) * chunk] = incoming[j * chunk : (j + 1) * chunk]
        pof2 <<= 1
    # phase 3: inverse rotation; block i of work came from (rank - i) % size
    for i in range(size):
        src_block = (rank - i) % size
        recv_flat[src_block * chunk : (src_block + 1) * chunk] = work[
            i * chunk : (i + 1) * chunk
        ]


def _init_v(comm, sendspec, sendcounts, sdispls, recvspec, recvcounts, rdispls):
    size = comm.size
    rank = comm.Get_rank()
    for name, seq in (
        ("sendcounts", sendcounts), ("sdispls", sdispls),
        ("recvcounts", recvcounts), ("rdispls", rdispls),
    ):
        if len(seq) != size:
            raise MpiError(constants.ERR_COUNT, f"alltoallv {name} needs {size} entries")
    send_flat = flat_view(sendspec)
    recv_flat = flat_view(recvspec)
    # local block first, like step 0 of the pairwise schedule
    recv_flat[rdispls[rank] : rdispls[rank] + recvcounts[rank]] = send_flat[
        sdispls[rank] : sdispls[rank] + sendcounts[rank]
    ]
    return size, rank, send_flat, recv_flat


def alltoallv_basic_linear(
    comm: "Communicator",
    sendspec: BufferSpec,
    sendcounts: list[int],
    sdispls: list[int],
    recvspec: BufferSpec,
    recvcounts: list[int],
    rdispls: list[int],
) -> None:
    """MPI_Alltoallv with the linear schedule: post everything, wait."""
    size, rank, send_flat, recv_flat = _init_v(
        comm, sendspec, sendcounts, sdispls, recvspec, recvcounts, rdispls
    )
    reqs = []
    for peer in range(size):
        if peer == rank or recvcounts[peer] == 0:
            continue
        reqs.append(
            irecv_view(comm, recv_flat, rdispls[peer], recvcounts[peer], peer,
                       "alltoallv")
        )
    for peer in range(size):
        if peer == rank or sendcounts[peer] == 0:
            continue
        reqs.append(
            isend_view(comm, send_flat, sdispls[peer], sendcounts[peer], peer,
                       "alltoallv")
        )
    yield from co_complete(comm, reqs)


def alltoallv_pairwise(
    comm: "Communicator",
    sendspec: BufferSpec,
    sendcounts: list[int],
    sdispls: list[int],
    recvspec: BufferSpec,
    recvcounts: list[int],
    rdispls: list[int],
) -> None:
    """MPI_Alltoallv on the P-step pairwise schedule (paper Fig. 10).

    Each step exchanges with exactly one peer, so a rank never has more
    than one send and one receive in flight — the bounded-contention
    schedule SimGrid's ``pair`` alltoallv algorithm uses.
    """
    size, rank, send_flat, recv_flat = _init_v(
        comm, sendspec, sendcounts, sdispls, recvspec, recvcounts, rdispls
    )
    for step in range(1, size):
        dst = (rank + step) % size
        src = (rank - step) % size
        reqs = []
        if sendcounts[dst]:
            reqs.append(
                isend_view(comm, send_flat, sdispls[dst], sendcounts[dst], dst,
                           "alltoallv")
            )
        if recvcounts[src]:
            reqs.append(
                irecv_view(comm, recv_flat, rdispls[src], recvcounts[src], src,
                           "alltoallv")
            )
        yield from co_complete(comm, reqs)
