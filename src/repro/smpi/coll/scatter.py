"""Scatter algorithms.

``binomial`` is MPICH2's binomial-tree scatter — the algorithm of paper
Figs. 6-9.  The root holds all P chunks; at each step the current holders
hand the *upper half* of their chunk range to a new sub-root, so process
0 first sends 8 chunks to process 8, then 4 to process 4, ... (Fig. 6).
Sends are blocking, exactly like MPICH2's, which is what produces the
per-process completion staircase of Fig. 7 once network contention is
simulated.

``linear`` is the naive root-sends-to-everyone variant, kept for the
ablation benchmarks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ...errors import MpiError
from .. import constants
from ..buffer import BufferSpec, resolve
from .util import (base_dtype, co_complete, co_recv_view, elements_of,
                   flat_view, isend_view)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..comm import Communicator

__all__ = ["scatter_binomial", "scatter_linear", "scatterv_linear",
           "binomial_tree_edges"]


def _root_chunks(comm: "Communicator", sendbuf, chunk: int, root: int) -> np.ndarray:
    """Root's send data reordered so chunk i belongs to relative rank i."""
    spec = sendbuf if isinstance(sendbuf, BufferSpec) else resolve(sendbuf)
    total = comm.size * chunk
    flat = flat_view(spec)
    if flat.size < total:
        raise MpiError(
            constants.ERR_COUNT,
            f"scatter root buffer has {flat.size} elements, needs {total}",
        )
    shift = root * chunk
    if shift == 0:
        return flat[:total]
    return np.concatenate([flat[shift:total], flat[:shift]])


def scatter_binomial(
    comm: "Communicator", sendbuf, recvspec: BufferSpec, root: int
) -> None:
    """MPICH2 binomial-tree scatter (paper Fig. 6)."""
    size = comm.size
    rank = comm.Get_rank()
    relative = (rank - root) % size
    chunk = elements_of(recvspec)
    recv_flat = flat_view(recvspec)
    dtype = base_dtype(recvspec)

    zero_copy = comm.world.config.zero_copy
    if size == 1:
        if sendbuf is not None and not zero_copy:
            recv_flat[:chunk] = _root_chunks(comm, sendbuf, chunk, root)[:chunk]
        return

    if relative == 0:
        held = _root_chunks(comm, sendbuf, chunk, root)
        n_held = size
        mask = 1
        while mask < size:
            mask <<= 1
        mask >>= 1
    else:
        # wait for my block [relative, relative + n_held) from my parent
        mask = 1
        while not (relative & mask):
            mask <<= 1
        parent = (relative - mask + root) % size
        n_held = min(mask, size - relative)
        held = np.empty(n_held * chunk, dtype=dtype.np_dtype)
        req = comm.Irecv(
            [held, n_held * chunk], parent,
            _scatter_tag(), _ctx=comm.ctx + 1,
        )
        yield from co_complete(comm, [req])
        mask >>= 1

    # forward the upper halves of my range, largest sub-tree first
    while mask >= 1:
        child_rel = relative + mask
        if child_rel < size:
            n_child = min(mask, size - child_rel)
            child = (child_rel + root) % size
            view = held[mask * chunk : (mask + n_child) * chunk]
            req = comm.Isend(
                [view, n_child * chunk], child,
                _scatter_tag(), _ctx=comm.ctx + 1,
            )
            yield from co_complete(comm, [req])
        mask >>= 1

    if not zero_copy:
        # under payload folding the bytes are garbage anyway; skipping the
        # local copy keeps simulation cost independent of the data size
        recv_flat[:chunk] = held[:chunk]


def _scatter_tag() -> int:
    from .util import coll_tag

    return coll_tag("scatter")


def scatter_linear(
    comm: "Communicator", sendbuf, recvspec: BufferSpec, root: int
) -> None:
    """Root sends each rank its chunk directly (the strawman variant)."""
    size = comm.size
    rank = comm.Get_rank()
    chunk = elements_of(recvspec)
    recv_flat = flat_view(recvspec)
    if rank == root:
        held = _root_chunks(comm, sendbuf, chunk, root)
        if not comm.world.config.zero_copy:
            recv_flat[:chunk] = held[:chunk]
        reqs = []
        for relative in range(1, size):
            dest = (relative + root) % size
            reqs.append(
                isend_view(comm, held, relative * chunk, chunk, dest, "scatter")
            )
        yield from co_complete(comm, reqs)
    else:
        yield from co_recv_view(comm, recv_flat, 0, chunk, root, "scatter")


def scatterv_linear(
    comm: "Communicator",
    sendbuf,
    counts: list[int],
    displs: list[int],
    recvspec: BufferSpec,
    root: int,
) -> None:
    """MPI_Scatterv: per-rank counts and displacements, linear schedule."""
    size = comm.size
    rank = comm.Get_rank()
    if len(counts) != size or len(displs) != size:
        raise MpiError(
            constants.ERR_COUNT, "scatterv needs one count and displ per rank"
        )
    my_count = elements_of(recvspec)
    if my_count < counts[rank]:
        raise MpiError(
            constants.ERR_COUNT,
            f"rank {rank}: recv buffer smaller than its count {counts[rank]}",
        )
    recv_flat = flat_view(recvspec)
    if rank == root:
        spec = sendbuf if isinstance(sendbuf, BufferSpec) else resolve(sendbuf)
        flat = flat_view(spec)
        recv_flat[: counts[rank]] = flat[displs[rank] : displs[rank] + counts[rank]]
        reqs = []
        for dest in range(size):
            if dest == root or counts[dest] == 0:
                continue
            reqs.append(
                isend_view(comm, flat, displs[dest], counts[dest], dest, "scatterv")
            )
        yield from co_complete(comm, reqs)
    elif counts[rank] > 0:
        yield from co_recv_view(comm, recv_flat, 0, counts[rank], root, "scatterv")


def binomial_tree_edges(size: int, root: int = 0) -> list[tuple[int, int, int]]:
    """The (parent, child, chunks-sent) edges of the binomial scatter tree.

    Regenerates the communication scheme of paper Fig. 6; used by tests
    and by the Fig. 7 benchmark's schematic output.
    """
    edges: list[tuple[int, int, int]] = []

    def descend(relative: int, n_held: int, mask: int) -> None:
        while mask >= 1:
            child = relative + mask
            if child < size:
                n_child = min(mask, size - child)
                edges.append(
                    ((relative + root) % size, (child + root) % size, n_child)
                )
                descend(child, n_child, mask >> 1)
            mask >>= 1

    top = 1
    while top < size:
        top <<= 1
    descend(0, size, top >> 1)
    return edges
