"""Barrier algorithms: dissemination (MPICH2 default) and binomial tree."""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from .util import co_complete, coll_tag

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..comm import Communicator

__all__ = ["barrier_dissemination", "barrier_tree"]

_token = np.zeros(1, dtype=np.uint8)


def barrier_dissemination(comm: "Communicator") -> None:
    """ceil(log2 P) rounds; round k talks to rank ± 2^k (MPICH2 default)."""
    size = comm.size
    if size == 1:
        return
    rank = comm.Get_rank()
    tag = coll_tag("barrier")
    mask = 1
    while mask < size:
        dst = (rank + mask) % size
        src = (rank - mask) % size
        recv = np.zeros(1, dtype=np.uint8)
        rreq = comm.Irecv([recv, 1], src, tag, _ctx=comm.ctx + 1)
        sreq = comm.Isend([_token, 1], dst, tag, _ctx=comm.ctx + 1)
        yield from co_complete(comm, [rreq, sreq])
        mask <<= 1


def barrier_tree(comm: "Communicator") -> None:
    """Binomial fan-in to rank 0 followed by a binomial fan-out."""
    size = comm.size
    if size == 1:
        return
    rank = comm.Get_rank()
    tag = coll_tag("barrier")
    token = np.zeros(1, dtype=np.uint8)

    # fan-in: children report up; a rank's parent is rank - lowbit(rank)
    mask = 1
    while mask < size and not (rank & mask):
        child = rank + mask
        if child < size:
            req = comm.Irecv([token, 1], child, tag, _ctx=comm.ctx + 1)
            yield from co_complete(comm, [req])
        mask <<= 1
    if rank != 0:
        # mask is now lowbit(rank); report to the parent, await release
        req = comm.Isend([_token, 1], rank - mask, tag, _ctx=comm.ctx + 1)
        yield from co_complete(comm, [req])
        req = comm.Irecv([token, 1], rank - mask, tag, _ctx=comm.ctx + 1)
        yield from co_complete(comm, [req])

    # fan-out: release my subtree (children masks below my lowbit)
    mask >>= 1
    while mask >= 1:
        child = rank + mask
        if child < size:
            req = comm.Isend([_token, 1], child, tag, _ctx=comm.ctx + 1)
            yield from co_complete(comm, [req])
        mask >>= 1
