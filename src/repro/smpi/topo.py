"""Cartesian process topologies (extension; MPI_Cart_* family).

Stencil codes — the bread-and-butter workload of the clusters the paper
targets — address neighbours through Cartesian communicators.  This
module implements the MPI-1 topology calculus: dimension factorisation
(``Dims_create``), grid construction over an existing communicator
(``cart_create``), rank↔coordinate mapping and neighbour shifts, plus
sub-grid extraction (``Sub``).  Everything is pure index arithmetic on
top of :class:`~repro.smpi.comm.Communicator`, so the communication
itself still flows through the simulated network.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from ..errors import MpiError
from . import constants

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .comm import Communicator

__all__ = ["CartComm", "cart_create", "dims_create"]


def dims_create(nnodes: int, ndims: int, dims: Sequence[int] | None = None
                ) -> list[int]:
    """MPI_Dims_create: balanced factorisation of ``nnodes`` over ``ndims``.

    Entries of ``dims`` that are non-zero are kept as constraints; zeros
    are filled with a factorisation as square as possible (largest factors
    first, as the standard requires).
    """
    out = list(dims) if dims is not None else [0] * ndims
    if len(out) != ndims:
        raise MpiError(constants.ERR_ARG, "dims length must equal ndims")
    fixed = 1
    free = []
    for index, value in enumerate(out):
        if value < 0:
            raise MpiError(constants.ERR_ARG, "dims entries must be >= 0")
        if value > 0:
            fixed *= value
        else:
            free.append(index)
    remaining, rem = divmod(nnodes, fixed)
    if rem != 0:
        raise MpiError(
            constants.ERR_ARG,
            f"{nnodes} nodes not divisible by fixed dims product {fixed}",
        )
    if not free:
        if remaining != 1:
            raise MpiError(constants.ERR_ARG, "dims do not cover all nodes")
        return out

    # factor `remaining` into len(free) near-equal factors
    factors = [1] * len(free)
    n = remaining
    divisor = 2
    primes: list[int] = []
    while divisor * divisor <= n:
        while n % divisor == 0:
            primes.append(divisor)
            n //= divisor
        divisor += 1
    if n > 1:
        primes.append(n)
    for prime in sorted(primes, reverse=True):
        smallest = factors.index(min(factors))
        factors[smallest] *= prime
    for index, factor in zip(free, sorted(factors, reverse=True)):
        out[index] = factor
    return out


class CartComm:
    """A communicator with Cartesian topology metadata."""

    def __init__(self, comm: "Communicator", dims: list[int],
                 periods: list[bool]):
        self.comm = comm
        self.dims = list(dims)
        self.periods = list(periods)

    # -- identity -----------------------------------------------------------------------

    @property
    def ndims(self) -> int:
        return len(self.dims)

    def Get_rank(self) -> int:
        return self.comm.Get_rank()

    @property
    def rank(self) -> int:
        return self.comm.Get_rank()

    @property
    def size(self) -> int:
        return self.comm.size

    # -- coordinate calculus ----------------------------------------------------------------

    def Get_coords(self, rank: int) -> list[int]:
        """MPI_Cart_coords: row-major rank -> coordinates."""
        if not 0 <= rank < self.comm.size:
            raise MpiError(constants.ERR_RANK, f"rank {rank} out of range")
        coords = []
        for extent in reversed(self.dims):
            coords.append(rank % extent)
            rank //= extent
        return list(reversed(coords))

    def Get_cart_rank(self, coords: Sequence[int]) -> int:
        """MPI_Cart_rank: coordinates -> rank (periodic wrap where allowed)."""
        if len(coords) != self.ndims:
            raise MpiError(constants.ERR_ARG, "wrong number of coordinates")
        rank = 0
        for coord, extent, periodic in zip(coords, self.dims, self.periods):
            if periodic:
                coord %= extent
            elif not 0 <= coord < extent:
                raise MpiError(
                    constants.ERR_ARG,
                    f"coordinate {coord} outside non-periodic extent {extent}",
                )
            rank = rank * extent + coord
        return rank

    def Shift(self, direction: int, disp: int = 1) -> tuple[int, int]:
        """MPI_Cart_shift -> (source, destination) ranks for a shift.

        Off-grid neighbours of non-periodic dimensions are PROC_NULL, so
        Sendrecv-based halo exchanges work unchanged at the boundary.
        """
        if not 0 <= direction < self.ndims:
            raise MpiError(constants.ERR_ARG, f"bad direction {direction}")
        me = self.Get_coords(self.Get_rank())

        def neighbour(offset: int) -> int:
            coords = list(me)
            coords[direction] += offset
            extent = self.dims[direction]
            if self.periods[direction]:
                coords[direction] %= extent
            elif not 0 <= coords[direction] < extent:
                return constants.PROC_NULL
            return self.Get_cart_rank(coords)

        return neighbour(-disp), neighbour(+disp)

    def Sub(self, remain_dims: Sequence[bool]) -> "CartComm":
        """MPI_Cart_sub: split into sub-grids keeping the flagged dims."""
        if len(remain_dims) != self.ndims:
            raise MpiError(constants.ERR_ARG, "remain_dims length mismatch")
        me = self.Get_coords(self.Get_rank())
        # colour = the dropped coordinates; key = position within the kept grid
        color = 0
        key = 0
        for coord, extent, keep in zip(me, self.dims, remain_dims):
            if keep:
                key = key * extent + coord
            else:
                color = color * extent + coord
        sub = self.comm.Split(color, key)
        assert sub is not None
        kept_dims = [d for d, keep in zip(self.dims, remain_dims) if keep]
        kept_periods = [p for p, keep in zip(self.periods, remain_dims) if keep]
        return CartComm(sub, kept_dims or [1], kept_periods or [False])

    # -- passthrough to the underlying communicator -----------------------------------------

    def __getattr__(self, name: str):
        return getattr(self.comm, name)


def cart_create(
    comm: "Communicator",
    dims: Sequence[int],
    periods: Sequence[bool] | None = None,
    reorder: bool = False,
) -> CartComm | None:
    """MPI_Cart_create over an existing communicator.

    Ranks beyond the grid size get None (MPI_COMM_NULL); ``reorder`` is
    accepted for API fidelity but rank order is always kept (the simulated
    platform has no locality the reordering could exploit yet).
    """
    dims = list(dims)
    total = 1
    for extent in dims:
        if extent < 1:
            raise MpiError(constants.ERR_ARG, f"bad dimension extent {extent}")
        total *= extent
    if total > comm.size:
        raise MpiError(
            constants.ERR_ARG,
            f"grid of {total} ranks exceeds communicator size {comm.size}",
        )
    periods = list(periods) if periods is not None else [False] * len(dims)
    if len(periods) != len(dims):
        raise MpiError(constants.ERR_ARG, "periods length must match dims")
    del reorder
    in_grid = comm.Get_rank() < total
    sub = comm.Split(0 if in_grid else constants.UNDEFINED, comm.Get_rank())
    if not in_grid:
        return None
    assert sub is not None
    return CartComm(sub, dims, periods)
