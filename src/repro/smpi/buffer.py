"""Buffer-specification handling (mpi4py conventions).

The "upper-case" MPI calls take buffer arguments that may be

* a NumPy array — count and datatype inferred (automatic discovery),
* ``[array, count]`` — datatype inferred from the array dtype,
* ``[array, count, datatype]`` — fully explicit,
* ``[array, datatype]`` — count inferred from the array size.

:func:`resolve` normalises all of these to a :class:`BufferSpec`.  For
generic-object ("lower-case") calls the payload is pickled into a byte
array by :func:`pack_object` / :func:`unpack_object`.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..errors import MpiError
from . import constants
from .datatype import BYTE, Datatype, from_numpy_dtype
from .intern import BufferDescriptor, datatype_signature, intern_descriptor

__all__ = ["BufferSpec", "resolve", "pack_object", "unpack_object"]


@dataclass
class BufferSpec:
    """A normalised (array, count, datatype) triple."""

    array: np.ndarray
    count: int
    datatype: Datatype

    @property
    def nbytes(self) -> int:
        return self.count * self.datatype.size

    @property
    def descriptor(self) -> BufferDescriptor:
        """The interned shape of this buffer (count + datatype signature).

        Every rank of a folded application resolves the same specs, so
        the descriptors — unlike the arrays — are perfect interning
        candidates: one :class:`~repro.smpi.intern.BufferDescriptor`
        object serves all 10k ranks.
        """
        return intern_descriptor(self.count, self.datatype)

    @property
    def signature(self) -> tuple:
        """Interned (name, size, extent) signature of the datatype."""
        return datatype_signature(self.datatype)

    def pack(self) -> np.ndarray:
        """Contiguous uint8 representation of the data to send."""
        return self.datatype.pack(self.array, self.count)

    def unpack(self, data: np.ndarray) -> None:
        """Fill the buffer from received bytes (truncation is an error)."""
        received = data.size
        if received > self.nbytes:
            raise MpiError(
                constants.ERR_TRUNCATE,
                f"message of {received} B overflows buffer of {self.nbytes} B",
            )
        if received == 0:
            return
        if received % self.datatype.size != 0:
            raise MpiError(
                constants.ERR_TYPE,
                f"{received} B is not a whole number of {self.datatype.name}",
            )
        self.datatype.unpack(data, self.array, received // self.datatype.size)


def resolve(buf: Any, default_count: int | None = None) -> BufferSpec:
    """Normalise any accepted buffer argument to a :class:`BufferSpec`."""
    count: int | None = default_count
    datatype: Datatype | None = None

    if isinstance(buf, (list, tuple)):
        if not buf or not 1 <= len(buf) <= 3:
            raise MpiError(constants.ERR_BUFFER, f"bad buffer spec of length {len(buf)}")
        array = buf[0]
        for extra in buf[1:]:
            if isinstance(extra, Datatype):
                datatype = extra
            elif isinstance(extra, (int, np.integer)):
                count = int(extra)
            else:
                raise MpiError(
                    constants.ERR_BUFFER,
                    f"buffer spec extras must be count/datatype, got {type(extra).__name__}",
                )
    else:
        array = buf

    array = np.asarray(array)
    if datatype is None:
        datatype = from_numpy_dtype(array.dtype)
    if count is None:
        if datatype.extent == 0:
            raise MpiError(constants.ERR_TYPE, "zero-extent datatype needs a count")
        count = (array.size * array.itemsize) // datatype.extent
    if count < 0:
        raise MpiError(constants.ERR_COUNT, f"negative count {count}")
    return BufferSpec(array, count, datatype)


def pack_object(obj: Any) -> BufferSpec:
    """Pickle a Python object into a byte BufferSpec (lower-case API)."""
    raw = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    arr = np.frombuffer(raw, dtype=np.uint8).copy()
    return BufferSpec(arr, arr.size, BYTE)


def unpack_object(data: np.ndarray) -> Any:
    """Reconstruct a Python object from received bytes."""
    return pickle.loads(data.tobytes())
