"""Reduction operators: MPI predefined ops plus user-defined ones.

Each :class:`Op` reduces two NumPy arrays element-wise.  The predefined
operators map onto NumPy ufuncs and are therefore vectorised; user-defined
operators wrap an arbitrary ``f(invec, inoutvec) -> outvec`` callable
(MPI_Op_create).  Commutativity matters for reduction-tree algorithms:
non-commutative ops force rank-ordered combining, which the collective
implementations honour.
"""

from __future__ import annotations

import numpy as np

from ..errors import MpiError
from . import constants

__all__ = [
    "Op",
    "SUM",
    "PROD",
    "MAX",
    "MIN",
    "LAND",
    "LOR",
    "LXOR",
    "BAND",
    "BOR",
    "BXOR",
    "MAXLOC",
    "MINLOC",
    "create",
]


class Op:
    """A binary reduction operator over equal-shape arrays."""

    def __init__(self, name: str, func, commutative: bool = True):
        self.name = name
        self.func = func
        self.commutative = commutative

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Reduce ``a`` (earlier-rank data) with ``b`` (later-rank data)."""
        result = self.func(a, b)
        out = np.asarray(result)
        if out.shape != np.asarray(a).shape:
            raise MpiError(
                constants.ERR_OP,
                f"operator {self.name} changed the buffer shape "
                f"{np.asarray(a).shape} -> {out.shape}",
            )
        return out

    def free(self) -> None:
        """MPI_Op_free (no-op; kept for API fidelity)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = "commutative" if self.commutative else "non-commutative"
        return f"Op({self.name!r}, {tag})"


def _logical(ufunc):
    def apply(a, b):
        return ufunc(a.astype(bool), b.astype(bool)).astype(a.dtype)

    return apply


def _maxloc(a, b):
    """Pairs (value, index): keep the max value, lowest index on ties.

    Buffers are structured arrays or 2-column arrays; we support the
    2-column float convention ``[..., (value, index)]``.
    """
    a2 = np.asarray(a).reshape(-1, 2)
    b2 = np.asarray(b).reshape(-1, 2)
    take_b = (b2[:, 0] > a2[:, 0]) | ((b2[:, 0] == a2[:, 0]) & (b2[:, 1] < a2[:, 1]))
    out = np.where(take_b[:, None], b2, a2)
    return out.reshape(np.asarray(a).shape)


def _minloc(a, b):
    a2 = np.asarray(a).reshape(-1, 2)
    b2 = np.asarray(b).reshape(-1, 2)
    take_b = (b2[:, 0] < a2[:, 0]) | ((b2[:, 0] == a2[:, 0]) & (b2[:, 1] < a2[:, 1]))
    out = np.where(take_b[:, None], b2, a2)
    return out.reshape(np.asarray(a).shape)


SUM = Op("MPI_SUM", np.add)
PROD = Op("MPI_PROD", np.multiply)
MAX = Op("MPI_MAX", np.maximum)
MIN = Op("MPI_MIN", np.minimum)
LAND = Op("MPI_LAND", _logical(np.logical_and))
LOR = Op("MPI_LOR", _logical(np.logical_or))
LXOR = Op("MPI_LXOR", _logical(np.logical_xor))
BAND = Op("MPI_BAND", np.bitwise_and)
BOR = Op("MPI_BOR", np.bitwise_or)
BXOR = Op("MPI_BXOR", np.bitwise_xor)
MAXLOC = Op("MPI_MAXLOC", _maxloc)
MINLOC = Op("MPI_MINLOC", _minloc)


def create(func, commute: bool = True, name: str = "user_op") -> Op:
    """MPI_Op_create: wrap a user callable into an operator."""
    if not callable(func):
        raise MpiError(constants.ERR_OP, "operator must be callable")
    return Op(name, func, commutative=commute)
