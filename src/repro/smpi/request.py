"""MPI requests: the nonblocking and persistent operation handles.

The paper's SMPI supports Send_init, Recv_init, Start, Startall, Isend,
Irecv, Test, Testany, Wait, Waitany, Waitall and Waitsome; all are here,
plus Testall/Testsome for completeness.  A request completes when the
underlying message protocol (:mod:`repro.smpi.pt2pt`) says so; completion
wakes the owning actor, and the Wait/Test family is implemented as
predicate waits so spurious wake-ups are harmless.

Persistent requests hold their arguments and can be (re)activated with
``Start`` any number of times; per the MPI standard, completing a
persistent request makes it *inactive* rather than freeing it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from ..errors import MpiError
from ..seq import Sequencer
from ..simix.contexts import run_blocking
from . import constants
from .status import Status

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .pt2pt import Message
    from .runtime import SmpiWorld

__all__ = [
    "Request",
    "PersistentRequest",
    "REQUEST_NULL",
    "wait",
    "test",
    "waitall",
    "testall",
    "waitany",
    "testany",
    "waitsome",
    "testsome",
    "startall",
    "co_wait",
    "co_test",
    "co_waitall",
    "co_testall",
    "co_waitany",
    "co_testany",
    "co_waitsome",
    "co_testsome",
]

#: a Sequencer so replay checkpoints can record the position and a
#: restored run can re-stamp the serialized rids, then fast-forward
_ids = Sequencer()


class Request:
    """Handle of one in-flight point-to-point operation.

    Slotted and pooled: completed requests recycle through
    :meth:`~repro.smpi.runtime.SmpiWorld.release_request` /
    ``acquire_request`` free lists.  A recycled request draws a *fresh*
    ``rid`` from the module sequencer, so the rid stream — which heap
    tie-breaks and snapshots depend on — is identical with and without
    pooling.
    """

    __slots__ = (
        "rid", "world", "kind", "owner_rank", "complete", "cancelled",
        "source", "tag", "received_bytes", "message", "trace_id", "meta",
        "error_exc", "raw_data", "_recv_buffer", "_on_complete",
    )

    def __init__(self, world: "SmpiWorld | None", kind: str, owner_rank: int):
        #: deferred buffer delivery, run at completion (receiver side)
        self._on_complete: list[Callable[[], None]] = []
        self._reset(world, kind, owner_rank)

    def _reset(self, world: "SmpiWorld | None", kind: str,
               owner_rank: int) -> None:
        """(Re)initialize for one operation; the pool's reuse hook."""
        self.rid = next(_ids)
        self.world = world
        self.kind = kind  # "send" | "recv" | "null"
        self.owner_rank = owner_rank
        self.complete = False
        self.cancelled = False
        #: filled by the protocol at completion time
        self.source = constants.ANY_SOURCE
        self.tag = constants.ANY_TAG
        self.received_bytes = 0
        self.message: "Message | None" = None
        #: id in the recorded time-independent trace, if recording
        self.trace_id: int | None = None
        #: interned envelope metadata ``(kind, tag, ctx, nbytes)`` stamped
        #: by the protocol — one tuple object per distinct envelope shape,
        #: however many requests carry it (see :mod:`repro.smpi.intern`)
        self.meta: tuple | None = None
        #: delivery-time failure (e.g. truncation), re-raised in the
        #: owning rank when it waits/tests the request
        self.error_exc: BaseException | None = None
        #: payload of a raw-bytes (object-API) receive, set at delivery
        self.raw_data = None
        #: receive-buffer spec stashed by the protocol at match time
        self._recv_buffer = None

    # -- protocol side ---------------------------------------------------------------

    def add_completion_hook(self, hook: Callable[[], None]) -> None:
        if self.complete:
            hook()
        else:
            self._on_complete.append(hook)

    def finish(self) -> None:
        """Mark complete and wake the owning actor."""
        if self.complete:
            return
        self.complete = True
        hooks, self._on_complete = self._on_complete, []
        for hook in hooks:
            hook()
        if self.world is not None:
            self.world.wake_rank(self.owner_rank)

    # -- user side -----------------------------------------------------------------------

    @property
    def is_null(self) -> bool:
        return self.kind == "null"

    def make_status(self) -> Status:
        if self.error_exc is not None:
            raise self.error_exc
        return Status(
            source=self.source,
            tag=self.tag,
            error=constants.SUCCESS,
            count_bytes=self.received_bytes,
            cancelled=self.cancelled,
        )

    def cancel(self) -> None:
        """MPI_Cancel: only not-yet-matched receives can be cancelled."""
        if self.complete or self.is_null:
            return
        if self.kind != "recv" or self.message is not None:
            raise MpiError(
                constants.ERR_REQUEST, "only unmatched receives can be cancelled"
            )
        assert self.world is not None
        self.world.protocol.cancel_recv(self)
        self.cancelled = True
        self.finish()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "complete" if self.complete else "pending"
        return f"Request(#{self.rid} {self.kind} {state})"


#: The null request: always complete, empty status (MPI_REQUEST_NULL).
REQUEST_NULL = Request(None, "null", -1)
REQUEST_NULL.complete = True


class PersistentRequest(Request):
    """MPI_Send_init / MPI_Recv_init handle.

    Holds a thunk that performs one activation; ``Start`` runs it and
    grafts the resulting live request's completion onto this handle.
    """

    __slots__ = ("_activate", "active", "_live")

    def __init__(
        self,
        world: "SmpiWorld",
        kind: str,
        owner_rank: int,
        activate: Callable[[], Request],
    ) -> None:
        super().__init__(world, kind, owner_rank)
        self._activate = activate
        self.active = False
        self.complete = True  # inactive persistent requests test as complete
        self._live: Request | None = None

    def start(self) -> None:
        """MPI_Start: begin one round of the stored operation."""
        if self.active:
            raise MpiError(constants.ERR_REQUEST, "request already active")
        stale, self._live = self._live, None
        if stale is not None and self.world is not None:
            # the previous round's live request is done and unreachable
            self.world.release_request(stale)
        self.active = True
        self.complete = False
        live = self._activate()
        self._live = live
        self.trace_id = live.trace_id

        def on_done() -> None:
            self.source = live.source
            self.tag = live.tag
            self.received_bytes = live.received_bytes
            self.active = False
            self.finish()

        live.add_completion_hook(on_done)

    def finish(self) -> None:
        # persistent completion leaves the handle reusable
        if self.complete:
            return
        self.complete = True
        hooks, self._on_complete = self._on_complete, []
        for hook in hooks:
            hook()
        if self.world is not None:
            self.world.wake_rank(self.owner_rank)


# -- wait / test family ------------------------------------------------------------------
# These are module-level functions operating on request lists; the
# Communicator exposes bound versions.  All run on the calling actor's
# execution context; ``world.current_actor`` supplies the waiter.  Each
# blocking call has one canonical implementation, a ``co_*`` generator
# that works on every context backend; the synchronous name drives that
# same generator in-stack, so both dialects suspend at identical points
# and backends stay bit-identical.


def _record_wait(requests: list[Request]) -> None:
    """Append a wait dependency to the TI trace, if one is being recorded."""
    traced = [
        r for r in requests
        if r.world is not None and r.trace_id is not None
    ]
    if not traced:
        return
    world = traced[0].world
    if world.recorder is not None:
        world.recorder.wait(
            world.current_rank, [r.trace_id for r in traced]
        )


def _world_of(requests: list[Request]) -> "SmpiWorld":
    for req in requests:
        if req.world is not None:
            return req.world
    raise MpiError(constants.ERR_REQUEST, "no live request to wait on")


def _describe_requests(requests: list[Request]) -> str:
    """Short label of what is being waited on, for deadlock reports."""

    def one(req: Request) -> str:
        message = req.message
        if message is not None:
            return f"{req.kind} {message.src}->{message.dst} tag {message.tag}"
        if req.meta is not None:  # envelope known even before matching
            _kind, tag, _ctx, *_rest = req.meta
            return f"unmatched {req.kind} tag {tag}"
        return f"unmatched {req.kind}"

    parts = [one(r) for r in requests[:4]]
    if len(requests) > 4:
        parts.append(f"+{len(requests) - 4} more")
    return ", ".join(parts)


def wait(request: Request) -> Status:
    """MPI_Wait: block until the request completes; returns its status."""
    return run_blocking(co_wait(request),
                        lambda: request.world.current_actor)


def co_wait(request: Request):
    """Generator twin of :func:`wait` (canonical implementation)."""
    _record_wait([request])
    if request.is_null or request.complete:
        return request.make_status()
    assert request.world is not None
    actor = request.world.current_actor
    yield from actor.co_wait_for(
        lambda: request.complete,
        reason=f"in MPI_Wait: {_describe_requests([request])}")
    return request.make_status()


def test(request: Request) -> tuple[bool, Status | None]:
    """MPI_Test: non-blocking completion check."""
    return run_blocking(co_test(request),
                        lambda: request.world.current_actor)


def co_test(request: Request):
    """Generator twin of :func:`test` (canonical implementation)."""
    if request.is_null:
        return True, request.make_status()
    if request.complete:
        _record_wait([request])
        return True, request.make_status()
    # Let simulated time progress a little (SMPI's smpi/test knob);
    # a pure context-yield would let a Test spin-loop stall the clock.
    assert request.world is not None
    yield from request.world.co_tiny_progress()
    if request.complete:
        _record_wait([request])
        return True, request.make_status()
    return False, None


def waitall(requests: list[Request]) -> list[Status]:
    """MPI_Waitall."""
    return run_blocking(co_waitall(requests),
                        lambda: _world_of(requests).current_actor)


def co_waitall(requests: list[Request]):
    """Generator twin of :func:`waitall` (canonical implementation)."""
    _record_wait(requests)
    live = [r for r in requests if not r.is_null and not r.complete]
    if live:
        actor = _world_of(live).current_actor
        yield from actor.co_wait_for(
            lambda: all(r.complete for r in live),
            reason=f"in MPI_Waitall: {_describe_requests(live)}")
    return [r.make_status() for r in requests]


def testall(requests: list[Request]) -> tuple[bool, list[Status] | None]:
    """MPI_Testall."""
    return run_blocking(co_testall(requests),
                        lambda: _world_of(requests).current_actor)


def co_testall(requests: list[Request]):
    """Generator twin of :func:`testall` (canonical implementation)."""
    if all(r.is_null or r.complete for r in requests):
        return True, [r.make_status() for r in requests]
    live = [r for r in requests if r.world is not None]
    if live:
        yield from _world_of(live).co_tiny_progress()
        if all(r.is_null or r.complete for r in requests):
            return True, [r.make_status() for r in requests]
    return False, None


def waitany(requests: list[Request]) -> tuple[int, Status]:
    """MPI_Waitany: index of the first completing request + its status."""
    return run_blocking(co_waitany(requests),
                        lambda: _world_of(requests).current_actor)


def co_waitany(requests: list[Request]):
    """Generator twin of :func:`waitany` (canonical implementation)."""
    if all(r.is_null for r in requests):
        return constants.UNDEFINED, Status()

    def ready() -> int | None:
        for index, req in enumerate(requests):
            if not req.is_null and req.complete:
                return index
        return None

    idx = ready()
    if idx is None:
        actor = _world_of(requests).current_actor
        yield from actor.co_wait_for(
            lambda: ready() is not None,
            reason=f"in MPI_Waitany: {_describe_requests(requests)}")
        idx = ready()
    assert idx is not None
    _record_wait([requests[idx]])
    return idx, requests[idx].make_status()


def testany(requests: list[Request]) -> tuple[bool, int, Status | None]:
    """MPI_Testany -> (flag, index, status)."""
    return run_blocking(co_testany(requests),
                        lambda: _world_of(requests).current_actor)


def co_testany(requests: list[Request]):
    """Generator twin of :func:`testany` (canonical implementation)."""
    if all(r.is_null for r in requests):
        return True, constants.UNDEFINED, Status()
    for index, req in enumerate(requests):
        if not req.is_null and req.complete:
            return True, index, req.make_status()
    yield from _world_of(requests).co_tiny_progress()
    for index, req in enumerate(requests):
        if not req.is_null and req.complete:
            return True, index, req.make_status()
    return False, constants.UNDEFINED, None


def waitsome(requests: list[Request]) -> tuple[list[int], list[Status]]:
    """MPI_Waitsome: indices of every completed request (at least one)."""
    return run_blocking(co_waitsome(requests),
                        lambda: _world_of(requests).current_actor)


def co_waitsome(requests: list[Request]):
    """Generator twin of :func:`waitsome` (canonical implementation)."""
    if all(r.is_null for r in requests):
        return [], []

    def done_indices() -> list[int]:
        return [
            i for i, r in enumerate(requests) if not r.is_null and r.complete
        ]

    indices = done_indices()
    if not indices:
        actor = _world_of(requests).current_actor
        yield from actor.co_wait_for(
            lambda: bool(done_indices()),
            reason=f"in MPI_Waitsome: {_describe_requests(requests)}")
        indices = done_indices()
    _record_wait([requests[i] for i in indices])
    return indices, [requests[i].make_status() for i in indices]


def testsome(requests: list[Request]) -> tuple[list[int], list[Status]]:
    """MPI_Testsome: possibly-empty list of completed indices."""
    return run_blocking(co_testsome(requests),
                        lambda: _world_of(requests).current_actor)


def co_testsome(requests: list[Request]):
    """Generator twin of :func:`testsome` (canonical implementation)."""
    if all(r.is_null for r in requests):
        return [], []
    yield from _world_of(requests).co_tiny_progress()
    indices = [i for i, r in enumerate(requests) if not r.is_null and r.complete]
    return indices, [requests[i].make_status() for i in indices]


def startall(requests: list[Request]) -> None:
    """MPI_Startall."""
    for req in requests:
        if not isinstance(req, PersistentRequest):
            raise MpiError(
                constants.ERR_REQUEST, "Startall needs persistent requests"
            )
        req.start()
