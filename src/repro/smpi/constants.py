"""MPI constants: error classes, wildcards, reserved values.

Numeric values follow MPICH2's layout where it matters (SUCCESS == 0);
the rest only need to be distinct.  The paper's SMPI exposes "error codes"
as part of its supported subset (section 5.1) — we reproduce the error
classes that the implemented primitives can actually raise.
"""

from __future__ import annotations

__all__ = [
    "SUCCESS",
    "ERR_BUFFER",
    "ERR_COUNT",
    "ERR_TYPE",
    "ERR_TAG",
    "ERR_COMM",
    "ERR_RANK",
    "ERR_REQUEST",
    "ERR_ROOT",
    "ERR_GROUP",
    "ERR_OP",
    "ERR_TOPOLOGY",
    "ERR_ARG",
    "ERR_TRUNCATE",
    "ERR_OTHER",
    "ERR_INTERN",
    "ERR_PENDING",
    "ERR_IN_STATUS",
    "ERR_PROC_FAILED",
    "ANY_SOURCE",
    "ANY_TAG",
    "IN_PLACE",
    "PROC_NULL",
    "ROOT",
    "UNDEFINED",
    "TAG_UB",
    "COLL_TAG_BASE",
    "error_string",
]

# -- error classes (MPI-1 numbering) ------------------------------------------
SUCCESS = 0
ERR_BUFFER = 1
ERR_COUNT = 2
ERR_TYPE = 3
ERR_TAG = 4
ERR_COMM = 5
ERR_RANK = 6
ERR_REQUEST = 7
ERR_ROOT = 8
ERR_GROUP = 9
ERR_OP = 10
ERR_TOPOLOGY = 11
ERR_ARG = 13
ERR_TRUNCATE = 15
ERR_OTHER = 16
ERR_INTERN = 17
ERR_IN_STATUS = 18
ERR_PENDING = 19
#: peer process is dead (host failed); numbering follows ULFM's
#: MPIX_ERR_PROC_FAILED being allocated above the MPI-1 classes
ERR_PROC_FAILED = 20

_ERROR_NAMES = {
    SUCCESS: "MPI_SUCCESS",
    ERR_BUFFER: "MPI_ERR_BUFFER",
    ERR_COUNT: "MPI_ERR_COUNT",
    ERR_TYPE: "MPI_ERR_TYPE",
    ERR_TAG: "MPI_ERR_TAG",
    ERR_COMM: "MPI_ERR_COMM",
    ERR_RANK: "MPI_ERR_RANK",
    ERR_REQUEST: "MPI_ERR_REQUEST",
    ERR_ROOT: "MPI_ERR_ROOT",
    ERR_GROUP: "MPI_ERR_GROUP",
    ERR_OP: "MPI_ERR_OP",
    ERR_TOPOLOGY: "MPI_ERR_TOPOLOGY",
    ERR_ARG: "MPI_ERR_ARG",
    ERR_TRUNCATE: "MPI_ERR_TRUNCATE",
    ERR_OTHER: "MPI_ERR_OTHER",
    ERR_INTERN: "MPI_ERR_INTERN",
    ERR_IN_STATUS: "MPI_ERR_IN_STATUS",
    ERR_PENDING: "MPI_ERR_PENDING",
    ERR_PROC_FAILED: "MPI_ERR_PROC_FAILED",
}


def error_string(code: int) -> str:
    """MPI_Error_string: symbolic name of an error class."""
    return _ERROR_NAMES.get(code, f"MPI_ERR_UNKNOWN({code})")


# -- special ranks / tags --------------------------------------------------------
ANY_SOURCE = -1
ANY_TAG = -1
PROC_NULL = -2
ROOT = -3
UNDEFINED = -32766

#: Largest user tag (MPI guarantees >= 32767); negative tags are reserved
#: for collective-internal traffic.
TAG_UB = 2**30

#: Internal tags for collectives start here (collectives run in a separate
#: communicator context anyway; distinct tags keep traces readable).
COLL_TAG_BASE = -1000


class _InPlace:
    """Singleton sentinel for MPI_IN_PLACE."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "MPI_IN_PLACE"


#: MPI_IN_PLACE: pass as the send buffer to reduce in place (Allreduce,
#: Allgather, and at the root of Reduce/Gather/Scatter).
IN_PLACE = _InPlace()
