"""Simulated heap accounting — the measurement substrate of Fig. 16.

The paper reports the per-process maximum resident set size (RSS) of DT
runs with and without RAM folding.  We account the simulated heap
explicitly instead of reading ``/proc``: every allocation made through
``mpi.malloc`` is charged to its rank, every ``mpi.shared_malloc`` is
charged once to a global *shared* pool (that is the folding), and the
tracker records per-rank peaks.  With ``enforce`` on, exceeding the host
budget raises :class:`~repro.errors.OutOfMemoryError`, reproducing the
"OM" out-of-memory bars.

A fixed per-rank baseline models the stack/runtime footprint each MPI
process would have ("RSS" is never zero in practice).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import OutOfMemoryError

__all__ = ["MemoryTracker", "MemoryReport"]

#: runtime baseline charged to every rank (thread stack + runtime state)
RANK_BASELINE = 64 * 1024


@dataclass
class MemoryReport:
    """Snapshot of the tracker for result tables."""

    per_rank_peak: list[int]
    shared_peak: int
    total_peak: int
    #: bytes all interned-state acquirers would hold without folding
    #: (shared_malloc refs + payload/descriptor interning), at the peak
    intern_naive_peak: int = 0
    #: bytes the interning pools actually held at that peak
    intern_stored_peak: int = 0

    @property
    def intern_saved(self) -> int:
        """Peak bytes rank-state interning avoided allocating."""
        return self.intern_naive_peak - self.intern_stored_peak

    @property
    def max_rank_rss(self) -> int:
        """Per-process maximum RSS — the y-axis of Fig. 16.

        Each rank's RSS is its private heap plus its view of the shared
        pool (shared pages are resident once but appear in every process's
        RSS; with threads there is a single process, so we attribute the
        shared pool fully — the conservative choice).
        """
        if not self.per_rank_peak:
            return self.shared_peak
        return max(self.per_rank_peak) + self.shared_peak


class MemoryTracker:
    """Per-rank and shared simulated-heap accounting."""

    def __init__(self, n_ranks: int, limit: int | None = None, enforce: bool = False):
        self.n_ranks = n_ranks
        self.limit = limit
        self.enforce = enforce
        self._rank_current = [RANK_BASELINE] * n_ranks
        self._rank_peak = [RANK_BASELINE] * n_ranks
        self._shared_current = 0
        self._shared_peak = 0
        self._total_peak = RANK_BASELINE * n_ranks
        self._intern_naive = 0
        self._intern_stored = 0
        self._intern_naive_peak = 0
        self._intern_stored_at_naive_peak = 0

    # -- accounting -----------------------------------------------------------------

    @property
    def total_current(self) -> int:
        return sum(self._rank_current) + self._shared_current

    def _check(self, extra: int, rank: int | None = None) -> None:
        if self.enforce and self.limit is not None:
            in_use = self.total_current
            if in_use + extra > self.limit:
                raise OutOfMemoryError(
                    extra,
                    in_use,
                    self.limit,
                    rank=rank,
                    rank_bytes=(
                        None if rank is None else self._rank_current[rank]
                    ),
                    shared_bytes=self._shared_current,
                )

    def allocate(self, rank: int, nbytes: int) -> None:
        """Charge a private allocation to ``rank``."""
        self._check(nbytes, rank=rank)
        self._rank_current[rank] += nbytes
        self._rank_peak[rank] = max(self._rank_peak[rank], self._rank_current[rank])
        self._total_peak = max(self._total_peak, self.total_current)

    def free(self, rank: int, nbytes: int) -> None:
        self._rank_current[rank] -= nbytes
        if self._rank_current[rank] < 0:  # double free in user code
            self._rank_current[rank] = 0

    def note_intern(self, naive_delta: int, stored_delta: int) -> None:
        """Record interned-state accounting (pools report through here).

        *Naive* bytes are what un-interned copies would cost, *stored*
        bytes what the pools actually hold; the peak pair lands in
        :class:`MemoryReport` so the folding win is measurable.  Interned
        state is never charged against the enforcement limit — it exists
        precisely because those copies were **not** allocated.
        """
        self._intern_naive += naive_delta
        self._intern_stored += stored_delta
        if self._intern_naive > self._intern_naive_peak:
            self._intern_naive_peak = self._intern_naive
            self._intern_stored_at_naive_peak = self._intern_stored

    def allocate_shared(self, nbytes: int) -> None:
        """Charge a folded allocation once, globally."""
        self._check(nbytes)
        self._shared_current += nbytes
        self._shared_peak = max(self._shared_peak, self._shared_current)
        self._total_peak = max(self._total_peak, self.total_current)

    def free_shared(self, nbytes: int) -> None:
        self._shared_current = max(0, self._shared_current - nbytes)

    # -- reporting -------------------------------------------------------------------

    def report(self) -> MemoryReport:
        return MemoryReport(
            per_rank_peak=list(self._rank_peak),
            shared_peak=self._shared_peak,
            total_peak=self._total_peak,
            intern_naive_peak=self._intern_naive_peak,
            intern_stored_peak=self._intern_stored_at_naive_peak,
        )
