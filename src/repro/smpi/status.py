"""MPI_Status: the receive-side metadata object."""

from __future__ import annotations

from dataclasses import dataclass, field

from . import constants
from .datatype import Datatype

__all__ = ["Status"]


@dataclass
class Status:
    """Source, tag, error and received byte count of a completed receive."""

    source: int = constants.ANY_SOURCE
    tag: int = constants.ANY_TAG
    error: int = constants.SUCCESS
    #: bytes actually received (MPI keeps this opaque; we expose it)
    count_bytes: int = 0
    cancelled: bool = field(default=False, repr=False)

    def get_count(self, datatype: Datatype) -> int:
        """MPI_Get_count: elements received, or UNDEFINED if not integral."""
        if datatype.size == 0:
            return 0
        quotient, remainder = divmod(self.count_bytes, datatype.size)
        return quotient if remainder == 0 else constants.UNDEFINED

    def get_elements(self, datatype: Datatype) -> int:
        """MPI_Get_elements (identical to get_count for our types)."""
        return self.get_count(datatype)

    def is_cancelled(self) -> bool:
        return self.cancelled
