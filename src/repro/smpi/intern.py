"""Content-keyed interning pool — RAM folding beyond user arrays.

The paper's ``SMPI_SHARED_MALLOC`` folds identical per-rank *user* arrays
into one allocation (:mod:`repro.smpi.shared`).  At 10k+ ranks the same
redundancy appears one layer down: every rank of a folded application
packs byte-identical message payloads, builds identical buffer
descriptors ``(count, datatype)``, and carries identical datatype
signatures.  :class:`InternPool` extends the folding to that rank state:
values are stored once under a content key, handed out by reference, and
reference-counted so the pool can drop them when the last user releases.

Two pools exist in practice:

* a process-global descriptor pool (:func:`intern_descriptor`,
  :func:`datatype_signature`) for small immutable metadata — these live
  for the process lifetime and are never released;
* a per-:class:`~repro.smpi.runtime.SmpiWorld` payload pool
  (``world.payload_pool``) folding packed message payloads, wired to the
  world's :class:`~repro.smpi.memory.MemoryTracker` so the interned-vs-
  naive byte gap is measurable (``MemoryReport.intern_naive_peak`` /
  ``intern_stored_peak``).

Interned payload arrays are frozen (``writeable=False``): receivers only
ever copy out of them, and an accidental in-place write would corrupt
every logical copy at once — freezing turns that bug into an exception.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Callable, Hashable

import numpy as np

__all__ = [
    "InternPool",
    "BufferDescriptor",
    "payload_key",
    "intern_descriptor",
    "datatype_signature",
]


@dataclass
class _Entry:
    value: Any
    nbytes: int
    refcount: int


class InternPool:
    """Reference-counted store of content-keyed values.

    ``on_account(naive_delta, stored_delta)`` is invoked on every change
    to the pool's byte accounting: *naive* bytes are what every acquirer
    would have paid without interning, *stored* bytes are what the pool
    actually holds.  The :class:`~repro.smpi.memory.MemoryTracker` plugs
    in here so folding wins show up in :class:`MemoryReport`.
    """

    def __init__(
        self, on_account: Callable[[int, int], None] | None = None
    ) -> None:
        self._entries: dict[Hashable, _Entry] = {}
        self._on_account = on_account
        #: total acquire() calls (naive allocation count)
        self.acquires = 0
        #: acquire() calls served by an existing entry
        self.hits = 0
        #: bytes all acquirers would hold without interning (current)
        self.naive_bytes = 0
        #: bytes the pool actually holds (current)
        self.stored_bytes = 0

    def _account(self, naive_delta: int, stored_delta: int) -> None:
        self.naive_bytes += naive_delta
        self.stored_bytes += stored_delta
        if self._on_account is not None:
            self._on_account(naive_delta, stored_delta)

    def acquire(
        self, key: Hashable, factory: Callable[[], Any], nbytes: int
    ) -> Any:
        """Return the value interned under ``key``, creating it on a miss.

        ``factory`` builds the value only when ``key`` is new; ``nbytes``
        is what one un-interned copy would cost.  Every acquire takes one
        reference — pair it with :meth:`release`.
        """
        self.acquires += 1
        entry = self._entries.get(key)
        if entry is None:
            entry = self._entries[key] = _Entry(factory(), nbytes, 0)
            self._account(nbytes, nbytes)
        else:
            self.hits += 1
            self._account(nbytes, 0)
        entry.refcount += 1
        return entry.value

    def release(self, key: Hashable) -> bool:
        """Drop one reference; returns True when the entry was evicted.

        Unknown keys are ignored (idempotent release), matching how
        protocol teardown paths may race a normal delivery release.
        """
        entry = self._entries.get(key)
        if entry is None:
            return False
        entry.refcount -= 1
        self._account(-entry.nbytes, 0)
        if entry.refcount <= 0:
            self._account(0, -entry.nbytes)
            del self._entries[key]
            return True
        return False

    def refcount(self, key: Hashable) -> int:
        """Current reference count of ``key`` (0 when not interned)."""
        entry = self._entries.get(key)
        return 0 if entry is None else entry.refcount

    @property
    def saved_bytes(self) -> int:
        """Bytes folding is currently saving (naive minus stored)."""
        return self.naive_bytes - self.stored_bytes

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict:
        """Plain-dict counters for result tables and ``EngineStats.extra``."""
        return {
            "acquires": self.acquires,
            "hits": self.hits,
            "entries": len(self._entries),
            "naive_bytes": self.naive_bytes,
            "stored_bytes": self.stored_bytes,
            "saved_bytes": self.saved_bytes,
        }


def payload_key(data: np.ndarray) -> tuple:
    """Content key of a packed payload: (length, blake2b digest).

    blake2b is the fastest strong hash in the standard library; a 16-byte
    digest makes accidental collisions across a simulation's payload
    population (≪ 2^64 messages) negligible.
    """
    digest = hashlib.blake2b(data.tobytes(), digest_size=16).digest()
    return (int(data.size), digest)


@dataclass(frozen=True)
class BufferDescriptor:
    """Immutable shape of a buffer: what every rank's spec has in common."""

    count: int
    type_name: str
    type_size: int
    type_extent: int

    @property
    def nbytes(self) -> int:
        return self.count * self.type_size


#: process-global pool for descriptors and datatype signatures; entries
#: are tiny immutable records kept for the process lifetime (references
#: are taken but never released — the folded copies were the point)
DESCRIPTOR_POOL = InternPool()

#: accounting estimate of one un-interned descriptor object (CPython
#: object header + fields); only feeds the naive-vs-stored gap metric
_DESCRIPTOR_COST = 64


def intern_descriptor(count: int, datatype) -> BufferDescriptor:
    """The interned :class:`BufferDescriptor` for ``(count, datatype)``."""
    key = ("desc", count, datatype.name, datatype.size, datatype.extent)
    return DESCRIPTOR_POOL.acquire(
        key,
        lambda: BufferDescriptor(
            count, datatype.name, datatype.size, datatype.extent
        ),
        _DESCRIPTOR_COST,
    )


def intern_meta(*fields: Hashable) -> tuple:
    """Intern an arbitrary tuple of hashable metadata fields.

    The protocol stamps every request with its interned envelope
    metadata ``(kind, tag, ctx, nbytes, ...)`` — at scale the population
    of distinct envelopes is tiny compared to the request count, so one
    tuple serves thousands of requests.
    """
    key = ("meta", *fields)
    return DESCRIPTOR_POOL.acquire(
        key, lambda: tuple(fields), _DESCRIPTOR_COST
    )


def datatype_signature(datatype) -> tuple:
    """The interned (name, size, extent) signature of a datatype."""
    key = ("dtsig", datatype.name, datatype.size, datatype.extent)
    return DESCRIPTOR_POOL.acquire(
        key,
        lambda: (datatype.name, datatype.size, datatype.extent),
        _DESCRIPTOR_COST,
    )
