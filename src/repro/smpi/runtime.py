"""The SMPI runtime: wiring applications onto the simulation stack.

:func:`smpirun` is the entry point — the Python analogue of SMPI's
``smpirun`` launcher.  It takes an application function, a process count
and a platform, spins up one actor (OS thread) per MPI rank, runs the
whole simulation on the calling thread, and returns an
:class:`SmpiResult` with the simulated time, wall-clock cost, per-rank
return values and resource statistics.

The application receives an :class:`Mpi` facade (its "MPI header"): rank
and size shortcuts, ``COMM_WORLD``, wall-clock (:meth:`Mpi.wtime` returns
*simulated* time), the sampling macros, and the folded/unfolded heap.

Thread-safety note (paper section 5.2): global variables of the
application are the one thing the simulator cannot privatise for the
user; as in the paper, applications must keep rank state local (the
``Mpi`` facade makes that natural in Python — everything hangs off the
per-rank handle).
"""

from __future__ import annotations

import inspect
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

import numpy as np

from ..errors import MpiError, SimulationError
from ..profile import Profiler
from ..seq import Sequencer
from ..simix import Scheduler
from ..simix.actor import Actor
from ..simix.contexts import run_blocking
from ..surf import Engine, Host, Platform
from ..surf.network_model import NetworkModel
from ..trace import Tracer
from . import constants
from .comm import Communicator
from .config import SmpiConfig
from .group import Group
from .intern import InternPool
from .memory import MemoryReport, MemoryTracker
from .pt2pt import EMPTY_PAYLOAD, Message, Protocol
from .request import Request
from .sampling import Sampler
from .shared import SharedHeap

__all__ = ["Mpi", "SmpiResult", "SmpiWorld", "smpirun"]


class SmpiWorld:
    """Global state of one SMPI simulation."""

    def __init__(
        self,
        platform: Platform,
        n_ranks: int,
        hosts: list[str] | None = None,
        config: SmpiConfig | None = None,
        network_model: NetworkModel | None = None,
        engine: Engine | None = None,
        recorder=None,
        ctx: str | None = None,
        trace_sink=None,
    ) -> None:
        self.config = config or SmpiConfig()
        #: optional repro.offline.record.Recorder observing this run
        self.recorder = recorder
        # ``engine`` may be any Engine-compatible kernel — notably the
        # packet-level testbed (repro.packetsim.PacketEngine)
        self.engine = engine or Engine(platform, network_model=network_model,
                                       sharing=self.config.sharing)
        # ``ctx`` picks the execution-context backend ranks run on
        # (auto/coroutine/greenlet/thread; see repro.simix.contexts)
        self.scheduler = Scheduler(self.engine, ctx)
        #: per-world message-id allocator — per-run ids keep repeated
        #: runs in one process byte-identical and snapshots restorable
        self.msg_seq = Sequencer()
        #: opt-in hot-path wall timers (``config.profile``); the counters
        #: in ``engine.stats`` are always on — see :mod:`repro.profile`
        self.profiler = Profiler() if self.config.profile else None
        if self.profiler is not None:
            try:
                self.engine.profiler = self.profiler
            except AttributeError:  # duck-typed kernels with __slots__
                pass
        #: free lists recycling completed requests/messages (bounded; a
        #: reuse draws fresh rid/mid numbers, so id streams — and thus
        #: clocks and snapshots — are identical with and without pooling)
        self._request_pool: list[Request] = []
        self._message_pool: list[Message] = []
        self.protocol = Protocol(self)
        self.sampler = Sampler(self)
        self.heap = SharedHeap(self)
        # a streaming sink (repro.trace.sink) keeps trace memory bounded:
        # closed records flush to disk instead of accumulating in lists
        self.trace = Tracer(sink=trace_sink)
        if self.config.tracing:
            # engine-level observability: per-link utilization sampling
            # piggybacks on the incremental share (PacketEngine and other
            # duck-typed kernels without the hook are simply not sampled)
            enable = getattr(self.engine, "enable_timeline", None)
            if enable is not None:
                self.trace.timeline = enable()
        self.n_ranks = n_ranks

        names = hosts if hosts is not None else platform.host_names()
        if not names:
            raise SimulationError("platform has no hosts")
        #: host name of each world rank (round-robin placement by default)
        self.rank_hosts = [names[i % len(names)] for i in range(n_ranks)]

        #: ranks terminated by a host failure (``on_host_down="kill-rank"``)
        self.dead_ranks: set[int] = set()
        # observe resource failures/recoveries for tracing and the
        # host-down policy (duck-typed kernels without the hook opt out)
        listeners = getattr(self.engine, "resource_listeners", None)
        if listeners is not None:
            listeners.append(self._on_resource_event)

        limit = self.config.memory_limit
        if limit is None:
            limit = min(platform.host(h).memory for h in set(self.rank_hosts))
        self.memory = MemoryTracker(
            n_ranks, limit=limit, enforce=self.config.enforce_memory_limit
        )
        #: content-keyed pool folding byte-identical packed payloads
        #: (``config.payload_interning``); accounting lands in the
        #: memory tracker's interned-vs-naive counters
        self.payload_pool = InternPool(on_account=self.memory.note_intern)

        self._actors: list[Actor] = []
        self._actor_rank: dict[int, int] = {}  # actor aid -> world rank
        #: per-rank compute time accumulated by bypassed sample sites,
        #: flushed into one engine action at the next observable point
        self._deferred_flops = [0.0] * n_ranks
        self._next_ctx = 0
        self._filesystem = None
        self._comm_cache: dict[tuple, Communicator] = {}
        self._epochs: dict[tuple, int] = {}
        self.comm_world = self.new_communicator(
            Group(tuple(range(n_ranks))), "MPI_COMM_WORLD"
        )

    @property
    def filesystem(self):
        """The simulated shared filesystem (created on first MPI-IO use)."""
        if self._filesystem is None:
            from .io import FileSystem

            self._filesystem = FileSystem(self)
        return self._filesystem

    # -- communicator/context management ---------------------------------------------------

    def allocate_context(self) -> int:
        """Fresh even context id (ctx+1 is the collective plane)."""
        ctx = self._next_ctx
        self._next_ctx += 2
        return ctx

    def new_communicator(
        self, group: Group, name: str = "", token: tuple | None = None
    ) -> Communicator:
        """Create a communicator; with ``token``, agree across ranks.

        Collective creation calls (Dup/Create/Split) pass a token that is
        identical on every participating rank; the first caller allocates,
        later callers receive the cached instance, so every rank ends up
        with the same context id without extra messages.
        """
        if token is None:
            return Communicator(self, group, self.allocate_context(), name)
        cached = self._comm_cache.get(token)
        if cached is None:
            cached = Communicator(self, group, self.allocate_context(), name)
            self._comm_cache[token] = cached
        return cached

    def comm_token(self, kind: str, parent_ctx: int, extra: Any = None) -> tuple:
        """Per-rank epoch counter making collective comm-creation tokens.

        Every rank of a communicator calls Dup/Create/Split in the same
        order (they are collective), so the per-rank counter values agree
        and the token is rank-independent.
        """
        counter_key = (kind, parent_ctx, self.current_rank)
        epoch = self._epochs.get(counter_key, 0)
        self._epochs[counter_key] = epoch + 1
        return (kind, parent_ctx, epoch, extra)

    # -- rank/actor plumbing ---------------------------------------------------------------

    def register_actor(self, rank: int, actor: Actor) -> None:
        self._actors.append(actor)
        self._actor_rank[actor.aid] = rank

    @property
    def current_actor(self) -> Actor:
        return self.scheduler.current

    @property
    def current_rank(self) -> int:
        """World rank of the calling actor thread."""
        actor = self.scheduler.current
        try:
            return self._actor_rank[actor.aid]
        except KeyError:
            raise MpiError(
                constants.ERR_OTHER, f"actor {actor.name} is not an MPI rank"
            ) from None

    def host_of(self, rank: int) -> str:
        return self.rank_hosts[rank]

    def wake_rank(self, rank: int) -> None:
        if 0 <= rank < len(self._actors):
            self.scheduler.wake(self._actors[rank])

    # -- free-list pools (matching fast path, docs/performance.md) ----------------------

    _POOL_CAP = 4096  # bound pooled-object memory per world

    def acquire_request(self, kind: str, owner_rank: int) -> Request:
        """A fresh-or-recycled :class:`Request` bound to this world."""
        pool = self._request_pool
        if pool:
            request = pool.pop()
            request._reset(self, kind, owner_rank)
            self.engine.stats.pooled_reuses += 1
            return request
        return Request(self, kind, owner_rank)

    def release_request(self, request: Request) -> None:
        """Offer a finished request back to the free list.

        Only plain, cleanly completed requests of this world recycle —
        and only once their message (if any) is closed, since an open
        message still reaches back through ``send_req``/``recv_req``.
        Anything else (persistent handles, cancelled or errored requests,
        foreign worlds) is simply left for the garbage collector.
        """
        if (type(request) is not Request or request.world is not self
                or not request.complete or request.cancelled
                or request.error_exc is not None):
            return
        message = request.message
        if message is not None and not message.closed:
            return
        request.message = None
        request.meta = None
        request.trace_id = None
        request.raw_data = None
        request._recv_buffer = None
        request._on_complete = []
        pool = self._request_pool
        if len(pool) < self._POOL_CAP:
            pool.append(request)

    def acquire_message(
        self,
        src: int,
        dst: int,
        tag: int,
        ctx: int,
        data: np.ndarray,
        eager: bool,
        wire_bytes: int,
        send_req: Request | None,
        payload_key: tuple | None,
    ) -> Message:
        """A fresh-or-recycled :class:`Message` with a fresh ``mid``."""
        pool = self._message_pool
        if pool:
            message = pool.pop()
            message.src = src
            message.dst = dst
            message.tag = tag
            message.ctx = ctx
            message.data = data
            message.eager = eager
            message.wire_bytes = wire_bytes
            message.mid = next(self.msg_seq)
            message.send_req = send_req
            message.recv_req = None
            message.delivered = False
            message.transfer = None
            message.attempts = 0
            message.timed_out = False
            message.watchdog = None
            message.handshake = False
            message.payload_key = payload_key
            message.closed = False
            message.probed = False
            self.engine.stats.pooled_reuses += 1
            return message
        return Message(src, dst, tag, ctx, data, eager,
                       wire_bytes=wire_bytes, send_req=send_req,
                       payload_key=payload_key, mid=next(self.msg_seq))

    def release_message(self, message: Message) -> None:
        """Recycle a closed message (protocol-internal terminal point)."""
        if message.probed or not message.closed:
            # probed envelopes may be application-held; never recycle
            return
        message.data = EMPTY_PAYLOAD
        message.send_req = None
        message.recv_req = None
        message.transfer = None
        message.watchdog = None
        pool = self._message_pool
        if len(pool) < self._POOL_CAP:
            pool.append(message)

    # -- fault handling (docs/faults.md) ------------------------------------------------

    def _on_resource_event(self, event: str, resource, now: float) -> None:
        """Engine listener: trace resource events, apply the host-down policy."""
        if event == "capacity":
            return  # capacity steps already land in the engine timeline
        kind = "host" if isinstance(resource, Host) else "link"
        if self.config.tracing:
            self.trace.resource_event(resource.name, kind, event, now)
        if (event == "fail" and kind == "host"
                and self.config.on_host_down == "kill-rank"):
            for rank, host in enumerate(self.rank_hosts):
                if host == resource.name and rank not in self.dead_ranks:
                    self._kill_rank(rank)

    def _kill_rank(self, rank: int) -> None:
        """Terminate a rank whose host died; fail peers waiting on it."""
        self.dead_ranks.add(rank)
        if rank < len(self._actors):
            actor = self._actors[rank]
            if not actor.finished:
                actor.kill()
                self.scheduler.wake(actor)
        self.protocol.fail_peer(rank)

    # -- services used by Mpi facade and the protocol -----------------------------------------

    def defer_flops(self, flops: float) -> None:
        """Accumulate compute for the calling rank without an engine action.

        Bypassed sample replays use this so that tight sampled loops cost
        O(1) scheduler round-trips instead of one per iteration; the
        accumulated time becomes visible at the next flush point (any
        message, wtime, sleep, or rank completion).
        """
        if flops > 0:
            self._deferred_flops[self.current_rank] += flops

    def flush_deferred(self) -> None:
        """Charge the calling rank's accumulated deferred compute."""
        run_blocking(self.co_flush_deferred(), lambda: self.current_actor)

    def co_flush_deferred(self):
        """Generator twin of :meth:`flush_deferred` (canonical)."""
        rank = self.current_rank
        amount = self._deferred_flops[rank]
        if amount > 0:
            self._deferred_flops[rank] = 0.0
            yield from self.co_execute_flops(amount)

    def execute_flops(self, flops: float) -> None:
        """Run a compute action for the calling rank and wait it out."""
        run_blocking(self.co_execute_flops(flops), lambda: self.current_actor)

    def co_execute_flops(self, flops: float):
        """Generator twin of :meth:`execute_flops` (canonical)."""
        if flops <= 0:
            return
        if self.recorder is not None:
            self.recorder.compute(self.current_rank, flops)
        actor = self.current_actor
        start = self.engine.now
        activity = self.scheduler.execute(actor, flops, f"exec-r{self.current_rank}")
        yield from activity.co_wait(actor)
        if activity.failed:
            raise MpiError(
                constants.ERR_OTHER,
                f"host failure killed compute burst on rank "
                f"{self.current_rank}",
            )
        if self.config.tracing:
            self.trace.compute(self.current_rank, flops, start, self.engine.now)

    def sleep(self, seconds: float) -> None:
        """Park the calling rank for ``seconds`` of simulated time."""
        run_blocking(self.co_sleep(seconds), lambda: self.current_actor)

    def co_sleep(self, seconds: float):
        """Generator twin of :meth:`sleep` (canonical)."""
        if seconds <= 0:
            return
        actor = self.current_actor
        yield from self.scheduler.sleep_activity(seconds).co_wait(actor)

    def tiny_progress(self) -> None:
        """Advance simulated time by the Test-poll delay (see request.py)."""
        self.sleep(self.config.test_delay)

    def co_tiny_progress(self):
        """Generator twin of :meth:`tiny_progress`."""
        yield from self.co_sleep(self.config.test_delay)


@dataclass
class SmpiResult:
    """Everything a simulation run reports back."""

    simulated_time: float
    wall_time: float
    returns: list[Any]
    memory: MemoryReport
    stats: Any
    trace: Tracer
    sampler_stats: dict = field(default_factory=dict)
    #: mid-run checkpoint captured by ``replay_trace(checkpoint_at=...)``
    #: (None otherwise); see :mod:`repro.offline.snapshot`
    checkpoint: dict | None = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SmpiResult(simulated={self.simulated_time:.6f}s, "
            f"wall={self.wall_time:.3f}s, ranks={len(self.returns)})"
        )


class MpiCo:
    """Generator-dialect twins of the blocking :class:`Mpi` calls.

    Reached as ``mpi.co``; each method returns a continuation to drive
    with ``yield from``, so generator-function applications block on any
    execution-context backend — including the default coroutine backend,
    which cannot suspend plain synchronous frames.
    """

    def __init__(self, world: SmpiWorld):
        self._world = world

    def execute(self, flops: float):
        """``yield from mpi.co.execute(flops)`` — twin of :meth:`Mpi.execute`."""
        yield from self._world.co_execute_flops(flops)

    def sleep(self, seconds: float):
        """``yield from mpi.co.sleep(s)`` — twin of :meth:`Mpi.sleep`."""
        yield from self._world.co_flush_deferred()
        yield from self._world.co_sleep(seconds)

    def wtime(self):
        """``t = yield from mpi.co.wtime()`` — twin of :meth:`Mpi.wtime`."""
        yield from self._world.co_flush_deferred()
        return self._world.engine.now


class Mpi:
    """The per-rank handle an application receives (its 'mpi.h')."""

    def __init__(self, world: SmpiWorld, rank: int):
        self._world = world
        self._rank = rank
        #: generator-dialect twins of the blocking calls (``mpi.co``)
        self.co = MpiCo(world)

    # -- identity ------------------------------------------------------------------------

    @property
    def COMM_WORLD(self) -> Communicator:
        return self._world.comm_world

    @property
    def comm_world(self) -> Communicator:
        return self._world.comm_world

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._world.n_ranks

    @property
    def config(self) -> SmpiConfig:
        return self._world.config

    def wtime(self) -> float:
        """MPI_Wtime: the *simulated* clock."""
        self._world.flush_deferred()
        return self._world.engine.now

    # -- compute modelling ------------------------------------------------------------------

    def execute(self, flops: float) -> None:
        """Charge an explicit compute burst of ``flops`` (SMPI_SAMPLE_DELAY
        semantics with a flop argument)."""
        self._world.execute_flops(flops)

    def sleep(self, seconds: float) -> None:
        """Advance this rank's simulated time without using the CPU."""
        self._world.flush_deferred()
        self._world.sleep(seconds)

    def sample_local(self, key: str, n: int = 1) -> Iterator[None]:
        return self._world.sampler.sample_local(key, n)

    def sample_global(self, key: str, n: int = 1) -> Iterator[None]:
        return self._world.sampler.sample_global(key, n)

    def sample_delay(self, flops: float) -> None:
        self._world.sampler.sample_delay(flops)

    def sample_auto(self, key: str, precision: float = 0.05,
                    max_samples: int = 100) -> Iterator[None]:
        return self._world.sampler.sample_auto(key, precision, max_samples)

    # -- memory modelling ---------------------------------------------------------------------

    def malloc(self, shape, dtype=np.float64) -> np.ndarray:
        """Tracked per-rank allocation."""
        return self._world.heap.malloc(shape, dtype)

    def free(self, array: np.ndarray) -> None:
        self._world.heap.free(array)

    def shared_malloc(self, key: str, shape, dtype=np.float64) -> np.ndarray:
        """SMPI_SHARED_MALLOC: folded allocation shared across ranks."""
        return self._world.heap.shared_malloc(key, shape, dtype)

    def shared_free(self, key: str) -> None:
        self._world.heap.shared_free(key)

    # -- MPI-IO ----------------------------------------------------------------------------

    def File(self):
        """The MPI-IO File class bound to this world (mpi.File().Open(...))."""
        from . import io

        return io.File


def smpirun(
    app: Callable[..., Any],
    n_ranks: int,
    platform: Platform,
    app_args: tuple = (),
    hosts: list[str] | None = None,
    config: SmpiConfig | None = None,
    network_model: NetworkModel | None = None,
    engine: Engine | None = None,
    recorder=None,
    ctx: str | None = None,
    trace_sink=None,
) -> SmpiResult:
    """Simulate ``app`` on ``n_ranks`` MPI processes over ``platform``.

    ``app`` is called as ``app(mpi, *app_args)`` on every rank's execution
    context, where ``mpi`` is that rank's :class:`Mpi` handle.  A plain
    function runs on a stack-capable context (greenlet when importable,
    else one OS thread per rank); a *generator function* additionally runs
    on the default coroutine context — zero kernel objects per rank — by
    reaching every blocking call through its ``co_*`` twin
    (``yield from comm.co.Send(...)``).  ``ctx`` forces a specific backend
    (``auto``/``coroutine``/``greenlet``/``thread``); the thread oracle is
    bit-identical to the cooperative backends.

    Blocks until every rank returned; raises
    :class:`~repro.errors.ActorFailure` if any rank raised and
    :class:`~repro.errors.DeadlockError` on communication deadlock.
    Passing ``engine`` substitutes the simulation kernel — the
    packet-level testbed uses this to run identical applications.
    """
    if n_ranks < 1:
        raise SimulationError("need at least one MPI rank")
    world = SmpiWorld(platform, n_ranks, hosts, config, network_model, engine,
                      recorder=recorder, ctx=ctx, trace_sink=trace_sink)

    if inspect.isgeneratorfunction(app):
        def make_main(rank: int) -> Callable[[], Any]:
            def main() -> Any:
                result = yield from app(Mpi(world, rank), *app_args)
                # deferred bursts count toward the end
                yield from world.co_flush_deferred()
                return result

            return main
    else:
        def make_main(rank: int) -> Callable[[], Any]:
            def main() -> Any:
                result = app(Mpi(world, rank), *app_args)
                world.flush_deferred()  # deferred bursts count toward the end
                return result

            return main

    for rank in range(n_ranks):
        actor = world.scheduler.add_actor(
            f"rank-{rank}", world.host_of(rank), make_main(rank)
        )
        world.register_actor(rank, actor)

    wall_start = time.perf_counter()
    simulated = world.scheduler.run()
    wall = time.perf_counter() - wall_start
    if world.trace.timeline is not None:
        world.trace.timeline.close(simulated)
        world.engine.stats.link_samples = world.trace.timeline.n_samples
    world.trace.finish(simulated)

    memory = world.memory.report()
    if world.profiler is not None and world.profiler:
        world.engine.stats.extra["profile"] = world.profiler.to_dict()
    if world.payload_pool.acquires or memory.intern_naive_peak:
        # surface the interned-vs-naive gap next to the engine counters
        world.engine.stats.extra["interning"] = {
            "payload": world.payload_pool.stats(),
            "naive_peak_bytes": memory.intern_naive_peak,
            "stored_peak_bytes": memory.intern_stored_peak,
            "saved_bytes": memory.intern_saved,
        }

    return SmpiResult(
        simulated_time=simulated,
        wall_time=wall,
        returns=[actor.result for actor in world.scheduler.actors[:n_ranks]],
        memory=memory,
        stats=world.engine.stats,
        trace=world.trace,
        sampler_stats=world.sampler.site_stats(),
    )
