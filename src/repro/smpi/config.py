"""SMPI runtime configuration.

Collects every tunable of the simulated MPI implementation in one
dataclass, mirroring SMPI's ``--cfg=smpi/...`` options:

* the **eager/rendezvous threshold** (64 KiB by default, where OpenMPI and
  MPICH2 switch protocol and where the piece-wise model places a segment
  boundary — paper section 7.1.1);
* per-message **CPU overheads** on the send and receive side (the os/or of
  LogP-style models; SMPI calls them smpi/os and smpi/or);
* **collective algorithm selection** — "auto" applies MPICH2-flavoured
  rules on message size and communicator size; naming an algorithm forces
  it (the paper implements one variant each and announces multiple
  selectable variants as future work, which we deliver);
* **host speed factor** scaling measured CPU-burst durations onto target
  nodes (paper section 3.1);
* the **memory limit** enforced on the simulated heap (Fig. 16's OM bars).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..errors import ConfigError
from ..units import parse_size

__all__ = ["SmpiConfig"]


@dataclass
class SmpiConfig:
    """All SMPI knobs; defaults model OpenMPI on a TCP/GigE cluster."""

    #: messages strictly larger than this use the rendezvous protocol
    eager_threshold: int = 64 * 1024
    #: sender-side per-message CPU overhead, seconds
    send_overhead: float = 2e-6
    #: receiver-side per-message CPU overhead, seconds
    recv_overhead: float = 1e-6
    #: extra round-trips of route latency paid by the rendezvous handshake
    handshake_rtts: float = 1.0
    #: simulated duration of one MPI_Test/Iprobe poll (SMPI's smpi/test);
    #: non-zero so Test loops cannot stall the simulated clock
    test_delay: float = 1e-6
    #: fraction of the physical path bandwidth this implementation's
    #: transport actually achieves on large transfers (protocol chunking,
    #: copy pipelining); differentiates OpenMPI-like from MPICH2-like stacks
    wire_efficiency: float = 1.0
    #: effective bandwidth of the eager protocol's extra buffer copies
    #: (sender socket copy + receiver unexpected-buffer copy); ``inf``
    #: disables it.  This is what real implementations pay in buffered
    #: mode and why the eager regime has its own piece-wise segment.
    eager_copy_bandwidth: float = float("inf")

    #: multiply measured host burst durations by this factor when replaying
    #: them on the target platform (host/target performance ratio)
    speed_factor: float = 1.0

    #: per-collective algorithm choice; "auto" = built-in selection rules
    coll_algorithms: dict[str, str] = field(default_factory=dict)

    #: enforce the per-host memory budget on the simulated heap
    enforce_memory_limit: bool = False
    #: host memory available to the simulated heap (None = host.memory)
    memory_limit: int | None = None

    #: transport timing without moving payload bytes (the paper's RAM
    #: technique #2 applied to messages: data references removed, results
    #: erroneous, timing preserved).  Lets huge simulations run at
    #: model-solve speed — Fig. 17's large-message regime.
    zero_copy: bool = False

    #: record an event trace of every message and compute burst
    tracing: bool = False

    #: fold byte-identical packed message payloads into one interned,
    #: reference-counted copy (``SMPI_SHARED_MALLOC`` applied to the
    #: message plane — see :mod:`repro.smpi.intern`).  At 10k+ folded
    #: ranks every rank sends the same panel bytes, so the payload
    #: population collapses to a handful of arrays.  Timing-neutral.
    payload_interning: bool = True

    #: bandwidth-sharing fidelity of the engine this world builds:
    #: ``"exact"`` solves every share to the max-min fixed point,
    #: ``"approx"`` bounds per-event solver work (Narses-style capped
    #: filling, for 100k+ concurrent flows).  ``None`` defers to the
    #: engine default (the ``REPRO_SHARING`` environment variable, then
    #: ``"exact"``).  Ignored when an explicit ``engine=`` is supplied.
    sharing: str | None = None

    #: message-matching implementation of the pt2pt layer: ``"index"``
    #: uses the seqno-bucketed match queues (O(1) exact matches),
    #: ``"scan"`` the original linear-scan oracle — both bit-identical in
    #: simulated time (fuzz-pinned).  ``None`` defers to the
    #: ``REPRO_MATCH`` environment variable, then ``"index"``.
    match: str | None = None

    #: enable the opt-in hot-path wall timers (:mod:`repro.profile`);
    #: the accumulated per-subsystem table lands in
    #: ``result.stats.extra["profile"]``.  The deterministic match/alloc
    #: counters in ``EngineStats`` are always on.
    profile: bool = False

    # -- fault semantics (dynamic platforms, docs/faults.md) -------------------
    #: automatic pt2pt retries after a transfer dies on a network failure
    #: (0 = fail fast with MPI_ERR_OTHER, the default)
    comm_retries: int = 0
    #: base delay before the first retry; doubles on each further attempt
    retry_backoff: float = 1e-3
    #: give up on a pt2pt transfer still in flight after this many simulated
    #: seconds (None = never); timeouts raise MPI_ERR_OTHER like failures
    comm_timeout: float | None = None
    #: what a host failure does to the ranks running on it: ``"raise"``
    #: fails their pending operations (fail-fast), ``"kill-rank"``
    #: terminates them silently and fails *peers* talking to them with
    #: MPI_ERR_PROC_FAILED (graceful degradation)
    on_host_down: str = "raise"

    def algorithm_for(self, collective: str) -> str:
        """Selected algorithm name for a collective ('auto' if unset)."""
        return self.coll_algorithms.get(collective, "auto")

    def with_options(self, **overrides) -> "SmpiConfig":
        """Return a copy with the given fields replaced."""
        unknown = set(overrides) - set(self.__dataclass_fields__)
        if unknown:
            raise ConfigError(f"unknown SMPI options: {sorted(unknown)}")
        return replace(self, **overrides)

    def __post_init__(self) -> None:
        if isinstance(self.memory_limit, str):
            self.memory_limit = parse_size(self.memory_limit)
        if self.eager_threshold < 0:
            raise ConfigError("eager_threshold must be >= 0")
        if self.send_overhead < 0 or self.recv_overhead < 0:
            raise ConfigError("per-message overheads must be >= 0")
        if self.speed_factor <= 0:
            raise ConfigError("speed_factor must be > 0")
        if self.comm_retries < 0:
            raise ConfigError("comm_retries must be >= 0")
        if self.retry_backoff < 0:
            raise ConfigError("retry_backoff must be >= 0")
        if self.comm_timeout is not None and self.comm_timeout <= 0:
            raise ConfigError("comm_timeout must be > 0 (or None)")
        if self.on_host_down not in ("raise", "kill-rank"):
            raise ConfigError(
                "on_host_down must be 'raise' or 'kill-rank'")
        if self.sharing not in (None, "exact", "approx"):
            raise ConfigError("sharing must be 'exact', 'approx', or None")
        if self.match not in (None, "index", "scan"):
            raise ConfigError("match must be 'index', 'scan', or None")
