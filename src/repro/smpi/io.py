"""MPI-IO — simulated parallel file I/O (paper section 8 future work).

The paper names I/O simulation as a planned extension ("A long-term goal
is for SMPI to simulate I/O resources and I/O operations, such as those
implemented in MPI-IO", citing MPI-SIM's I/O support).  This module
provides it in the same spirit as the network layer:

* every host owns a simulated **disk** — a bandwidth/latency resource the
  engine shares max-min between concurrent I/O actions on that host, so
  co-located ranks writing simultaneously contend like real processes on
  one spindle/SSD;
* file *contents are real* (the on-line property): bytes written are
  bytes read back, so applications using files for exchange compute
  correct results;
* the API follows mpi4py's ``MPI.File``: ``File.Open``, ``Read_at``,
  ``Write_at``, the collective ``_all`` variants, ``Seek`` /
  ``Get_position`` / ``Get_size``, ``Close``.

Files live in a world-level namespace (a simulated shared filesystem à la
NFS); an optional shared **filesystem backbone** bandwidth models the file
server link that all hosts' I/O crosses.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import numpy as np

from ..errors import MpiError
from ..surf.action import NetworkAction
from ..surf.resources import Link
from . import constants
from .buffer import resolve

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .comm import Communicator
    from .runtime import SmpiWorld

__all__ = ["File", "FileSystem", "MODE_RDONLY", "MODE_WRONLY", "MODE_RDWR",
           "MODE_CREATE", "MODE_EXCL", "MODE_APPEND"]

MODE_RDONLY = 1
MODE_RDWR = 2
MODE_WRONLY = 4
MODE_CREATE = 8
MODE_EXCL = 16
MODE_APPEND = 32


class FileSystem:
    """The simulated shared filesystem of one SMPI world.

    Holds file contents (real bytes) and the I/O resources: one disk
    resource per host plus an optional shared server link.
    """

    def __init__(
        self,
        world: "SmpiWorld",
        disk_bandwidth: float = 200e6,  # ~2010 SATA streaming rate
        disk_latency: float = 2e-3,  # seek/queue per operation
        server_bandwidth: float | None = 500e6,  # shared NFS-ish backbone
    ) -> None:
        self.world = world
        self.disk_bandwidth = disk_bandwidth
        self.disk_latency = disk_latency
        self._disks: dict[str, Link] = {}
        self._server: Link | None = (
            Link("fs-server", server_bandwidth, 0.0)
            if server_bandwidth is not None
            else None
        )
        #: filename -> bytearray of real contents
        self._files: dict[str, bytearray] = {}

    # -- resource plumbing ---------------------------------------------------------------

    def _disk(self, host: str) -> Link:
        disk = self._disks.get(host)
        if disk is None:
            disk = self._disks[host] = Link(
                f"disk-{host}", self.disk_bandwidth, self.disk_latency
            )
        return disk

    def io_action(self, nbytes: int, label: str) -> None:
        """Block the calling rank for one disk transfer of ``nbytes``."""
        world = self.world
        rank = world.current_rank
        host = world.host_of(rank)
        links = (self._disk(host),) + (
            (self._server,) if self._server is not None else ()
        )
        action = NetworkAction(
            f"io-{label}-r{rank}", max(nbytes, 1), links,
            latency=self.disk_latency,
        )
        engine = world.engine
        if hasattr(engine, "_register"):
            engine._register(action)
        else:  # packet engine: model I/O as a plain delay
            duration = self.disk_latency + max(nbytes, 1) / self.disk_bandwidth
            action = engine.sleep(duration, name=f"io-{label}-r{rank}")
        from ..simix.activity import Activity

        activity = Activity(world.scheduler, action, f"io-{label}")
        activity.wait(world.current_actor)

    # -- contents -------------------------------------------------------------------------

    def storage(self, name: str) -> bytearray:
        data = self._files.get(name)
        if data is None:
            data = self._files[name] = bytearray()
        return data

    def exists(self, name: str) -> bool:
        return name in self._files

    def delete(self, name: str) -> None:
        self._files.pop(name, None)


class File:
    """An open simulated file (MPI_File)."""

    def __init__(self, fs: FileSystem, comm: "Communicator", name: str,
                 amode: int):
        self._fs = fs
        self._comm = comm
        self.name = name
        self.amode = amode
        self.closed = False
        #: per-rank individual file pointer (bytes)
        self._offsets: dict[int, int] = {}

    # -- lifecycle ------------------------------------------------------------------------

    @classmethod
    def Open(cls, comm: "Communicator", name: str, amode: int = MODE_RDONLY
             ) -> "File":
        """Collective open; all ranks of ``comm`` must call."""
        fs = comm.world.filesystem
        if amode & MODE_EXCL and fs.exists(name):
            raise MpiError(constants.ERR_OTHER, f"file {name!r} exists (EXCL)")
        if not (amode & MODE_CREATE) and not fs.exists(name):
            if not (amode & (MODE_WRONLY | MODE_RDWR)):
                raise MpiError(constants.ERR_OTHER, f"file {name!r} not found")
        fs.storage(name)  # materialise
        comm.Barrier()  # open is collective
        handle = cls(fs, comm, name, amode)
        if amode & MODE_APPEND:
            size = len(fs.storage(name))
            for rank in range(comm.size):
                handle._offsets[rank] = size
        return handle

    def Close(self) -> None:
        """Collective close."""
        self._check_open()
        self._comm.Barrier()
        self.closed = True

    def _check_open(self) -> None:
        if self.closed:
            raise MpiError(constants.ERR_OTHER, f"file {self.name!r} is closed")

    def _check_mode(self, writing: bool) -> None:
        if writing and not self.amode & (MODE_WRONLY | MODE_RDWR):
            raise MpiError(constants.ERR_OTHER, "file not opened for writing")
        if not writing and not self.amode & (MODE_RDONLY | MODE_RDWR):
            raise MpiError(constants.ERR_OTHER, "file not opened for reading")

    # -- pointer --------------------------------------------------------------------------

    def Get_position(self) -> int:
        self._check_open()
        return self._offsets.get(self._comm.Get_rank(), 0)

    def Seek(self, offset: int, whence: int = 0) -> None:
        """whence: 0=set, 1=current, 2=end (byte offsets)."""
        self._check_open()
        rank = self._comm.Get_rank()
        base = {0: 0, 1: self._offsets.get(rank, 0),
                2: len(self._fs.storage(self.name))}[whence]
        position = base + offset
        if position < 0:
            raise MpiError(constants.ERR_ARG, "seek before start of file")
        self._offsets[rank] = position

    def Get_size(self) -> int:
        self._check_open()
        return len(self._fs.storage(self.name))

    # -- explicit-offset I/O ----------------------------------------------------------------

    def Write_at(self, offset: int, buf: Any) -> int:
        """Write at an explicit offset; returns bytes written."""
        self._check_open()
        self._check_mode(writing=True)
        spec = resolve(buf)
        raw = spec.pack().tobytes()
        storage = self._fs.storage(self.name)
        end = offset + len(raw)
        if len(storage) < end:
            storage.extend(b"\0" * (end - len(storage)))
        self._fs.io_action(len(raw), "write")
        storage[offset:end] = raw
        return len(raw)

    def Read_at(self, offset: int, buf: Any) -> int:
        """Read into ``buf`` from an explicit offset; returns bytes read."""
        self._check_open()
        self._check_mode(writing=False)
        spec = resolve(buf)
        storage = self._fs.storage(self.name)
        available = max(0, len(storage) - offset)
        nbytes = min(spec.nbytes, available)
        self._fs.io_action(nbytes, "read")
        if nbytes:
            raw = np.frombuffer(
                bytes(storage[offset : offset + nbytes]), dtype=np.uint8
            )
            spec.unpack(raw)
        return nbytes

    # -- individual-pointer I/O ---------------------------------------------------------------

    def Write(self, buf: Any) -> int:
        rank = self._comm.Get_rank()
        offset = self._offsets.get(rank, 0)
        written = self.Write_at(offset, buf)
        self._offsets[rank] = offset + written
        return written

    def Read(self, buf: Any) -> int:
        rank = self._comm.Get_rank()
        offset = self._offsets.get(rank, 0)
        read = self.Read_at(offset, buf)
        self._offsets[rank] = offset + read
        return read

    # -- collective I/O ----------------------------------------------------------------------

    def Write_at_all(self, offset: int, buf: Any) -> int:
        """Collective write: all ranks participate, synchronised."""
        self._check_open()
        self._comm.Barrier()
        written = self.Write_at(offset, buf)
        self._comm.Barrier()
        return written

    def Read_at_all(self, offset: int, buf: Any) -> int:
        """Collective read."""
        self._check_open()
        self._comm.Barrier()
        read = self.Read_at(offset, buf)
        self._comm.Barrier()
        return read

    def Write_all(self, buf: Any) -> int:
        self._comm.Barrier()
        written = self.Write(buf)
        self._comm.Barrier()
        return written

    def Read_all(self, buf: Any) -> int:
        self._comm.Barrier()
        read = self.Read(buf)
        self._comm.Barrier()
        return read
