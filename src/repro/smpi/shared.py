"""RAM folding — SMPI_SHARED_MALLOC / SMPI_FREE (paper section 3.2).

Because all simulated MPI processes are threads of one address space,
an array that every rank allocates identically can be backed by a single
allocation (technique #1 of [3]): ``m`` ranks × ``s`` bytes fold to ``s``
bytes.  :class:`SharedHeap` implements that: ``shared_malloc(key, ...)``
returns the *same* NumPy array to every rank (reference-counted), and
charges the memory tracker once.  ``malloc`` is the unfolded counterpart
that charges per rank — the two together produce the with/without-folding
comparison of Fig. 16.

The folded array is real shared state, so a folded application computing
into it produces erroneous numerical results — exactly the documented
trade-off in the paper ("the modified application produces erroneous
results. But, for non-data-dependent applications ...").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..errors import MpiError
from . import constants

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .runtime import SmpiWorld

__all__ = ["SharedHeap"]


@dataclass
class _SharedBlock:
    array: np.ndarray
    nbytes: int
    refcount: int


class SharedHeap:
    """Tracked allocations: folded (shared) and per-rank (private)."""

    def __init__(self, world: "SmpiWorld") -> None:
        self.world = world
        self._shared: dict[str, _SharedBlock] = {}
        # id(array) -> (rank, nbytes) for private allocations
        self._private: dict[int, tuple[int, int]] = {}

    # -- folded allocations --------------------------------------------------------------

    def shared_malloc(self, key: str, shape, dtype=np.float64) -> np.ndarray:
        """Return the shared array for ``key``, allocating on first call.

        Every rank calling with the same key gets the same array object;
        memory is charged once.  Shape/dtype must agree across ranks.
        """
        block = self._shared.get(key)
        if block is None:
            array = np.zeros(shape, dtype=dtype)
            self.world.memory.allocate_shared(array.nbytes)
            # first reference stores the bytes once; further refs below
            # only grow the naive (what-unfolded-ranks-would-pay) side
            self.world.memory.note_intern(array.nbytes, array.nbytes)
            block = self._shared[key] = _SharedBlock(array, array.nbytes, 0)
        else:
            requested = tuple(shape) if np.iterable(shape) else (int(shape),)
            if block.array.shape != requested or block.array.dtype != np.dtype(dtype):
                raise MpiError(
                    constants.ERR_ARG,
                    f"shared_malloc({key!r}): shape/dtype mismatch across ranks",
                )
            self.world.memory.note_intern(block.nbytes, 0)
        block.refcount += 1
        return block.array

    def shared_free(self, key: str) -> None:
        """SMPI_FREE: release one reference; storage freed at zero."""
        block = self._shared.get(key)
        if block is None:
            raise MpiError(constants.ERR_ARG, f"shared_free({key!r}): unknown block")
        block.refcount -= 1
        self.world.memory.note_intern(-block.nbytes, 0)
        if block.refcount <= 0:
            self.world.memory.free_shared(block.nbytes)
            self.world.memory.note_intern(0, -block.nbytes)
            del self._shared[key]

    # -- private (unfolded) allocations -----------------------------------------------------

    def malloc(self, shape, dtype=np.float64) -> np.ndarray:
        """Per-rank tracked allocation (the no-folding baseline)."""
        rank = self.world.current_rank
        array = np.zeros(shape, dtype=dtype)
        self.world.memory.allocate(rank, array.nbytes)
        self._private[id(array)] = (rank, array.nbytes)
        return array

    def free(self, array: np.ndarray) -> None:
        entry = self._private.pop(id(array), None)
        if entry is None:
            raise MpiError(constants.ERR_ARG, "free() of an untracked array")
        rank, nbytes = entry
        self.world.memory.free(rank, nbytes)

    @property
    def shared_keys(self) -> list[str]:
        return list(self._shared)

    def shared_refcount(self, key: str) -> int:
        """Live reference count of a folded block (0 = not allocated)."""
        block = self._shared.get(key)
        return 0 if block is None else block.refcount
