"""Structured cluster topologies: fat tree and torus.

The paper's evaluation uses hierarchical Ethernet clusters, but its
"what if?" motivation (section 1) is precisely about exploring platforms
one does not own — and the platforms people explore are fat trees and
tori.  These builders produce :class:`~repro.surf.platform.Platform`
objects with the same route conventions as the cluster builders, so every
model and benchmark in the repository runs on them unchanged.

* :func:`fat_tree` — a two-level k-ary fat tree described SimGrid-style:
  ``pods`` edge switches of ``down`` hosts each, connected to ``up`` core
  switches (full bisection when ``up * core_bandwidth >= down * link``).
  Routes: intra-pod traffic crosses the edge switch backbone; inter-pod
  traffic ascends to a core switch chosen by a deterministic hash of the
  (src, dst) pair — the static D-mod-k routing real fat trees use.
* :func:`torus` — an N-dimensional torus of directly-connected nodes
  with dimension-ordered (e-cube) routing, the scheme of Blue Gene-class
  machines; each inter-node hop is its own link, so neighbour traffic is
  fully parallel and long routes pay per-hop latency.
"""

from __future__ import annotations

import itertools
from typing import Sequence

from ..errors import PlatformError
from .platform import Platform
from .resources import Host, Link

__all__ = ["fat_tree", "torus"]


def fat_tree(
    name: str,
    pods: int,
    down: int,
    up: int,
    host_speed: float | str = "1Gf",
    link_bandwidth: float | str = "125MBps",
    link_latency: float | str = "50us",
    core_bandwidth: float | str = "1.25GBps",
    core_latency: float | str = "20us",
    cores: int = 1,
    memory: int | str = "16GiB",
    prefix: str = "node-",
) -> Platform:
    """A two-level fat tree: ``pods × down`` hosts, ``up`` core switches."""
    if pods < 1 or down < 1 or up < 1:
        raise PlatformError("fat tree needs pods, down and up >= 1")
    platform = Platform(name)

    edge_backbones = [
        platform.add_link(
            Link(f"{name}-edge{p}", core_bandwidth, core_latency)
        )
        for p in range(pods)
    ]
    # uplink from each pod to each core switch
    uplinks = [
        [
            platform.add_link(
                Link(f"{name}-up{p}-c{c}", core_bandwidth, core_latency)
            )
            for c in range(up)
        ]
        for p in range(pods)
    ]

    node_links: list[Link] = []
    node_pod: list[int] = []
    node_id = 0
    for pod in range(pods):
        for _ in range(down):
            platform.add_host(
                Host(f"{prefix}{node_id}", host_speed, cores=cores,
                     memory=memory)
            )
            node_links.append(
                platform.add_link(
                    Link(f"{name}-l{node_id}", link_bandwidth, link_latency)
                )
            )
            node_pod.append(pod)
            node_id += 1

    total = node_id
    for i in range(total):
        for j in range(total):
            if i == j:
                continue
            pod_i, pod_j = node_pod[i], node_pod[j]
            if pod_i == pod_j:
                path = (node_links[i], edge_backbones[pod_i], node_links[j])
            else:
                # static D-mod-k-style core selection: deterministic and
                # identical for both directions of a pair
                core = (i + j) % up
                path = (
                    node_links[i],
                    edge_backbones[pod_i],
                    uplinks[pod_i][core],
                    uplinks[pod_j][core],
                    edge_backbones[pod_j],
                    node_links[j],
                )
            platform.add_route(f"{prefix}{i}", f"{prefix}{j}", path,
                               symmetric=False)
    return platform


def torus(
    name: str,
    dims: Sequence[int],
    host_speed: float | str = "1Gf",
    link_bandwidth: float | str = "125MBps",
    link_latency: float | str = "10us",
    cores: int = 1,
    memory: int | str = "16GiB",
    prefix: str = "node-",
) -> Platform:
    """An N-dimensional torus with dimension-ordered routing.

    Each node links directly to its two neighbours per dimension; a route
    corrects coordinates one dimension at a time (e-cube), taking the
    shorter way around each ring.
    """
    dims = list(dims)
    if not dims or any(d < 1 for d in dims):
        raise PlatformError("torus needs positive dimension extents")
    platform = Platform(name)
    total = 1
    for extent in dims:
        total *= extent

    def coords_of(rank: int) -> tuple[int, ...]:
        out = []
        for extent in reversed(dims):
            out.append(rank % extent)
            rank //= extent
        return tuple(reversed(out))

    def rank_of(coords: Sequence[int]) -> int:
        rank = 0
        for coord, extent in zip(coords, dims):
            rank = rank * extent + coord % extent
        return rank

    for rank in range(total):
        platform.add_host(
            Host(f"{prefix}{rank}", host_speed, cores=cores, memory=memory)
        )

    # one link per (node, dimension, +1 direction); the -1 direction of a
    # node is its neighbour's +1 link, giving one physical link per edge
    edge_links: dict[tuple[int, int], Link] = {}
    for rank in range(total):
        coords = coords_of(rank)
        for dim, extent in enumerate(dims):
            if extent == 1:
                continue
            neighbour_coords = list(coords)
            neighbour_coords[dim] = (coords[dim] + 1) % extent
            neighbour = rank_of(neighbour_coords)
            if (neighbour, dim) in edge_links and extent == 2:
                continue  # a 2-ring has a single physical cable
            edge_links[(rank, dim)] = platform.add_link(
                Link(f"{name}-e{rank}d{dim}", link_bandwidth, link_latency)
            )

    def edge(a: int, dim: int, forward: bool) -> Link:
        """The link used travelling from node ``a`` along ``dim``."""
        if forward:
            key = (a, dim)
        else:
            coords = list(coords_of(a))
            coords[dim] = (coords[dim] - 1) % dims[dim]
            key = (rank_of(coords), dim)
        link = edge_links.get(key)
        if link is None:  # 2-extent ring folded onto one cable
            coords = list(coords_of(key[0]))
            coords[dim] = (coords[dim] + 1) % dims[dim]
            link = edge_links[(rank_of(coords), dim)]
        return link

    for src in range(total):
        for dst in range(total):
            if src == dst:
                continue
            path: list[Link] = []
            position = list(coords_of(src))
            target = coords_of(dst)
            for dim, extent in enumerate(dims):
                while position[dim] != target[dim]:
                    delta = (target[dim] - position[dim]) % extent
                    forward = delta <= extent - delta
                    here = rank_of(position)
                    path.append(edge(here, dim, forward))
                    position[dim] = (
                        position[dim] + (1 if forward else -1)
                    ) % extent
            platform.add_route(f"{prefix}{src}", f"{prefix}{dst}", path,
                               symmetric=False)
    return platform
