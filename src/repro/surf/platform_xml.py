"""SimGrid-style XML platform files (a subset of the SimGrid DTD).

The paper (section 6) specifies target platforms as XML following
SimGrid's DTD.  We support the subset needed for cluster studies::

    <?xml version="1.0"?>
    <platform version="4">
      <zone id="griffon" routing="Full">
        <host id="node-0" speed="2.5Gf" core="8"/>
        <link id="l0" bandwidth="125MBps" latency="50us"/>
        <link id="bb" bandwidth="1.25GBps" latency="20us" sharing_policy="FATPIPE"/>
        <route src="node-0" dst="node-1" symmetrical="YES">
          <link_ctn id="l0"/><link_ctn id="bb"/><link_ctn id="l1"/>
        </route>
        <cluster id="c" prefix="n-" suffix="" radical="0-15" speed="1Gf"
                 bw="125MBps" lat="50us" bb_bw="1.25GBps" bb_lat="20us"/>
      </zone>
    </platform>

``<cluster>`` elements expand through :func:`repro.surf.platform.cluster`
with the same semantics SimGrid gives them (per-node access link plus a
shared backbone).  :func:`save_platform_xml` writes any programmatically
built platform back out, so calibrated "what if?" variants can be shared
as files — the paper's suggested workflow for third-party instantiations.

Dynamic platforms (docs/faults.md) use SimGrid's ``<trace>`` elements::

    <trace id="wave" periodicity="2.0">
      0.0 1.0
      1.0 0.5
    </trace>
    <trace_connect trace="wave" element="l0" kind="BANDWIDTH"/>

``kind`` follows SimGrid: ``SPEED``/``BANDWIDTH`` attach an availability
(capacity-scaling) profile to a host/link, ``HOST_AVAIL``/``LINK_AVAIL``
attach an ON/OFF state profile (0 fails the resource, non-zero restores
it).  A ``file=`` attribute loads the points from a trace file relative
to the platform file; hosts additionally accept ``availability_file``/
``state_file`` attributes and links ``bandwidth_file``/``state_file``.
"""

from __future__ import annotations

import io
import xml.etree.ElementTree as ET
from pathlib import Path

from ..errors import PlatformError
from .platform import Platform, cluster
from .profiles import load_profile, parse_profile
from .resources import Host, Link, SharingPolicy

__all__ = ["load_platform_xml", "loads_platform_xml", "save_platform_xml",
           "dumps_platform_xml"]


def load_platform_xml(path: str | Path) -> Platform:
    """Parse a platform file from disk."""
    tree = ET.parse(str(path))
    return _build(tree.getroot(), name=Path(path).stem,
                  base_dir=Path(path).parent)


def loads_platform_xml(text: str) -> Platform:
    """Parse a platform description from a string."""
    return _build(ET.fromstring(text), name="platform")


def _parse_radical(radical: str) -> list[int]:
    """Expand SimGrid radicals: ``"0-3,7,9-10" -> [0,1,2,3,7,9,10]``."""
    out: list[int] = []
    for part in radical.split(","):
        part = part.strip()
        if not part:
            continue
        if "-" in part:
            lo_s, hi_s = part.split("-", 1)
            lo, hi = int(lo_s), int(hi_s)
            if hi < lo:
                raise PlatformError(f"bad radical range {part!r}")
            out.extend(range(lo, hi + 1))
        else:
            out.append(int(part))
    return out


def _build(root: ET.Element, name: str,
           base_dir: Path | None = None) -> Platform:
    if root.tag != "platform":
        raise PlatformError(f"expected <platform> root, got <{root.tag}>")
    platform = Platform(name)
    zones = root.findall("zone") or root.findall("AS")  # old DTD spelling
    containers = zones if zones else [root]
    for zone in containers:
        _build_zone(platform, zone, base_dir)
    _apply_traces(platform, root, base_dir)
    return platform


def _profile_from_file(base_dir: Path | None, file_attr: str, name: str):
    path = Path(file_attr)
    if base_dir is not None and not path.is_absolute():
        path = base_dir / path
    return load_profile(path, name=name)


def _build_zone(platform: Platform, zone: ET.Element,
                base_dir: Path | None = None) -> None:
    for el in zone:
        if el.tag == "host":
            host = Host(
                _req(el, "id"),
                _req(el, "speed"),
                cores=int(el.get("core", "1")),
                memory=el.get("memory", "16GiB"),
            )
            if el.get("availability_file"):
                host.availability_profile = _profile_from_file(
                    base_dir, el.get("availability_file"), host.name)
            if el.get("state_file"):
                host.state_profile = _profile_from_file(
                    base_dir, el.get("state_file"), host.name)
            platform.add_host(host)
        elif el.tag == "link":
            link = Link(
                _req(el, "id"),
                _req(el, "bandwidth"),
                el.get("latency", "0s"),
                SharingPolicy(el.get("sharing_policy", "SHARED")),
            )
            if el.get("bandwidth_file"):
                link.availability_profile = _profile_from_file(
                    base_dir, el.get("bandwidth_file"), link.name)
            if el.get("state_file"):
                link.state_profile = _profile_from_file(
                    base_dir, el.get("state_file"), link.name)
            platform.add_link(link)
        elif el.tag == "route":
            links = [_req(sub, "id") for sub in el.findall("link_ctn")]
            platform.add_route(
                _req(el, "src"),
                _req(el, "dst"),
                links,
                symmetric=el.get("symmetrical", "YES").upper() == "YES",
            )
        elif el.tag == "cluster":
            _expand_cluster(platform, el)
        elif el.tag in ("zone", "AS"):
            _build_zone(platform, el, base_dir)
        # <trace>/<trace_connect> handled in _apply_traces (they may
        # reference elements defined later); other unknown elements are
        # ignored, like SimGrid does for forward compat


def _apply_traces(platform: Platform, root: ET.Element,
                  base_dir: Path | None) -> None:
    """Resolve ``<trace>`` definitions and ``<trace_connect>`` bindings."""
    profiles = {}
    for el in root.iter("trace"):
        tid = _req(el, "id")
        if el.get("file"):
            profiles[tid] = _profile_from_file(base_dir, el.get("file"), tid)
            continue
        text = el.text or ""
        period = el.get("periodicity")
        if period is not None:
            text = f"PERIODICITY {period}\n{text}"
        profiles[tid] = parse_profile(text, name=tid)
    for el in root.iter("trace_connect"):
        tid = _req(el, "trace")
        profile = profiles.get(tid)
        if profile is None:
            raise PlatformError(
                f"<trace_connect> references unknown trace {tid!r}")
        _connect_trace(platform, profile, _req(el, "kind"),
                       _req(el, "element"))


def _connect_trace(platform: Platform, profile, kind: str,
                   element: str) -> None:
    kind_u = kind.upper()
    if kind_u in ("HOST_AVAIL", "SPEED"):
        resource = platform.host(element)
        attr = ("state_profile" if kind_u == "HOST_AVAIL"
                else "availability_profile")
    elif kind_u in ("LINK_AVAIL", "BANDWIDTH"):
        resource = platform.link(element)
        attr = ("state_profile" if kind_u == "LINK_AVAIL"
                else "availability_profile")
    else:
        raise PlatformError(
            f"unsupported trace_connect kind {kind!r} (expected SPEED, "
            f"BANDWIDTH, HOST_AVAIL or LINK_AVAIL)")
    setattr(resource, attr, profile)
    platform.invalidate_route_cache()


def _expand_cluster(platform: Platform, el: ET.Element) -> None:
    ids = _parse_radical(_req(el, "radical"))
    prefix = el.get("prefix", "node-")
    suffix = el.get("suffix", "")
    bb_bw = el.get("bb_bw")
    sub = cluster(
        _req(el, "id"),
        len(ids),
        host_speed=_req(el, "speed"),
        link_bandwidth=_req(el, "bw"),
        link_latency=el.get("lat", "0s"),
        backbone_bandwidth=bb_bw,
        backbone_latency=el.get("bb_lat", "0s"),
        cores=int(el.get("core", "1")),
        prefix="__tmp__",
    )
    # splice: rename the builder's hosts to the radical-derived names
    rename = {f"__tmp__{i}": f"{prefix}{rid}{suffix}" for i, rid in enumerate(ids)}
    for link in sub.links:
        platform.add_link(link)
    for host in sub.hosts:
        platform.add_host(Host(rename[host.name], host.speed, host.cores, host.memory))
    for a in sub.host_names():
        for b in sub.host_names():
            if a == b:
                continue
            route = sub.route(a, b)
            platform.add_route(rename[a], rename[b], route.links, symmetric=False)


def _req(el: ET.Element, attr: str) -> str:
    value = el.get(attr)
    if value is None:
        raise PlatformError(f"<{el.tag}> element missing required {attr!r} attribute")
    return value


def dumps_platform_xml(platform: Platform) -> str:
    """Serialise a platform to a SimGrid-style XML string.

    Hosts, links and the explicit route table are written out; graph-edge
    topology (``connect``) is flattened into explicit host-to-host routes.
    """
    root = ET.Element("platform", version="4")
    zone = ET.SubElement(root, "zone", id=platform.name, routing="Full")
    for host in platform.hosts:
        ET.SubElement(
            zone,
            "host",
            id=host.name,
            speed=f"{host.speed:.0f}f",
            core=str(host.cores),
            memory=f"{host.memory}B",
        )
    for link in platform.links:
        ET.SubElement(
            zone,
            "link",
            id=link.name,
            bandwidth=f"{link.bandwidth:.0f}Bps",
            latency=f"{link.latency * 1e9:.0f}ns",
            sharing_policy=link.sharing.value,
        )
    names = platform.host_names()
    for src in names:
        for dst in names:
            if src == dst:
                continue
            try:
                route = platform.route(src, dst)
            except PlatformError:
                continue
            r_el = ET.SubElement(zone, "route", src=src, dst=dst, symmetrical="NO")
            for link in route.links:
                ET.SubElement(r_el, "link_ctn", id=link.name)
    _dump_traces(zone, platform)
    buf = io.BytesIO()
    ET.ElementTree(root).write(buf, encoding="utf-8", xml_declaration=True)
    return buf.getvalue().decode("utf-8")


def _dump_traces(zone: ET.Element, platform: Platform) -> None:
    """Emit ``<trace>``/``<trace_connect>`` pairs for attached profiles."""
    bindings = []
    for host in platform.hosts:
        bindings.append((host, "availability_profile", "SPEED", host.name))
        bindings.append((host, "state_profile", "HOST_AVAIL", host.name))
    for link in platform.links:
        bindings.append((link, "availability_profile", "BANDWIDTH", link.name))
        bindings.append((link, "state_profile", "LINK_AVAIL", link.name))
    for resource, attr, kind, element in bindings:
        profile = getattr(resource, attr, None)
        if profile is None:
            continue
        tid = f"{element}:{kind}"
        t_el = ET.SubElement(zone, "trace", id=tid)
        t_el.text = "\n" + profile.dumps()
        ET.SubElement(zone, "trace_connect", trace=tid, kind=kind,
                      element=element)


def save_platform_xml(platform: Platform, path: str | Path) -> None:
    """Write :func:`dumps_platform_xml` output to ``path``."""
    Path(path).write_text(dumps_platform_xml(platform), encoding="utf-8")
