"""Point-to-point network performance models (paper section 4.1).

A network model answers one question for a message of ``size`` bytes on a
route: *what start-up latency and what per-flow rate bound should the
transfer's action get?*  Contention is orthogonal — it is applied by the
max-min solver on top of whatever bound the model chooses.  The models:

* :class:`ConstantNetworkModel` — the "no contention" strawman of
  Figs. 7/11: the route's nominal latency and full nominal bandwidth,
  and the action is additionally excluded from link sharing.
* :class:`AffineNetworkModel` — the classic ``α + s/β`` model every prior
  on-line simulator uses.  Instantiated either the *default* way (1-byte
  ping latency, 92 % of peak bandwidth) or *best-fit* (minimising mean
  log-error); both instantiations live in :mod:`repro.calibration.affine`.
* :class:`PiecewiseLinearNetworkModel` — the paper's contribution: `k`
  linear segments (3 in practice), each with its own latency and
  bandwidth, fitted by segmented regression
  (:mod:`repro.calibration.segments`).

The piece-wise model expresses a *total transfer time* ``α_k + s/β_k`` for
a message in segment ``k``.  We decompose that into the action parameters
in the way SMPI does inside SimGrid: the route's physical latency/bandwidth
are scaled by per-segment correction factors,

* ``latency_total = latency_factor(s) × Σ link latencies``
* ``rate_bound    = bandwidth_factor(s) × min link bandwidth``

so that an uncontended transfer takes exactly the fitted time on the
calibration route, and other routes inherit the same *protocol* behaviour
(relative overheads) while keeping their own physical parameters — this is
what lets a griffon calibration predict gdx (Figs. 4-5).
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass

from ..errors import CalibrationError

__all__ = [
    "RouteParams",
    "TransferParams",
    "NetworkModel",
    "ConstantNetworkModel",
    "AffineNetworkModel",
    "PiecewiseSegment",
    "PiecewiseLinearNetworkModel",
]


@dataclass(frozen=True)
class RouteParams:
    """Physical characteristics of a route, provided by the routing layer."""

    latency: float  # sum of link latencies, seconds
    bandwidth: float  # min link bandwidth, bytes/s


@dataclass(frozen=True)
class TransferParams:
    """What the engine needs to create a network action.

    ``shared`` False means the action must bypass link sharing entirely
    (the no-contention model).
    """

    latency: float
    rate_bound: float
    shared: bool = True


class NetworkModel:
    """Base interface: map (message size, route) to action parameters."""

    #: short name used in configuration and result tables
    name = "abstract"

    def transfer_params(self, size: float, route: RouteParams) -> TransferParams:
        raise NotImplementedError

    def predict_time(self, size: float, route: RouteParams) -> float:
        """Uncontended transfer time for a message of ``size`` bytes."""
        params = self.transfer_params(size, route)
        if size <= 0:
            return params.latency
        return params.latency + size / params.rate_bound


class ConstantNetworkModel(NetworkModel):
    """Nominal latency + full nominal bandwidth, no contention at all."""

    name = "constant"

    def transfer_params(self, size: float, route: RouteParams) -> TransferParams:
        return TransferParams(route.latency, route.bandwidth, shared=False)


class FactorsNetworkModel(NetworkModel):
    """Physical route parameters scaled by constant factors.

    The engine's default when no calibrated model is supplied: latency is
    taken as-is and bandwidth derated to 97 % (rough TCP efficiency), akin
    to SimGrid's uncalibrated defaults.
    """

    name = "factors"

    def __init__(self, latency_factor: float = 1.0, bandwidth_factor: float = 0.97):
        if latency_factor < 0 or bandwidth_factor <= 0:
            raise CalibrationError("factors must be positive")
        self.latency_factor = latency_factor
        self.bandwidth_factor = bandwidth_factor

    def transfer_params(self, size: float, route: RouteParams) -> TransferParams:
        return TransferParams(
            latency=self.latency_factor * route.latency,
            rate_bound=self.bandwidth_factor * route.bandwidth,
        )


class AffineNetworkModel(NetworkModel):
    """``time = α + s/β`` with fixed α (s) and β (bytes/s).

    α and β are absolute values measured on the calibration route; on a
    different route the same *relative* correction is applied, i.e. the
    factors ``α/route_latency`` and ``β/route_bandwidth`` computed at
    calibration time are reused.
    """

    name = "affine"

    def __init__(
        self,
        alpha: float,
        beta: float,
        calibration_route: RouteParams,
        label: str | None = None,
    ) -> None:
        if alpha < 0 or beta <= 0:
            raise CalibrationError("affine model needs alpha >= 0 and beta > 0")
        self.alpha = alpha
        self.beta = beta
        self.calibration_route = calibration_route
        if calibration_route.latency > 0:
            self.latency_factor = alpha / calibration_route.latency
            self.latency_offset = 0.0
        else:
            # A zero-latency calibration route cannot express α as a
            # relative factor; charge it as absolute extra latency rather
            # than silently discarding the fitted overhead.
            self.latency_factor = 1.0
            self.latency_offset = alpha
        self.bandwidth_factor = beta / calibration_route.bandwidth
        if label:
            self.name = label

    def transfer_params(self, size: float, route: RouteParams) -> TransferParams:
        return TransferParams(
            latency=self.latency_factor * route.latency + self.latency_offset,
            rate_bound=self.bandwidth_factor * route.bandwidth,
        )


@dataclass(frozen=True)
class PiecewiseSegment:
    """One linear segment: for sizes in ``[lo, hi)``, time = α + s/β.

    α, β are the absolute fitted values on the calibration route;
    ``latency_factor`` / ``bandwidth_factor`` are the corrections relative
    to the calibration route's physical parameters.  ``latency_offset``
    carries α as an absolute extra latency when the calibration route has
    zero latency (no factor can express it then).
    """

    lo: float
    hi: float
    alpha: float
    beta: float
    latency_factor: float
    bandwidth_factor: float
    latency_offset: float = 0.0

    def predict(self, size: float) -> float:
        return self.alpha + size / self.beta


class PiecewiseLinearNetworkModel(NetworkModel):
    """The paper's piece-wise linear model with ``k`` segments.

    With 3 segments this is the 8-parameter model of section 4.1: two
    interior boundaries plus (α, β) per segment.  Construct it from
    absolute fitted segments via :meth:`from_segments`; the calibration
    pipeline in :mod:`repro.calibration.calibrate` does this automatically.
    """

    name = "piecewise-linear"

    def __init__(self, segments: list[PiecewiseSegment], label: str | None = None):
        if not segments:
            raise CalibrationError("piecewise model needs at least one segment")
        ordered = sorted(segments, key=lambda seg: seg.lo)
        for left, right in zip(ordered, ordered[1:]):
            if left.hi != right.lo:
                raise CalibrationError(
                    f"segments not contiguous: [{left.lo},{left.hi}) then "
                    f"[{right.lo},{right.hi})"
                )
        if ordered[0].lo != 0:
            raise CalibrationError("first segment must start at size 0")
        if not math.isinf(ordered[-1].hi):
            raise CalibrationError("last segment must extend to infinity")
        self.segments = ordered
        self._boundaries = [seg.hi for seg in ordered[:-1]]
        if label:
            self.name = label

    @classmethod
    def from_segments(
        cls,
        fitted: list[tuple[float, float, float, float]],
        calibration_route: RouteParams,
        label: str | None = None,
    ) -> "PiecewiseLinearNetworkModel":
        """Build from ``(lo, hi, alpha, beta)`` tuples fitted on a route."""
        segments = []
        for lo, hi, alpha, beta in fitted:
            if beta <= 0:
                raise CalibrationError(f"segment [{lo},{hi}): beta must be > 0")
            if calibration_route.latency > 0:
                lat_f, lat_off = alpha / calibration_route.latency, 0.0
            else:
                # zero-latency calibration route: keep the fitted α as an
                # absolute offset instead of discarding it
                lat_f, lat_off = 1.0, alpha
            bw_f = beta / calibration_route.bandwidth
            segments.append(
                PiecewiseSegment(lo, hi, alpha, beta, lat_f, bw_f, lat_off)
            )
        return cls(segments, label=label)

    def segment_for(self, size: float) -> PiecewiseSegment:
        """The segment whose size range contains ``size``."""
        return self.segments[bisect.bisect_right(self._boundaries, size)]

    @property
    def parameter_count(self) -> int:
        """8 for the canonical 3-segment model: k-1 boundaries + 2k (α,β)."""
        k = len(self.segments)
        return (k - 1) + 2 * k

    def transfer_params(self, size: float, route: RouteParams) -> TransferParams:
        seg = self.segment_for(size)
        return TransferParams(
            latency=seg.latency_factor * route.latency + seg.latency_offset,
            rate_bound=seg.bandwidth_factor * route.bandwidth,
        )

    def describe(self) -> str:
        """Human-readable parameter table (used by examples and docs)."""
        lines = [f"piece-wise linear model, {len(self.segments)} segments "
                 f"({self.parameter_count} parameters):"]
        for seg in self.segments:
            hi = "inf" if math.isinf(seg.hi) else f"{seg.hi:.0f}"
            lines.append(
                f"  [{seg.lo:>9.0f}, {hi:>9}) B : "
                f"alpha={seg.alpha * 1e6:9.2f} us  beta={seg.beta / 1e6:9.2f} MB/s"
            )
        return "\n".join(lines)
