"""CPU model: how compute actions consume host capacity.

Much simpler than the network side: a host is one max-min constraint of
capacity ``speed × cores`` and each compute action is bounded by the
single-core speed (an MPI rank's CPU burst is sequential code).  An
optional *scaling factor* converts durations measured on the simulation
host node into target-node durations — this is the user-supplied factor of
paper section 3.1 for simulating a target platform whose nodes differ from
the host node.
"""

from __future__ import annotations

from .resources import Host

__all__ = ["CpuModel"]


class CpuModel:
    """Maps flops to compute-action parameters for a given host."""

    name = "cas01"  # SimGrid's historical name for this model

    def capacity(self, host: Host) -> float:
        """Total constraint capacity of the host (flop/s)."""
        return host.speed * host.cores

    def action_bound(self, host: Host) -> float:
        """Per-action rate cap: one core's speed."""
        return host.speed

    def duration_to_flops(self, host: Host, seconds: float) -> float:
        """Convert a measured burst duration into an equivalent flop amount.

        Used by the sampling layer: a burst that took ``seconds`` on a node
        of this speed represents ``seconds × speed`` flops, which then
        replays correctly on any target host speed.
        """
        return seconds * host.speed
