"""Actions: the units of ongoing simulated work.

An action is anything that takes simulated time: a network transfer, a
computation, a sleep.  Actions move through a small state machine::

    LATENCY ---(latency elapsed)---> RUNNING ---(work done)---> DONE
       \\                                |
        +---------- cancel -------------+--------> FAILED

* In ``LATENCY`` a network action waits out its constant start-up delay
  (sum of link latencies, scaled by the model's latency factor) without
  consuming bandwidth.
* In ``RUNNING`` the action has ``remaining`` work units left (bytes or
  flops) and consumes resources at the rate the max-min solver assigns.
* Sleep actions carry only a deadline.

The engine owns the clocking; actions only record their parameters and
bookkeeping (who to wake on completion, via an opaque ``observer`` the
SIMIX layer sets).

Actions are *lazily updated*: ``remaining`` is the work left **as of**
``last_touched``, not as of the engine clock.  The pair is only
re-materialized when the action's rate actually changes
(:meth:`Action.set_rate`) or when its predicted ``deadline`` — the
absolute simulated date at which the current phase ends — is reached
(:meth:`Action.expire`).  Between those two moments the action is never
touched, which is what lets the engine process an event without visiting
every pending action.  ``epoch`` counts invalidations of the prediction;
the engine stamps heap entries with it so stale predictions are skipped
on pop rather than eagerly deleted.
"""

from __future__ import annotations

import enum
import math
from typing import TYPE_CHECKING, Any, Callable

from ..errors import SimulationError
from ..seq import Sequencer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .resources import Host, Link

__all__ = ["ActionState", "Action", "NetworkAction", "ComputeAction", "SleepAction"]

#: process-wide action id allocator.  A Sequencer (not itertools.count)
#: because aids are ordering-significant — completion-heap ties break on
#: aid and harvests deliver observers aid-sorted — so an engine snapshot
#: records the position and a restore fast-forwards past every
#: serialized aid, keeping restored and uninterrupted runs identical.
_ids = Sequencer()


class ActionState(enum.Enum):
    LATENCY = "latency"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


class Action:
    """Base class; concrete kinds below.  Engine-facing API only."""

    __slots__ = (
        "aid",
        "name",
        "state",
        "remaining",
        "latency_remaining",
        "rate",
        "rate_bound",
        "weight",
        "start_time",
        "finish_time",
        "observer",
        "last_touched",
        "deadline",
        "epoch",
    )

    def __init__(
        self,
        name: str,
        amount: float,
        latency: float = 0.0,
        rate_bound: float = math.inf,
        weight: float = 1.0,
    ) -> None:
        if amount < 0:
            raise SimulationError(f"action {name!r}: negative amount")
        if latency < 0:
            raise SimulationError(f"action {name!r}: negative latency")
        self.aid = next(_ids)
        self.name = name
        self.remaining = float(amount)
        self.latency_remaining = float(latency)
        self.rate = 0.0
        self.rate_bound = rate_bound
        self.weight = weight
        self.state = ActionState.LATENCY if latency > 0 else ActionState.RUNNING
        self.start_time = math.nan
        self.finish_time = math.nan
        #: callable invoked by the engine when the action completes/fails
        self.observer: Callable[[Action], None] | None = None
        #: simulated time at which ``remaining``/``latency_remaining`` were
        #: last materialized (engine-maintained; 0 for standalone use)
        self.last_touched = 0.0
        #: absolute date of the next phase change at the current rate
        #: (latency expiry or completion; inf while unknowable)
        self.deadline = math.inf
        #: bumped on every prediction invalidation — heap entries carrying
        #: an older epoch are stale and skipped on pop
        self.epoch = 0

    # -- engine-facing ------------------------------------------------------

    def constraints(self) -> tuple["Link | Host", ...]:
        """Resources this action consumes while RUNNING (empty for sleeps)."""
        raise NotImplementedError

    @property
    def is_pending(self) -> bool:
        return self.state in (ActionState.LATENCY, ActionState.RUNNING)

    def time_to_completion(self) -> float:
        """Time until this action finishes at its current rate (inf if stalled)."""
        if self.state is ActionState.LATENCY:
            # After the latency phase the transfer still has to run; only the
            # latency expiry is scheduled, the engine re-shares afterwards.
            return self.latency_remaining
        if self.state is not ActionState.RUNNING:
            return math.inf
        if self.remaining <= 0:
            return 0.0
        if self.rate <= 0:
            return math.inf
        return self.remaining / self.rate

    # -- lazy updates (engine hot path) -------------------------------------

    def set_rate(self, rate: float, now: float) -> None:
        """Assign a new sharing rate at simulated time ``now``.

        Materializes ``remaining`` (work done since ``last_touched`` at the
        old rate is subtracted), re-anchors the action at ``now``, and
        recomputes the completion ``deadline``.  Callers must skip the call
        when the rate is unchanged: the existing prediction is still exact,
        and re-anchoring would perturb the floating-point trajectory.
        """
        if self.rate > 0.0:
            self.remaining = max(
                self.remaining - self.rate * (now - self.last_touched), 0.0
            )
        self.last_touched = now
        self.rate = rate
        self.epoch += 1
        if self.remaining <= 0:
            self.deadline = now
        elif rate > 0.0:
            self.deadline = now + self.remaining / rate
        else:
            self.deadline = math.inf

    def expire(self, now: float) -> None:
        """Apply the phase change whose ``deadline`` has been reached.

        LATENCY actions become RUNNING (or DONE when they carry no work,
        e.g. sleeps) and wait for the next share to receive a rate;
        RUNNING actions complete.
        """
        self.epoch += 1
        if self.state is ActionState.LATENCY:
            self.latency_remaining = 0.0
            self.last_touched = now
            if self.remaining <= 0:
                self.state = ActionState.DONE
            else:
                self.state = ActionState.RUNNING
                self.rate = 0.0
                self.deadline = math.inf
        elif self.state is ActionState.RUNNING:
            self.remaining = 0.0
            self.state = ActionState.DONE

    # -- standalone countdown API (kept for model-level callers/tests) ------

    def advance(self, delta: float) -> bool:
        """Progress the action by ``delta`` simulated seconds.

        Countdown-style companion to the engine's deadline-driven path,
        for standalone use of actions outside an :class:`Engine` (it does
        not maintain ``last_touched``/``deadline``).  Returns True when
        the action changed state (latency expired, work completed).
        """
        if self.state is ActionState.LATENCY:
            self.latency_remaining -= delta
            if self.latency_remaining <= 1e-15:
                self.latency_remaining = 0.0
                self.state = ActionState.RUNNING
                if self.remaining <= 0:
                    self.state = ActionState.DONE
                return True
        elif self.state is ActionState.RUNNING:
            self.remaining -= self.rate * delta
            if self.remaining <= 1e-9 * max(1.0, self.rate):
                self.remaining = 0.0
                self.state = ActionState.DONE
                return True
        return False

    def fail(self) -> None:
        """Cancel the action; the observer is notified by the engine."""
        if self.is_pending:
            self.state = ActionState.FAILED
            self.epoch += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(#{self.aid} {self.name!r} {self.state.value}"
            f" remaining={self.remaining:.3g})"
        )


class NetworkAction(Action):
    """A point-to-point data transfer crossing a fixed set of links."""

    __slots__ = ("links", "src", "dst", "size", "payload")

    def __init__(
        self,
        name: str,
        size: float,
        links: tuple["Link", ...],
        latency: float,
        rate_bound: float = math.inf,
        weight: float = 1.0,
        src: str = "",
        dst: str = "",
    ) -> None:
        super().__init__(name, size, latency, rate_bound, weight)
        self.links = links
        self.src = src
        self.dst = dst
        self.size = float(size)
        #: opaque payload carried with the transfer (the MPI layer stores
        #: the message here so data really moves end-to-end)
        self.payload: Any = None
        if size == 0 and latency == 0:
            # zero-byte, zero-latency transfer completes instantly
            self.state = ActionState.DONE

    def constraints(self) -> tuple["Link", ...]:
        return self.links


class ComputeAction(Action):
    """A CPU burst of ``flops`` floating-point operations on one host."""

    __slots__ = ("host",)

    def __init__(
        self,
        name: str,
        flops: float,
        host: "Host",
        rate_bound: float = math.inf,
    ) -> None:
        # A host with several cores lets one action use only one core's
        # share at full speed; the bound reflects that.
        per_core = host.speed
        super().__init__(name, flops, 0.0, min(rate_bound, per_core))
        self.host = host
        if flops <= 0:
            self.state = ActionState.DONE

    def constraints(self) -> tuple["Host", ...]:
        return (self.host,)


class SleepAction(Action):
    """Pure delay: finishes after ``duration`` simulated seconds."""

    __slots__ = ()

    def __init__(self, name: str, duration: float) -> None:
        super().__init__(name, 0.0, latency=duration)
        if duration <= 0:
            self.state = ActionState.DONE

    def constraints(self) -> tuple[()]:
        return ()
