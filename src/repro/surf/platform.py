"""Platform descriptions: hosts, links and routes of a target cluster.

A :class:`Platform` aggregates the resources the engine simulates.  Besides
free-form construction (``add_host`` / ``add_link`` / ``add_route`` /
``connect``), two builders cover the topologies of the paper:

* :func:`cluster` — a single-switch cluster in SimGrid's ``<cluster>``
  style: every node has a private full-duplex-ish access link, and all
  traffic additionally crosses a shared *backbone* that models the switch
  fabric.  The backbone is where concurrent transfers contend — on an
  ideal crossbar a binomial scatter would never share a link, yet real
  switches do exhibit contention (paper Fig. 7), which SimGrid captures
  with exactly this construct.
* :func:`multi_cabinet_cluster` — the hierarchical topology of griffon and
  gdx: per-cabinet switches (own backbone), connected to a second-level
  switch by uplinks; inter-cabinet routes cross 3 switches as in Fig. 5.

Platform files in SimGrid's XML dialect are handled by
:mod:`repro.surf.platform_xml`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..errors import PlatformError
from .resources import Host, Link, SharingPolicy
from .routing import Route, RoutingTable

__all__ = ["Platform", "cluster", "multi_cabinet_cluster"]


class Platform:
    """The set of hosts, links and routes of one target platform."""

    def __init__(self, name: str = "platform") -> None:
        self.name = name
        self._hosts: dict[str, Host] = {}
        self._links: dict[str, Link] = {}
        self._routing = RoutingTable()
        self._loopbacks: dict[str, Link] = {}
        self._default_loopback: Link | None = None
        self._frozen = False
        #: memoized route resolutions, keyed by (src, dst) endpoint pair;
        #: cleared by every mutator so stale link sequences never leak out
        self._route_cache: dict[tuple[str, str], Route] = {}

    # -- construction ---------------------------------------------------------

    def _check_mutable(self) -> None:
        if self._frozen:
            raise PlatformError(f"platform {self.name!r} is frozen (engine started)")
        # any mutation may change what route() would resolve
        self.invalidate_route_cache()

    def invalidate_route_cache(self) -> None:
        """Drop memoized route resolutions (after any topology change).

        Called automatically by every mutator (``add_host``/``add_link``/
        ``add_route``/``connect``/``set_loopback``); exposed for callers
        that alter routing-relevant state out-of-band, e.g. attaching
        availability profiles when loading an XML platform.
        """
        self._route_cache.clear()

    def add_host(self, host: Host) -> Host:
        self._check_mutable()
        if host.name in self._hosts:
            raise PlatformError(f"duplicate host {host.name!r}")
        self._hosts[host.name] = host
        return host

    def add_link(self, link: Link) -> Link:
        self._check_mutable()
        if link.name in self._links:
            raise PlatformError(f"duplicate link {link.name!r}")
        self._links[link.name] = link
        return link

    def add_route(
        self,
        src: str,
        dst: str,
        links: Sequence[Link | str],
        symmetric: bool = True,
    ) -> None:
        """Declare the exact link sequence between two hosts."""
        self._check_mutable()
        for endpoint in (src, dst):
            if endpoint not in self._hosts:
                raise PlatformError(f"route endpoint {endpoint!r} is not a host")
        resolved = tuple(self._resolve_link(link) for link in links)
        self._routing.add_explicit(src, dst, resolved, symmetric)

    def connect(self, a: str, b: str, link: Link | str) -> None:
        """Add a graph edge between two nodes (host or router names)."""
        self._check_mutable()
        self._routing.add_edge(a, b, self._resolve_link(link))

    def set_loopback(self, link: Link | str, host: str | None = None) -> Link:
        """Route host-local transfers through ``link``.

        With ``host=None`` the link becomes the loopback of every host;
        a per-host loopback overrides the default.  Routing self-sends
        over a real link lets calibrated network models apply to them
        (the engine otherwise falls back to fixed loopback constants).
        """
        self._check_mutable()
        resolved = self._resolve_link(link)
        if host is None:
            self._default_loopback = resolved
        else:
            if host not in self._hosts:
                raise PlatformError(f"loopback endpoint {host!r} is not a host")
            self._loopbacks[host] = resolved
        return resolved

    def loopback(self, host: str) -> Link | None:
        """The loopback link of ``host`` (None when not configured)."""
        return self._loopbacks.get(host, self._default_loopback)

    def _resolve_link(self, link: Link | str) -> Link:
        if isinstance(link, Link):
            if link.name not in self._links:
                self.add_link(link)
            return link
        try:
            return self._links[link]
        except KeyError:
            raise PlatformError(f"unknown link {link!r}") from None

    def freeze(self) -> None:
        """Make the platform immutable (called by the engine on start)."""
        self._frozen = True

    # -- queries ---------------------------------------------------------------

    @property
    def hosts(self) -> list[Host]:
        return list(self._hosts.values())

    @property
    def links(self) -> list[Link]:
        return list(self._links.values())

    def host(self, name: str) -> Host:
        try:
            return self._hosts[name]
        except KeyError:
            raise PlatformError(f"unknown host {name!r}") from None

    def link(self, name: str) -> Link:
        try:
            return self._links[name]
        except KeyError:
            raise PlatformError(f"unknown link {name!r}") from None

    def has_host(self, name: str) -> bool:
        return name in self._hosts

    def route(self, src: str, dst: str) -> Route:
        """Resolve the link sequence from ``src`` to ``dst`` (memoized).

        Resolution walks the routing table (graph search for edge-declared
        topologies), so repeated lookups for the same endpoint pair — one
        per message in the protocol layer — hit a cache keyed by the pair.
        Any platform mutation invalidates the cache.
        """
        key = (src, dst)
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached
        for endpoint in (src, dst):
            if endpoint not in self._hosts:
                raise PlatformError(f"route endpoint {endpoint!r} is not a host")
        if src == dst:
            loopback = self.loopback(src)
            if loopback is not None:
                route = Route(src, dst, (loopback,))
                self._route_cache[key] = route
                return route
        route = self._routing.resolve(src, dst)
        self._route_cache[key] = route
        return route

    def host_names(self) -> list[str]:
        return list(self._hosts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Platform({self.name!r}, {len(self._hosts)} hosts, "
            f"{len(self._links)} links)"
        )


def cluster(
    name: str,
    n_hosts: int,
    host_speed: float | str = "1Gf",
    link_bandwidth: float | str = "125MBps",
    link_latency: float | str = "50us",
    backbone_bandwidth: float | str | None = "1.25GBps",
    backbone_latency: float | str = "20us",
    backbone_sharing: SharingPolicy = SharingPolicy.SHARED,
    cores: int = 1,
    memory: int | str = "16GiB",
    prefix: str = "node-",
    loopback_bandwidth: float | str | None = None,
    loopback_latency: float | str = "100ns",
    split_duplex: bool = False,
) -> Platform:
    """A single-switch cluster with per-node access links and a backbone.

    The defaults model a Gigabit-Ethernet cluster (125 MB/s access links)
    with a 10 Gb switch fabric.  Pass ``backbone_bandwidth=None`` for an
    ideal crossbar without any shared fabric.  ``loopback_bandwidth``
    adds a FATPIPE loopback link shared by all hosts so the network model
    applies to self-sends (SimGrid's ``<cluster loopback_bw=...>``); left
    ``None``, the engine uses its fixed loopback constants.
    ``split_duplex=True`` models full-duplex access links as two SHARED
    half-links per node (SimGrid's SPLITDUPLEX cluster sharing policy):
    a route then crosses the sender's up-link and the receiver's
    down-link, so opposite directions do not contend.
    """
    if n_hosts < 1:
        raise PlatformError("cluster needs at least one host")
    platform = Platform(name)
    backbone: Link | None = None
    if backbone_bandwidth is not None:
        backbone = platform.add_link(
            Link(f"{name}-backbone", backbone_bandwidth, backbone_latency,
                 backbone_sharing)
        )
    if loopback_bandwidth is not None:
        platform.set_loopback(
            Link(f"{name}-loopback", loopback_bandwidth, loopback_latency,
                 SharingPolicy.FATPIPE)
        )
    up_links: list[Link] = []
    down_links: list[Link] = []
    for i in range(n_hosts):
        platform.add_host(
            Host(f"{prefix}{i}", host_speed, cores=cores, memory=memory)
        )
        if split_duplex:
            up_links.append(
                platform.add_link(
                    Link(f"{name}-l{i}-up", link_bandwidth, link_latency)
                )
            )
            down_links.append(
                platform.add_link(
                    Link(f"{name}-l{i}-down", link_bandwidth, link_latency)
                )
            )
        else:
            link = platform.add_link(
                Link(f"{name}-l{i}", link_bandwidth, link_latency)
            )
            up_links.append(link)
            down_links.append(link)
    for i in range(n_hosts):
        for j in range(n_hosts):
            if i == j:
                continue
            path: tuple[Link, ...] = (up_links[i],) + (
                (backbone,) if backbone is not None else ()
            ) + (down_links[j],)
            platform.add_route(f"{prefix}{i}", f"{prefix}{j}", path, symmetric=False)
    return platform


def multi_cabinet_cluster(
    name: str,
    cabinet_sizes: Iterable[int],
    host_speed: float | str = "1Gf",
    link_bandwidth: float | str = "125MBps",
    link_latency: float | str = "50us",
    cabinet_backbone_bandwidth: float | str = "1.25GBps",
    cabinet_backbone_latency: float | str = "20us",
    uplink_bandwidth: float | str = "1.25GBps",
    uplink_latency: float | str = "20us",
    core_backbone_bandwidth: float | str = "1.25GBps",
    core_backbone_latency: float | str = "20us",
    cores: int = 1,
    memory: int | str = "16GiB",
    prefix: str = "node-",
) -> Platform:
    """A hierarchical cluster: cabinets with switches behind a core switch.

    Intra-cabinet routes cross ``access → cabinet backbone → access``
    (1 switch); inter-cabinet routes cross
    ``access → cab bb → uplink → core bb → uplink → cab bb → access``
    (3 switches), matching the gdx topology of paper Fig. 5.
    """
    sizes = list(cabinet_sizes)
    if not sizes or any(size < 1 for size in sizes):
        raise PlatformError("each cabinet needs at least one host")
    platform = Platform(name)
    core_bb = platform.add_link(
        Link(f"{name}-core-backbone", core_backbone_bandwidth, core_backbone_latency)
    )
    host_cab: list[int] = []
    node_links: list[Link] = []
    cab_bb: list[Link] = []
    cab_up: list[Link] = []
    node_id = 0
    for cab, size in enumerate(sizes):
        cab_bb.append(
            platform.add_link(
                Link(f"{name}-cab{cab}-backbone", cabinet_backbone_bandwidth,
                     cabinet_backbone_latency)
            )
        )
        cab_up.append(
            platform.add_link(
                Link(f"{name}-cab{cab}-uplink", uplink_bandwidth, uplink_latency)
            )
        )
        for _ in range(size):
            host = platform.add_host(
                Host(f"{prefix}{node_id}", host_speed, cores=cores, memory=memory)
            )
            # record the cabinet as the host's topology group so
            # hierarchical collectives can split along the real switches
            host.group = f"{name}-cab{cab}"
            node_links.append(
                platform.add_link(
                    Link(f"{name}-l{node_id}", link_bandwidth, link_latency)
                )
            )
            host_cab.append(cab)
            node_id += 1

    total = node_id
    for i in range(total):
        for j in range(total):
            if i == j:
                continue
            if host_cab[i] == host_cab[j]:
                path = (node_links[i], cab_bb[host_cab[i]], node_links[j])
            else:
                path = (
                    node_links[i],
                    cab_bb[host_cab[i]],
                    cab_up[host_cab[i]],
                    core_bb,
                    cab_up[host_cab[j]],
                    cab_bb[host_cab[j]],
                    node_links[j],
                )
            platform.add_route(f"{prefix}{i}", f"{prefix}{j}", path, symmetric=False)
    return platform
