"""Route computation over a platform graph.

A :class:`Route` is the ordered set of links a transfer between two hosts
crosses, together with the aggregate physical parameters the network model
needs (total latency, bottleneck bandwidth).  Routes come from two sources,
checked in order:

1. an explicit route table (``Platform.add_route``) — how SimGrid XML
   platforms describe clusters, and how our builders register routes;
2. shortest-path search (by latency, then hop count) on the platform's
   link graph via :mod:`networkx`, for free-form topologies.

Resolved routes are cached; a platform is immutable once the engine starts
so the cache never invalidates.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from ..errors import RoutingError
from .network_model import RouteParams
from .resources import Link

__all__ = ["Route", "Router"]


@dataclass(frozen=True)
class Router:
    """A routing-only node (a switch): never endpoint of a transfer."""

    name: str

    def __hash__(self) -> int:
        return hash(("router", self.name))


@dataclass(frozen=True)
class Route:
    """An ordered sequence of links between two named endpoints."""

    src: str
    dst: str
    links: tuple[Link, ...]

    @property
    def latency(self) -> float:
        return sum(link.latency for link in self.links)

    @property
    def bandwidth(self) -> float:
        if not self.links:
            return float("inf")
        return min(link.bandwidth for link in self.links)

    @property
    def params(self) -> RouteParams:
        return RouteParams(latency=self.latency, bandwidth=self.bandwidth)

    def reversed(self) -> "Route":
        return Route(self.dst, self.src, tuple(reversed(self.links)))

    def __len__(self) -> int:
        return len(self.links)


class RoutingTable:
    """Explicit routes + graph fallback; owned by the Platform."""

    def __init__(self) -> None:
        self._explicit: dict[tuple[str, str], tuple[Link, ...]] = {}
        self._graph = nx.Graph()
        self._cache: dict[tuple[str, str], Route] = {}

    # -- construction --------------------------------------------------------

    def add_explicit(
        self, src: str, dst: str, links: tuple[Link, ...], symmetric: bool = True
    ) -> None:
        self._explicit[(src, dst)] = links
        if symmetric and (dst, src) not in self._explicit:
            self._explicit[(dst, src)] = tuple(reversed(links))
        self._cache.clear()

    def add_edge(self, a: str, b: str, link: Link) -> None:
        """Connect two graph nodes (host or router names) with a link."""
        self._graph.add_edge(a, b, link=link, weight=link.latency + 1e-9)
        self._cache.clear()

    # -- resolution -----------------------------------------------------------

    def resolve(self, src: str, dst: str) -> Route:
        key = (src, dst)
        cached = self._cache.get(key)
        if cached is not None:
            return cached

        if src == dst:
            route = Route(src, dst, ())
        elif key in self._explicit:
            route = Route(src, dst, self._explicit[key])
        else:
            route = self._shortest_path(src, dst)
        self._cache[key] = route
        return route

    def _shortest_path(self, src: str, dst: str) -> Route:
        if src not in self._graph or dst not in self._graph:
            raise RoutingError(f"no route from {src!r} to {dst!r}: unknown endpoint")
        try:
            nodes = nx.shortest_path(self._graph, src, dst, weight="weight")
        except nx.NetworkXNoPath:
            raise RoutingError(f"no route from {src!r} to {dst!r}") from None
        links = tuple(
            self._graph.edges[a, b]["link"] for a, b in zip(nodes, nodes[1:])
        )
        return Route(src, dst, links)
