"""SURF — the simulation kernel (SimGrid's lowest layer, paper Fig. 1).

SURF owns the simulated clock and the *resources* (network links, host
CPUs).  Ongoing activities are *actions* (a data transfer, a computation)
that consume resource capacity.  At every scheduling point the kernel

1. solves a max-min fairness problem (:mod:`repro.surf.maxmin`) to find the
   instantaneous rate of every action,
2. advances the clock to the earliest action completion,
3. reports finished actions to the upper layer (SIMIX).

The network models of the paper — constant/no-contention, affine, best-fit
affine and the contributed piece-wise linear model — live in
:mod:`repro.surf.network_model`.
"""

from .action import Action, ActionState
from .cpu_model import CpuModel
from .engine import Engine, EngineStats
from .maxmin import IncrementalMaxMin, MaxMinSystem, solve_maxmin
from .network_model import (
    AffineNetworkModel,
    ConstantNetworkModel,
    NetworkModel,
    PiecewiseLinearNetworkModel,
    PiecewiseSegment,
)
from .platform import Platform, cluster, multi_cabinet_cluster
from .profiles import Profile, load_profile, parse_profile
from .topologies import fat_tree, torus
from .platform_xml import load_platform_xml, save_platform_xml
from .resources import Host, Link, SharingPolicy
from .routing import Route

__all__ = [
    "Action",
    "ActionState",
    "AffineNetworkModel",
    "ConstantNetworkModel",
    "CpuModel",
    "Engine",
    "EngineStats",
    "Host",
    "IncrementalMaxMin",
    "Link",
    "MaxMinSystem",
    "NetworkModel",
    "PiecewiseLinearNetworkModel",
    "PiecewiseSegment",
    "Platform",
    "Profile",
    "Route",
    "SharingPolicy",
    "cluster",
    "fat_tree",
    "load_platform_xml",
    "load_profile",
    "multi_cabinet_cluster",
    "parse_profile",
    "save_platform_xml",
    "solve_maxmin",
    "torus",
]
