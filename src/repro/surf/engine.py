"""The sequential simulation engine (paper section 5.1).

One :class:`Engine` instance owns the simulated clock and every pending
:class:`~repro.surf.action.Action`.  Each step:

1. **share** — build a max-min system from the RUNNING actions and the
   resources they cross, solve it, assign each action its rate;
2. **advance** — jump the clock to the earliest of: a RUNNING action
   finishing at its current rate, or a LATENCY/sleep deadline expiring;
3. **harvest** — mark finished actions DONE and invoke their observers
   (the SIMIX layer uses observers to wake blocked actors).

The engine is deliberately *fully sequential* — the paper's design choice
to sidestep parallel-DES synchronisation — and fast because sharing is one
analytical solve, not per-packet events.  It can run standalone (``run()``)
for model-level studies, or be driven step-by-step by
:class:`repro.simix.context.Scheduler` for on-line application simulation.

Sharing is *incremental* by default: the engine keeps one persistent
:class:`~repro.surf.maxmin.IncrementalMaxMin` system alive across steps.
Action arrivals/departures mark only the resources they touch dirty, and
each share re-solves only the connected components of the flow/resource
graph containing a dirty resource — the 500 flows of an all-to-all that
never cross a completed flow's links keep their rates and completion
estimates untouched.  ``full_reshare=True`` restores the historical
rebuild-everything path (same results, used as the equivalence oracle by
the tests and the ablation benchmark).

The step loop itself is *event-driven*: every pending action carries an
absolute ``deadline`` (predicted completion, latency expiry, sleep wake-
up) that is recomputed only when its rate actually changes — the rates
that stayed equal after a re-share, reported by
:attr:`~repro.surf.maxmin.IncrementalMaxMin.last_rate_changed`, keep
their predictions untouched.  The engine keeps those deadlines in a
min-heap of epoch-stamped entries: advancing to the next event is a heap
peek, and harvesting is driven by heap pops, so an event that completes
one flow among 2048 costs O(affected · log P) instead of O(P).  Stale
entries (the action's epoch moved on) are skipped on pop rather than
deleted.  ``eager_updates=True`` restores the historical scan-everything
event loop — every pending action's deadline is examined at every event —
with bit-identical results, as the lazy path's equivalence oracle.

Resources are *dynamic* (see ``docs/faults.md``): availability profiles
scale a link's bandwidth or a host's speed over time, state profiles turn
resources OFF and back ON, and :meth:`Engine.fail_resource` /
:meth:`Engine.restore_resource` / :meth:`Engine.set_availability` script
the same transitions directly.  Profile points are ordinary events on the
engine's event loop (a dedicated min-heap of upcoming points feeds
:meth:`Engine.next_deadline`), and capacity changes flow through the
incremental solver as constraint updates — the affected component is
re-solved and only the flows whose rate changed are re-anchored, so the
lazy/eager and incremental/full oracles stay bit-identical under any mix
of failures, recoveries and capacity noise.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field, fields
from heapq import heappop, heappush
from itertools import islice
from time import perf_counter

from ..errors import SimulationError
from ..log import bind_clock, get_logger
from .action import Action, ActionState, ComputeAction, NetworkAction, SleepAction
from .action import _ids as _action_ids
from .cpu_model import CpuModel
from .maxmin import (
    APPROX_MAX_ROUNDS,
    SHARING_MODES,
    IncrementalMaxMin,
    MaxMinSystem,
    solve_maxmin_components,
)
from .network_model import FactorsNetworkModel, NetworkModel
from .platform import Platform
from .resources import Host, Link, SharingPolicy

__all__ = ["Engine", "EngineStats", "SNAPSHOT_VERSION"]

_log = get_logger("surf")

#: wire-format version of :meth:`Engine.snapshot` payloads; bump on any
#: layout change so stale checkpoints are rejected instead of misread
SNAPSHOT_VERSION = 1


@dataclass
class EngineStats:
    """Counters for the speed evaluation (Figs. 17/18).

    ``partial_shares`` counts the share calls that re-solved only a strict
    subset of the live flows (possibly none); ``flows_resolved`` is the
    total number of flow rates recomputed across all shares, and
    ``components_solved`` the number of connected components those
    re-solves covered.  Under ``full_reshare=True`` every share re-solves
    all flows as one component, so the counters stay comparable.

    ``actions_touched`` counts per-action updates in the event loop: rate
    re-anchors plus, in the lazy engine, heap-popped expiries — or, under
    ``eager_updates=True``, every pending action examined at every event.
    The lazy/eager ratio of ``actions_touched / steps`` is the speedup the
    completion-date heap buys.  ``heap_pops`` and ``stale_heap_entries``
    instrument the heap itself (both stay 0 under eager updates).
    """

    steps: int = 0
    shares: int = 0
    actions_created: int = 0
    actions_completed: int = 0
    peak_concurrent: int = 0
    partial_shares: int = 0
    flows_resolved: int = 0
    components_solved: int = 0
    #: per-action updates performed by the event loop (see class docstring)
    actions_touched: int = 0
    #: completion-heap entries popped (lazy mode only)
    heap_pops: int = 0
    #: popped entries whose prediction was stale and skipped (lazy mode only)
    stale_heap_entries: int = 0
    #: utilization samples recorded on the attached timeline (0 unless
    #: :meth:`Engine.enable_timeline` was called)
    link_samples: int = 0
    #: capacity changes applied (availability profiles + set_availability)
    capacity_events: int = 0
    #: resources turned OFF (state profiles + fail_resource)
    resource_failures: int = 0
    #: resources turned back ON (state profiles + restore_resource)
    resource_restores: int = 0
    #: scheduler resumes of an actor execution context (any backend)
    ctx_switches: int = 0
    #: ctx_switches served by the sole-runnable drain fast path (the
    #: actor was resumed again directly, skipping a deque cycle)
    ctx_fast_resumes: int = 0
    #: progressive-filling rounds spent across all incremental shares (a
    #: direct measure of solver work; bounded per solve in approx mode)
    fill_rounds: int = 0
    #: component solves that hit the approx-mode round cap and took the
    #: bandwidth-fraction fallback; always 0 with ``sharing="exact"``
    approx_events: int = 0
    #: pt2pt match-queue entries examined across all matching attempts
    #: (both ``index`` and ``scan`` modes count identically: one probe
    #: per entry looked at, minimum one per attempt) — the cost metric
    #: the matching ablation bench gates on
    match_probes: int = 0
    #: successful matches whose envelope carried no wildcard (the
    #: indexed queues serve these from an O(1) bucket popleft)
    match_fast_hits: int = 0
    #: matching attempts resolved through a wildcard pattern
    #: (ANY_SOURCE/ANY_TAG on either side)
    wildcard_scans: int = 0
    #: Request/Message/_PostedRecv objects served from a free-list pool
    #: instead of freshly allocated (see docs/performance.md)
    pooled_reuses: int = 0
    extra: dict = field(default_factory=dict)

    #: wire-format version stamped into :meth:`to_dict` payloads; bump it
    #: whenever a counter changes meaning (renames/removals/additions), so
    #: stale serialized stats — e.g. sweep memo-cache entries — are
    #: rejected instead of silently misread.  v2: added the match/alloc
    #: counters (match_probes, match_fast_hits, wildcard_scans,
    #: pooled_reuses).
    SCHEMA_VERSION = 2

    def to_dict(self) -> dict:
        """Serialize every counter to a plain-JSON-compatible dict.

        The payload carries a ``schema_version`` field (see
        :data:`SCHEMA_VERSION`) and round-trips exactly through
        :meth:`from_dict`; the sweep memo cache persists it under
        ``.repro-cache/``.
        """
        data = {"schema_version": self.SCHEMA_VERSION}
        for spec in fields(self):
            value = getattr(self, spec.name)
            data[spec.name] = dict(value) if spec.name == "extra" else value
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "EngineStats":
        """Rebuild an :class:`EngineStats` from a :meth:`to_dict` payload.

        Raises :class:`~repro.errors.SimulationError` when the payload's
        ``schema_version`` is missing or different from
        :data:`SCHEMA_VERSION`, or when it carries counters this version
        does not know — both mean the serialized stats come from an
        incompatible build and must not be trusted.
        """
        payload = dict(data)
        version = payload.pop("schema_version", None)
        if version != cls.SCHEMA_VERSION:
            raise SimulationError(
                f"EngineStats schema_version {version!r} is not the "
                f"supported version {cls.SCHEMA_VERSION}"
            )
        known = {spec.name for spec in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise SimulationError(
                f"EngineStats payload carries unknown counters {unknown}"
            )
        return cls(**payload)


class Engine:
    """Sequential kernel simulating one platform."""

    def __init__(
        self,
        platform: Platform,
        network_model: NetworkModel | None = None,
        cpu_model: CpuModel | None = None,
        full_reshare: bool = False,
        eager_updates: bool = False,
        sharing: str | None = None,
    ) -> None:
        platform.freeze()
        self.platform = platform
        self.network_model = network_model or FactorsNetworkModel()
        self.cpu_model = cpu_model or CpuModel()
        self.full_reshare = full_reshare
        self.eager_updates = eager_updates
        # sharing fidelity dial: "exact" solves every share to the max-min
        # fixed point; "approx" bounds per-share solver work (capped fill
        # rounds + bandwidth-fraction fallback).  None defers to the
        # REPRO_SHARING environment variable, then "exact".
        if sharing is None:
            sharing = os.environ.get("REPRO_SHARING") or "exact"
        if sharing not in SHARING_MODES:
            raise SimulationError(
                f"unknown sharing mode {sharing!r}; expected one of {SHARING_MODES}"
            )
        self.sharing = sharing
        self.now = 0.0
        #: pending actions by aid (insertion order == registration order)
        self.pending: dict[int, Action] = {}
        self.stats = EngineStats()
        #: opt-in wall-timer sink (:class:`repro.profile.Profiler`);
        #: attached by the SMPI runtime under ``--profile``, None otherwise
        self.profiler = None
        self._needs_share = True  # resource shares need recomputation
        self._solver = IncrementalMaxMin(sharing=sharing)
        #: RUNNING actions currently registered as solver flows, by aid
        self._members: dict[int, Action] = {}
        self._instant_done: list[Action] = []
        #: min-heap of (deadline, aid, epoch) completion predictions; only
        #: maintained by the lazy path (``eager_updates=False``)
        self._heap: list[tuple[float, int, int]] = []
        #: actions that reached DONE/FAILED and await observer delivery
        self._finished: list[Action] = []
        #: actions that entered RUNNING since the last share (to enroll)
        self._newly_running: list[Action] = []
        #: actions that left RUNNING since the last share (to retire)
        self._retired: list[Action] = []
        self._dead_resources: set[str] = set()
        #: per-resource capacity factor (1.0 when absent); maintained by
        #: :meth:`set_availability` and read everywhere a constraint
        #: capacity is built, so both solver paths see identical values
        self._availability: dict[str, float] = {}
        #: callbacks ``listener(event, resource, now)`` invoked on every
        #: resource transition — ``event`` is ``"fail"``, ``"restore"`` or
        #: ``"capacity"`` (the SMPI runtime uses these for fault semantics
        #: and failure tracing)
        self.resource_listeners: list = []
        #: installed profile cursors: [resource, kind, event iterator,
        #: points pulled so far] — the pull count is what a snapshot
        #: records, so a restore can re-consume the same prefix of the
        #: (possibly infinite) profile
        self._profile_cursors: list[list] = []
        #: min-heap of (time, cursor index, value) upcoming profile points
        self._profile_heap: list[tuple[float, int, float]] = []
        #: per-resource utilization timeline; None (the default) keeps the
        #: share path free of any sampling work
        self.timeline = None
        self._last_full_usage: dict = {}
        self._install_profiles()
        bind_clock(lambda: self.now)

    def enable_timeline(self):
        """Attach (and return) a :class:`~repro.trace.Timeline`.

        From then on every share also records the consumed bandwidth of
        the links (and the load of the hosts) whose sharing was
        recomputed.  With the incremental solver this piggybacks on the
        component re-solve — clean components cost nothing extra — and
        with the timeline detached (the default) the sampling code is
        never reached at all.
        """
        if self.timeline is None:
            from ..trace.timeline import Timeline

            self.timeline = Timeline()
            self._solver.track_usage = True
        return self.timeline

    # -- action factories -------------------------------------------------------

    def communicate(
        self,
        src: str,
        dst: str,
        size: float,
        name: str = "comm",
        rate_cap: float = math.inf,
        extra_latency: float = 0.0,
    ) -> NetworkAction:
        """Start a transfer of ``size`` bytes between two hosts.

        The network model decides the start-up latency and the per-flow
        rate bound; ``rate_cap`` lets callers throttle further (SimGrid's
        ``rate`` argument) and ``extra_latency`` adds protocol delays
        (per-message overheads, rendezvous handshakes).  Host-local
        transfers route over the platform's loopback link when one is
        configured (:meth:`~repro.surf.platform.Platform.set_loopback`),
        so the installed network model applies to self-sends too; without
        one they fall back to a fixed high-speed loopback treatment.
        """
        route = self.platform.route(src, dst)
        if route.links:
            params = self.network_model.transfer_params(size, route.params)
            links = route.links if params.shared else ()
            action = NetworkAction(
                name,
                size,
                links,
                latency=params.latency + extra_latency,
                rate_bound=min(params.rate_bound, rate_cap),
                src=src,
                dst=dst,
            )
        else:  # same host, no loopback link configured: constant fallback
            action = NetworkAction(
                name, size, (), latency=1e-7 + extra_latency,
                rate_bound=min(rate_cap, 12.5e9), src=src, dst=dst,
            )
        if self._route_is_dead(route.links):
            action.fail()
        self._register(action)
        return action

    def execute(self, host: Host | str, flops: float, name: str = "exec") -> ComputeAction:
        """Start a CPU burst of ``flops`` on ``host``."""
        if isinstance(host, str):
            host = self.platform.host(host)
        action = ComputeAction(name, flops, host, self.cpu_model.action_bound(host))
        if host.name in self._dead_resources:
            action.fail()
        self._register(action)
        return action

    def sleep(self, duration: float, name: str = "sleep") -> SleepAction:
        """Start a pure delay of ``duration`` simulated seconds."""
        action = SleepAction(name, duration)
        self._register(action)
        return action

    def _register(self, action: Action) -> None:
        action.start_time = self.now
        action.last_touched = self.now
        self.stats.actions_created += 1
        if action.state in (ActionState.DONE, ActionState.FAILED):
            # zero-work (or stillborn-failed) actions complete immediately;
            # observers still fire through the normal harvest path
            action.finish_time = self.now
            self._completed_now.append(action)
        else:
            if action.state is ActionState.LATENCY:
                action.deadline = self.now + action.latency_remaining
                self._push(action)
            else:
                # RUNNING from birth: deadline stays inf until a share
                # assigns a rate
                self._newly_running.append(action)
            self.pending[action.aid] = action
            self.stats.peak_concurrent = max(self.stats.peak_concurrent, len(self.pending))
        self._needs_share = True

    def _push(self, action: Action) -> None:
        """Schedule ``action``'s current deadline on the completion heap."""
        if not self.eager_updates and action.deadline < math.inf:
            heappush(self._heap, (action.deadline, action.aid, action.epoch))

    @property
    def _completed_now(self) -> list[Action]:
        """Zero-duration actions waiting for observer delivery."""
        return self._instant_done

    @property
    def busy(self) -> bool:
        """True while any action remains to progress or deliver."""
        return bool(self.pending or self._instant_done)

    # -- stepping ----------------------------------------------------------------

    def share_resources(self) -> None:
        """Recompute the rates invalidated since the last share.

        The incremental path syncs the persistent solver's flow membership
        with the RUNNING actions (arrivals and departures mark the
        resources they touch dirty) and re-solves only the dirty connected
        components; every other RUNNING action keeps its rate, which is
        still the exact max-min solution of its untouched component.  With
        ``full_reshare=True`` the historical path rebuilds and re-solves
        the entire system instead.
        """
        prof = self.profiler
        t0 = perf_counter() if prof is not None else 0.0
        self.stats.shares += 1
        if self.full_reshare:
            self._share_full()
        else:
            self._share_incremental()
        self._needs_share = False
        if prof is not None:
            prof.add("engine.share", perf_counter() - t0)

    def _share_incremental(self) -> None:
        solver = self._solver
        members = self._members
        # Membership is synced from the arrival/departure queues the event
        # loop maintains, not by scanning ``pending`` — a share after one
        # completion costs O(affected), however many actions are in flight.
        for action in self._newly_running:
            if action.state is ActionState.RUNNING and action.aid not in members:
                self._enroll(action)
        self._newly_running.clear()
        for action in self._retired:
            if members.pop(action.aid, None) is not None:
                solver.remove_flow(action.aid)
        self._retired.clear()

        solved = solver.solve_dirty()
        # Only the flows whose rate actually changed value are re-anchored
        # and re-scheduled; every other flow's completion prediction is
        # still exact, so its heap entry survives untouched.
        for aid in solver.last_rate_changed:
            self._apply_rate(members[aid], solver.rate(aid))
        self.stats.flows_resolved += len(solved)
        self.stats.components_solved += solver.last_components
        self.stats.fill_rounds += solver.last_fill_rounds
        self.stats.approx_events += solver.last_approx_events
        if members and len(solved) < len(members):
            self.stats.partial_shares += 1
        if self.timeline is not None:
            now = self.now
            for record, usage in solver.last_usage:
                self.timeline.record(
                    now, record.name, usage, record.capacity,
                    kind="link" if isinstance(record.key, Link) else "host",
                )
            self.stats.link_samples = self.timeline.n_samples

    def _apply_rate(self, action: Action, rate: float) -> None:
        """Re-anchor ``action`` at a new rate and reschedule its deadline.

        Equal rates are skipped entirely — the existing prediction stays
        exact, and skipping keeps the floating-point trajectory identical
        between the lazy and eager engines.
        """
        if rate == action.rate:
            return
        action.set_rate(rate, self.now)
        self.stats.actions_touched += 1
        self._push(action)

    def _capacity_of(self, resource: "Link | Host") -> float:
        """Current constraint capacity: nominal scaled by availability."""
        base = (resource.bandwidth if isinstance(resource, Link)
                else self.cpu_model.capacity(resource))
        factor = self._availability.get(resource.name)
        return base if factor is None else base * factor

    def _ensure_solver_constraint(self, resource: "Link | Host") -> None:
        """Register (or capacity-update) ``resource`` in the solver."""
        if isinstance(resource, Link):
            self._solver.ensure_constraint(
                resource,
                self._capacity_of(resource),
                shared=resource.sharing is SharingPolicy.SHARED,
                name=resource.name,
            )
        else:
            self._solver.ensure_constraint(
                resource, self._capacity_of(resource), name=resource.name
            )

    def _enroll(self, action: Action) -> None:
        """Register a newly-RUNNING action as a solver flow."""
        solver = self._solver
        resources = action.constraints()
        for resource in resources:
            self._ensure_solver_constraint(resource)
        solver.add_flow(action.aid, resources, bound=action.rate_bound,
                        weight=action.weight, name=action.name)
        self._members[action.aid] = action

    def _share_full(self) -> None:
        """The historical rebuild-everything share (equivalence oracle)."""
        # rebuilds from a pending scan; the incremental membership queues
        # would otherwise grow unboundedly
        self._newly_running.clear()
        self._retired.clear()
        running = [a for a in self.pending.values()
                   if a.state is ActionState.RUNNING]
        if not running:
            if self.timeline is not None and self._last_full_usage:
                self._sample_full_usage([])
            return

        system = MaxMinSystem()
        resource_index: dict[object, int] = {}

        def constraint_id(resource: Link | Host) -> int:
            cid = resource_index.get(resource)
            if cid is None:
                if isinstance(resource, Link):
                    cid = system.add_constraint(
                        resource.name,
                        self._capacity_of(resource),
                        shared=resource.sharing is SharingPolicy.SHARED,
                    )
                else:
                    cid = system.add_constraint(
                        resource.name, self._capacity_of(resource)
                    )
                resource_index[resource] = cid
            return cid

        flow_action: list[Action] = []
        for action in running:
            cids = tuple(constraint_id(res) for res in action.constraints())
            system.add_flow(action.name, cids, bound=action.rate_bound,
                            weight=action.weight)
            flow_action.append(action)

        # Component-decomposed fill: the arithmetic twin of the incremental
        # per-component solves, so both modes follow bit-identical float
        # trajectories (a single global fill lets the saturation tolerance
        # couple near-equal levels from unrelated components).
        rates = solve_maxmin_components(
            system,
            max_rounds=APPROX_MAX_ROUNDS if self.sharing == "approx" else None,
        )
        for action, rate in zip(flow_action, rates):
            self._apply_rate(action, float(rate))
        self.stats.flows_resolved += len(running)
        self.stats.components_solved += 1
        if self.timeline is not None:
            self._sample_full_usage(running)

    def _sample_full_usage(self, running: list[Action]) -> None:
        """Timeline sampling for the rebuild-everything share path."""
        usage: dict = {}
        for action in running:
            for resource in action.constraints():
                usage[resource] = usage.get(resource, 0.0) \
                    + action.rate * action.weight
        now = self.now
        for resource in self._last_full_usage:
            if resource not in usage:  # fell idle since the last share
                usage[resource] = 0.0
        for resource, used in usage.items():
            capacity = self._capacity_of(resource)
            self.timeline.record(
                now, resource.name, used, capacity,
                kind="link" if isinstance(resource, Link) else "host",
            )
        self._last_full_usage = {r: u for r, u in usage.items() if u > 0.0}
        self.stats.link_samples = self.timeline.n_samples

    def next_deadline(self) -> float:
        """Absolute date of the next scheduled event (inf when none).

        Lazy mode peeks the completion heap, skipping stale entries;
        eager mode scans every pending action's deadline.  Upcoming
        profile points (capacity changes, failures, recoveries) are
        events too — a flow stalled at rate 0 by a zero-availability
        phase legitimately waits for the restoring point, so the profile
        horizon bounds the result in both modes.
        """
        if self._needs_share:
            self.share_resources()
        horizon = self._next_profile_time()
        if self.eager_updates:
            date = horizon
            for action in self.pending.values():
                if action.is_pending and action.deadline < date:
                    date = action.deadline
            return date
        heap = self._heap
        stats = self.stats
        while heap:
            deadline, aid, epoch = heap[0]
            action = self.pending.get(aid)
            if action is None or epoch != action.epoch or not action.is_pending:
                heappop(heap)
                stats.heap_pops += 1
                stats.stale_heap_entries += 1
                continue
            return min(deadline, horizon)
        return horizon

    def next_event_delta(self) -> float:
        """Time until the next action completes (inf when none will)."""
        date = self.next_deadline()
        return date - self.now if date < math.inf else math.inf

    def _stalled_error(self) -> SimulationError:
        stalled = ", ".join(a.name for a in islice(self.pending.values(), 8))
        return SimulationError(f"no action can complete: {stalled}")

    def step(self) -> list[Action]:
        """Advance to the next completion; return the finished actions.

        Raises :class:`SimulationError` when pending actions exist but none
        can ever finish (all stalled at rate 0 with no latency running) —
        that indicates an internal inconsistency, since max-min always
        grants positive rates to flows on positive-capacity resources.
        """
        prof = self.profiler
        if prof is not None:
            t0 = perf_counter()
            try:
                return self._step_timed()
            finally:
                prof.add("engine.step", perf_counter() - t0)
        return self._step_timed()

    def _step_timed(self) -> list[Action]:
        self.stats.steps += 1
        instant = self._drain_instant()
        if instant:
            return instant
        finished = self._harvest()  # e.g. actions cancelled since last step
        if finished:
            return finished
        if not self.pending:
            return []
        date = self.next_deadline()
        if math.isinf(date):
            raise self._stalled_error()
        self._advance_to(date)
        return self._harvest()

    def _advance_to(self, date: float) -> None:
        """Move the clock to ``date`` (at most the next event deadline) and
        expire the actions whose deadline has been reached.

        Profile points due at ``date`` are applied after the clock moves
        (the share before it covers the interval the old capacities ruled)
        and before expiry processing, so an action completing exactly at a
        capacity change still completes, deterministically in both modes.
        """
        if self._needs_share:
            self.share_resources()
        self.now = date
        self._fire_profiles_due()
        if self.eager_updates:
            self._expire_eager()
        else:
            self._expire_lazy()

    def _expire_eager(self) -> None:
        """Historical O(P) event processing: visit every pending action."""
        now = self.now
        stats = self.stats
        for action in self.pending.values():
            stats.actions_touched += 1
            if action.is_pending and action.deadline <= now:
                self._expire(action)

    def _expire_lazy(self) -> None:
        """Heap-driven event processing: pop exactly the due predictions."""
        now = self.now
        heap = self._heap
        stats = self.stats
        pending = self.pending
        while heap and heap[0][0] <= now:
            _deadline, aid, epoch = heappop(heap)
            stats.heap_pops += 1
            action = pending.get(aid)
            if action is None or epoch != action.epoch or not action.is_pending:
                stats.stale_heap_entries += 1
                continue
            stats.actions_touched += 1
            self._expire(action)

    def _expire(self, action: Action) -> None:
        """Apply one due phase change and queue completions for harvest."""
        action.expire(self.now)
        if action.state is ActionState.DONE:
            self._finished.append(action)
            self._retired.append(action)
        else:  # latency expired: a new flow arrives at the next share
            self._newly_running.append(action)
        # any transition (latency expiry -> new flow, completion ->
        # departure) invalidates the shares of the resources it touches
        self._needs_share = True

    def poll_progress(self) -> bool:
        """True when :meth:`step` can make progress: something to deliver
        now, or a future event scheduled on the heap.  The SIMIX scheduler
        uses this O(1) peek for deadlock detection instead of scanning."""
        if self._instant_done or self._finished:
            return True
        if not self.pending:
            return False
        return not math.isinf(self.next_deadline())

    def advance(self, delta: float) -> None:
        """Progress simulated time by exactly ``delta`` seconds.

        Unlike :meth:`step` this safely crosses any number of event
        boundaries (latency expiries, completions), re-sharing resources
        and delivering observers at each one.  Like :meth:`step` it raises
        :class:`SimulationError` when pending actions exist but none can
        ever finish; the clock only warps to the target when nothing is
        pending.
        """
        if delta < 0:
            raise SimulationError(f"cannot advance time by {delta}")
        target = self.now + delta
        while self.now < target - 1e-15:
            self._harvest()  # deliver cancellations before stall detection
            if not self.pending:
                # nothing left to progress; still replay the profile points
                # inside the window so resource state stays consistent
                date = self._next_profile_time()
                if date > target:
                    break  # idle until the target: warp below
            else:
                date = self.next_deadline()
                if math.isinf(date):
                    raise self._stalled_error()
            self._advance_to(min(date, target))
            self._harvest()
        self.now = max(self.now, target)

    def _harvest(self) -> list[Action]:
        if not self._finished:
            return []
        finished, self._finished = self._finished, []
        # observers fire in registration order, whatever order completions
        # and cancellations were discovered in
        finished.sort(key=lambda a: a.aid)
        for action in finished:
            self.pending.pop(action.aid, None)
            action.finish_time = self.now
            self.stats.actions_completed += 1
            if action.observer is not None:
                action.observer(action)
        return finished

    def _drain_instant(self) -> list[Action]:
        instant = self._completed_now
        if not instant:
            return []
        done = list(instant)
        instant.clear()
        for action in done:
            self.stats.actions_completed += 1
            if action.observer is not None:
                action.observer(action)
        return done

    def run(self) -> float:
        """Run standalone until every action completed; return final clock.

        ``stats.steps`` is counted by :meth:`step` itself, so the counter
        is accurate whichever driver (``run()`` or the SIMIX scheduler)
        paces the simulation.
        """
        while self.pending or self._completed_now:
            self.step()
        return self.now

    def _retire(self, action: Action) -> None:
        """The one external-failure path: mark ``action`` FAILED, queue it
        for observer delivery at the next harvest, and schedule its solver
        departure (its epoch bump staled any live heap entry).

        Both :meth:`cancel` and :meth:`fail_resource` funnel through here
        so lazy-heap and solver membership stay in sync whichever way an
        action dies mid-flight.
        """
        action.fail()
        self._finished.append(action)
        self._retired.append(action)
        self._needs_share = True

    def cancel(self, action: Action) -> None:
        """Fail a pending action; its observer fires on the next harvest."""
        if action.is_pending:
            self._retire(action)

    # -- dynamic resources: failure, recovery, availability ---------------------------

    def at(self, when: float, callback, fire_on_cancel: bool = True) -> Action:
        """Invoke ``callback()`` at absolute simulated time ``when``.

        Implemented as a zero-length sleep whose observer runs the
        callback; useful for injecting failures and other scripted events.
        By default the observer fires even if the sleep is cancelled or a
        resource failure kills it — the historical behavior, which scripted
        fault injection relies on (the injection must happen however the
        scenario unwinds).  Pass ``fire_on_cancel=False`` for watchdog-style
        callbacks that must NOT outlive their trigger: cancelling the
        returned action (:meth:`cancel`) then suppresses the callback.
        """
        delay = max(when - self.now, 0.0)
        action = self.sleep(delay, name=f"at-{when}")

        def observer(fired: Action) -> None:
            if not fire_on_cancel and fired.state is ActionState.FAILED:
                return
            callback()

        action.observer = observer
        return action

    def is_dead(self, resource: "Link | Host") -> bool:
        """Whether ``resource`` is currently OFF (failed, not yet restored)."""
        return resource.name in self._dead_resources

    def fail_resource(self, resource: "Link | Host") -> None:
        """Turn a link or host OFF: every action using it fails, now and
        until :meth:`restore_resource` turns it back ON.

        Mirrors SimGrid's resource failures: pending transfers/computes
        crossing the resource turn FAILED (surfacing as errors in the
        waiting ranks), and new actions over it fail immediately.
        Idempotent while the resource is already down.
        """
        if resource.name in self._dead_resources:
            return
        self._dead_resources.add(resource.name)
        self.stats.resource_failures += 1
        for action in self.pending.values():
            if action.is_pending and any(
                res.name == resource.name for res in action.constraints()
            ):
                self._retire(action)
        self._needs_share = True
        self._notify("fail", resource)

    def restore_resource(self, resource: "Link | Host") -> None:
        """Turn a failed link or host back ON (recovery).

        New actions over the resource work again immediately; the actions
        its failure killed stay FAILED (retry is an upper-layer policy —
        see ``SmpiConfig.comm_retries``).  No-op while the resource is up.
        """
        if resource.name not in self._dead_resources:
            return
        self._dead_resources.discard(resource.name)
        self.stats.resource_restores += 1
        self._needs_share = True
        self._notify("restore", resource)

    def availability(self, resource: "Link | Host") -> float:
        """Current capacity factor of ``resource`` (1.0 = nominal)."""
        return self._availability.get(resource.name, 1.0)

    def set_availability(self, resource: "Link | Host", factor: float) -> None:
        """Scale ``resource``'s capacity by ``factor`` from now on.

        The constraint's capacity becomes ``nominal * factor``; the solver
        re-solves the affected component at the next share and the lazy
        heap re-anchors exactly the flows whose rate changed.  ``0.0``
        stalls flows on the resource without failing them (they resume
        when capacity returns); use :meth:`fail_resource` for hard
        outages.  Unchanged factors are ignored.
        """
        if not math.isfinite(factor) or factor < 0:
            raise SimulationError(
                f"availability of {resource.name!r} must be finite and >= 0, "
                f"got {factor}"
            )
        if factor == self._availability.get(resource.name, 1.0):
            return
        if factor == 1.0:
            self._availability.pop(resource.name, None)
        else:
            self._availability[resource.name] = factor
        self.stats.capacity_events += 1
        if self._solver.has_constraint(resource):
            # updates the registered capacity and marks the constraint
            # dirty, so dependent flows re-solve at the next share
            self._ensure_solver_constraint(resource)
        self._needs_share = True
        if self.timeline is not None:
            self.timeline.record_capacity(
                self.now, resource.name, self._capacity_of(resource),
                kind="link" if isinstance(resource, Link) else "host",
            )
        self._notify("capacity", resource)

    def _notify(self, event: str, resource: "Link | Host") -> None:
        for listener in self.resource_listeners:
            listener(event, resource, self.now)

    def _route_is_dead(self, links) -> bool:
        return any(link.name in self._dead_resources for link in links)

    # -- availability/state profiles ------------------------------------------------

    def attach_profile(self, resource: "Link | Host", profile,
                       kind: str = "availability") -> None:
        """Install a :class:`~repro.surf.profiles.Profile` on ``resource``.

        ``kind`` is ``"availability"`` (points are capacity factors fed to
        :meth:`set_availability`) or ``"state"`` (0 points fail the
        resource, non-zero points restore it).  Points at or before the
        current clock apply immediately; later ones fire as engine events.
        Platform resources carrying ``availability_profile`` /
        ``state_profile`` attributes are installed automatically at engine
        construction.
        """
        if kind not in ("availability", "state"):
            raise SimulationError(
                f"unknown profile kind {kind!r} (availability or state)"
            )
        cursor = len(self._profile_cursors)
        self._profile_cursors.append([resource, kind, profile.iter_events(), 0])
        self._advance_cursor(cursor)
        self._fire_profiles_due()

    def _install_profiles(self) -> None:
        """Install the profiles attached to the platform's resources."""
        for resource in (*self.platform.links, *self.platform.hosts):
            for kind in ("availability", "state"):
                profile = getattr(resource, f"{kind}_profile", None)
                if profile is not None:
                    self.attach_profile(resource, profile, kind)

    def _advance_cursor(self, cursor: int) -> None:
        """Schedule the next point of one profile (pulled one at a time,
        so infinite periodic profiles never materialize)."""
        record = self._profile_cursors[cursor]
        entry = next(record[2], None)
        record[3] += 1
        if entry is not None:
            heappush(self._profile_heap, (entry[0], cursor, entry[1]))

    def _next_profile_time(self) -> float:
        """Absolute date of the earliest scheduled profile point."""
        return self._profile_heap[0][0] if self._profile_heap else math.inf

    def _fire_profiles_due(self) -> None:
        """Apply every profile point due at the current clock.

        Same-time points fire in installation order (heap ties break on
        the cursor index), keeping multi-profile scenarios deterministic.
        """
        heap = self._profile_heap
        while heap and heap[0][0] <= self.now:
            _t, cursor, value = heappop(heap)
            resource, kind = self._profile_cursors[cursor][:2]
            if kind == "state":
                if value <= 0.0:
                    self.fail_resource(resource)
                else:
                    self.restore_resource(resource)
            else:
                self.set_availability(resource, value)
            self._advance_cursor(cursor)

    # -- snapshot / restore (docs/scaling.md) -----------------------------------

    def snapshot(self) -> dict:
        """Serialize the engine's full dynamic state as a plain dict.

        The payload is JSON-compatible (Python's ``json`` round-trips the
        ``inf``/``nan`` values the numeric fields legitimately hold) and
        :meth:`restore` rebuilds an engine from it that continues the run
        **bit-identically** to the uninterrupted one: action ids, heap
        tie-breaks, solver re-solve order and float trajectories are all
        preserved.  Observers are *not* captured — they are closures into
        the layer driving the engine, and that layer (see
        ``repro.offline.snapshot``) re-attaches its own observers to the
        actions :meth:`restore` returns.

        A snapshot is only taken at a *quiescent* cut: every completion
        already delivered.  The capture refuses (raising
        :class:`SimulationError`) when undelivered completions are queued,
        when an :meth:`at` callback is pending (its closure cannot be
        serialized), when a timeline is attached (utilization series are
        streamed, not checkpointed), or under the ``full_reshare`` /
        ``eager_updates`` oracle modes.
        """
        if self.full_reshare or self.eager_updates:
            raise SimulationError(
                "snapshot supports the default lazy/incremental engine only"
            )
        if self._instant_done or self._finished:
            raise SimulationError(
                "engine is not quiescent: completions await delivery "
                "(step once more, then capture)"
            )
        if self.timeline is not None:
            raise SimulationError(
                "snapshot does not capture the utilization timeline; "
                "checkpoint runs with tracing disabled"
            )
        for action in self.pending.values():
            if action.name.startswith("at-"):
                raise SimulationError(
                    f"pending scheduled callback {action.name!r} cannot be "
                    "snapshotted (its closure is not serializable)"
                )

        solver = self._solver
        members = []
        for aid in solver.flow_keys_in_seq_order():
            try:
                rate = solver.rate(aid)
            except KeyError:  # enrolled but never solved (NaN sentinel)
                rate = None
            members.append([aid, rate])
        retired_aids = {a.aid for a in self._retired}
        actions = [self._serialize_action(a) for a in self.pending.values()]
        actions += [self._serialize_action(a) for a in self._retired
                    if a.aid not in self.pending]
        return {
            "version": SNAPSHOT_VERSION,
            "sharing": self.sharing,
            "now": self.now,
            "stats": self.stats.to_dict(),
            "availability": dict(self._availability),
            "dead_resources": sorted(self._dead_resources),
            "next_aid": _action_ids.peek,
            "actions": actions,
            "pending": list(self.pending),
            "heap": [list(entry) for entry in self._heap],
            "newly_running": [a.aid for a in self._newly_running],
            "retired": sorted(retired_aids),
            "needs_share": self._needs_share,
            "members": members,
            "dirty_cons": [self._resource_ref(key)
                           for key in solver._dirty_cons],
            "dirty_flows": sorted(solver._dirty_flows),
            "profiles": [
                {"resource": self._resource_ref(record[0]),
                 "kind": record[1], "pulls": record[3]}
                for record in self._profile_cursors
            ],
            "profile_heap": [list(entry) for entry in self._profile_heap],
        }

    @staticmethod
    def _resource_ref(resource: "Link | Host") -> list:
        return ["host" if isinstance(resource, Host) else "link",
                resource.name]

    def _resource_by_ref(self, ref) -> "Link | Host":
        rtype, name = ref
        return (self.platform.host(name) if rtype == "host"
                else self.platform.link(name))

    def _serialize_action(self, action: Action) -> dict:
        data = {
            "aid": action.aid,
            "name": action.name,
            "state": action.state.name,
            "remaining": action.remaining,
            "latency_remaining": action.latency_remaining,
            "rate": action.rate,
            "rate_bound": action.rate_bound,
            "weight": action.weight,
            "start_time": action.start_time,
            "finish_time": action.finish_time,
            "last_touched": action.last_touched,
            "deadline": action.deadline,
            "epoch": action.epoch,
        }
        if isinstance(action, NetworkAction):
            data["kind"] = "network"
            data["src"] = action.src
            data["dst"] = action.dst
            data["size"] = action.size
            data["routed"] = bool(action.links)
        elif isinstance(action, ComputeAction):
            data["kind"] = "compute"
            data["host"] = action.host.name
        elif isinstance(action, SleepAction):
            data["kind"] = "sleep"
        else:
            raise SimulationError(
                f"cannot snapshot action of type {type(action).__name__}"
            )
        return data

    def _revive_action(self, data: dict) -> Action:
        """Rebuild one serialized action, observer-less, slots verbatim."""
        kind = data["kind"]
        if kind == "network":
            action = NetworkAction.__new__(NetworkAction)
            if data["routed"]:
                # re-derive the link tuple from the (frozen, hence
                # identical) platform topology; the numeric state is
                # never re-derived from the network model
                action.links = self.platform.route(
                    data["src"], data["dst"]).links
            else:
                action.links = ()
            action.src = data["src"]
            action.dst = data["dst"]
            action.size = float(data["size"])
            action.payload = None
        elif kind == "compute":
            action = ComputeAction.__new__(ComputeAction)
            action.host = self.platform.host(data["host"])
        elif kind == "sleep":
            action = SleepAction.__new__(SleepAction)
        else:
            raise SimulationError(f"unknown serialized action kind {kind!r}")
        action.aid = data["aid"]
        action.name = data["name"]
        action.state = ActionState[data["state"]]
        action.remaining = data["remaining"]
        action.latency_remaining = data["latency_remaining"]
        action.rate = data["rate"]
        action.rate_bound = data["rate_bound"]
        action.weight = data["weight"]
        action.start_time = data["start_time"]
        action.finish_time = data["finish_time"]
        action.last_touched = data["last_touched"]
        action.deadline = data["deadline"]
        action.epoch = data["epoch"]
        action.observer = None
        return action

    @classmethod
    def restore(
        cls,
        platform: Platform,
        snap: dict,
        network_model: NetworkModel | None = None,
        cpu_model: CpuModel | None = None,
    ) -> tuple["Engine", dict]:
        """Rebuild an engine from a :meth:`snapshot` payload.

        Returns ``(engine, actions)`` where ``actions`` maps each
        serialized aid to its revived :class:`Action` so the driving
        layer can re-attach observers.  ``platform`` must be the platform
        the snapshot was taken on (same topology and nominal capacities),
        and ``network_model``/``cpu_model`` must equal the original run's
        for the continuation to stay bit-identical — the snapshot stores
        every in-flight action's *numeric* state verbatim, but actions
        created after the restore consult the models again.
        """
        version = snap.get("version")
        if version != SNAPSHOT_VERSION:
            raise SimulationError(
                f"engine snapshot version {version!r} is not the supported "
                f"version {SNAPSHOT_VERSION}"
            )
        engine = cls(platform, network_model=network_model,
                     cpu_model=cpu_model, sharing=snap["sharing"])
        # undo the construction-time profile install; cursors are re-wound
        # to their serialized positions below
        engine._profile_cursors = []
        engine._profile_heap = []

        engine.now = snap["now"]
        engine.stats = EngineStats.from_dict(snap["stats"])
        engine._availability = dict(snap["availability"])
        engine._dead_resources = set(snap["dead_resources"])
        engine._needs_share = snap["needs_share"]

        actions: dict[int, Action] = {}
        for data in snap["actions"]:
            action = engine._revive_action(data)
            actions[action.aid] = action
        engine.pending = {aid: actions[aid] for aid in snap["pending"]}
        engine._heap = [tuple(entry) for entry in snap["heap"]]
        engine._newly_running = [actions[aid]
                                 for aid in snap["newly_running"]]
        engine._retired = [actions[aid] for aid in snap["retired"]]

        # Solver: re-enroll every member flow in original seq order (so
        # component re-solves sort members identically), seed the solved
        # rates, then reset dirtiness to exactly the serialized cut.
        # Component solves run progressive filling from scratch, so this
        # state is indistinguishable from having solved its way here.
        solver = engine._solver
        for aid, rate in snap["members"]:
            engine._enroll(actions[aid])
            if rate is not None:
                solver.seed_rate(aid, rate)
        solver.clear_dirty()
        for ref in snap["dirty_cons"]:
            solver.mark_dirty(engine._resource_by_ref(ref))
        for aid in snap["dirty_flows"]:
            solver.mark_flow_dirty(aid)

        # Profiles: re-open each (platform-attached) profile and discard
        # the consumed prefix; the upcoming-point heap is restored
        # verbatim so firing order and tie-breaks are preserved.
        for spec in snap["profiles"]:
            resource = engine._resource_by_ref(spec["resource"])
            profile = getattr(resource, f"{spec['kind']}_profile", None)
            if profile is None:
                raise SimulationError(
                    f"snapshot references a {spec['kind']} profile on "
                    f"{resource.name!r} that the platform does not carry"
                )
            events = profile.iter_events()
            for _ in range(spec["pulls"]):
                next(events, None)
            engine._profile_cursors.append(
                [resource, spec["kind"], events, spec["pulls"]])
        engine._profile_heap = [tuple(entry)
                                for entry in snap["profile_heap"]]

        # continue numbering where the original left off: heap ties break
        # on aid and harvests deliver aid-sorted, so ids must line up
        _action_ids.advance_to(snap["next_aid"])
        return engine, actions
