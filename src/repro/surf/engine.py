"""The sequential simulation engine (paper section 5.1).

One :class:`Engine` instance owns the simulated clock and every pending
:class:`~repro.surf.action.Action`.  Each step:

1. **share** — build a max-min system from the RUNNING actions and the
   resources they cross, solve it, assign each action its rate;
2. **advance** — jump the clock to the earliest of: a RUNNING action
   finishing at its current rate, or a LATENCY/sleep deadline expiring;
3. **harvest** — mark finished actions DONE and invoke their observers
   (the SIMIX layer uses observers to wake blocked actors).

The engine is deliberately *fully sequential* — the paper's design choice
to sidestep parallel-DES synchronisation — and fast because sharing is one
analytical solve, not per-packet events.  It can run standalone (``run()``)
for model-level studies, or be driven step-by-step by
:class:`repro.simix.context.Scheduler` for on-line application simulation.

Sharing is *incremental* by default: the engine keeps one persistent
:class:`~repro.surf.maxmin.IncrementalMaxMin` system alive across steps.
Action arrivals/departures mark only the resources they touch dirty, and
each share re-solves only the connected components of the flow/resource
graph containing a dirty resource — the 500 flows of an all-to-all that
never cross a completed flow's links keep their rates and completion
estimates untouched.  ``full_reshare=True`` restores the historical
rebuild-everything path (same results, used as the equivalence oracle by
the tests and the ablation benchmark).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import SimulationError
from ..log import bind_clock, get_logger
from .action import Action, ActionState, ComputeAction, NetworkAction, SleepAction
from .cpu_model import CpuModel
from .maxmin import IncrementalMaxMin, MaxMinSystem, solve_maxmin
from .network_model import FactorsNetworkModel, NetworkModel
from .platform import Platform
from .resources import Host, Link, SharingPolicy

__all__ = ["Engine", "EngineStats"]

_log = get_logger("surf")


@dataclass
class EngineStats:
    """Counters for the speed evaluation (Figs. 17/18).

    ``partial_shares`` counts the share calls that re-solved only a strict
    subset of the live flows (possibly none); ``flows_resolved`` is the
    total number of flow rates recomputed across all shares, and
    ``components_solved`` the number of connected components those
    re-solves covered.  Under ``full_reshare=True`` every share re-solves
    all flows as one component, so the counters stay comparable.
    """

    steps: int = 0
    shares: int = 0
    actions_created: int = 0
    actions_completed: int = 0
    peak_concurrent: int = 0
    partial_shares: int = 0
    flows_resolved: int = 0
    components_solved: int = 0
    #: utilization samples recorded on the attached timeline (0 unless
    #: :meth:`Engine.enable_timeline` was called)
    link_samples: int = 0
    extra: dict = field(default_factory=dict)


class Engine:
    """Sequential kernel simulating one platform."""

    def __init__(
        self,
        platform: Platform,
        network_model: NetworkModel | None = None,
        cpu_model: CpuModel | None = None,
        full_reshare: bool = False,
    ) -> None:
        platform.freeze()
        self.platform = platform
        self.network_model = network_model or FactorsNetworkModel()
        self.cpu_model = cpu_model or CpuModel()
        self.full_reshare = full_reshare
        self.now = 0.0
        self.pending: list[Action] = []
        self.stats = EngineStats()
        self._needs_share = True  # resource shares need recomputation
        self._solver = IncrementalMaxMin()
        #: RUNNING actions currently registered as solver flows, by aid
        self._members: dict[int, Action] = {}
        self._instant_done: list[Action] = []
        self._dead_resources: set[str] = set()
        #: per-resource utilization timeline; None (the default) keeps the
        #: share path free of any sampling work
        self.timeline = None
        self._last_full_usage: dict = {}
        bind_clock(lambda: self.now)

    def enable_timeline(self):
        """Attach (and return) a :class:`~repro.trace.Timeline`.

        From then on every share also records the consumed bandwidth of
        the links (and the load of the hosts) whose sharing was
        recomputed.  With the incremental solver this piggybacks on the
        component re-solve — clean components cost nothing extra — and
        with the timeline detached (the default) the sampling code is
        never reached at all.
        """
        if self.timeline is None:
            from ..trace.timeline import Timeline

            self.timeline = Timeline()
            self._solver.track_usage = True
        return self.timeline

    # -- action factories -------------------------------------------------------

    def communicate(
        self,
        src: str,
        dst: str,
        size: float,
        name: str = "comm",
        rate_cap: float = math.inf,
        extra_latency: float = 0.0,
    ) -> NetworkAction:
        """Start a transfer of ``size`` bytes between two hosts.

        The network model decides the start-up latency and the per-flow
        rate bound; ``rate_cap`` lets callers throttle further (SimGrid's
        ``rate`` argument) and ``extra_latency`` adds protocol delays
        (per-message overheads, rendezvous handshakes).  Host-local
        transfers route over the platform's loopback link when one is
        configured (:meth:`~repro.surf.platform.Platform.set_loopback`),
        so the installed network model applies to self-sends too; without
        one they fall back to a fixed high-speed loopback treatment.
        """
        route = self.platform.route(src, dst)
        if route.links:
            params = self.network_model.transfer_params(size, route.params)
            links = route.links if params.shared else ()
            action = NetworkAction(
                name,
                size,
                links,
                latency=params.latency + extra_latency,
                rate_bound=min(params.rate_bound, rate_cap),
                src=src,
                dst=dst,
            )
        else:  # same host, no loopback link configured: constant fallback
            action = NetworkAction(
                name, size, (), latency=1e-7 + extra_latency,
                rate_bound=min(rate_cap, 12.5e9), src=src, dst=dst,
            )
        if self._route_is_dead(route.links):
            action.fail()
        self._register(action)
        return action

    def execute(self, host: Host | str, flops: float, name: str = "exec") -> ComputeAction:
        """Start a CPU burst of ``flops`` on ``host``."""
        if isinstance(host, str):
            host = self.platform.host(host)
        action = ComputeAction(name, flops, host, self.cpu_model.action_bound(host))
        if host.name in self._dead_resources:
            action.fail()
        self._register(action)
        return action

    def sleep(self, duration: float, name: str = "sleep") -> SleepAction:
        """Start a pure delay of ``duration`` simulated seconds."""
        action = SleepAction(name, duration)
        self._register(action)
        return action

    def _register(self, action: Action) -> None:
        action.start_time = self.now
        self.stats.actions_created += 1
        if action.state in (ActionState.DONE, ActionState.FAILED):
            # zero-work (or stillborn-failed) actions complete immediately;
            # observers still fire through the normal harvest path
            action.finish_time = self.now
            self._completed_now.append(action)
        else:
            self.pending.append(action)
            self.stats.peak_concurrent = max(self.stats.peak_concurrent, len(self.pending))
        self._needs_share = True

    @property
    def _completed_now(self) -> list[Action]:
        """Zero-duration actions waiting for observer delivery."""
        return self._instant_done

    @property
    def busy(self) -> bool:
        """True while any action remains to progress or deliver."""
        return bool(self.pending or self._instant_done)

    # -- stepping ----------------------------------------------------------------

    def share_resources(self) -> None:
        """Recompute the rates invalidated since the last share.

        The incremental path syncs the persistent solver's flow membership
        with the RUNNING actions (arrivals and departures mark the
        resources they touch dirty) and re-solves only the dirty connected
        components; every other RUNNING action keeps its rate, which is
        still the exact max-min solution of its untouched component.  With
        ``full_reshare=True`` the historical path rebuilds and re-solves
        the entire system instead.
        """
        self.stats.shares += 1
        if self.full_reshare:
            self._share_full()
        else:
            self._share_incremental()
        self._needs_share = False

    def _share_incremental(self) -> None:
        solver = self._solver
        members = self._members
        for action in self.pending:
            if action.state is ActionState.RUNNING and action.aid not in members:
                self._enroll(action)
        stale = [aid for aid, action in members.items()
                 if action.state is not ActionState.RUNNING]
        for aid in stale:
            solver.remove_flow(aid)
            del members[aid]

        solved = solver.solve_dirty()
        for aid in solved:
            members[aid].rate = solver.rate(aid)
        self.stats.flows_resolved += len(solved)
        self.stats.components_solved += solver.last_components
        if members and len(solved) < len(members):
            self.stats.partial_shares += 1
        if self.timeline is not None and solver.last_usage:
            now = self.now
            for record, usage in solver.last_usage:
                self.timeline.record(
                    now, record.name, usage, record.capacity,
                    kind="link" if isinstance(record.key, Link) else "host",
                )
            self.stats.link_samples = self.timeline.n_samples

    def _enroll(self, action: Action) -> None:
        """Register a newly-RUNNING action as a solver flow."""
        solver = self._solver
        resources = action.constraints()
        for resource in resources:
            if isinstance(resource, Link):
                solver.ensure_constraint(
                    resource,
                    resource.bandwidth,
                    shared=resource.sharing is SharingPolicy.SHARED,
                    name=resource.name,
                )
            else:
                solver.ensure_constraint(
                    resource, self.cpu_model.capacity(resource),
                    name=resource.name,
                )
        solver.add_flow(action.aid, resources, bound=action.rate_bound,
                        weight=action.weight, name=action.name)
        self._members[action.aid] = action

    def _share_full(self) -> None:
        """The historical rebuild-everything share (equivalence oracle)."""
        running = [a for a in self.pending if a.state is ActionState.RUNNING]
        for action in running:
            action.rate = 0.0
        if not running:
            if self.timeline is not None and self._last_full_usage:
                self._sample_full_usage([])
            return

        system = MaxMinSystem()
        resource_index: dict[object, int] = {}

        def constraint_id(resource: Link | Host) -> int:
            cid = resource_index.get(resource)
            if cid is None:
                if isinstance(resource, Link):
                    cid = system.add_constraint(
                        resource.name,
                        resource.bandwidth,
                        shared=resource.sharing is SharingPolicy.SHARED,
                    )
                else:
                    cid = system.add_constraint(
                        resource.name, self.cpu_model.capacity(resource)
                    )
                resource_index[resource] = cid
            return cid

        flow_action: list[Action] = []
        for action in running:
            cids = tuple(constraint_id(res) for res in action.constraints())
            system.add_flow(action.name, cids, bound=action.rate_bound,
                            weight=action.weight)
            flow_action.append(action)

        rates = solve_maxmin(system)
        for action, rate in zip(flow_action, rates):
            action.rate = float(rate)
        self.stats.flows_resolved += len(running)
        self.stats.components_solved += 1
        if self.timeline is not None:
            self._sample_full_usage(running)

    def _sample_full_usage(self, running: list[Action]) -> None:
        """Timeline sampling for the rebuild-everything share path."""
        usage: dict = {}
        for action in running:
            for resource in action.constraints():
                usage[resource] = usage.get(resource, 0.0) \
                    + action.rate * action.weight
        now = self.now
        for resource in self._last_full_usage:
            if resource not in usage:  # fell idle since the last share
                usage[resource] = 0.0
        for resource, used in usage.items():
            capacity = (resource.bandwidth if isinstance(resource, Link)
                        else self.cpu_model.capacity(resource))
            self.timeline.record(
                now, resource.name, used, capacity,
                kind="link" if isinstance(resource, Link) else "host",
            )
        self._last_full_usage = {r: u for r, u in usage.items() if u > 0.0}
        self.stats.link_samples = self.timeline.n_samples

    def next_event_delta(self) -> float:
        """Time until the next action completes (inf when none will)."""
        if self._needs_share:
            self.share_resources()
        delta = math.inf
        for action in self.pending:
            delta = min(delta, action.time_to_completion())
        return delta

    def step(self) -> list[Action]:
        """Advance to the next completion; return the finished actions.

        Raises :class:`SimulationError` when pending actions exist but none
        can ever finish (all stalled at rate 0 with no latency running) —
        that indicates an internal inconsistency, since max-min always
        grants positive rates to flows on positive-capacity resources.
        """
        instant = self._drain_instant()
        if instant:
            return instant
        finished = self._harvest()  # e.g. actions cancelled since last step
        if finished:
            return finished
        if not self.pending:
            return []
        delta = self.next_event_delta()
        if math.isinf(delta):
            stalled = ", ".join(a.name for a in self.pending[:8])
            raise SimulationError(f"no action can complete: {stalled}")
        self._advance_raw(delta)
        return self._harvest()

    def _advance_raw(self, delta: float) -> None:
        """Progress every pending action by ``delta`` (must not cross more
        than one phase boundary — callers bound delta by next_event_delta)."""
        if self._needs_share:
            self.share_resources()
        self.now += delta
        changed = False
        for action in self.pending:
            changed = action.advance(delta) or changed
        if changed:
            # a state transition (latency expiry, completion) invalidates
            # the shares of the resources that action touches
            self._needs_share = True

    def advance(self, delta: float) -> None:
        """Progress simulated time by exactly ``delta`` seconds.

        Unlike :meth:`_advance_raw` this safely crosses any number of
        event boundaries (latency expiries, completions), re-sharing
        resources and delivering observers at each one.  Like :meth:`step`
        it raises :class:`SimulationError` when pending actions exist but
        none can ever finish; the clock only warps to the target when
        nothing is pending.
        """
        if delta < 0:
            raise SimulationError(f"cannot advance time by {delta}")
        target = self.now + delta
        while self.now < target - 1e-15:
            self._harvest()  # deliver cancellations before stall detection
            if not self.pending:
                break  # nothing left to progress: warp to the target below
            next_delta = self.next_event_delta()
            if math.isinf(next_delta):
                stalled = ", ".join(a.name for a in self.pending[:8])
                raise SimulationError(f"no action can complete: {stalled}")
            self._advance_raw(min(next_delta, target - self.now))
            self._harvest()
        self.now = max(self.now, target)

    def _harvest(self) -> list[Action]:
        finished = [a for a in self.pending
                    if a.state in (ActionState.DONE, ActionState.FAILED)]
        if finished:
            self.pending = [a for a in self.pending if a.is_pending]
            for action in finished:
                action.finish_time = self.now
                self.stats.actions_completed += 1
                if action.observer is not None:
                    action.observer(action)
        return finished

    def _drain_instant(self) -> list[Action]:
        instant = self._completed_now
        if not instant:
            return []
        done = list(instant)
        instant.clear()
        for action in done:
            self.stats.actions_completed += 1
            if action.observer is not None:
                action.observer(action)
        return done

    def run(self) -> float:
        """Run standalone until every action completed; return final clock."""
        self.stats.steps += 1
        while self.pending or self._completed_now:
            self.step()
            self.stats.steps += 1
        return self.now

    def cancel(self, action: Action) -> None:
        """Fail a pending action; its observer fires on the next harvest."""
        action.fail()
        self._needs_share = True

    # -- failure injection (extension) ----------------------------------------------

    def at(self, when: float, callback) -> Action:
        """Invoke ``callback()`` at absolute simulated time ``when``.

        Implemented as a zero-length sleep whose observer runs the
        callback; useful for injecting failures and other scripted events.
        """
        delay = max(when - self.now, 0.0)
        action = self.sleep(delay, name=f"at-{when}")

        def observer(_action: Action) -> None:
            callback()

        action.observer = observer
        return action

    def is_dead(self, resource: "Link | Host") -> bool:
        return resource.name in self._dead_resources

    def fail_resource(self, resource: "Link | Host") -> None:
        """Kill a link or host: every action using it fails, now and later.

        Mirrors SimGrid's resource failures: pending transfers/computes
        crossing the resource turn FAILED (surfacing as errors in the
        waiting ranks), and new actions over it fail immediately.
        """
        self._dead_resources.add(resource.name)
        for action in self.pending:
            if any(res.name == resource.name for res in action.constraints()):
                action.fail()
        self._needs_share = True

    def _route_is_dead(self, links) -> bool:
        return any(link.name in self._dead_resources for link in links)
