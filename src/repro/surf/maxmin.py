"""Max-min fairness solver with per-flow rate bounds.

This is the analytical contention model at the core of SimGrid (paper
section 4.2): instead of simulating individual packets, the bandwidth each
active flow receives is computed by *progressive filling* — the classic
water-filling algorithm for max-min fairness:

1. grow the rate of every unfixed flow uniformly,
2. the first constraint to saturate is either a link (its capacity divided
   by its number of unfixed flows is smallest) or a flow's own rate bound,
3. fix the flows involved, subtract their consumption, repeat.

A *flow* here is any resource consumer: a network transfer crossing a set
of links, or a compute action "crossing" the single constraint of its host
CPU.  Each flow may carry a finite ``bound`` — the piece-wise linear model
of the paper enters the solver this way, as a per-flow cap equal to the
fitted segment bandwidth for the message's size.

Two implementations are provided and cross-checked by the test suite:

* :func:`solve_maxmin_reference` — direct transcription of progressive
  filling, easy to audit, O(iterations × flows × links);
* :func:`solve_maxmin_vectorized` — NumPy sparse-matrix formulation used by
  default above a size threshold, same fixed point, much faster for the
  hundreds of concurrent flows produced by large collectives.

Both handle *weighted* sharing (a flow counting as ``weight`` concurrent
flows on each of its links — SimGrid uses this to model TCP RTT unfairness)
and links with a FATPIPE policy (no sharing: every flow may use the full
capacity, used for backplanes that are provisioned not to contend).

On top of the one-shot solvers, :class:`IncrementalMaxMin` keeps a
bandwidth-sharing problem *alive* across engine steps: flows come and go
(``add_flow`` / ``remove_flow``), each change marks the constraints it
touches dirty, and :meth:`IncrementalMaxMin.solve_dirty` re-solves only the
connected components of the flow/constraint graph reachable from a dirty
constraint.  The max-min fixed point decomposes exactly over connected
components (flows in different components share no constraint, transitively),
so untouched components keep their rates — this is the lazy partial
invalidation the SimGrid kernel uses to keep the sequential share cheap.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..errors import SimulationError

__all__ = [
    "FlowSpec",
    "ConstraintSpec",
    "MaxMinSystem",
    "IncrementalMaxMin",
    "solve_maxmin",
    "solve_maxmin_components",
    "solve_maxmin_reference",
    "solve_maxmin_vectorized",
]

#: Flows/constraints above which :func:`solve_maxmin` switches to the
#: vectorised implementation.  Determined with
#: ``benchmarks/bench_ablation_maxmin.py``; the crossover is flat between
#: 16 and 64 on CPython 3.11.
VECTORIZE_THRESHOLD = 32

_EPS = 1e-12


@dataclass
class ConstraintSpec:
    """One shared resource: a link or a CPU.

    ``capacity`` is in resource units per second (bytes/s or flop/s).
    ``shared`` is False for FATPIPE links: the constraint then only caps
    each individual flow at ``capacity`` instead of their sum.
    """

    name: str
    capacity: float
    shared: bool = True

    def __post_init__(self) -> None:
        if self.capacity < 0:
            raise SimulationError(f"constraint {self.name!r}: negative capacity")


@dataclass
class FlowSpec:
    """One consumer: uses every constraint in ``constraints`` simultaneously.

    ``bound`` caps the flow's rate (``inf`` = unbounded).  ``weight``
    scales how much constraint capacity one rate unit consumes (weight 2
    means the flow counts twice in the sharing, i.e. receives half a fair
    share); it must be > 0.
    """

    name: str
    constraints: tuple[int, ...]
    bound: float = math.inf
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise SimulationError(f"flow {self.name!r}: weight must be > 0")
        if self.bound < 0:
            raise SimulationError(f"flow {self.name!r}: negative bound")


@dataclass
class MaxMinSystem:
    """A bandwidth-sharing problem: constraints plus the flows using them."""

    constraints: list[ConstraintSpec] = field(default_factory=list)
    flows: list[FlowSpec] = field(default_factory=list)

    def add_constraint(self, name: str, capacity: float, shared: bool = True) -> int:
        """Register a resource; returns its index for use in flow specs."""
        self.constraints.append(ConstraintSpec(name, capacity, shared))
        return len(self.constraints) - 1

    def add_flow(
        self,
        name: str,
        constraint_ids: tuple[int, ...] | list[int],
        bound: float = math.inf,
        weight: float = 1.0,
    ) -> int:
        """Register a consumer; returns its index into the solution vector."""
        for cid in constraint_ids:
            if not 0 <= cid < len(self.constraints):
                raise SimulationError(
                    f"flow {name!r} references unknown constraint {cid}"
                )
        self.flows.append(FlowSpec(name, tuple(constraint_ids), bound, weight))
        return len(self.flows) - 1


def solve_maxmin(system: MaxMinSystem) -> np.ndarray:
    """Solve the system; returns one rate per flow, in flow order.

    Dispatches between the reference and the vectorised solver based on
    problem size; both return the same (unique) max-min fixed point.
    """
    size = len(system.flows) + len(system.constraints)
    if size <= VECTORIZE_THRESHOLD:
        return solve_maxmin_reference(system)
    return solve_maxmin_vectorized(system)


def solve_maxmin_reference(system: MaxMinSystem) -> np.ndarray:
    """Progressive-filling solver, direct transcription of the algorithm."""
    n_flows = len(system.flows)
    rates = np.zeros(n_flows)
    if n_flows == 0:
        return rates

    # Mutable working state -------------------------------------------------
    remaining = [c.capacity for c in system.constraints]
    # flows (by index) still growing
    active = set(range(n_flows))
    # per shared constraint: total weight of active flows crossing it
    users: list[float] = [0.0] * len(system.constraints)
    for flow in system.flows:
        for cid in flow.constraints:
            if system.constraints[cid].shared:
                users[cid] += flow.weight

    while active:
        # Candidate uniform level: for each shared constraint the level at
        # which it saturates; for each flow its own bound.
        level = math.inf
        for cid, constraint in enumerate(system.constraints):
            if constraint.shared and users[cid] > _EPS:
                level = min(level, remaining[cid] / users[cid])
        saturated_flows: set[int] = set()
        for fid in active:
            flow = system.flows[fid]
            # FATPIPE constraints cap the individual flow instead.
            cap = flow.bound
            for cid in flow.constraints:
                constraint = system.constraints[cid]
                if not constraint.shared:
                    cap = min(cap, constraint.capacity / flow.weight)
            if cap < level - _EPS:
                level = cap
                saturated_flows = {fid}
            elif cap <= level + _EPS:
                saturated_flows.add(fid)

        if math.isinf(level):
            # Only unbounded flows on unconstrained resources remain: the
            # caller built an ill-posed system (a flow crossing nothing).
            raise SimulationError(
                "max-min system is unbounded: flows "
                + ", ".join(system.flows[f].name for f in sorted(active))
            )

        # Flows whose bound equals the level are fixed at the level.  If no
        # flow bound binds, the flows crossing a saturating link are fixed.
        to_fix: set[int] = set(saturated_flows)
        if not to_fix:
            for cid, constraint in enumerate(system.constraints):
                if (
                    constraint.shared
                    and users[cid] > _EPS
                    and remaining[cid] / users[cid] <= level + _EPS
                ):
                    for fid in active:
                        if cid in system.flows[fid].constraints:
                            to_fix.add(fid)
        if not to_fix:
            raise SimulationError("progressive filling made no progress")

        for fid in to_fix:
            flow = system.flows[fid]
            rates[fid] = level
            for cid in flow.constraints:
                if system.constraints[cid].shared:
                    remaining[cid] -= level * flow.weight
                    if remaining[cid] < 0:
                        remaining[cid] = 0.0
                    users[cid] -= flow.weight
            active.discard(fid)

    return rates


def solve_maxmin_vectorized(system: MaxMinSystem) -> np.ndarray:
    """NumPy formulation of progressive filling.

    State is held in flat arrays; each round computes every constraint's
    saturation level and every flow's bound level with vectorised
    reductions, fixes the arg-min set, and updates remaining capacities
    with one sparse matrix-vector product.  The incidence matrix is built
    once in COO-style index arrays (``scipy.sparse`` is avoided on purpose:
    these systems are small enough that the import + conversion overhead
    dominates).
    """
    n_flows = len(system.flows)
    n_cons = len(system.constraints)
    if n_flows == 0:
        return np.zeros(0)

    # Incidence in index form: entry k means flow frow[k] crosses constraint
    # fcol[k].
    frow: list[int] = []
    fcol: list[int] = []
    for fid, flow in enumerate(system.flows):
        for cid in flow.constraints:
            frow.append(fid)
            fcol.append(cid)
    row = np.asarray(frow, dtype=np.intp)
    col = np.asarray(fcol, dtype=np.intp)
    weights = np.asarray([f.weight for f in system.flows])
    shared = np.asarray([c.shared for c in system.constraints], dtype=bool)
    capacities = np.asarray([float(c.capacity) for c in system.constraints])
    bounds = np.asarray([f.bound for f in system.flows])

    def name_of(fid: int) -> str:
        return system.flows[fid].name

    return _progressive_fill_arrays(
        n_flows, n_cons, row, col, weights, bounds, shared, capacities, name_of
    )


def _progressive_fill_arrays(
    n_flows: int,
    n_cons: int,
    row: np.ndarray,
    col: np.ndarray,
    weights: np.ndarray,
    bounds: np.ndarray,
    shared: np.ndarray,
    capacities: np.ndarray,
    name_of,
) -> np.ndarray:
    """Array core of progressive filling (shared by the one-shot vectorised
    solver and the incremental per-component solver).

    ``row``/``col`` are COO-style incidence entries (flow ``row[k]`` crosses
    constraint ``col[k]``); ``weights``/``bounds`` are per flow, ``shared``/
    ``capacities`` per constraint; ``name_of`` maps a flow index to a name
    for error messages.
    """
    rates = np.zeros(n_flows)
    if n_flows == 0:
        return rates
    entry_weight = weights[row]
    remaining = capacities.astype(float, copy=True)

    # Per-flow static cap: own bound plus any FATPIPE constraint it crosses.
    caps = bounds.astype(float, copy=True)
    if not shared.all():
        fat_entries = ~shared[col]
        if fat_entries.any():
            fat_cap = remaining[col[fat_entries]] / entry_weight[fat_entries]
            np.minimum.at(caps, row[fat_entries], fat_cap)

    active = np.ones(n_flows, dtype=bool)
    # entries whose flow is active and whose constraint is shared
    live_entry = shared[col].copy()

    for _ in range(n_flows + n_cons + 1):
        if not active.any():
            return rates
        # total active weight per shared constraint
        users = np.zeros(n_cons)
        np.add.at(users, col[live_entry], entry_weight[live_entry])

        with np.errstate(divide="ignore", invalid="ignore"):
            cons_level = np.where(users > _EPS, remaining / np.maximum(users, _EPS), np.inf)
        cons_min = cons_level.min() if n_cons else math.inf
        flow_min = caps[active].min()
        level = min(cons_min, flow_min)
        if math.isinf(level):
            names = [name_of(i) for i in np.flatnonzero(active)]
            raise SimulationError("max-min system is unbounded: flows " + ", ".join(names))

        if flow_min <= level + _EPS:
            to_fix = active & (caps <= level + _EPS)
        else:
            sat_cons = cons_level <= level + _EPS
            to_fix = np.zeros(n_flows, dtype=bool)
            hits = live_entry & sat_cons[col]
            to_fix[row[hits]] = True
            to_fix &= active
        if not to_fix.any():
            raise SimulationError("progressive filling made no progress")

        rates[to_fix] = level
        consumed_entries = live_entry & to_fix[row]
        consumption = np.zeros(n_cons)
        np.add.at(consumption, col[consumed_entries], level * entry_weight[consumed_entries])
        remaining = np.maximum(remaining - consumption, 0.0)
        active &= ~to_fix
        live_entry &= active[row]

    raise SimulationError("progressive filling failed to converge")


def solve_maxmin_components(system: MaxMinSystem) -> np.ndarray:
    """Progressive filling solved independently per connected component.

    Components — flows transitively coupled through SHARED constraints —
    are mathematically independent sub-problems, so solving them one at a
    time is exact.  It is also the *numerically stable* formulation: one
    global fill lets the ``_EPS`` saturation tolerance group near-equal
    levels from unrelated components into a single fixing round, which
    shifts results by an ULP depending on what else happens to be in
    flight.  This function is the arithmetic twin of
    :meth:`IncrementalMaxMin._solve_component`; the full-reshare oracle
    uses it so that full and incremental shares follow bit-identical
    floating-point trajectories.
    """
    n_flows = len(system.flows)
    rates = np.zeros(n_flows)
    if n_flows == 0:
        return rates
    constraints = system.constraints
    capacities = np.asarray([float(c.capacity) for c in constraints])
    shared = np.asarray([c.shared for c in constraints], dtype=bool)

    # flows per shared constraint (FATPIPE caps do not couple flows)
    cons_flows: dict[int, list[int]] = {}
    for fid, flow in enumerate(system.flows):
        for cid in flow.constraints:
            if constraints[cid].shared:
                cons_flows.setdefault(cid, []).append(fid)

    visited = np.zeros(n_flows, dtype=bool)
    for seed in range(n_flows):
        if visited[seed]:
            continue
        members = []
        stack = [seed]
        seen_cons: set[int] = set()
        while stack:
            fid = stack.pop()
            if visited[fid]:
                continue
            visited[fid] = True
            members.append(fid)
            for cid in system.flows[fid].constraints:
                if constraints[cid].shared and cid not in seen_cons:
                    seen_cons.add(cid)
                    stack.extend(cons_flows[cid])
        members.sort()

        if len(members) == 1:
            flow = system.flows[members[0]]
            rate = flow.bound
            for cid in flow.constraints:
                rate = min(rate, constraints[cid].capacity / flow.weight)
            if math.isinf(rate):
                raise SimulationError(
                    "max-min system is unbounded: flows " + flow.name
                )
            rates[members[0]] = float(rate)
            continue

        flows = [system.flows[fid] for fid in members]
        counts = [len(f.constraints) for f in flows]
        row = np.repeat(np.arange(len(members), dtype=np.intp), counts)
        if row.size:
            concat = np.concatenate(
                [np.asarray(f.constraints, dtype=np.intp) for f in flows]
            )
            local_cons, col = np.unique(concat, return_inverse=True)
            col = col.astype(np.intp, copy=False)
        else:
            local_cons = np.zeros(0, dtype=np.intp)
            col = np.zeros(0, dtype=np.intp)
        weights = np.asarray([f.weight for f in flows])
        bounds = np.asarray([f.bound for f in flows])

        def name_of(fid: int, flows=flows) -> str:
            return flows[fid].name

        component_rates = _progressive_fill_arrays(
            len(members), len(local_cons), row, col, weights, bounds,
            shared[local_cons], capacities[local_cons], name_of,
        )
        rates[members] = component_rates
    return rates


# -- incremental sharing ------------------------------------------------------------


class _IncConstraint:
    """Internal per-resource record of an :class:`IncrementalMaxMin`."""

    __slots__ = ("key", "index", "name", "capacity", "shared", "flows")

    def __init__(self, key, index: int, name: str, capacity: float, shared: bool):
        self.key = key
        self.index = index  # stable global index into the capacity arrays
        self.name = name
        self.capacity = capacity
        self.shared = shared
        self.flows: set = set()  # keys of flows crossing this constraint


class _IncFlow:
    """Internal per-consumer record of an :class:`IncrementalMaxMin`."""

    __slots__ = ("key", "seq", "name", "cons", "cid_array", "bound", "weight")

    def __init__(self, key, seq: int, name: str, cons, cid_array, bound, weight):
        self.key = key
        self.seq = seq  # registration order, for deterministic solves
        self.name = name
        self.cons = cons  # tuple of _IncConstraint
        self.cid_array = cid_array  # cached incidence: global constraint ids
        self.bound = bound
        self.weight = weight


class IncrementalMaxMin:
    """A max-min sharing problem kept alive across simulation steps.

    Where :class:`MaxMinSystem` is built fresh and solved once, this class
    holds persistent state — constraints registered by opaque key, flows
    with cached incidence index arrays, the last solved rate of every flow
    — and tracks a *dirty set* of constraints touched since the last solve
    (by flow arrival/departure or capacity change).

    :meth:`solve_dirty` re-solves only the connected components of the
    flow/constraint graph reachable from a dirty constraint.  Because the
    max-min fixed point is unique and decomposes over connected components
    (two flows that share no constraint, even transitively, cannot affect
    each other's rate), untouched components keep their previous rates —
    the solution is identical to a full re-solve.  FATPIPE constraints cap
    flows individually without coupling them, so they seed dirtiness but do
    not merge components.
    """

    def __init__(self) -> None:
        self._cons: dict = {}  # key -> _IncConstraint
        self._flows: dict = {}  # key -> _IncFlow
        self._rates: dict = {}  # key -> last solved rate
        self._dirty_cons: set = set()
        self._dirty_flows: set = set()
        self._seq = 0
        # global capacity/shared arrays indexed by _IncConstraint.index,
        # grown geometrically so component solves can fancy-index them
        self._cap_arr = np.zeros(16)
        self._shared_arr = np.ones(16, dtype=bool)
        self._n_cons = 0
        #: statistics of the most recent :meth:`solve_dirty` call
        self.last_components = 0
        self.last_flows_solved = 0
        #: keys of the flows whose solved rate actually *changed* value in
        #: the most recent :meth:`solve_dirty` (new flows included).  A
        #: re-solved component usually contains many flows that keep their
        #: exact previous rate — e.g. flows bottlenecked elsewhere — and
        #: lazily-updated engines only need to re-anchor the changed ones.
        self.last_rate_changed: set = set()
        #: when True, each component solve also recomputes the total
        #: consumed rate of every constraint it touches (utilization
        #: sampling for the observability layer).  Off by default so the
        #: tracing-disabled hot path pays nothing.
        self.track_usage = False
        self._usage: dict = {}  # constraint key -> consumed rate
        #: (``_IncConstraint``, usage) pairs updated by the most recent
        #: :meth:`solve_dirty`; clean components never appear here
        self.last_usage: list = []

    # -- registration ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._flows)

    def __contains__(self, key) -> bool:
        return key in self._flows

    def ensure_constraint(
        self, key, capacity: float, shared: bool = True, name: str | None = None
    ) -> None:
        """Register (or update) the resource identified by ``key``.

        Re-registering with a different capacity or policy marks the
        constraint dirty so dependent flows are re-solved.
        """
        cons = self._cons.get(key)
        if cons is None:
            if capacity < 0:
                raise SimulationError(f"constraint {name or key!r}: negative capacity")
            index = self._n_cons
            self._n_cons += 1
            if index >= len(self._cap_arr):
                self._cap_arr = np.resize(self._cap_arr, 2 * len(self._cap_arr))
                self._shared_arr = np.resize(self._shared_arr, len(self._cap_arr))
            self._cap_arr[index] = capacity
            self._shared_arr[index] = shared
            self._cons[key] = _IncConstraint(key, index, name or str(key), capacity, shared)
        elif cons.capacity != capacity or cons.shared != shared:
            cons.capacity = capacity
            cons.shared = shared
            self._cap_arr[cons.index] = capacity
            self._shared_arr[cons.index] = shared
            self._dirty_cons.add(key)

    def add_flow(
        self,
        key,
        constraint_keys,
        bound: float = math.inf,
        weight: float = 1.0,
        name: str | None = None,
    ) -> None:
        """Register a consumer crossing ``constraint_keys`` (all pre-registered)."""
        if key in self._flows:
            raise SimulationError(f"flow {name or key!r} already registered")
        if weight <= 0:
            raise SimulationError(f"flow {name or key!r}: weight must be > 0")
        if bound < 0:
            raise SimulationError(f"flow {name or key!r}: negative bound")
        cons = []
        for ckey in constraint_keys:
            record = self._cons.get(ckey)
            if record is None:
                raise SimulationError(
                    f"flow {name or key!r} references unknown constraint {ckey!r}"
                )
            cons.append(record)
        flow = _IncFlow(
            key,
            self._seq,
            name or str(key),
            tuple(cons),
            np.asarray([c.index for c in cons], dtype=np.intp),
            bound,
            weight,
        )
        self._seq += 1
        self._flows[key] = flow
        self._dirty_flows.add(key)
        for record in cons:
            record.flows.add(key)
            if record.shared:
                self._dirty_cons.add(record.key)

    def remove_flow(self, key) -> None:
        """Unregister a consumer, freeing its share for its neighbours."""
        flow = self._flows.pop(key)
        self._rates.pop(key, None)
        self._dirty_flows.discard(key)
        for record in flow.cons:
            record.flows.discard(key)
            if record.shared:
                # neighbours on a shared constraint inherit the freed share
                self._dirty_cons.add(record.key)

    def has_constraint(self, key) -> bool:
        """Whether the resource ``key`` was ever registered as a constraint."""
        return key in self._cons

    def mark_dirty(self, key) -> None:
        """Force re-solving of the component around constraint ``key``."""
        if key in self._cons:
            self._dirty_cons.add(key)

    def rate(self, key) -> float:
        """Last solved rate of flow ``key``."""
        return self._rates[key]

    def usage(self, key) -> float:
        """Last computed consumed rate of constraint ``key``.

        Only maintained while :attr:`track_usage` is on; unknown or
        never-used constraints report 0.
        """
        return self._usage.get(key, 0.0)

    # -- solving --------------------------------------------------------------

    def solve_dirty(self) -> set:
        """Re-solve every component touching a dirty constraint.

        Returns the keys of the flows whose rate was recomputed; all other
        flows keep their previous rate (which is still the exact max-min
        solution for their untouched component).  Sets
        :attr:`last_components` / :attr:`last_flows_solved` /
        :attr:`last_rate_changed`.
        """
        self.last_components = 0
        self.last_flows_solved = 0
        self.last_usage = []
        self.last_rate_changed = set()
        if not self._dirty_cons and not self._dirty_flows:
            return set()
        seeds = set(self._dirty_flows)
        for ckey in self._dirty_cons:
            record = self._cons.get(ckey)
            if record is not None:
                seeds.update(record.flows)
                if self.track_usage and not record.flows:
                    # last flow left: the constraint falls idle without any
                    # component re-solve touching it
                    self._usage[ckey] = 0.0
                    self.last_usage.append((record, 0.0))
        self._dirty_cons.clear()
        self._dirty_flows.clear()

        solved: set = set()
        flows = self._flows
        for seed in sorted(seeds, key=lambda k: flows[k].seq):
            if seed in solved or seed not in flows:
                continue
            component = self._collect_component(seed, solved)
            self._solve_component(component)
            self.last_components += 1
            self.last_flows_solved += len(component)
        return solved

    def _collect_component(self, seed, solved: set) -> list:
        """Flows transitively connected to ``seed`` via shared constraints."""
        members = []
        stack = [seed]
        seen_cons: set = set()
        while stack:
            key = stack.pop()
            if key in solved:
                continue
            solved.add(key)
            flow = self._flows[key]
            members.append(flow)
            for record in flow.cons:
                # FATPIPE constraints cap flows individually: they do not
                # couple flows into one component
                if not record.shared or record.key in seen_cons:
                    continue
                seen_cons.add(record.key)
                stack.extend(record.flows)
        members.sort(key=lambda f: f.seq)
        return members

    def _solve_component(self, members: list) -> None:
        if len(members) == 1:
            # closed form: a lone flow takes its bound or its tightest cap
            flow = members[0]
            rate = flow.bound
            for record in flow.cons:
                rate = min(rate, record.capacity / flow.weight)
            if math.isinf(rate):
                raise SimulationError(
                    "max-min system is unbounded: flows " + flow.name
                )
            self._store_rate(flow.key, float(rate))
            if self.track_usage:
                self._update_usage(members)
            return

        counts = [len(f.cid_array) for f in members]
        row = np.repeat(np.arange(len(members), dtype=np.intp), counts)
        if row.size:
            concat = np.concatenate([f.cid_array for f in members])
            local_cons, col = np.unique(concat, return_inverse=True)
            col = col.astype(np.intp, copy=False)
        else:
            local_cons = np.zeros(0, dtype=np.intp)
            col = np.zeros(0, dtype=np.intp)
        weights = np.asarray([f.weight for f in members])
        bounds = np.asarray([f.bound for f in members])
        capacities = self._cap_arr[local_cons]
        shared = self._shared_arr[local_cons]

        def name_of(fid: int) -> str:
            return members[fid].name

        rates = _progressive_fill_arrays(
            len(members), len(local_cons), row, col, weights, bounds,
            shared, capacities, name_of,
        )
        for flow, rate in zip(members, rates):
            self._store_rate(flow.key, float(rate))
        if self.track_usage:
            self._update_usage(members)

    def _store_rate(self, key, rate: float) -> None:
        """Record a solved rate, tracking whether its value changed."""
        if self._rates.get(key) != rate:
            self.last_rate_changed.add(key)
        self._rates[key] = rate

    def _update_usage(self, members: list) -> None:
        """Refresh the consumed rate of every constraint ``members`` touch.

        Flows crossing a SHARED constraint are all inside the component
        just solved, so their rates are fresh; FATPIPE constraints may be
        crossed by flows of other components, whose cached rates are still
        the exact solution of their own (untouched) component.
        """
        flows = self._flows
        rates = self._rates
        seen: set = set()
        for flow in members:
            for record in flow.cons:
                if record.key in seen:
                    continue
                seen.add(record.key)
                usage = 0.0
                for fkey in record.flows:
                    other = flows.get(fkey)
                    if other is not None:
                        usage += rates.get(fkey, 0.0) * other.weight
                self._usage[record.key] = usage
                self.last_usage.append((record, usage))
