"""Max-min fairness solver with per-flow rate bounds.

This is the analytical contention model at the core of SimGrid (paper
section 4.2): instead of simulating individual packets, the bandwidth each
active flow receives is computed by *progressive filling* — the classic
water-filling algorithm for max-min fairness:

1. grow the rate of every unfixed flow uniformly,
2. the first constraint to saturate is either a link (its capacity divided
   by its number of unfixed flows is smallest) or a flow's own rate bound,
3. fix the flows involved, subtract their consumption, repeat.

A *flow* here is any resource consumer: a network transfer crossing a set
of links, or a compute action "crossing" the single constraint of its host
CPU.  Each flow may carry a finite ``bound`` — the piece-wise linear model
of the paper enters the solver this way, as a per-flow cap equal to the
fitted segment bandwidth for the message's size.

Two implementations are provided and cross-checked by the test suite:

* :func:`solve_maxmin_reference` — direct transcription of progressive
  filling, easy to audit, O(iterations × flows × links);
* :func:`solve_maxmin_vectorized` — NumPy sparse-matrix formulation used by
  default above a size threshold, same fixed point, much faster for the
  hundreds of concurrent flows produced by large collectives.

Both handle *weighted* sharing (a flow counting as ``weight`` concurrent
flows on each of its links — SimGrid uses this to model TCP RTT unfairness)
and links with a FATPIPE policy (no sharing: every flow may use the full
capacity, used for backplanes that are provisioned not to contend).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..errors import SimulationError

__all__ = [
    "FlowSpec",
    "ConstraintSpec",
    "MaxMinSystem",
    "solve_maxmin",
    "solve_maxmin_reference",
    "solve_maxmin_vectorized",
]

#: Flows/constraints above which :func:`solve_maxmin` switches to the
#: vectorised implementation.  Determined with
#: ``benchmarks/bench_ablation_maxmin.py``; the crossover is flat between
#: 16 and 64 on CPython 3.11.
VECTORIZE_THRESHOLD = 32

_EPS = 1e-12


@dataclass
class ConstraintSpec:
    """One shared resource: a link or a CPU.

    ``capacity`` is in resource units per second (bytes/s or flop/s).
    ``shared`` is False for FATPIPE links: the constraint then only caps
    each individual flow at ``capacity`` instead of their sum.
    """

    name: str
    capacity: float
    shared: bool = True

    def __post_init__(self) -> None:
        if self.capacity < 0:
            raise SimulationError(f"constraint {self.name!r}: negative capacity")


@dataclass
class FlowSpec:
    """One consumer: uses every constraint in ``constraints`` simultaneously.

    ``bound`` caps the flow's rate (``inf`` = unbounded).  ``weight``
    scales how much constraint capacity one rate unit consumes (weight 2
    means the flow counts twice in the sharing, i.e. receives half a fair
    share); it must be > 0.
    """

    name: str
    constraints: tuple[int, ...]
    bound: float = math.inf
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise SimulationError(f"flow {self.name!r}: weight must be > 0")
        if self.bound < 0:
            raise SimulationError(f"flow {self.name!r}: negative bound")


@dataclass
class MaxMinSystem:
    """A bandwidth-sharing problem: constraints plus the flows using them."""

    constraints: list[ConstraintSpec] = field(default_factory=list)
    flows: list[FlowSpec] = field(default_factory=list)

    def add_constraint(self, name: str, capacity: float, shared: bool = True) -> int:
        """Register a resource; returns its index for use in flow specs."""
        self.constraints.append(ConstraintSpec(name, capacity, shared))
        return len(self.constraints) - 1

    def add_flow(
        self,
        name: str,
        constraint_ids: tuple[int, ...] | list[int],
        bound: float = math.inf,
        weight: float = 1.0,
    ) -> int:
        """Register a consumer; returns its index into the solution vector."""
        for cid in constraint_ids:
            if not 0 <= cid < len(self.constraints):
                raise SimulationError(
                    f"flow {name!r} references unknown constraint {cid}"
                )
        self.flows.append(FlowSpec(name, tuple(constraint_ids), bound, weight))
        return len(self.flows) - 1


def solve_maxmin(system: MaxMinSystem) -> np.ndarray:
    """Solve the system; returns one rate per flow, in flow order.

    Dispatches between the reference and the vectorised solver based on
    problem size; both return the same (unique) max-min fixed point.
    """
    size = len(system.flows) + len(system.constraints)
    if size <= VECTORIZE_THRESHOLD:
        return solve_maxmin_reference(system)
    return solve_maxmin_vectorized(system)


def solve_maxmin_reference(system: MaxMinSystem) -> np.ndarray:
    """Progressive-filling solver, direct transcription of the algorithm."""
    n_flows = len(system.flows)
    rates = np.zeros(n_flows)
    if n_flows == 0:
        return rates

    # Mutable working state -------------------------------------------------
    remaining = [c.capacity for c in system.constraints]
    # flows (by index) still growing
    active = set(range(n_flows))
    # per shared constraint: total weight of active flows crossing it
    users: list[float] = [0.0] * len(system.constraints)
    for flow in system.flows:
        for cid in flow.constraints:
            if system.constraints[cid].shared:
                users[cid] += flow.weight

    while active:
        # Candidate uniform level: for each shared constraint the level at
        # which it saturates; for each flow its own bound.
        level = math.inf
        for cid, constraint in enumerate(system.constraints):
            if constraint.shared and users[cid] > _EPS:
                level = min(level, remaining[cid] / users[cid])
        saturated_flows: set[int] = set()
        for fid in active:
            flow = system.flows[fid]
            # FATPIPE constraints cap the individual flow instead.
            cap = flow.bound
            for cid in flow.constraints:
                constraint = system.constraints[cid]
                if not constraint.shared:
                    cap = min(cap, constraint.capacity / flow.weight)
            if cap < level - _EPS:
                level = cap
                saturated_flows = {fid}
            elif cap <= level + _EPS:
                saturated_flows.add(fid)

        if math.isinf(level):
            # Only unbounded flows on unconstrained resources remain: the
            # caller built an ill-posed system (a flow crossing nothing).
            raise SimulationError(
                "max-min system is unbounded: flows "
                + ", ".join(system.flows[f].name for f in sorted(active))
            )

        # Flows whose bound equals the level are fixed at the level.  If no
        # flow bound binds, the flows crossing a saturating link are fixed.
        to_fix: set[int] = set(saturated_flows)
        if not to_fix:
            for cid, constraint in enumerate(system.constraints):
                if (
                    constraint.shared
                    and users[cid] > _EPS
                    and remaining[cid] / users[cid] <= level + _EPS
                ):
                    for fid in active:
                        if cid in system.flows[fid].constraints:
                            to_fix.add(fid)
        if not to_fix:
            raise SimulationError("progressive filling made no progress")

        for fid in to_fix:
            flow = system.flows[fid]
            rates[fid] = level
            for cid in flow.constraints:
                if system.constraints[cid].shared:
                    remaining[cid] -= level * flow.weight
                    if remaining[cid] < 0:
                        remaining[cid] = 0.0
                    users[cid] -= flow.weight
            active.discard(fid)

    return rates


def solve_maxmin_vectorized(system: MaxMinSystem) -> np.ndarray:
    """NumPy formulation of progressive filling.

    State is held in flat arrays; each round computes every constraint's
    saturation level and every flow's bound level with vectorised
    reductions, fixes the arg-min set, and updates remaining capacities
    with one sparse matrix-vector product.  The incidence matrix is built
    once in COO-style index arrays (``scipy.sparse`` is avoided on purpose:
    these systems are small enough that the import + conversion overhead
    dominates).
    """
    n_flows = len(system.flows)
    n_cons = len(system.constraints)
    rates = np.zeros(n_flows)
    if n_flows == 0:
        return rates

    # Incidence in index form: entry k means flow frow[k] crosses constraint
    # fcol[k] with weight fw[k].
    frow: list[int] = []
    fcol: list[int] = []
    for fid, flow in enumerate(system.flows):
        for cid in flow.constraints:
            frow.append(fid)
            fcol.append(cid)
    row = np.asarray(frow, dtype=np.intp)
    col = np.asarray(fcol, dtype=np.intp)
    weights = np.asarray([f.weight for f in system.flows])
    entry_weight = weights[row]

    shared = np.asarray([c.shared for c in system.constraints], dtype=bool)
    remaining = np.asarray([float(c.capacity) for c in system.constraints])

    # Per-flow static cap: own bound plus any FATPIPE constraint it crosses.
    caps = np.asarray([f.bound for f in system.flows])
    if not shared.all():
        fat_entries = ~shared[col]
        if fat_entries.any():
            fat_cap = remaining[col[fat_entries]] / entry_weight[fat_entries]
            np.minimum.at(caps, row[fat_entries], fat_cap)

    active = np.ones(n_flows, dtype=bool)
    # entries whose flow is active and whose constraint is shared
    live_entry = shared[col].copy()

    for _ in range(n_flows + n_cons + 1):
        if not active.any():
            return rates
        # total active weight per shared constraint
        users = np.zeros(n_cons)
        np.add.at(users, col[live_entry], entry_weight[live_entry])

        with np.errstate(divide="ignore", invalid="ignore"):
            cons_level = np.where(users > _EPS, remaining / np.maximum(users, _EPS), np.inf)
        cons_min = cons_level.min() if n_cons else math.inf
        flow_min = caps[active].min()
        level = min(cons_min, flow_min)
        if math.isinf(level):
            names = [system.flows[i].name for i in np.flatnonzero(active)]
            raise SimulationError("max-min system is unbounded: flows " + ", ".join(names))

        if flow_min <= level + _EPS:
            to_fix = active & (caps <= level + _EPS)
        else:
            sat_cons = cons_level <= level + _EPS
            to_fix = np.zeros(n_flows, dtype=bool)
            hits = live_entry & sat_cons[col]
            to_fix[row[hits]] = True
            to_fix &= active
        if not to_fix.any():
            raise SimulationError("progressive filling made no progress")

        rates[to_fix] = level
        consumed_entries = live_entry & to_fix[row]
        consumption = np.zeros(n_cons)
        np.add.at(consumption, col[consumed_entries], level * entry_weight[consumed_entries])
        remaining = np.maximum(remaining - consumption, 0.0)
        active &= ~to_fix
        live_entry &= active[row]

    raise SimulationError("progressive filling failed to converge")
