"""Max-min fairness solver with per-flow rate bounds.

This is the analytical contention model at the core of SimGrid (paper
section 4.2): instead of simulating individual packets, the bandwidth each
active flow receives is computed by *progressive filling* — the classic
water-filling algorithm for max-min fairness:

1. grow the rate of every unfixed flow uniformly,
2. the first constraint to saturate is either a link (its capacity divided
   by its number of unfixed flows is smallest) or a flow's own rate bound,
3. fix the flows involved, subtract their consumption, repeat.

A *flow* here is any resource consumer: a network transfer crossing a set
of links, or a compute action "crossing" the single constraint of its host
CPU.  Each flow may carry a finite ``bound`` — the piece-wise linear model
of the paper enters the solver this way, as a per-flow cap equal to the
fitted segment bandwidth for the message's size.

Two implementations are provided and cross-checked by the test suite:

* :func:`solve_maxmin_reference` — direct transcription of progressive
  filling, easy to audit, O(iterations × flows × links);
* :func:`solve_maxmin_vectorized` — NumPy sparse-matrix formulation used by
  default above a size threshold, same fixed point, much faster for the
  hundreds of concurrent flows produced by large collectives.

Both handle *weighted* sharing (a flow counting as ``weight`` concurrent
flows on each of its links — SimGrid uses this to model TCP RTT unfairness)
and links with a FATPIPE policy (no sharing: every flow may use the full
capacity, used for backplanes that are provisioned not to contend).

On top of the one-shot solvers, :class:`IncrementalMaxMin` keeps a
bandwidth-sharing problem *alive* across engine steps: flows come and go
(``add_flow`` / ``remove_flow``), each change marks the constraints it
touches dirty, and :meth:`IncrementalMaxMin.solve_dirty` re-solves only the
connected components of the flow/constraint graph reachable from a dirty
constraint.  The max-min fixed point decomposes exactly over connected
components (flows in different components share no constraint, transitively),
so untouched components keep their rates — this is the lazy partial
invalidation the SimGrid kernel uses to keep the sequential share cheap.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..errors import SimulationError, UnknownFlowError

__all__ = [
    "FlowSpec",
    "ConstraintSpec",
    "MaxMinSystem",
    "IncrementalMaxMin",
    "UnknownFlowError",
    "solve_maxmin",
    "solve_maxmin_components",
    "solve_maxmin_reference",
    "solve_maxmin_vectorized",
    "SHARING_MODES",
    "APPROX_MAX_ROUNDS",
]

#: Flows/constraints above which :func:`solve_maxmin` switches to the
#: vectorised implementation.  Determined with
#: ``benchmarks/bench_ablation_maxmin.py``; the crossover is flat between
#: 16 and 64 on CPython 3.11.
VECTORIZE_THRESHOLD = 32

#: Accepted values of the sharing-fidelity dial (``--sharing``).
SHARING_MODES = ("exact", "approx")

#: Progressive-filling rounds an *approx*-mode component solve runs before
#: falling back to the one-shot bandwidth-fraction round (Narses-style
#: fidelity/scalability trade).  Exact mode never truncates.
APPROX_MAX_ROUNDS = 8

_EPS = 1e-12


@dataclass
class ConstraintSpec:
    """One shared resource: a link or a CPU.

    ``capacity`` is in resource units per second (bytes/s or flop/s).
    ``shared`` is False for FATPIPE links: the constraint then only caps
    each individual flow at ``capacity`` instead of their sum.
    """

    name: str
    capacity: float
    shared: bool = True

    def __post_init__(self) -> None:
        if self.capacity < 0:
            raise SimulationError(f"constraint {self.name!r}: negative capacity")


@dataclass
class FlowSpec:
    """One consumer: uses every constraint in ``constraints`` simultaneously.

    ``bound`` caps the flow's rate (``inf`` = unbounded).  ``weight``
    scales how much constraint capacity one rate unit consumes (weight 2
    means the flow counts twice in the sharing, i.e. receives half a fair
    share); it must be > 0.
    """

    name: str
    constraints: tuple[int, ...]
    bound: float = math.inf
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise SimulationError(f"flow {self.name!r}: weight must be > 0")
        if self.bound < 0:
            raise SimulationError(f"flow {self.name!r}: negative bound")


@dataclass
class MaxMinSystem:
    """A bandwidth-sharing problem: constraints plus the flows using them."""

    constraints: list[ConstraintSpec] = field(default_factory=list)
    flows: list[FlowSpec] = field(default_factory=list)

    def add_constraint(self, name: str, capacity: float, shared: bool = True) -> int:
        """Register a resource; returns its index for use in flow specs."""
        self.constraints.append(ConstraintSpec(name, capacity, shared))
        return len(self.constraints) - 1

    def add_flow(
        self,
        name: str,
        constraint_ids: tuple[int, ...] | list[int],
        bound: float = math.inf,
        weight: float = 1.0,
    ) -> int:
        """Register a consumer; returns its index into the solution vector."""
        for cid in constraint_ids:
            if not 0 <= cid < len(self.constraints):
                raise SimulationError(
                    f"flow {name!r} references unknown constraint {cid}"
                )
        self.flows.append(FlowSpec(name, tuple(constraint_ids), bound, weight))
        return len(self.flows) - 1


def solve_maxmin(system: MaxMinSystem) -> np.ndarray:
    """Solve the system; returns one rate per flow, in flow order.

    Dispatches between the reference and the vectorised solver based on
    problem size; both return the same (unique) max-min fixed point.
    """
    size = len(system.flows) + len(system.constraints)
    if size <= VECTORIZE_THRESHOLD:
        return solve_maxmin_reference(system)
    return solve_maxmin_vectorized(system)


def solve_maxmin_reference(system: MaxMinSystem) -> np.ndarray:
    """Progressive-filling solver, direct transcription of the algorithm."""
    n_flows = len(system.flows)
    rates = np.zeros(n_flows)
    if n_flows == 0:
        return rates

    # Mutable working state -------------------------------------------------
    remaining = [c.capacity for c in system.constraints]
    # flows (by index) still growing
    active = set(range(n_flows))
    # per shared constraint: total weight of active flows crossing it
    users: list[float] = [0.0] * len(system.constraints)
    for flow in system.flows:
        for cid in flow.constraints:
            if system.constraints[cid].shared:
                users[cid] += flow.weight

    while active:
        # Candidate uniform level: for each shared constraint the level at
        # which it saturates; for each flow its own bound.
        level = math.inf
        for cid, constraint in enumerate(system.constraints):
            if constraint.shared and users[cid] > _EPS:
                level = min(level, remaining[cid] / users[cid])
        saturated_flows: set[int] = set()
        for fid in active:
            flow = system.flows[fid]
            # FATPIPE constraints cap the individual flow instead.
            cap = flow.bound
            for cid in flow.constraints:
                constraint = system.constraints[cid]
                if not constraint.shared:
                    cap = min(cap, constraint.capacity / flow.weight)
            if cap < level - _EPS:
                level = cap
                saturated_flows = {fid}
            elif cap <= level + _EPS:
                saturated_flows.add(fid)

        if math.isinf(level):
            # Only unbounded flows on unconstrained resources remain: the
            # caller built an ill-posed system (a flow crossing nothing).
            raise SimulationError(
                "max-min system is unbounded: flows "
                + ", ".join(system.flows[f].name for f in sorted(active))
            )

        # Flows whose bound equals the level are fixed at the level.  If no
        # flow bound binds, the flows crossing a saturating link are fixed.
        to_fix: set[int] = set(saturated_flows)
        if not to_fix:
            for cid, constraint in enumerate(system.constraints):
                if (
                    constraint.shared
                    and users[cid] > _EPS
                    and remaining[cid] / users[cid] <= level + _EPS
                ):
                    for fid in active:
                        if cid in system.flows[fid].constraints:
                            to_fix.add(fid)
        if not to_fix:
            raise SimulationError("progressive filling made no progress")

        for fid in to_fix:
            flow = system.flows[fid]
            rates[fid] = level
            for cid in flow.constraints:
                if system.constraints[cid].shared:
                    remaining[cid] -= level * flow.weight
                    if remaining[cid] < 0:
                        remaining[cid] = 0.0
                    users[cid] -= flow.weight
            active.discard(fid)

    return rates


def solve_maxmin_vectorized(system: MaxMinSystem) -> np.ndarray:
    """NumPy formulation of progressive filling.

    State is held in flat arrays; each round computes every constraint's
    saturation level and every flow's bound level with vectorised
    reductions, fixes the arg-min set, and updates remaining capacities
    with one sparse matrix-vector product.  The incidence matrix is built
    once in COO-style index arrays (``scipy.sparse`` is avoided on purpose:
    these systems are small enough that the import + conversion overhead
    dominates).
    """
    n_flows = len(system.flows)
    n_cons = len(system.constraints)
    if n_flows == 0:
        return np.zeros(0)

    # Incidence in index form: entry k means flow frow[k] crosses constraint
    # fcol[k].
    frow: list[int] = []
    fcol: list[int] = []
    for fid, flow in enumerate(system.flows):
        for cid in flow.constraints:
            frow.append(fid)
            fcol.append(cid)
    row = np.asarray(frow, dtype=np.intp)
    col = np.asarray(fcol, dtype=np.intp)
    weights = np.asarray([f.weight for f in system.flows])
    shared = np.asarray([c.shared for c in system.constraints], dtype=bool)
    capacities = np.asarray([float(c.capacity) for c in system.constraints])
    bounds = np.asarray([f.bound for f in system.flows])

    def name_of(fid: int) -> str:
        return system.flows[fid].name

    rates, _rounds, _truncated = _progressive_fill_arrays(
        n_flows, n_cons, row, col, weights, bounds, shared, capacities, name_of
    )
    return rates


def _progressive_fill_arrays(
    n_flows: int,
    n_cons: int,
    row: np.ndarray,
    col: np.ndarray,
    weights: np.ndarray,
    bounds: np.ndarray,
    shared: np.ndarray,
    capacities: np.ndarray,
    name_of,
    max_rounds: int | None = None,
) -> tuple[np.ndarray, int, bool]:
    """Array core of progressive filling (shared by the one-shot vectorised
    solver and the incremental per-component solver).

    ``row``/``col`` are COO-style incidence entries (flow ``row[k]`` crosses
    constraint ``col[k]``); ``weights``/``bounds`` are per flow, ``shared``/
    ``capacities`` per constraint; ``name_of`` maps a flow index to a name
    for error messages.

    Returns ``(rates, rounds, truncated)``.  With ``max_rounds`` set
    (approx sharing), filling stops after that many fixing rounds and every
    still-growing flow is fixed in one vectorised *bandwidth-fraction*
    round: its bound/FATPIPE cap, or the fair share ``remaining / users``
    of its most loaded shared constraint, whichever is smallest.  The
    result stays feasible (no constraint oversubscribed, all bounds
    respected) but is no longer the max-min fixed point; ``truncated``
    reports whether the fallback fired.  ``max_rounds=None`` (exact mode)
    runs to the fixed point, bit-identical to the historical solver.
    """
    rates = np.zeros(n_flows)
    if n_flows == 0:
        return rates, 0, False
    entry_weight = weights[row]
    remaining = capacities.astype(float, copy=True)

    # Per-flow static cap: own bound plus any FATPIPE constraint it crosses.
    caps = bounds.astype(float, copy=True)
    if not shared.all():
        fat_entries = ~shared[col]
        if fat_entries.any():
            fat_cap = remaining[col[fat_entries]] / entry_weight[fat_entries]
            np.minimum.at(caps, row[fat_entries], fat_cap)

    active = np.ones(n_flows, dtype=bool)
    # entries whose flow is active and whose constraint is shared
    live_entry = shared[col].copy()

    rounds = 0
    while True:
        if not active.any():
            return rates, rounds, False
        if max_rounds is not None and rounds >= max_rounds:
            break
        if rounds > n_flows + n_cons:
            raise SimulationError("progressive filling failed to converge")
        # total active weight per shared constraint
        users = np.zeros(n_cons)
        np.add.at(users, col[live_entry], entry_weight[live_entry])

        with np.errstate(divide="ignore", invalid="ignore"):
            cons_level = np.where(users > _EPS, remaining / np.maximum(users, _EPS), np.inf)
        cons_min = cons_level.min() if n_cons else math.inf
        flow_min = caps[active].min()
        level = min(cons_min, flow_min)
        if math.isinf(level):
            names = [name_of(i) for i in np.flatnonzero(active)]
            raise SimulationError("max-min system is unbounded: flows " + ", ".join(names))

        if flow_min <= level + _EPS:
            to_fix = active & (caps <= level + _EPS)
        else:
            sat_cons = cons_level <= level + _EPS
            to_fix = np.zeros(n_flows, dtype=bool)
            hits = live_entry & sat_cons[col]
            to_fix[row[hits]] = True
            to_fix &= active
        if not to_fix.any():
            raise SimulationError("progressive filling made no progress")

        rates[to_fix] = level
        consumed_entries = live_entry & to_fix[row]
        consumption = np.zeros(n_cons)
        np.add.at(consumption, col[consumed_entries], level * entry_weight[consumed_entries])
        remaining = np.maximum(remaining - consumption, 0.0)
        active &= ~to_fix
        live_entry &= active[row]
        rounds += 1

    # Bandwidth-fraction fallback (approx sharing): fix every still-growing
    # flow at the fair share of its most loaded shared constraint, clipped
    # by its static cap.  Each flow crossing constraint ``c`` takes at most
    # ``remaining[c] / users[c]`` per weight unit, so the per-constraint
    # totals stay within ``remaining`` — the result is feasible, just not
    # the max-min fixed point.
    users = np.zeros(n_cons)
    np.add.at(users, col[live_entry], entry_weight[live_entry])
    with np.errstate(divide="ignore", invalid="ignore"):
        cons_level = np.where(users > _EPS, remaining / np.maximum(users, _EPS), np.inf)
    flow_level = caps.copy()
    if live_entry.any():
        np.minimum.at(flow_level, row[live_entry], cons_level[col[live_entry]])
    act = np.flatnonzero(active)
    unbounded = np.isinf(flow_level[act])
    if unbounded.any():
        names = [name_of(int(i)) for i in act[unbounded]]
        raise SimulationError("max-min system is unbounded: flows " + ", ".join(names))
    rates[act] = flow_level[act]
    return rates, rounds, True


def solve_maxmin_components(
    system: MaxMinSystem, max_rounds: int | None = None
) -> np.ndarray:
    """Progressive filling solved independently per connected component.

    Components — flows transitively coupled through SHARED constraints —
    are mathematically independent sub-problems, so solving them one at a
    time is exact.  It is also the *numerically stable* formulation: one
    global fill lets the ``_EPS`` saturation tolerance group near-equal
    levels from unrelated components into a single fixing round, which
    shifts results by an ULP depending on what else happens to be in
    flight.  This function is the arithmetic twin of
    :meth:`IncrementalMaxMin._solve_component`; the full-reshare oracle
    uses it so that full and incremental shares follow bit-identical
    floating-point trajectories.

    ``max_rounds`` is forwarded to every multi-flow component solve so the
    full-reshare oracle can mirror an *approx*-sharing incremental engine
    (single-flow components use the exact closed form in both modes).
    """
    n_flows = len(system.flows)
    rates = np.zeros(n_flows)
    if n_flows == 0:
        return rates
    constraints = system.constraints
    capacities = np.asarray([float(c.capacity) for c in constraints])
    shared = np.asarray([c.shared for c in constraints], dtype=bool)

    # flows per shared constraint (FATPIPE caps do not couple flows)
    cons_flows: dict[int, list[int]] = {}
    for fid, flow in enumerate(system.flows):
        for cid in flow.constraints:
            if constraints[cid].shared:
                cons_flows.setdefault(cid, []).append(fid)

    visited = np.zeros(n_flows, dtype=bool)
    for seed in range(n_flows):
        if visited[seed]:
            continue
        members = []
        stack = [seed]
        seen_cons: set[int] = set()
        while stack:
            fid = stack.pop()
            if visited[fid]:
                continue
            visited[fid] = True
            members.append(fid)
            for cid in system.flows[fid].constraints:
                if constraints[cid].shared and cid not in seen_cons:
                    seen_cons.add(cid)
                    stack.extend(cons_flows[cid])
        members.sort()

        if len(members) == 1:
            flow = system.flows[members[0]]
            rate = flow.bound
            for cid in flow.constraints:
                rate = min(rate, constraints[cid].capacity / flow.weight)
            if math.isinf(rate):
                raise SimulationError(
                    "max-min system is unbounded: flows " + flow.name
                )
            rates[members[0]] = float(rate)
            continue

        flows = [system.flows[fid] for fid in members]
        counts = [len(f.constraints) for f in flows]
        row = np.repeat(np.arange(len(members), dtype=np.intp), counts)
        if row.size:
            concat = np.concatenate(
                [np.asarray(f.constraints, dtype=np.intp) for f in flows]
            )
            local_cons, col = np.unique(concat, return_inverse=True)
            col = col.astype(np.intp, copy=False)
        else:
            local_cons = np.zeros(0, dtype=np.intp)
            col = np.zeros(0, dtype=np.intp)
        weights = np.asarray([f.weight for f in flows])
        bounds = np.asarray([f.bound for f in flows])

        def name_of(fid: int, flows=flows) -> str:
            return flows[fid].name

        component_rates, _rounds, _truncated = _progressive_fill_arrays(
            len(members), len(local_cons), row, col, weights, bounds,
            shared[local_cons], capacities[local_cons], name_of,
            max_rounds=max_rounds,
        )
        rates[members] = component_rates
    return rates


# -- incremental sharing ------------------------------------------------------------


class _IncConstraint:
    """Internal per-resource record of an :class:`IncrementalMaxMin`."""

    __slots__ = ("key", "index", "name", "capacity", "shared", "flows")

    def __init__(self, key, index: int, name: str, capacity: float, shared: bool):
        self.key = key
        self.index = index  # stable global index into the capacity arrays
        self.name = name
        self.capacity = capacity
        self.shared = shared
        self.flows: set = set()  # keys of flows crossing this constraint


class _IncFlow:
    """Internal per-consumer record of an :class:`IncrementalMaxMin`."""

    __slots__ = ("key", "seq", "name", "cons", "slot", "bound", "weight")

    def __init__(self, key, seq: int, name: str, cons, slot: int, bound, weight):
        self.key = key
        self.seq = seq  # registration order, for deterministic solves
        self.name = name
        self.cons = cons  # tuple of _IncConstraint
        self.slot = slot  # index into the solver's flat per-flow arrays
        self.bound = bound
        self.weight = weight


class IncrementalMaxMin:
    """A max-min sharing problem kept alive across simulation steps.

    Where :class:`MaxMinSystem` is built fresh and solved once, this class
    holds persistent state — constraints registered by opaque key, flows
    with cached incidence index arrays, the last solved rate of every flow
    — and tracks a *dirty set* of constraints touched since the last solve
    (by flow arrival/departure or capacity change).

    :meth:`solve_dirty` re-solves only the connected components of the
    flow/constraint graph reachable from a dirty constraint.  Because the
    max-min fixed point is unique and decomposes over connected components
    (two flows that share no constraint, even transitively, cannot affect
    each other's rate), untouched components keep their previous rates —
    the solution is identical to a full re-solve.  FATPIPE constraints cap
    flows individually without coupling them, so they seed dirtiness but do
    not merge components.

    All hot per-flow state lives in flat numpy arrays indexed by a recycled
    *slot* number (``_bound_arr`` / ``_weight_arr`` / ``_rate_arr``), and the
    flow→constraint incidence lives in one pooled CSR buffer
    (``_inc_pool`` / ``_inc_start`` / ``_inc_len``), so a component solve
    gathers its sub-problem with fancy indexing instead of per-object
    Python loops.  ``_rate_arr`` uses NaN as the "never solved" sentinel:
    NaN compares unequal to everything, so a recycled slot still reports
    its first solved rate as changed.

    ``sharing`` selects the fidelity of multi-flow component solves:
    ``"exact"`` (default) runs progressive filling to the max-min fixed
    point, bit-identical to the historical solver; ``"approx"`` caps each
    solve at :data:`APPROX_MAX_ROUNDS` filling rounds and fixes the
    remaining flows with one conservative bandwidth-fraction round,
    bounding per-event work regardless of component size.
    """

    def __init__(self, sharing: str = "exact") -> None:
        if sharing not in SHARING_MODES:
            raise SimulationError(
                f"unknown sharing mode {sharing!r}; expected one of {SHARING_MODES}"
            )
        self.sharing = sharing
        self._max_rounds = APPROX_MAX_ROUNDS if sharing == "approx" else None
        self._cons: dict = {}  # key -> _IncConstraint
        self._flows: dict = {}  # key -> _IncFlow
        self._dirty_cons: set = set()
        self._dirty_flows: set = set()
        self._seq = 0
        # global capacity/shared arrays indexed by _IncConstraint.index,
        # grown geometrically so component solves can fancy-index them;
        # indices of garbage-collected constraints are recycled
        self._cap_arr = np.zeros(16)
        self._shared_arr = np.ones(16, dtype=bool)
        self._n_cons = 0
        self._free_cons: list = []
        # flat per-flow arrays indexed by _IncFlow.slot
        self._bound_arr = np.zeros(16)
        self._weight_arr = np.zeros(16)
        self._rate_arr = np.full(16, np.nan)
        self._n_slots = 0
        self._free_slots: list = []
        # pooled CSR incidence: slot ``s`` crosses the global constraint
        # indices at _inc_pool[_inc_start[s] : _inc_start[s] + _inc_len[s]].
        # Removed flows leave dead segments behind; the append path compacts
        # the pool once dead entries dominate, keeping memory bounded.
        self._inc_pool = np.zeros(64, dtype=np.intp)
        self._inc_start = np.zeros(16, dtype=np.intp)
        self._inc_len = np.zeros(16, dtype=np.intp)
        self._pool_used = 0
        self._pool_dead = 0
        # constraint keys whose flow set drained since the last solve;
        # solve_dirty() garbage-collects the ones still empty
        self._drained: set = set()
        #: statistics of the most recent :meth:`solve_dirty` call
        self.last_components = 0
        self.last_flows_solved = 0
        #: progressive-filling rounds spent by the most recent
        #: :meth:`solve_dirty` (summed over its component solves)
        self.last_fill_rounds = 0
        #: component solves of the most recent :meth:`solve_dirty` that hit
        #: the approx-mode round cap and took the bandwidth-fraction
        #: fallback; always 0 in exact mode
        self.last_approx_events = 0
        #: keys of the flows whose solved rate actually *changed* value in
        #: the most recent :meth:`solve_dirty` (new flows included).  A
        #: re-solved component usually contains many flows that keep their
        #: exact previous rate — e.g. flows bottlenecked elsewhere — and
        #: lazily-updated engines only need to re-anchor the changed ones.
        self.last_rate_changed: set = set()
        #: when True, each component solve also recomputes the total
        #: consumed rate of every constraint it touches (utilization
        #: sampling for the observability layer).  Off by default so the
        #: tracing-disabled hot path pays nothing.
        self.track_usage = False
        self._usage: dict = {}  # constraint key -> consumed rate
        #: (``_IncConstraint``, usage) pairs updated by the most recent
        #: :meth:`solve_dirty`; clean components never appear here
        self.last_usage: list = []

    # -- registration ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._flows)

    def __contains__(self, key) -> bool:
        return key in self._flows

    def ensure_constraint(
        self, key, capacity: float, shared: bool = True, name: str | None = None
    ) -> None:
        """Register (or update) the resource identified by ``key``.

        Re-registering with a different capacity or policy marks the
        constraint dirty so dependent flows are re-solved.
        """
        cons = self._cons.get(key)
        if cons is None:
            if capacity < 0:
                raise SimulationError(f"constraint {name or key!r}: negative capacity")
            if self._free_cons:
                index = self._free_cons.pop()
            else:
                index = self._n_cons
                self._n_cons += 1
                if index >= len(self._cap_arr):
                    self._cap_arr = np.resize(self._cap_arr, 2 * len(self._cap_arr))
                    self._shared_arr = np.resize(self._shared_arr, len(self._cap_arr))
            self._cap_arr[index] = capacity
            self._shared_arr[index] = shared
            self._cons[key] = _IncConstraint(key, index, name or str(key), capacity, shared)
        elif cons.capacity != capacity or cons.shared != shared:
            cons.capacity = capacity
            cons.shared = shared
            self._cap_arr[cons.index] = capacity
            self._shared_arr[cons.index] = shared
            self._dirty_cons.add(key)

    def add_flow(
        self,
        key,
        constraint_keys,
        bound: float = math.inf,
        weight: float = 1.0,
        name: str | None = None,
    ) -> None:
        """Register a consumer crossing ``constraint_keys`` (all pre-registered)."""
        if key in self._flows:
            raise SimulationError(f"flow {name or key!r} already registered")
        if weight <= 0:
            raise SimulationError(f"flow {name or key!r}: weight must be > 0")
        if bound < 0:
            raise SimulationError(f"flow {name or key!r}: negative bound")
        cons = []
        for ckey in constraint_keys:
            record = self._cons.get(ckey)
            if record is None:
                raise SimulationError(
                    f"flow {name or key!r} references unknown constraint {ckey!r}"
                )
            cons.append(record)
        slot = self._alloc_slot()
        n = len(cons)
        start = self._pool_reserve(n)
        self._inc_pool[start:start + n] = [c.index for c in cons]
        self._inc_start[slot] = start
        self._inc_len[slot] = n
        self._bound_arr[slot] = bound
        self._weight_arr[slot] = weight
        self._rate_arr[slot] = np.nan
        flow = _IncFlow(key, self._seq, name or str(key), tuple(cons), slot,
                        bound, weight)
        self._seq += 1
        self._flows[key] = flow
        self._dirty_flows.add(key)
        for record in cons:
            record.flows.add(key)
            if record.shared:
                self._dirty_cons.add(record.key)
            self._drained.discard(record.key)

    def remove_flow(self, key, strict: bool = True) -> None:
        """Unregister a consumer, freeing its share for its neighbours.

        Removing a flow that is not registered raises
        :class:`~repro.errors.UnknownFlowError` naming the flow; pass
        ``strict=False`` to make the removal idempotent instead (useful
        when a cancel races a completion harvest).
        """
        flow = self._flows.pop(key, None)
        if flow is None:
            if strict:
                raise UnknownFlowError(key)
            return
        self._dirty_flows.discard(key)
        self._rate_arr[flow.slot] = np.nan
        self._pool_dead += int(self._inc_len[flow.slot])
        self._inc_len[flow.slot] = 0
        self._free_slots.append(flow.slot)
        for record in flow.cons:
            record.flows.discard(key)
            if record.shared:
                # neighbours on a shared constraint inherit the freed share
                self._dirty_cons.add(record.key)
            if not record.flows:
                # candidate for garbage collection at the next solve
                self._drained.add(record.key)

    def _alloc_slot(self) -> int:
        """Grab a per-flow array slot, recycling freed ones first."""
        if self._free_slots:
            return self._free_slots.pop()
        slot = self._n_slots
        self._n_slots += 1
        if slot >= len(self._bound_arr):
            size = 2 * len(self._bound_arr)
            self._bound_arr = np.resize(self._bound_arr, size)
            self._weight_arr = np.resize(self._weight_arr, size)
            rates = np.full(size, np.nan)
            rates[: len(self._rate_arr)] = self._rate_arr
            self._rate_arr = rates
            self._inc_start = np.resize(self._inc_start, size)
            self._inc_len = np.resize(self._inc_len, size)
        return slot

    def _pool_reserve(self, n: int) -> int:
        """Reserve ``n`` incidence entries; returns their pool offset.

        Compacts the pool first when dead entries (left by removed flows)
        rival live ones, so pool memory stays proportional to the live
        incidence size instead of growing with churn.
        """
        if self._pool_used + n > len(self._inc_pool):
            if self._pool_dead * 2 >= self._pool_used:
                self._compact_pool()
            while self._pool_used + n > len(self._inc_pool):
                self._inc_pool = np.resize(self._inc_pool, 2 * len(self._inc_pool))
        start = self._pool_used
        self._pool_used += n
        return start

    def _compact_pool(self) -> None:
        """Rewrite live incidence segments contiguously, dropping dead ones."""
        new_pool = np.zeros(len(self._inc_pool), dtype=np.intp)
        used = 0
        for flow in self._flows.values():
            n = int(self._inc_len[flow.slot])
            start = int(self._inc_start[flow.slot])
            new_pool[used:used + n] = self._inc_pool[start:start + n]
            self._inc_start[flow.slot] = used
            used += n
        self._inc_pool = new_pool
        self._pool_used = used
        self._pool_dead = 0

    def has_constraint(self, key) -> bool:
        """Whether the resource ``key`` was ever registered as a constraint."""
        return key in self._cons

    # -- snapshot/restore support ---------------------------------------------

    def seed_rate(self, key, rate: float) -> None:
        """Set a flow's solved rate directly, without dirtying anything.

        Snapshot restore uses this to re-create the exact post-solve
        state: flows are re-added (which marks everything dirty), rates
        seeded from the serialized run, and :meth:`clear_dirty` called —
        after which the solver is indistinguishable from one that solved
        its way here.  Component solves run progressive filling from
        zero, independent of prior rates, so seeded membership +
        capacities + rates give bit-identical continuations.
        """
        self._rate_arr[self._flows[key].slot] = rate

    def clear_dirty(self) -> None:
        """Forget all dirtiness (snapshot restore bookkeeping)."""
        self._dirty_flows.clear()
        self._dirty_cons.clear()

    def flow_keys_in_seq_order(self) -> list:
        """Live flow keys in registration order.

        A restore must re-add flows in this order: component solves sort
        members by ``seq``, so preserving relative registration order is
        what keeps re-solves deterministic across snapshot boundaries.
        """
        return [f.key for f in sorted(self._flows.values(),
                                      key=lambda f: f.seq)]

    def mark_dirty(self, key) -> None:
        """Force re-solving of the component around constraint ``key``."""
        if key in self._cons:
            self._dirty_cons.add(key)

    def mark_flow_dirty(self, key) -> None:
        """Force re-solving of the component around flow ``key``.

        Snapshot restore uses this (after :meth:`clear_dirty`) to re-mark
        exactly the flows the serialized run had dirty at the cut.
        """
        if key in self._flows:
            self._dirty_flows.add(key)

    def rate(self, key) -> float:
        """Last solved rate of flow ``key``."""
        value = self._rate_arr[self._flows[key].slot]
        if math.isnan(value):
            # registered but never solved: preserve the mapping-like contract
            raise KeyError(key)
        return float(value)

    def usage(self, key) -> float:
        """Last computed consumed rate of constraint ``key``.

        Only maintained while :attr:`track_usage` is on; unknown or
        never-used constraints report 0.
        """
        return self._usage.get(key, 0.0)

    # -- solving --------------------------------------------------------------

    def solve_dirty(self) -> set:
        """Re-solve every component touching a dirty constraint.

        Returns the keys of the flows whose rate was recomputed; all other
        flows keep their previous rate (which is still the exact max-min
        solution for their untouched component).  Sets
        :attr:`last_components` / :attr:`last_flows_solved` /
        :attr:`last_rate_changed` / :attr:`last_fill_rounds` /
        :attr:`last_approx_events`.  Also garbage-collects constraints
        whose flow set drained since the last solve, so solver memory
        stays bounded under activity churn.
        """
        self.last_components = 0
        self.last_flows_solved = 0
        self.last_usage = []
        self.last_rate_changed = set()
        self.last_fill_rounds = 0
        self.last_approx_events = 0
        self._gc_drained()
        if not self._dirty_cons and not self._dirty_flows:
            return set()
        seeds = set(self._dirty_flows)
        for ckey in self._dirty_cons:
            record = self._cons.get(ckey)
            if record is not None:
                seeds.update(record.flows)
                if self.track_usage and not record.flows:
                    # last flow left: the constraint falls idle without any
                    # component re-solve touching it
                    self._usage[ckey] = 0.0
                    self.last_usage.append((record, 0.0))
        self._dirty_cons.clear()
        self._dirty_flows.clear()

        solved: set = set()
        flows = self._flows
        for seed in sorted(seeds, key=lambda k: flows[k].seq):
            if seed in solved or seed not in flows:
                continue
            component = self._collect_component(seed, solved)
            self._solve_component(component)
            self.last_components += 1
            self.last_flows_solved += len(component)
        return solved

    def _gc_drained(self) -> None:
        """Drop constraints whose flow set drained and is still empty.

        Emits the final idle utilization sample (when :attr:`track_usage`
        is on and the constraint went dirty by draining) before forgetting
        the record, recycles its global index, and discards its usage
        entry.  Constraints that were repopulated or re-registered since
        draining are left alone; a future :meth:`ensure_constraint` with
        the same key simply registers a fresh record.
        """
        if not self._drained:
            return
        for ckey in self._drained:
            record = self._cons.get(ckey)
            if record is None or record.flows:
                continue
            if self.track_usage and ckey in self._dirty_cons:
                # last flow left: the constraint falls idle without any
                # component re-solve touching it
                self.last_usage.append((record, 0.0))
            self._dirty_cons.discard(ckey)
            del self._cons[ckey]
            self._free_cons.append(record.index)
            self._usage.pop(ckey, None)
        self._drained.clear()

    def _collect_component(self, seed, solved: set) -> list:
        """Flows transitively connected to ``seed`` via shared constraints."""
        members = []
        stack = [seed]
        seen_cons: set = set()
        while stack:
            key = stack.pop()
            if key in solved:
                continue
            solved.add(key)
            flow = self._flows[key]
            members.append(flow)
            for record in flow.cons:
                # FATPIPE constraints cap flows individually: they do not
                # couple flows into one component
                if not record.shared or record.key in seen_cons:
                    continue
                seen_cons.add(record.key)
                stack.extend(record.flows)
        members.sort(key=lambda f: f.seq)
        return members

    def _solve_component(self, members: list) -> None:
        if len(members) == 1:
            # closed form: a lone flow takes its bound or its tightest cap
            # (exact even in approx mode — there is nothing to iterate)
            flow = members[0]
            rate = flow.bound
            for record in flow.cons:
                rate = min(rate, record.capacity / flow.weight)
            if math.isinf(rate):
                raise SimulationError(
                    "max-min system is unbounded: flows " + flow.name
                )
            self._store_rate(flow, float(rate))
            if self.track_usage:
                self._update_usage(members)
            return

        # Gather the sub-problem from the flat solver state with fancy
        # indexing: per-member slots select bounds/weights and CSR incidence
        # segments; np.unique relabels global constraint indices to local.
        n_members = len(members)
        slots = np.fromiter(
            (f.slot for f in members), dtype=np.intp, count=n_members
        )
        lens = self._inc_len[slots]
        total = int(lens.sum())
        row = np.repeat(np.arange(n_members, dtype=np.intp), lens)
        if total:
            out_starts = np.cumsum(lens) - lens
            shift = np.repeat(self._inc_start[slots] - out_starts, lens)
            concat = self._inc_pool[np.arange(total, dtype=np.intp) + shift]
            local_cons, col = np.unique(concat, return_inverse=True)
            col = col.astype(np.intp, copy=False)
        else:
            local_cons = np.zeros(0, dtype=np.intp)
            col = np.zeros(0, dtype=np.intp)
        weights = self._weight_arr[slots]
        bounds = self._bound_arr[slots]
        capacities = self._cap_arr[local_cons]
        shared = self._shared_arr[local_cons]

        def name_of(fid: int) -> str:
            return members[fid].name

        rates, rounds, truncated = _progressive_fill_arrays(
            n_members, len(local_cons), row, col, weights, bounds,
            shared, capacities, name_of, max_rounds=self._max_rounds,
        )
        self.last_fill_rounds += rounds
        if truncated:
            self.last_approx_events += 1
        previous = self._rate_arr[slots]
        with np.errstate(invalid="ignore"):
            changed = rates != previous  # NaN sentinel: new slots compare unequal
        for i in np.flatnonzero(changed):
            self.last_rate_changed.add(members[i].key)
        self._rate_arr[slots] = rates
        if self.track_usage:
            self._update_usage(members)

    def _store_rate(self, flow: _IncFlow, rate: float) -> None:
        """Record a solved rate, tracking whether its value changed."""
        previous = self._rate_arr[flow.slot]
        if not previous == rate:  # NaN sentinel: never-solved compares unequal
            self.last_rate_changed.add(flow.key)
        self._rate_arr[flow.slot] = rate

    def _update_usage(self, members: list) -> None:
        """Refresh the consumed rate of every constraint ``members`` touch.

        Flows crossing a SHARED constraint are all inside the component
        just solved, so their rates are fresh; FATPIPE constraints may be
        crossed by flows of other components, whose cached rates are still
        the exact solution of their own (untouched) component.
        """
        flows = self._flows
        rate_arr = self._rate_arr
        seen: set = set()
        for flow in members:
            for record in flow.cons:
                if record.key in seen:
                    continue
                seen.add(record.key)
                usage = 0.0
                for fkey in record.flows:
                    other = flows.get(fkey)
                    if other is None:
                        continue
                    value = rate_arr[other.slot]
                    if not math.isnan(value):
                        usage += float(value) * other.weight
                self._usage[record.key] = usage
                self.last_usage.append((record, usage))
