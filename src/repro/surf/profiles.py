"""Availability and state profiles: time-varying resource behaviour.

SimGrid platforms attach *traces* to resources: an **availability
profile** scales a link's bandwidth or a host's speed over time (capacity
noise, background load, degraded operation), and a **state profile** turns
the resource OFF (0) and back ON (1) — outages with recovery.  This
module provides the profile representation and the SimGrid-compatible
text format; :class:`~repro.surf.engine.Engine` consumes profiles and
turns their points into capacity-change / failure / recovery events.

The file format is SimGrid's trace format::

    # comment lines start with '#'
    PERIODICITY 10.0
    0.0  1.0
    5.0  0.5

Each data line is ``time value`` (whitespace-separated).  With a
``PERIODICITY`` directive the point list repeats forever, offset by the
period on each cycle; without one the last value holds until the end of
the simulation.  Availability values are capacity factors (``1.0`` = full
capacity, ``0.5`` = half, ``0.0`` = stalled); state values are booleans
(``0`` = down/failed, anything else = up).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from ..errors import PlatformError

__all__ = ["Profile", "parse_profile", "load_profile"]


@dataclass(frozen=True)
class Profile:
    """A piecewise-constant time/value trace, optionally periodic.

    ``points`` holds ``(time, value)`` pairs with strictly increasing,
    non-negative times.  With ``period`` set, the point list repeats every
    ``period`` seconds (the period must be positive and no earlier than
    the last point); without it the final value holds forever.
    """

    points: tuple[tuple[float, float], ...]
    period: float | None = None
    #: display label only — two profiles with equal points and period
    #: compare equal regardless of where they were parsed from
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.points:
            raise PlatformError(f"profile {self.name!r}: needs at least one point")
        last = -math.inf
        for t, value in self.points:
            if not math.isfinite(t) or t < 0:
                raise PlatformError(
                    f"profile {self.name!r}: times must be finite and >= 0"
                )
            if t <= last:
                raise PlatformError(
                    f"profile {self.name!r}: times must be strictly increasing"
                )
            if not math.isfinite(value) or value < 0:
                raise PlatformError(
                    f"profile {self.name!r}: values must be finite and >= 0"
                )
            last = t
        if self.period is not None:
            if not math.isfinite(self.period) or self.period <= 0:
                raise PlatformError(
                    f"profile {self.name!r}: period must be finite and > 0"
                )
            if self.period < self.points[-1][0]:
                raise PlatformError(
                    f"profile {self.name!r}: period {self.period} shorter "
                    f"than the last point at {self.points[-1][0]}"
                )

    def value_at(self, t: float) -> float | None:
        """The profile's value in effect at time ``t``.

        Returns None before the first point of a non-periodic profile
        (the resource keeps its nominal behaviour until then).
        """
        if self.period is not None and t >= 0:
            t = t % self.period
            # within a cycle, before the first point the previous cycle's
            # last value is in effect
            if t < self.points[0][0]:
                return self.points[-1][1]
        value = None
        for point_t, point_value in self.points:
            if point_t > t:
                break
            value = point_value
        return value

    def iter_events(self) -> Iterator[tuple[float, float]]:
        """Yield ``(absolute time, value)`` events in time order.

        Finite for one-shot profiles; infinite for periodic ones (each
        cycle offsets the points by another period).  The engine pulls
        one event at a time, so the infinite case is safe.
        """
        offset = 0.0
        while True:
            for t, value in self.points:
                yield offset + t, value
            if self.period is None:
                return
            offset += self.period

    # -- serialisation -------------------------------------------------------

    def dumps(self) -> str:
        """Render in the trace file format :func:`parse_profile` reads."""
        lines = []
        if self.period is not None:
            lines.append(f"PERIODICITY {self.period!r}")
        for t, value in self.points:
            lines.append(f"{t!r} {value!r}")
        return "\n".join(lines) + "\n"


def parse_profile(text: str, name: str = "") -> Profile:
    """Parse the SimGrid trace format (module docstring) into a Profile."""
    period: float | None = None
    points: list[tuple[float, float]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if parts[0].upper() == "PERIODICITY":
            if len(parts) != 2:
                raise PlatformError(
                    f"profile {name!r} line {lineno}: PERIODICITY takes one value"
                )
            period = float(parts[1])
            continue
        if len(parts) != 2:
            raise PlatformError(
                f"profile {name!r} line {lineno}: expected 'time value', "
                f"got {raw!r}"
            )
        try:
            points.append((float(parts[0]), float(parts[1])))
        except ValueError as exc:
            raise PlatformError(
                f"profile {name!r} line {lineno}: {exc}"
            ) from None
    return Profile(tuple(points), period=period, name=name)


def load_profile(path: str | Path, name: str | None = None) -> Profile:
    """Read a profile file from disk (:func:`parse_profile` of its text)."""
    path = Path(path)
    return parse_profile(path.read_text(encoding="utf-8"),
                         name=name if name is not None else path.stem)
