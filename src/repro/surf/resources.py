"""Simulated hardware resources: network links and hosts.

A :class:`Link` is a network resource with a bandwidth (bytes/s), a latency
(seconds) and a sharing policy.  A :class:`Host` is a compute node with a
speed in flop/s and a memory budget (used by the RAM-folding experiments of
Fig. 16).  Resources are *passive*: they only describe capacity; the
engine's max-min solver (:mod:`repro.surf.maxmin`) decides how ongoing
actions share them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import PlatformError
from ..units import parse_bandwidth, parse_size, parse_speed, parse_time

__all__ = ["SharingPolicy", "Link", "Host"]


class SharingPolicy(enum.Enum):
    """How concurrent flows share a link.

    * ``SHARED`` — the sum of flow rates is capped by the bandwidth (a
      normal full-duplex-agnostic Ethernet link).
    * ``FATPIPE`` — each flow is individually capped but flows do not
      contend (an ideal, over-provisioned backplane).
    * ``SPLITDUPLEX`` — modelled at the platform level as two SHARED
      half-links (one per direction); kept here for XML round-tripping.
    """

    SHARED = "SHARED"
    FATPIPE = "FATPIPE"
    SPLITDUPLEX = "SPLITDUPLEX"


@dataclass
class Link:
    """A network link.

    Parameters accept either SI floats or SimGrid-style strings
    (``bandwidth="1.25GBps"``, ``latency="50us"``).
    """

    name: str
    bandwidth: float
    latency: float = 0.0
    sharing: SharingPolicy = SharingPolicy.SHARED

    def __init__(
        self,
        name: str,
        bandwidth: float | str,
        latency: float | str = 0.0,
        sharing: SharingPolicy | str = SharingPolicy.SHARED,
    ) -> None:
        self.name = name
        self.bandwidth = parse_bandwidth(bandwidth)
        self.latency = parse_time(latency)
        self.sharing = SharingPolicy(sharing) if isinstance(sharing, str) else sharing
        #: optional capacity-scaling trace (:class:`repro.surf.profiles.Profile`);
        #: the engine replays it as bandwidth changes (1.0 = nominal)
        self.availability_profile = None
        #: optional ON/OFF trace: 0 fails the link, non-zero restores it
        self.state_profile = None
        if self.bandwidth <= 0:
            raise PlatformError(f"link {name!r}: bandwidth must be > 0")
        if self.latency < 0:
            raise PlatformError(f"link {name!r}: negative latency")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Link({self.name!r}, bw={self.bandwidth:.3g} B/s, "
            f"lat={self.latency:.3g} s, {self.sharing.value})"
        )

    def __hash__(self) -> int:
        return hash(self.name)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Link) and other.name == self.name


@dataclass
class Host:
    """A compute node of the target platform.

    ``speed`` is the per-core compute rate in flop/s (as in SimGrid);
    ``cores`` sets how many compute actions can progress at full speed
    concurrently — the CPU constraint's total capacity is
    ``speed * cores`` and each action is individually capped at ``speed``.
    ``memory`` is the RAM budget enforced on the *simulated heap* by
    :mod:`repro.smpi.memory`.
    """

    name: str
    speed: float
    cores: int = 1
    memory: int = field(default=0)

    def __init__(
        self,
        name: str,
        speed: float | str,
        cores: int = 1,
        memory: int | str = "16GiB",
    ) -> None:
        self.name = name
        self.speed = parse_speed(speed)
        self.cores = int(cores)
        self.memory = parse_size(memory)
        #: optional speed-scaling trace (:class:`repro.surf.profiles.Profile`);
        #: the engine replays it as CPU-capacity changes (1.0 = nominal)
        self.availability_profile = None
        #: optional ON/OFF trace: 0 fails the host, non-zero restores it
        self.state_profile = None
        #: optional topology group label (the cabinet/switch-group this
        #: host hangs off); builders that know the hierarchy set it and
        #: topology-aware communicator splits (``Comm.Split_type``) read
        #: it — ``None`` means "no known grouping" and splits fall back
        #: to co-location (same host name)
        self.group: str | None = None
        if self.speed <= 0:
            raise PlatformError(f"host {name!r}: speed must be > 0")
        if self.cores < 1:
            raise PlatformError(f"host {name!r}: needs at least one core")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Host({self.name!r}, {self.speed:.3g} flop/s, cores={self.cores})"

    def __hash__(self) -> int:
        return hash(self.name)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Host) and other.name == self.name
