"""Series-comparison helpers for the benchmark harness.

Every figure-reproduction benchmark ends up comparing a *measured* series
(SMPI under some model) against a *reference* series (the packet-level
testbed standing in for the real cluster).  :func:`compare_series`
packages the paper's statistics — mean and worst-case percentage error in
log space — together with the raw points, ready for printing and for the
EXPERIMENTS.md tables.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .logerr import log_error_series, from_log_space

__all__ = ["SeriesComparison", "compare_series"]


@dataclass
class SeriesComparison:
    """Accuracy summary of one model against one reference."""

    label: str
    x: np.ndarray  # the sweep variable (message size, process count, ...)
    measured: np.ndarray
    reference: np.ndarray
    mean_error_pct: float
    max_error_pct: float
    max_error_at: float  # x value where the worst case occurs

    def row(self) -> str:
        """One printable table row."""
        return (
            f"{self.label:<24} avg {self.mean_error_pct:6.2f}%   "
            f"worst {self.max_error_pct:7.2f}% (at x={self.max_error_at:g})"
        )

    def table(self, x_name: str = "x") -> str:
        """Full point-by-point table."""
        lines = [f"{x_name:>12}  {'reference':>14}  {'measured':>14}  {'err%':>8}"]
        errors = (
            np.exp(log_error_series(self.measured, self.reference)) - 1.0
        ) * 100.0
        for xi, ref, meas, err in zip(self.x, self.reference, self.measured, errors):
            lines.append(f"{xi:>12g}  {ref:>14.6g}  {meas:>14.6g}  {err:>8.2f}")
        return "\n".join(lines)


def compare_series(label: str, x, measured, reference) -> SeriesComparison:
    """Build a :class:`SeriesComparison` with paper-style error statistics."""
    x = np.asarray(x, dtype=float)
    measured = np.asarray(measured, dtype=float)
    reference = np.asarray(reference, dtype=float)
    errors = log_error_series(measured, reference)
    worst = int(np.argmax(errors))
    return SeriesComparison(
        label=label,
        x=x,
        measured=measured,
        reference=reference,
        mean_error_pct=from_log_space(float(errors.mean())) * 100.0,
        max_error_pct=from_log_space(float(errors[worst])) * 100.0,
        max_error_at=float(x[worst]) if x.size else float("nan"),
    )
