"""Accuracy metrics used throughout the evaluation."""

from .logerr import (
    from_log_space,
    log_error,
    log_error_series,
    max_percent_error,
    mean_percent_error,
)
from .stats import SeriesComparison, compare_series

__all__ = [
    "SeriesComparison",
    "compare_series",
    "from_log_space",
    "log_error",
    "log_error_series",
    "max_percent_error",
    "mean_percent_error",
]
