"""The logarithmic error metric (paper section 7.1, after [26]).

The relative error ``(X - R)/R`` is asymmetric: doubling yields +100 %,
halving only -50 %.  Velho & Legrand's logarithmic error

.. math:: \\mathrm{LogErr} = |\\ln X - \\ln R|

is symmetric, composes under additive aggregation (mean, max, variance in
log space), and converts back to an interpretable percentage as
``exp(LogErr) - 1``.  Every accuracy number our benchmarks report uses
exactly this pipeline, matching the paper's "average error" and "worst
case" figures.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "log_error",
    "log_error_series",
    "from_log_space",
    "mean_percent_error",
    "max_percent_error",
]


def log_error(measured: float, reference: float) -> float:
    """|ln X - ln R| for one pair of strictly positive values."""
    if measured <= 0 or reference <= 0:
        raise ValueError("logarithmic error requires strictly positive values")
    return abs(float(np.log(measured) - np.log(reference)))


def log_error_series(measured, reference) -> np.ndarray:
    """Element-wise log errors of two positive series."""
    x = np.asarray(measured, dtype=float)
    r = np.asarray(reference, dtype=float)
    if x.shape != r.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {r.shape}")
    if (x <= 0).any() or (r <= 0).any():
        raise ValueError("logarithmic error requires strictly positive values")
    return np.abs(np.log(x) - np.log(r))


def from_log_space(log_err: float) -> float:
    """exp(LogErr) - 1: back to a regular percentage-style error."""
    return float(np.exp(log_err) - 1.0)


def mean_percent_error(measured, reference) -> float:
    """Paper-style 'average error overall': mean log error, de-logged, in %."""
    errors = log_error_series(measured, reference)
    return from_log_space(float(errors.mean())) * 100.0


def max_percent_error(measured, reference) -> float:
    """Paper-style 'worst case': max log error, de-logged, in %."""
    errors = log_error_series(measured, reference)
    return from_log_space(float(errors.max())) * 100.0
