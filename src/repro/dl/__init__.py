"""Data-parallel deep-learning workload family (ROADMAP item 3).

The package brings the allreduce-bound training workload to the
simulator in two pieces:

* :mod:`repro.dl.communicators` — a chainermn-style registry of
  communicator strategies (``create_communicator(name)``), each binding
  gradient exchange to one generator-dialect allreduce schedule from
  :mod:`repro.smpi.coll`;
* :mod:`repro.dl.sgd` — a data-parallel SGD skeleton whose per-step
  bucketed gradient allreduce runs over any registered strategy, with
  ``shared_malloc``-folded buffers so huge rank counts stay in one
  node's RSS.

See ``docs/collectives.md`` for the guided tour and the size-sweep that
picks a strategy per (message size, nprocs, topology).
"""

from .communicators import COMMUNICATORS, DlCommunicator, create_communicator
from .sgd import bucketize, parse_layers, sgd_skeleton

__all__ = [
    "COMMUNICATORS",
    "DlCommunicator",
    "create_communicator",
    "bucketize",
    "parse_layers",
    "sgd_skeleton",
]
