"""Data-parallel SGD skeleton: compute + bucketed gradient allreduce.

The dominant modern MPI workload the paper predates: every training step
runs the forward/backward pass (a compute burst), then sums the gradient
across ranks.  Real frameworks coalesce per-layer gradients into
*buckets* of roughly equal byte size before the allreduce (PyTorch DDP,
chainermn); the skeleton reproduces exactly that communication pattern
— bucket sizes, per-step cadence, algorithm choice — while the numerics
stay placeholders.

Gradient buffers are ``shared_malloc``-folded (the paper's
``SMPI_SHARED_MALLOC``): one physical copy serves every rank, so the
host RSS stays flat as ranks grow and the 16k-rank scale gate of
``benchmarks/bench_scale_ranks.py`` keeps holding with this family.
"""

from __future__ import annotations

from ..errors import ConfigError
from ..units import parse_size
from .communicators import create_communicator

__all__ = ["parse_layers", "bucketize", "sgd_skeleton"]


def parse_layers(spec) -> list[int]:
    """Per-layer gradient sizes in bytes from a compact spec.

    Accepts a list of sizes (ints or SimGrid-style strings) or a string
    of comma-separated ``COUNTxSIZE`` groups::

        parse_layers("4x4MiB,2x512KiB")  ->  [4194304]*4 + [524288]*2
    """
    if isinstance(spec, (list, tuple)):
        return [int(parse_size(s)) for s in spec]
    layers: list[int] = []
    for part in str(spec).split(","):
        part = part.strip()
        if not part:
            continue
        count, sep, size = part.partition("x")
        if not sep:
            count, size = "1", part
        try:
            n = int(count)
        except ValueError:
            raise ConfigError(f"bad layer group {part!r} (want COUNTxSIZE)")
        layers.extend([int(parse_size(size))] * n)
    if not layers:
        raise ConfigError(f"layer spec {spec!r} names no layers")
    return layers


def bucketize(layer_bytes: list[int], bucket_bytes: int) -> list[int]:
    """Coalesce per-layer sizes into allreduce buckets (DDP-style).

    Layers are packed in order; a bucket closes once it reaches
    ``bucket_bytes``.  A single layer larger than the bucket size gets a
    bucket of its own — buckets bound *fusion*, they never split a
    layer.
    """
    if bucket_bytes < 1:
        raise ConfigError("bucket size must be at least one byte")
    buckets: list[int] = []
    current = 0
    for size in layer_bytes:
        current += size
        if current >= bucket_bytes:
            buckets.append(current)
            current = 0
    if current:
        buckets.append(current)
    return buckets


def sgd_skeleton(
    communicator: str = "ring",
    layers="4x4MiB",
    bucket="4MiB",
    steps: int = 2,
    flops_per_step: float = 1e9,
):
    """App factory: ``steps`` of data-parallel SGD with bucketed allreduce.

    Each step charges ``flops_per_step`` of forward/backward compute per
    rank, then allreduces every gradient bucket through the
    ``communicator`` strategy (see
    :func:`repro.dl.create_communicator`).  The app returns the average
    simulated seconds per step — the figure of merit DL sweeps compare
    across strategies.
    """
    layer_bytes = parse_layers(layers)
    bucket_list = bucketize(layer_bytes, int(parse_size(bucket)))

    def app(mpi):
        dlcomm = create_communicator(communicator, mpi.COMM_WORLD)
        grads = [
            mpi.shared_malloc(f"dl/grad/{i}", max(1, nbytes // 8))
            for i, nbytes in enumerate(bucket_list)
        ]
        sums = [
            mpi.shared_malloc(f"dl/sum/{i}", max(1, nbytes // 8))
            for i, nbytes in enumerate(bucket_list)
        ]
        yield from mpi.COMM_WORLD.co.Barrier()
        start = yield from mpi.co.wtime()
        for _ in range(steps):
            yield from mpi.co.execute(flops_per_step)
            for grad, total in zip(grads, sums):
                yield from dlcomm.co_allreduce_grad(grad, total)
        yield from mpi.COMM_WORLD.co.Barrier()
        elapsed = (yield from mpi.co.wtime()) - start
        return elapsed / max(1, steps)

    return app
