"""Communicator strategies for data-parallel training (chainermn-style).

A *DL communicator* wraps an MPI :class:`~repro.smpi.comm.Communicator`
and fixes the allreduce schedule used for gradient exchange.  The
registry mirrors chainermn's ``create_communicator(name)``: training
code asks for a strategy by name and stays agnostic of the algorithm
behind it.  Every strategy composes the generator-dialect algorithms of
:mod:`repro.smpi.coll` directly, so gradient traffic contends in the
simulated network exactly like any application communication.

========================  ==========================================
name                      allreduce schedule
========================  ==========================================
``naive``                 reduce to rank 0 + broadcast
``flat``                  recursive doubling over all ranks
``ring``                  segmented ring (reduce-scatter + allgather)
``rabenseifner``          pairwise reduce-scatter + ring allgather
``hierarchical``          two-level over the cabinet topology
========================  ==========================================
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..errors import ConfigError
from ..smpi.buffer import resolve
from ..smpi.coll.allreduce import (
    allreduce_rabenseifner,
    allreduce_recursive_doubling,
    allreduce_reduce_bcast,
    allreduce_ring,
    allreduce_two_level,
)
from ..smpi.op import SUM, Op

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..smpi.comm import Communicator

__all__ = [
    "DlCommunicator",
    "COMMUNICATORS",
    "create_communicator",
]


class DlCommunicator:
    """Base class binding an MPI communicator to one allreduce schedule.

    Subclasses set :attr:`algorithm` to a generator-dialect function
    with the ``(comm, sendspec, recvspec, op)`` signature from
    :mod:`repro.smpi.coll.allreduce`.
    """

    #: registry name (set by subclasses)
    name: str = "base"
    #: the coll/ algorithm backing :meth:`co_allreduce_grad`
    algorithm = None

    def __init__(self, comm: "Communicator") -> None:
        self.comm = comm

    @property
    def rank(self) -> int:
        """Rank of the calling process inside the wrapped communicator."""
        return self.comm.Get_rank()

    @property
    def size(self) -> int:
        """Number of ranks participating in gradient exchange."""
        return self.comm.size

    def split(self, color: int, key: int = 0) -> "DlCommunicator | None":
        """Same-strategy communicator over an ``MPI_Comm_split`` subset."""
        sub = self.comm.Split(color, key)
        return None if sub is None else type(self)(sub)

    def co_allreduce_grad(
        self, grad: np.ndarray, out: np.ndarray, op: Op = SUM
    ) -> None:
        """Generator: sum ``grad`` across ranks into ``out``.

        Drive with ``yield from``; the concrete schedule is the
        subclass's :attr:`algorithm`.
        """
        algorithm = type(self).algorithm
        if algorithm is None:  # pragma: no cover - abstract use
            raise NotImplementedError("use a registered communicator strategy")
        yield from algorithm(self.comm, resolve(grad), resolve(out), op)

    def allreduce_grad(
        self, grad: np.ndarray, out: np.ndarray, op: Op = SUM
    ) -> None:
        """Blocking twin of :meth:`co_allreduce_grad`."""
        self.comm._run(self.co_allreduce_grad(grad, out, op))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(size={self.comm.size})"


class NaiveCommunicator(DlCommunicator):
    """Reduce-to-root + broadcast: the baseline every strategy must beat."""

    name = "naive"
    algorithm = staticmethod(allreduce_reduce_bcast)


class FlatCommunicator(DlCommunicator):
    """Single-level recursive doubling: log P steps, full vector each."""

    name = "flat"
    algorithm = staticmethod(allreduce_recursive_doubling)


class RingCommunicator(DlCommunicator):
    """Segmented ring allreduce: bandwidth-optimal, nearest-neighbour."""

    name = "ring"
    algorithm = staticmethod(allreduce_ring)


class RabenseifnerCommunicator(DlCommunicator):
    """Rabenseifner reduce-scatter + allgather: bandwidth-optimal."""

    name = "rabenseifner"
    algorithm = staticmethod(allreduce_rabenseifner)


class HierarchicalCommunicator(DlCommunicator):
    """Two-level allreduce over cabinets: spares the inter-cabinet uplinks."""

    name = "hierarchical"
    algorithm = staticmethod(allreduce_two_level)


#: strategy registry, by :func:`create_communicator` name
COMMUNICATORS: dict[str, type[DlCommunicator]] = {
    cls.name: cls
    for cls in (
        NaiveCommunicator,
        FlatCommunicator,
        RingCommunicator,
        RabenseifnerCommunicator,
        HierarchicalCommunicator,
    )
}


def create_communicator(name: str, comm: "Communicator") -> DlCommunicator:
    """Instantiate the communicator strategy ``name`` over ``comm``.

    The chainermn-shaped entry point of the package::

        dlcomm = create_communicator("ring", mpi.COMM_WORLD)
        yield from dlcomm.co_allreduce_grad(grad, total)
    """
    try:
        cls = COMMUNICATORS[name]
    except KeyError:
        raise ConfigError(
            f"unknown DL communicator {name!r}; "
            f"available: {sorted(COMMUNICATORS)}"
        ) from None
    return cls(comm)
