"""Gantt rendering of execution traces — ASCII for terminals, SVG for docs.

Both renderers consume a :class:`~repro.trace.Tracer` via
:func:`~repro.trace.analysis.state_intervals`: one lane per rank,
painted by state.  The ASCII form is what ``python -m repro trace
gantt`` prints; the SVG form adds message lines (one per comm record,
from the sender's lane to the receiver's) and is self-contained — no
external stylesheet, loads in any browser.
"""

from __future__ import annotations

from .analysis import critical_path, makespan, state_intervals

__all__ = ["ascii_gantt", "svg_gantt"]

#: lane glyph per state
GLYPHS = {"computing": "#", "communicating": "=", "waiting": "."}

#: fill color per state (colorblind-safe trio on white)
COLORS = {
    "computing": "#2e7d32",
    "communicating": "#1565c0",
    "waiting": "#e0e0e0",
}


def ascii_gantt(tracer, n_ranks: int | None = None, width: int = 72,
                critical: bool = False) -> str:
    """One text lane per rank over ``[0, makespan]``.

    ``#`` computing, ``=`` communicating, ``.`` waiting; with
    ``critical=True`` the cells covered by critical-path records are
    overpainted with ``*``.
    """
    strips = state_intervals(tracer, n_ranks)
    horizon = makespan(tracer)
    width = max(int(width), 10)
    if horizon <= 0 or not strips:
        return "(empty trace)"

    def cell_span(start: float, end: float) -> tuple[int, int]:
        a = int(start / horizon * width)
        b = int(end / horizon * width)
        b = max(b, a + 1)  # every interval paints at least one cell
        return min(a, width - 1), min(b, width)

    lanes = []
    for strip in strips:
        lane = ["."] * width
        for start, end, state in strip:
            if state == "waiting":
                continue
            a, b = cell_span(start, end)
            for i in range(a, b):
                lane[i] = GLYPHS[state]
        lanes.append(lane)

    if critical:
        for step in critical_path(tracer).steps:
            a, b = cell_span(step.start, step.end)
            for rank in step.ranks:
                if 0 <= rank < len(lanes):
                    for i in range(a, b):
                        lanes[rank][i] = "*"

    label_width = len(f"r{len(lanes) - 1}")
    lines = [f"{'':>{label_width}} 0{'':{width - 2}}{horizon:.4g}s"]
    for rank, lane in enumerate(lanes):
        lines.append(f"{f'r{rank}':>{label_width}} |{''.join(lane)}|")
    legend = "# computing   = communicating   . waiting"
    if critical:
        legend += "   * critical path"
    lines.append(f"{'':>{label_width}} {legend}")
    return "\n".join(lines)


def svg_gantt(tracer, n_ranks: int | None = None, width: int = 800,
              lane_height: int = 18, critical: bool = False,
              messages: bool = True) -> str:
    """Self-contained SVG: state lanes plus per-message transfer lines."""
    strips = state_intervals(tracer, n_ranks)
    horizon = makespan(tracer)
    n = len(strips)
    margin_left, margin_top = 46, 22
    gap = 4
    height = margin_top + n * (lane_height + gap) + 24

    def x(t: float) -> float:
        return margin_left + (t / horizon) * (width - margin_left - 10)

    def y(rank: int) -> float:
        return margin_top + rank * (lane_height + gap)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="monospace" font-size="11">',
        f'<text x="{margin_left}" y="14" fill="#555">0s</text>',
        f'<text x="{width - 10}" y="14" fill="#555" '
        f'text-anchor="end">{horizon:.4g}s</text>',
    ]
    if horizon <= 0 or n == 0:
        parts.append("</svg>")
        return "\n".join(parts)

    for rank, strip in enumerate(strips):
        parts.append(f'<text x="4" y="{y(rank) + lane_height - 5:.1f}" '
                     f'fill="#333">r{rank}</text>')
        for start, end, state in strip:
            parts.append(
                f'<rect x="{x(start):.2f}" y="{y(rank):.1f}" '
                f'width="{max(x(end) - x(start), 0.5):.2f}" '
                f'height="{lane_height}" fill="{COLORS[state]}">'
                f'<title>rank {rank}: {state} '
                f'[{start:.6g}s, {end:.6g}s]</title></rect>'
            )

    if messages:
        for r in tracer.comms:
            if not (r.end == r.end and r.start == r.start):  # NaN guard
                continue
            x1, y1 = x(r.start), y(r.src) + lane_height / 2
            x2, y2 = x(r.end), y(r.dst) + lane_height / 2
            parts.append(
                f'<line x1="{x1:.2f}" y1="{y1:.1f}" x2="{x2:.2f}" '
                f'y2="{y2:.1f}" stroke="#9e9e9e" stroke-width="0.8">'
                f'<title>{r.src}-&gt;{r.dst} {r.nbytes}B</title></line>'
            )

    if critical:
        for step in critical_path(tracer).steps:
            for rank in step.ranks:
                parts.append(
                    f'<rect x="{x(step.start):.2f}" y="{y(rank):.1f}" '
                    f'width="{max(x(step.end) - x(step.start), 0.5):.2f}" '
                    f'height="{lane_height}" fill="none" '
                    f'stroke="#c62828" stroke-width="1.5"/>'
                )

    legend_y = height - 8
    parts.append(
        f'<text x="{margin_left}" y="{legend_y}" fill="#333">'
        f'<tspan fill="{COLORS["computing"]}">&#9632;</tspan> computing  '
        f'<tspan fill="{COLORS["communicating"]}">&#9632;</tspan> '
        f'communicating  '
        f'<tspan fill="{COLORS["waiting"]}">&#9632;</tspan> waiting'
        + ('  <tspan fill="#c62828">&#9633;</tspan> critical path'
           if critical else '')
        + '</text>'
    )
    parts.append("</svg>")
    return "\n".join(parts)
