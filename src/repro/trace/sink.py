"""Streaming trace sinks: bounded-memory export of simulation traces.

The historical export path accumulates every :class:`~repro.trace.tracer.
CommRecord` in memory and serialises once at the end (``Tracer.to_csv``)
— O(messages) resident bytes, which is exactly what a 10k+-rank run
cannot afford.  A *sink* inverts that: the :class:`~repro.trace.Tracer`
hands each record over as soon as it can never change again (see
``Tracer._flush_closed``), the sink appends it to disk under a bounded
buffer, and only the open-transfer window stays in memory.

Sinks implement four calls, all invoked by the tracer::

    comm_row(record)      # one closed CommRecord, in start order
    compute_row(record)   # one closed ComputeRecord
    resource_row(record)  # one ResourceEventRecord
    finalize(tracer)      # end of run: drain buffers, write trailers

:class:`CsvStreamSink` produces output byte-identical to
``Tracer.save``: the CSV schema orders sections (comms, computes,
resource events, timeline) while streaming interleaves them, so the
non-comm sections spill to side files during the run and are stitched
back in section order at finalize.  :class:`PajeStreamSink` spills the
same CSV during the run and renders the Paje file at finalize — the Paje
format needs a *global* time sort, so the final render materialises the
trace once, but the live simulation (when memory pressure peaks) stays
bounded.  Buffers flush at ``high_water`` rows; lower it to trade write
syscalls for residency.
"""

from __future__ import annotations

import csv
import os
from pathlib import Path

__all__ = ["TraceSink", "CsvStreamSink", "PajeStreamSink"]

#: default rows buffered per section before a flush to disk
DEFAULT_HIGH_WATER = 4096


class TraceSink:
    """Interface of a streaming trace consumer (see module docstring)."""

    def comm_row(self, record) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def compute_row(self, record) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def resource_row(self, record) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def finalize(self, tracer) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class _Section:
    """One append-only CSV file with a bounded row buffer."""

    def __init__(self, path: Path, high_water: int) -> None:
        self.path = path
        self._high_water = max(1, high_water)
        self._rows: list[list] = []
        self._file = open(path, "w", encoding="utf-8", newline="")
        self._writer = csv.writer(self._file, lineterminator="\n")

    def add(self, row: list) -> None:
        self._rows.append(row)
        if len(self._rows) >= self._high_water:
            self.flush()

    def flush(self) -> None:
        if self._rows:
            self._writer.writerows(self._rows)
            self._rows.clear()

    def close(self) -> None:
        self.flush()
        self._file.close()


class CsvStreamSink(TraceSink):
    """Stream a run's trace to ``path`` in ``Tracer.to_csv`` format.

    The main file receives the header and then comm rows as they close;
    compute and resource rows spill to ``<path>.computes`` /
    ``<path>.resources`` side files that are appended (and deleted) at
    finalize, followed by the timeline rows — so the finished file is
    byte-identical to what ``Tracer.save`` writes from an in-memory run.
    """

    def __init__(self, path: str | Path,
                 high_water: int = DEFAULT_HIGH_WATER) -> None:
        from .tracer import Tracer

        self.path = Path(path)
        self._main = _Section(self.path, high_water)
        self._main.add(list(Tracer.CSV_HEADER))
        self._computes = _Section(
            self.path.with_name(self.path.name + ".computes"), high_water)
        self._resources = _Section(
            self.path.with_name(self.path.name + ".resources"), high_water)
        self.n_rows = 0

    def comm_row(self, record) -> None:
        from .tracer import comm_csv_row

        self._main.add(comm_csv_row(record))
        self.n_rows += 1

    def compute_row(self, record) -> None:
        from .tracer import compute_csv_row

        self._computes.add(compute_csv_row(record))
        self.n_rows += 1

    def resource_row(self, record) -> None:
        from .tracer import resource_csv_row

        self._resources.add(resource_csv_row(record))
        self.n_rows += 1

    def _append_spill(self, section: _Section) -> None:
        section.close()
        with open(section.path, "r", encoding="utf-8", newline="") as spill:
            while True:
                chunk = spill.read(1 << 20)
                if not chunk:
                    break
                self._main._file.write(chunk)
        os.unlink(section.path)

    def finalize(self, tracer) -> None:
        from .tracer import timeline_capacity_row, timeline_link_row

        self._main.flush()
        self._append_spill(self._computes)
        self._append_spill(self._resources)
        if tracer.timeline is not None:
            for row in tracer.timeline.iter_rows():
                self._main.add(timeline_link_row(*row))
            for row in tracer.timeline.iter_capacity_rows():
                self._main.add(timeline_capacity_row(*row))
        self._main.close()


class PajeStreamSink(TraceSink):
    """Stream to a CSV spill during the run; render Paje at finalize.

    The Paje format interleaves every event in one global time sort, so
    it cannot be emitted incrementally without holding the whole trace —
    instead the run streams to a bounded CSV spill (memory stays O(open
    transfers) while the simulation itself is live), and the spill is
    reloaded and rendered once at finalize, after the simulation state
    has been torn down.  The rendered file is byte-identical to
    ``export_paje`` on an in-memory tracer: CSV round-trips floats via
    ``repr``, which is exact.
    """

    def __init__(self, path: str | Path, n_ranks: int,
                 high_water: int = DEFAULT_HIGH_WATER) -> None:
        self.path = Path(path)
        self.n_ranks = n_ranks
        self._spill = CsvStreamSink(
            self.path.with_name(self.path.name + ".spill.csv"), high_water)

    def comm_row(self, record) -> None:
        self._spill.comm_row(record)

    def compute_row(self, record) -> None:
        self._spill.compute_row(record)

    def resource_row(self, record) -> None:
        self._spill.resource_row(record)

    def finalize(self, tracer) -> None:
        from .paje import export_paje
        from .tracer import Tracer

        self._spill.finalize(tracer)
        loaded = Tracer.load(self._spill.path)
        self.path.write_text(
            export_paje(loaded, self.n_ranks, timeline=loaded.timeline),
            encoding="utf-8",
        )
        os.unlink(self._spill.path)
