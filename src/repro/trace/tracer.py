"""Time-stamped event traces of simulated executions.

When ``SmpiConfig.tracing`` is on, the runtime records one
:class:`CommRecord` per message (start/end simulated times, endpoints,
bytes, protocol) and one :class:`ComputeRecord` per compute burst.  The
trace supports the analyses behind the evaluation figures (per-process
completion times, message-size sweeps) and can be dumped as CSV for
external tooling — a light-weight stand-in for SimGrid's Paje traces.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["CommRecord", "ComputeRecord", "Tracer"]


@dataclass
class CommRecord:
    mid: int
    src: int
    dst: int
    tag: int
    nbytes: int
    eager: bool
    start: float
    end: float = float("nan")

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class ComputeRecord:
    rank: int
    flops: float
    start: float
    end: float = float("nan")


class Tracer:
    """Accumulates records; negligible overhead when tracing is off."""

    def __init__(self) -> None:
        self.comms: list[CommRecord] = []
        self.computes: list[ComputeRecord] = []
        self._open_comms: dict[int, CommRecord] = {}

    # -- hooks called by the runtime ------------------------------------------------

    def comm_start(self, message) -> None:
        activity = message.transfer
        start = activity.scheduler.engine.now if activity is not None else 0.0
        record = CommRecord(
            mid=message.mid,
            src=message.src,
            dst=message.dst,
            tag=message.tag,
            nbytes=message.nbytes,
            eager=message.eager,
            start=start,
        )
        self._open_comms[message.mid] = record
        self.comms.append(record)

    def comm_end(self, message) -> None:
        record = self._open_comms.pop(message.mid, None)
        if record is not None and message.transfer is not None:
            record.end = message.transfer.scheduler.engine.now

    def compute(self, rank: int, flops: float, start: float, end: float) -> None:
        self.computes.append(ComputeRecord(rank, flops, start, end))

    # -- analysis helpers --------------------------------------------------------------

    def bytes_by_pair(self) -> dict[tuple[int, int], int]:
        """Total bytes sent per (src, dst) pair."""
        out: dict[tuple[int, int], int] = {}
        for record in self.comms:
            key = (record.src, record.dst)
            out[key] = out.get(key, 0) + record.nbytes
        return out

    def messages_of(self, rank: int) -> list[CommRecord]:
        return [r for r in self.comms if r.src == rank or r.dst == rank]

    # -- export ------------------------------------------------------------------------------

    def to_csv(self) -> str:
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(
            ["kind", "src", "dst", "tag", "nbytes_or_flops", "eager", "start", "end"]
        )
        for r in self.comms:
            writer.writerow(
                ["comm", r.src, r.dst, r.tag, r.nbytes, int(r.eager), r.start, r.end]
            )
        for c in self.computes:
            writer.writerow(["compute", c.rank, c.rank, "", c.flops, "", c.start, c.end])
        return buf.getvalue()

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_csv(), encoding="utf-8")
