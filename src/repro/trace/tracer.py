"""Time-stamped event traces of simulated executions.

When ``SmpiConfig.tracing`` is on, the runtime records one
:class:`CommRecord` per message (start/end simulated times, endpoints,
bytes, protocol) and one :class:`ComputeRecord` per compute burst, and
the engine samples per-resource utilization into a
:class:`~repro.trace.Timeline` attached as :attr:`Tracer.timeline`.
The trace supports the analyses behind the evaluation figures
(:mod:`repro.trace.analysis`), renders as a Gantt chart
(:mod:`repro.trace.gantt`), and exports as CSV here or as a Paje trace
(:mod:`repro.trace.paje`) for external tooling.

CSV schema (one flat table, ``kind`` discriminates)::

    kind,mid,src,dst,tag,nbytes_or_flops,eager,start,end,capacity,failed
    comm,3,0,1,0,1000,1,0.0001,0.0082,,0
    compute,,0,,,1e6,,0.0,0.001,,
    link,,cli-l0,,,9.8e7,,0.0001,,1.25e8,
    resource,,cli-l0,link,,,fail,0.004,,,
    capacity,,cli-l0,link,,,,0.002,,6.25e7,

``comm`` rows carry the message id, endpoints, byte count, protocol
(``eager`` 1/0) and whether the transfer died on a network failure
(``failed`` 1/0 — failed comms close at the failure time); ``compute``
rows put the rank in ``src`` and the flop count in ``nbytes_or_flops``;
``link`` rows are utilization samples — the resource name in ``src``,
the consumed rate in ``nbytes_or_flops``, the sample time in ``start``
and the resource capacity in ``capacity`` (``dst`` holds ``host`` for
CPU samples, empty for links).  ``resource`` rows record failures and
recoveries (name in ``src``, kind in ``dst``, ``fail``/``restore`` in
``eager``, time in ``start``); ``capacity`` rows are availability steps
(new effective capacity in ``capacity``, time in ``start``).  Loading a
pre-fault 10-column trace still works: the missing trailing columns
default to empty.

Records whose ``end`` was never set (the simulation aborted mid-flight)
are *dropped* by every exporter — a half-open interval would serialize
as ``nan`` and break downstream CSV consumers; pass
``include_open=True`` to keep them with an empty ``end`` field instead.
"""

from __future__ import annotations

import csv
import io
import math
from collections import deque
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "CommRecord",
    "ComputeRecord",
    "ResourceEventRecord",
    "Tracer",
    "comm_csv_row",
    "compute_csv_row",
    "resource_csv_row",
    "timeline_link_row",
    "timeline_capacity_row",
]


@dataclass
class CommRecord:
    mid: int
    src: int
    dst: int
    tag: int
    nbytes: int
    eager: bool
    start: float
    end: float = float("nan")
    #: the transfer died on a resource failure; ``end`` is the failure time
    failed: bool = False

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def closed(self) -> bool:
        """True once the transfer completed or failed (``end`` recorded)."""
        return math.isfinite(self.end)


@dataclass
class ComputeRecord:
    rank: int
    flops: float
    start: float
    end: float = float("nan")

    @property
    def closed(self) -> bool:
        return math.isfinite(self.end)


@dataclass
class ResourceEventRecord:
    """A resource failure or recovery observed during the run."""

    name: str
    kind: str  # "link" or "host"
    event: str  # "fail" or "restore"
    t: float


def _end_field(record) -> str | float:
    return record.end if record.closed else ""


def comm_csv_row(r: CommRecord) -> list:
    """The CSV row of one comm record (shared by exporter and sinks)."""
    return ["comm", r.mid, r.src, r.dst, r.tag, r.nbytes,
            int(r.eager), r.start, _end_field(r), "", int(r.failed)]


def compute_csv_row(c: ComputeRecord) -> list:
    """The CSV row of one compute record."""
    return ["compute", "", c.rank, "", "", c.flops, "",
            c.start, _end_field(c), "", ""]


def resource_csv_row(e: ResourceEventRecord) -> list:
    """The CSV row of one resource failure/recovery record."""
    return ["resource", "", e.name, e.kind, "", "", e.event, e.t, "", "", ""]


def timeline_link_row(name, kind, capacity, t, usage) -> list:
    """The CSV row of one timeline utilization sample."""
    return ["link", "", name, kind if kind != "link" else "", "", usage,
            "", t, "", capacity, ""]


def timeline_capacity_row(name, kind, t, capacity) -> list:
    """The CSV row of one timeline capacity step."""
    return ["capacity", "", name, kind, "", "", "", t, "", capacity, ""]


class Tracer:
    """Accumulates records; negligible overhead when tracing is off.

    With a *sink* attached (``Tracer(sink=...)``, see
    :mod:`repro.trace.sink`) the tracer streams instead of accumulating:
    a record is handed to the sink as soon as it can never change again,
    and only the *open window* — records whose transfer is still in
    flight, plus the closed records queued behind them (output order is
    start order) — stays in memory.  Every list the in-memory mode
    exposes (``comms``/``computes``/``resource_events``) then holds only
    that bounded window, so whole-trace analyses must run on the
    exported file (``Tracer.load``), not the live object.
    """

    def __init__(self, sink=None) -> None:
        self.comms: list[CommRecord] = []
        self.computes: list[ComputeRecord] = []
        self.resource_events: list[ResourceEventRecord] = []
        self._open_comms: dict[int, CommRecord] = {}
        #: per-resource utilization samples, attached by the runtime when
        #: the engine supports it (:meth:`repro.surf.Engine.enable_timeline`)
        self.timeline = None
        #: streaming sink (None = historical accumulate-then-export mode)
        self.sink = sink
        #: closed-prefix flush queue: comm records in start order, popped
        #: as their head becomes closed (streaming mode only)
        self._comm_window: deque[CommRecord] = deque()
        #: records ever started/recorded, for summaries in streaming mode
        self.n_comm_records = 0
        self.n_compute_records = 0

    # -- hooks called by the runtime ------------------------------------------------

    def comm_start(self, message) -> None:
        activity = message.transfer
        start = activity.scheduler.engine.now if activity is not None else 0.0
        record = CommRecord(
            mid=message.mid,
            src=message.src,
            dst=message.dst,
            tag=message.tag,
            nbytes=message.nbytes,
            eager=message.eager,
            start=start,
        )
        self._open_comms[message.mid] = record
        self.n_comm_records += 1
        if self.sink is None:
            self.comms.append(record)
        else:
            self._comm_window.append(record)

    def _flush_closed(self) -> None:
        """Stream the closed prefix of the comm window to the sink.

        Comm rows must leave in start order (the in-memory exporter's
        order), so a still-open head blocks the queue; the window length
        is bounded by the number of concurrently in-flight transfers.
        """
        window = self._comm_window
        sink = self.sink
        while window and window[0].closed:
            sink.comm_row(window.popleft())

    def comm_end(self, message) -> None:
        record = self._open_comms.pop(message.mid, None)
        if record is not None and message.transfer is not None:
            record.end = message.transfer.scheduler.engine.now
        if self.sink is not None:
            self._flush_closed()

    def comm_fail(self, message) -> None:
        """Close a transfer's record at the failure time, flagged failed."""
        record = self._open_comms.pop(message.mid, None)
        if record is not None and message.transfer is not None:
            record.end = message.transfer.scheduler.engine.now
            record.failed = True
        if self.sink is not None:
            self._flush_closed()

    def compute(self, rank: int, flops: float, start: float, end: float) -> None:
        record = ComputeRecord(rank, flops, start, end)
        self.n_compute_records += 1
        if self.sink is None:
            self.computes.append(record)
        else:  # compute records are born closed: stream immediately
            self.sink.compute_row(record)

    def resource_event(self, name: str, kind: str, event: str, t: float) -> None:
        """Record a resource failure/recovery (engine listener hook)."""
        record = ResourceEventRecord(name, kind, event, t)
        if self.sink is None:
            self.resource_events.append(record)
        else:
            self.sink.resource_row(record)

    def finish(self, now: float | None = None) -> None:
        """End of run: drain the sink and let it write its output.

        No-op without a sink.  Records still open at the end (aborted
        transfers) are dropped, exactly like ``to_csv``'s default; closed
        records queued behind them still flush, in start order.
        """
        if self.sink is None:
            return
        self._flush_closed()
        for record in self._comm_window:
            if record.closed:  # closed behind a never-closed head
                self.sink.comm_row(record)
        self._comm_window.clear()
        self.sink.finalize(self)

    # -- analysis helpers --------------------------------------------------------------

    def bytes_by_pair(self) -> dict[tuple[int, int], int]:
        """Total bytes sent per (src, dst) pair."""
        out: dict[tuple[int, int], int] = {}
        for record in self.comms:
            key = (record.src, record.dst)
            out[key] = out.get(key, 0) + record.nbytes
        return out

    def messages_of(self, rank: int) -> list[CommRecord]:
        return [r for r in self.comms if r.src == rank or r.dst == rank]

    def open_records(self) -> list[CommRecord | ComputeRecord]:
        """Records never finalized (the simulation died around them)."""
        return [r for r in self.comms + self.computes  # type: ignore[operator]
                if not r.closed]

    # -- export ------------------------------------------------------------------------------

    CSV_HEADER = ("kind", "mid", "src", "dst", "tag", "nbytes_or_flops",
                  "eager", "start", "end", "capacity", "failed")

    def to_csv(self, include_open: bool = False) -> str:
        """Serialise as CSV (schema in the module docstring).

        Open records (aborted/failed simulations leave transfers whose
        ``end`` was never recorded) are dropped by default so the file
        never contains ``nan``; ``include_open=True`` keeps them with an
        empty ``end`` field instead.
        """
        buf = io.StringIO()
        writer = csv.writer(buf, lineterminator="\n")
        writer.writerow(self.CSV_HEADER)
        for r in self.comms:
            if r.closed or include_open:
                writer.writerow(comm_csv_row(r))
        for c in self.computes:
            if c.closed or include_open:
                writer.writerow(compute_csv_row(c))
        for e in self.resource_events:
            writer.writerow(resource_csv_row(e))
        if self.timeline is not None:
            for row in self.timeline.iter_rows():
                writer.writerow(timeline_link_row(*row))
            for row in self.timeline.iter_capacity_rows():
                writer.writerow(timeline_capacity_row(*row))
        return buf.getvalue()

    @classmethod
    def from_csv(cls, text: str) -> "Tracer":
        """Rebuild a tracer (and timeline) from :meth:`to_csv` output."""
        from ..errors import ConfigError
        from .timeline import Timeline

        tracer = cls()
        timeline = Timeline()
        reader = csv.reader(io.StringIO(text))
        header = next(reader, None)
        if header is None or tuple(header[:2]) != ("kind", "mid"):
            raise ConfigError("not a repro trace CSV (bad header)")

        def _end(field: str) -> float:
            return float(field) if field else float("nan")

        n_cols = len(cls.CSV_HEADER)
        for row in reader:
            if not row:
                continue
            if len(row) < n_cols:  # pre-fault traces lack trailing columns
                row = row + [""] * (n_cols - len(row))
            kind = row[0]
            if kind == "comm":
                tracer.comms.append(CommRecord(
                    mid=int(row[1]), src=int(row[2]), dst=int(row[3]),
                    tag=int(row[4]), nbytes=int(float(row[5])),
                    eager=bool(int(row[6])), start=float(row[7]),
                    end=_end(row[8]),
                    failed=bool(int(row[10])) if row[10] else False,
                ))
            elif kind == "compute":
                tracer.computes.append(ComputeRecord(
                    rank=int(row[2]), flops=float(row[5]),
                    start=float(row[7]), end=_end(row[8]),
                ))
            elif kind == "resource":
                tracer.resource_events.append(ResourceEventRecord(
                    name=row[2], kind=row[3] or "link",
                    event=row[6], t=float(row[7]),
                ))
            elif kind == "link":
                timeline.load_row(
                    name=row[2], kind=row[3] or "link",
                    capacity=float(row[9]) if row[9] else 0.0,
                    t=float(row[7]), usage=float(row[5]),
                )
            elif kind == "capacity":
                timeline.load_capacity_row(
                    name=row[2], kind=row[3] or "link",
                    t=float(row[7]), capacity=float(row[9]),
                )
            else:
                raise ConfigError(f"unknown trace CSV row kind {kind!r}")
        tracer.timeline = (timeline if timeline.names()
                           or timeline.capacity_series else None)
        return tracer

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_csv(), encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "Tracer":
        return cls.from_csv(Path(path).read_text(encoding="utf-8"))
