"""Time-stamped event traces of simulated executions.

When ``SmpiConfig.tracing`` is on, the runtime records one
:class:`CommRecord` per message (start/end simulated times, endpoints,
bytes, protocol) and one :class:`ComputeRecord` per compute burst, and
the engine samples per-resource utilization into a
:class:`~repro.trace.Timeline` attached as :attr:`Tracer.timeline`.
The trace supports the analyses behind the evaluation figures
(:mod:`repro.trace.analysis`), renders as a Gantt chart
(:mod:`repro.trace.gantt`), and exports as CSV here or as a Paje trace
(:mod:`repro.trace.paje`) for external tooling.

CSV schema (one flat table, ``kind`` discriminates)::

    kind,mid,src,dst,tag,nbytes_or_flops,eager,start,end,capacity,failed
    comm,3,0,1,0,1000,1,0.0001,0.0082,,0
    compute,,0,,,1e6,,0.0,0.001,,
    link,,cli-l0,,,9.8e7,,0.0001,,1.25e8,
    resource,,cli-l0,link,,,fail,0.004,,,
    capacity,,cli-l0,link,,,,0.002,,6.25e7,

``comm`` rows carry the message id, endpoints, byte count, protocol
(``eager`` 1/0) and whether the transfer died on a network failure
(``failed`` 1/0 — failed comms close at the failure time); ``compute``
rows put the rank in ``src`` and the flop count in ``nbytes_or_flops``;
``link`` rows are utilization samples — the resource name in ``src``,
the consumed rate in ``nbytes_or_flops``, the sample time in ``start``
and the resource capacity in ``capacity`` (``dst`` holds ``host`` for
CPU samples, empty for links).  ``resource`` rows record failures and
recoveries (name in ``src``, kind in ``dst``, ``fail``/``restore`` in
``eager``, time in ``start``); ``capacity`` rows are availability steps
(new effective capacity in ``capacity``, time in ``start``).  Loading a
pre-fault 10-column trace still works: the missing trailing columns
default to empty.

Records whose ``end`` was never set (the simulation aborted mid-flight)
are *dropped* by every exporter — a half-open interval would serialize
as ``nan`` and break downstream CSV consumers; pass
``include_open=True`` to keep them with an empty ``end`` field instead.
"""

from __future__ import annotations

import csv
import io
import math
from dataclasses import dataclass
from pathlib import Path

__all__ = ["CommRecord", "ComputeRecord", "ResourceEventRecord", "Tracer"]


@dataclass
class CommRecord:
    mid: int
    src: int
    dst: int
    tag: int
    nbytes: int
    eager: bool
    start: float
    end: float = float("nan")
    #: the transfer died on a resource failure; ``end`` is the failure time
    failed: bool = False

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def closed(self) -> bool:
        """True once the transfer completed or failed (``end`` recorded)."""
        return math.isfinite(self.end)


@dataclass
class ComputeRecord:
    rank: int
    flops: float
    start: float
    end: float = float("nan")

    @property
    def closed(self) -> bool:
        return math.isfinite(self.end)


@dataclass
class ResourceEventRecord:
    """A resource failure or recovery observed during the run."""

    name: str
    kind: str  # "link" or "host"
    event: str  # "fail" or "restore"
    t: float


class Tracer:
    """Accumulates records; negligible overhead when tracing is off."""

    def __init__(self) -> None:
        self.comms: list[CommRecord] = []
        self.computes: list[ComputeRecord] = []
        self.resource_events: list[ResourceEventRecord] = []
        self._open_comms: dict[int, CommRecord] = {}
        #: per-resource utilization samples, attached by the runtime when
        #: the engine supports it (:meth:`repro.surf.Engine.enable_timeline`)
        self.timeline = None

    # -- hooks called by the runtime ------------------------------------------------

    def comm_start(self, message) -> None:
        activity = message.transfer
        start = activity.scheduler.engine.now if activity is not None else 0.0
        record = CommRecord(
            mid=message.mid,
            src=message.src,
            dst=message.dst,
            tag=message.tag,
            nbytes=message.nbytes,
            eager=message.eager,
            start=start,
        )
        self._open_comms[message.mid] = record
        self.comms.append(record)

    def comm_end(self, message) -> None:
        record = self._open_comms.pop(message.mid, None)
        if record is not None and message.transfer is not None:
            record.end = message.transfer.scheduler.engine.now

    def comm_fail(self, message) -> None:
        """Close a transfer's record at the failure time, flagged failed."""
        record = self._open_comms.pop(message.mid, None)
        if record is not None and message.transfer is not None:
            record.end = message.transfer.scheduler.engine.now
            record.failed = True

    def compute(self, rank: int, flops: float, start: float, end: float) -> None:
        self.computes.append(ComputeRecord(rank, flops, start, end))

    def resource_event(self, name: str, kind: str, event: str, t: float) -> None:
        """Record a resource failure/recovery (engine listener hook)."""
        self.resource_events.append(ResourceEventRecord(name, kind, event, t))

    # -- analysis helpers --------------------------------------------------------------

    def bytes_by_pair(self) -> dict[tuple[int, int], int]:
        """Total bytes sent per (src, dst) pair."""
        out: dict[tuple[int, int], int] = {}
        for record in self.comms:
            key = (record.src, record.dst)
            out[key] = out.get(key, 0) + record.nbytes
        return out

    def messages_of(self, rank: int) -> list[CommRecord]:
        return [r for r in self.comms if r.src == rank or r.dst == rank]

    def open_records(self) -> list[CommRecord | ComputeRecord]:
        """Records never finalized (the simulation died around them)."""
        return [r for r in self.comms + self.computes  # type: ignore[operator]
                if not r.closed]

    # -- export ------------------------------------------------------------------------------

    CSV_HEADER = ("kind", "mid", "src", "dst", "tag", "nbytes_or_flops",
                  "eager", "start", "end", "capacity", "failed")

    def to_csv(self, include_open: bool = False) -> str:
        """Serialise as CSV (schema in the module docstring).

        Open records (aborted/failed simulations leave transfers whose
        ``end`` was never recorded) are dropped by default so the file
        never contains ``nan``; ``include_open=True`` keeps them with an
        empty ``end`` field instead.
        """
        buf = io.StringIO()
        writer = csv.writer(buf, lineterminator="\n")
        writer.writerow(self.CSV_HEADER)

        def end_field(record) -> str | float:
            return record.end if record.closed else ""

        for r in self.comms:
            if not (r.closed or include_open):
                continue
            writer.writerow(["comm", r.mid, r.src, r.dst, r.tag, r.nbytes,
                             int(r.eager), r.start, end_field(r), "",
                             int(r.failed)])
        for c in self.computes:
            if not (c.closed or include_open):
                continue
            writer.writerow(["compute", "", c.rank, "", "", c.flops, "",
                             c.start, end_field(c), "", ""])
        for e in self.resource_events:
            writer.writerow(["resource", "", e.name, e.kind, "", "",
                             e.event, e.t, "", "", ""])
        if self.timeline is not None:
            for name, kind, capacity, t, usage in self.timeline.as_rows():
                writer.writerow(["link", "", name,
                                 kind if kind != "link" else "", "", usage,
                                 "", t, "", capacity, ""])
            for name, kind, t, capacity in self.timeline.capacity_rows():
                writer.writerow(["capacity", "", name, kind, "", "", "",
                                 t, "", capacity, ""])
        return buf.getvalue()

    @classmethod
    def from_csv(cls, text: str) -> "Tracer":
        """Rebuild a tracer (and timeline) from :meth:`to_csv` output."""
        from ..errors import ConfigError
        from .timeline import Timeline

        tracer = cls()
        timeline = Timeline()
        reader = csv.reader(io.StringIO(text))
        header = next(reader, None)
        if header is None or tuple(header[:2]) != ("kind", "mid"):
            raise ConfigError("not a repro trace CSV (bad header)")

        def _end(field: str) -> float:
            return float(field) if field else float("nan")

        n_cols = len(cls.CSV_HEADER)
        for row in reader:
            if not row:
                continue
            if len(row) < n_cols:  # pre-fault traces lack trailing columns
                row = row + [""] * (n_cols - len(row))
            kind = row[0]
            if kind == "comm":
                tracer.comms.append(CommRecord(
                    mid=int(row[1]), src=int(row[2]), dst=int(row[3]),
                    tag=int(row[4]), nbytes=int(float(row[5])),
                    eager=bool(int(row[6])), start=float(row[7]),
                    end=_end(row[8]),
                    failed=bool(int(row[10])) if row[10] else False,
                ))
            elif kind == "compute":
                tracer.computes.append(ComputeRecord(
                    rank=int(row[2]), flops=float(row[5]),
                    start=float(row[7]), end=_end(row[8]),
                ))
            elif kind == "resource":
                tracer.resource_events.append(ResourceEventRecord(
                    name=row[2], kind=row[3] or "link",
                    event=row[6], t=float(row[7]),
                ))
            elif kind == "link":
                timeline.load_row(
                    name=row[2], kind=row[3] or "link",
                    capacity=float(row[9]) if row[9] else 0.0,
                    t=float(row[7]), usage=float(row[5]),
                )
            elif kind == "capacity":
                timeline.load_capacity_row(
                    name=row[2], kind=row[3] or "link",
                    t=float(row[7]), capacity=float(row[9]),
                )
            else:
                raise ConfigError(f"unknown trace CSV row kind {kind!r}")
        tracer.timeline = (timeline if timeline.names()
                           or timeline.capacity_series else None)
        return tracer

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_csv(), encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "Tracer":
        return cls.from_csv(Path(path).read_text(encoding="utf-8"))
