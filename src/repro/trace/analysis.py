"""Post-mortem analyses over a recorded execution trace.

Everything here consumes the per-message / per-burst records of a
:class:`~repro.trace.Tracer` (open records — ``end`` never set — are
ignored, they carry no interval):

* :func:`state_intervals` / :func:`state_fractions` — flatten each
  rank's records into a non-overlapping computing/communicating/waiting
  timeline (the per-process state strips of a Paje visualisation);
* :func:`critical_path` — walk the comm/compute record DAG backwards
  from the record that determines the makespan, always jumping to the
  latest-finishing predecessor on an involved rank.  The result names
  the messages and bursts that bound the completion time — the
  question the paper's Figs. 7-12 keep asking ("which transfers make
  this scheme slow?") answered mechanically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = [
    "CriticalPath",
    "PathStep",
    "critical_path",
    "makespan",
    "state_fractions",
    "state_intervals",
]

#: canonical rank states, most- to least-specific (computing wins overlaps:
#: a rank overlapping a nonblocking transfer is not "waiting" for it)
STATES = ("computing", "communicating", "waiting")

_EPS = 1e-12


def _closed(records):
    """Records whose interval is complete (finite start and end)."""
    return [r for r in records
            if math.isfinite(r.start) and math.isfinite(r.end)]


def makespan(tracer) -> float:
    """Latest completion time over all closed records (0.0 when empty)."""
    out = 0.0
    for record in _closed(tracer.comms) + _closed(tracer.computes):
        out = max(out, record.end)
    return out


def _rank_count(tracer, n_ranks: int | None) -> int:
    if n_ranks is not None:
        return n_ranks
    top = -1
    for r in tracer.comms:
        top = max(top, r.src, r.dst)
    for c in tracer.computes:
        top = max(top, c.rank)
    return top + 1


def state_intervals(
    tracer, n_ranks: int | None = None, end: float | None = None
) -> list[list[tuple[float, float, str]]]:
    """Per-rank ``(start, end, state)`` strips covering ``[0, end]``.

    A rank is *computing* while any of its compute bursts runs,
    otherwise *communicating* while any message it sends or receives is
    in flight, otherwise *waiting*.  Intervals are non-overlapping,
    adjacent same-state intervals are merged, and every rank's strip
    spans exactly ``[0, end]`` (default: the trace makespan).
    """
    n = _rank_count(tracer, n_ranks)
    horizon = makespan(tracer) if end is None else end
    compute: list[list[tuple[float, float]]] = [[] for _ in range(n)]
    comm: list[list[tuple[float, float]]] = [[] for _ in range(n)]
    for c in _closed(tracer.computes):
        if 0 <= c.rank < n:
            compute[c.rank].append((c.start, c.end))
    for r in _closed(tracer.comms):
        for rank in {r.src, r.dst}:
            if 0 <= rank < n:
                comm[rank].append((r.start, r.end))

    strips = []
    for rank in range(n):
        if horizon <= 0:
            strips.append([])
            continue
        cuts = {0.0, horizon}
        for lo, hi in compute[rank] + comm[rank]:
            if lo < horizon:
                cuts.add(max(lo, 0.0))
            if hi < horizon:
                cuts.add(max(hi, 0.0))
        points = sorted(cuts)
        strip: list[tuple[float, float, str]] = []
        for a, b in zip(points, points[1:]):
            mid = (a + b) / 2
            if any(lo <= mid < hi for lo, hi in compute[rank]):
                state = "computing"
            elif any(lo <= mid < hi for lo, hi in comm[rank]):
                state = "communicating"
            else:
                state = "waiting"
            if strip and strip[-1][2] == state:
                strip[-1] = (strip[-1][0], b, state)
            else:
                strip.append((a, b, state))
        strips.append(strip)
    return strips


def state_fractions(
    tracer, n_ranks: int | None = None, end: float | None = None
) -> list[dict[str, float]]:
    """Per-rank fraction of time in each state (each dict sums to 1)."""
    out = []
    for strip in state_intervals(tracer, n_ranks, end):
        total = sum(b - a for a, b, _ in strip)
        fractions = {state: 0.0 for state in STATES}
        for a, b, state in strip:
            fractions[state] += (b - a) / total if total > 0 else 0.0
        out.append(fractions)
    return out


@dataclass(frozen=True)
class PathStep:
    """One record on the critical path."""

    kind: str  # "comm" or "compute"
    start: float
    end: float
    ranks: tuple[int, ...]  # (rank,) for compute, (src, dst) for comm
    detail: str  # human-readable description
    record: object = field(repr=False, default=None)
    #: idle gap between this step's end and the next step's start
    slack: float = 0.0

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class CriticalPath:
    """The chain of records bounding the simulated completion time."""

    steps: list[PathStep]
    makespan: float

    @property
    def comm_time(self) -> float:
        return sum(s.duration for s in self.steps if s.kind == "comm")

    @property
    def compute_time(self) -> float:
        return sum(s.duration for s in self.steps if s.kind == "compute")

    @property
    def idle_time(self) -> float:
        """Makespan not covered by path records (gaps + lead-in)."""
        covered = self.comm_time + self.compute_time
        return max(self.makespan - covered, 0.0)

    def describe(self) -> str:
        """Printable report: summary line plus one row per step."""
        lines = []
        if self.makespan > 0:
            lines.append(
                f"critical path: {len(self.steps)} records over "
                f"{self.makespan:.6g}s makespan — "
                f"{100 * self.comm_time / self.makespan:.1f}% communication, "
                f"{100 * self.compute_time / self.makespan:.1f}% compute, "
                f"{100 * self.idle_time / self.makespan:.1f}% idle"
            )
        else:
            lines.append("critical path: empty trace")
        lines.append(f"{'start':>12}  {'end':>12}  {'duration':>10}  event")
        for step in self.steps:
            lines.append(
                f"{step.start:>12.6g}  {step.end:>12.6g}  "
                f"{step.duration:>10.3g}  {step.detail}"
            )
        return "\n".join(lines)


def _as_steps(tracer) -> list[PathStep]:
    steps = []
    for r in _closed(tracer.comms):
        steps.append(PathStep(
            "comm", r.start, r.end, (r.src, r.dst),
            f"comm {r.src}->{r.dst} {r.nbytes}B "
            f"({'eager' if r.eager else 'rendezvous'}, mid={r.mid})",
            record=r,
        ))
    for c in _closed(tracer.computes):
        steps.append(PathStep(
            "compute", c.start, c.end, (c.rank,),
            f"compute rank {c.rank} ({c.flops:.3g} flops)", record=c,
        ))
    return steps


def critical_path(tracer) -> CriticalPath:
    """Extract the chain of records that bounds the makespan.

    Starting from the globally last-finishing record, repeatedly jump to
    the latest-finishing record (on any rank the current record
    involves) that completed no later than the current record started.
    This is the standard backward walk over a timed DAG: when a record
    starts the moment its predecessor ends, that predecessor was the
    binding dependency; any remaining gap is reported as the step's
    ``slack`` (time the rank sat idle, e.g. in a rendezvous handshake).
    """
    steps = _as_steps(tracer)
    if not steps:
        return CriticalPath([], 0.0)
    by_rank: dict[int, list[PathStep]] = {}
    for step in steps:
        for rank in step.ranks:
            by_rank.setdefault(rank, []).append(step)
    for chain in by_rank.values():
        chain.sort(key=lambda s: (s.end, s.start))

    current = max(steps, key=lambda s: (s.end, -s.start))
    path = [current]
    visited = {id(current)}
    while True:
        best = None
        for rank in current.ranks:
            for candidate in reversed(by_rank.get(rank, [])):
                if id(candidate) in visited:
                    continue
                if candidate.end <= current.start + _EPS:
                    if best is None or candidate.end > best.end:
                        best = candidate
                    break  # chains are end-sorted: first hit is rank's best
        if best is None or best.end <= _EPS:
            if best is not None:
                path.append(best)
                visited.add(id(best))
            break
        path.append(best)
        visited.add(id(best))
        current = best
    path.reverse()

    # annotate slack between consecutive steps
    annotated = []
    for i, step in enumerate(path):
        nxt = path[i + 1] if i + 1 < len(path) else None
        slack = max(nxt.start - step.end, 0.0) if nxt is not None else 0.0
        annotated.append(PathStep(step.kind, step.start, step.end,
                                  step.ranks, step.detail, step.record,
                                  slack))
    return CriticalPath(annotated, makespan(tracer))
