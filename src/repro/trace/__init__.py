"""Execution tracing."""

from .tracer import CommRecord, ComputeRecord, Tracer

__all__ = ["CommRecord", "ComputeRecord", "Tracer"]
