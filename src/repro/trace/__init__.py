"""Execution tracing, metrics and trace analysis (the observability layer).

* :class:`Tracer` — per-message / per-burst records, CSV round-trip;
* :class:`Timeline` — per-link utilization sampled by the engine;
* :mod:`~repro.trace.analysis` — state timelines and critical paths;
* :mod:`~repro.trace.gantt` — ASCII/SVG Gantt renderers;
* :mod:`~repro.trace.paje` — Paje (Vite/pj_dump) export and import.
"""

from .analysis import (
    CriticalPath,
    PathStep,
    critical_path,
    makespan,
    state_fractions,
    state_intervals,
)
from .gantt import ascii_gantt, svg_gantt
from .paje import export_paje, parse_paje
from .sink import CsvStreamSink, PajeStreamSink, TraceSink
from .timeline import LinkUsage, Timeline
from .tracer import CommRecord, ComputeRecord, ResourceEventRecord, Tracer

__all__ = [
    "CommRecord",
    "ComputeRecord",
    "CriticalPath",
    "CsvStreamSink",
    "ResourceEventRecord",
    "LinkUsage",
    "PajeStreamSink",
    "PathStep",
    "Timeline",
    "TraceSink",
    "Tracer",
    "ascii_gantt",
    "critical_path",
    "export_paje",
    "makespan",
    "parse_paje",
    "state_fractions",
    "state_intervals",
    "svg_gantt",
]
