"""Paje trace export/import (the format SimGrid's tracing speaks).

:func:`export_paje` turns a :class:`~repro.trace.Tracer` into a
self-describing Paje trace: the ``%EventDef`` header declares the event
layouts, then one line per event.  The container hierarchy is::

    simulation (root)
    ├── rank 0..N-1      — one container per MPI rank, with a state
    │                      strip (computing / communicating / waiting)
    ├── one container per sampled link   — bandwidth_used + capacity
    └── one container per sampled host   — flops_used + capacity

Messages are Paje *links* from the sender's container to the
receiver's; the (custom, declared) ``Size`` and ``Tag`` fields keep the
byte count and MPI tag, and the link's value records the protocol
(``eager``/``rendezvous``), so the export loses nothing the analysis
layer needs.  Visualisers such as Vite, or ``pj_dump``, load the file
directly; :func:`parse_paje` loads it back into a :class:`Tracer` (plus
:class:`~repro.trace.Timeline`) so every ``python -m repro trace``
subcommand also consumes ``.paje`` files.

Compute-burst flop counts are not representable as Paje states; a
parsed trace reports computing *intervals* with ``flops=0``.
"""

from __future__ import annotations

import math
import shlex

from ..errors import ConfigError
from .analysis import makespan, state_intervals
from .timeline import Timeline
from .tracer import CommRecord, ComputeRecord, ResourceEventRecord, Tracer

__all__ = ["export_paje", "parse_paje"]

#: (state name, alias, "r g b") — colors are what Vite renders
_STATE_DEFS = (
    ("computing", "c", "0.18 0.49 0.20"),
    ("communicating", "m", "0.08 0.40 0.75"),
    ("waiting", "w", "0.88 0.88 0.88"),
)

_HEADER = """\
%EventDef PajeDefineContainerType 0
%       Alias string
%       Type string
%       Name string
%EndEventDef
%EventDef PajeDefineStateType 1
%       Alias string
%       Type string
%       Name string
%EndEventDef
%EventDef PajeDefineVariableType 2
%       Alias string
%       Type string
%       Name string
%EndEventDef
%EventDef PajeDefineLinkType 3
%       Alias string
%       Type string
%       StartContainerType string
%       EndContainerType string
%       Name string
%EndEventDef
%EventDef PajeDefineEntityValue 4
%       Alias string
%       Type string
%       Name string
%       Color color
%EndEventDef
%EventDef PajeCreateContainer 5
%       Time date
%       Alias string
%       Type string
%       Container string
%       Name string
%EndEventDef
%EventDef PajeDestroyContainer 6
%       Time date
%       Type string
%       Name string
%EndEventDef
%EventDef PajeSetState 7
%       Time date
%       Type string
%       Container string
%       Value string
%EndEventDef
%EventDef PajeSetVariable 8
%       Time date
%       Type string
%       Container string
%       Value double
%EndEventDef
%EventDef PajeStartLink 9
%       Time date
%       Type string
%       Container string
%       Value string
%       StartContainer string
%       Key string
%       Size double
%       Tag int
%EndEventDef
%EventDef PajeEndLink 10
%       Time date
%       Type string
%       Container string
%       Value string
%       EndContainer string
%       Key string
%EndEventDef
"""


def _t(value: float) -> str:
    return f"{value:.9f}"


def export_paje(tracer, n_ranks: int | None = None,
                timeline: Timeline | None = None) -> str:
    """Serialise ``tracer`` (and its utilization timeline) as Paje text.

    ``timeline`` defaults to ``tracer.timeline``; open records (``end``
    never set — aborted runs) are dropped, like every exporter does.
    """
    if timeline is None:
        timeline = getattr(tracer, "timeline", None)
    strips = state_intervals(tracer, n_ranks)
    horizon = makespan(tracer)

    # resource containers: sampled resources first (legacy order), then
    # resources known only through capacity steps or failure events
    res_kinds: dict[str, str] = {}
    if timeline is not None:
        for name in timeline.names():
            res_kinds[name] = timeline.kinds[name]
        for name in timeline.capacity_series:
            res_kinds.setdefault(name, timeline.kinds.get(name, "link"))
    res_events = list(getattr(tracer, "resource_events", ()))
    for event in res_events:
        res_kinds.setdefault(event.name, event.kind)
    has_failed_comm = any(getattr(r, "failed", False) for r in tracer.comms)
    links_have_events = any(e.kind == "link" for e in res_events)
    hosts_have_events = any(e.kind == "host" for e in res_events)

    lines = [_HEADER.rstrip("\n")]
    out = lines.append
    # -- type hierarchy ---------------------------------------------------
    out('0 R 0 "simulation"')
    out('0 P R "rank"')
    out('1 ST P "rank state"')
    for name, alias, color in _STATE_DEFS:
        out(f'4 {alias} ST "{name}" "{color}"')
    out('3 LK R P P "message"')
    out('4 e LK "eager" "0.95 0.61 0.07"')
    out('4 r LK "rendezvous" "0.55 0.14 0.67"')
    if has_failed_comm:
        out('4 f LK "failed" "0.84 0.11 0.11"')
    if res_kinds:
        out('0 L R "link"')
        out('0 H R "host"')
    if timeline is not None and (timeline.names() or timeline.capacity_series):
        out('2 UL L "bandwidth_used"')
        out('2 CL L "capacity"')
        out('2 UH H "flops_used"')
        out('2 CH H "capacity"')
    if links_have_events:
        out('1 SL L "resource state"')
        out('4 on SL "up" "0.18 0.49 0.20"')
        out('4 off SL "down" "0.84 0.11 0.11"')
    if hosts_have_events:
        out('1 SH H "resource state"')
        out('4 onh SH "up" "0.18 0.49 0.20"')
        out('4 offh SH "down" "0.84 0.11 0.11"')

    # -- containers -------------------------------------------------------
    zero = _t(0.0)
    out(f'5 {zero} root R 0 "simulation"')
    for rank in range(len(strips)):
        out(f'5 {zero} rank{rank} P root "rank {rank}"')
    resource_alias: dict[str, str] = {}
    for i, (name, kind) in enumerate(res_kinds.items()):
        alias = f"{'L' if kind == 'link' else 'H'}{i}"
        resource_alias[name] = alias
        out(f'5 {zero} {alias} {"L" if kind == "link" else "H"} '
            f'root "{name}"')

    # -- timed events, globally time-ordered ------------------------------
    events: list[tuple[float, int, str]] = []
    seq = 0

    def emit(t: float, line: str) -> None:
        nonlocal seq
        events.append((t, seq, line))
        seq += 1

    for rank, strip in enumerate(strips):
        for start, _end, state in strip:
            alias = {s: a for s, a, _ in _STATE_DEFS}[state]
            emit(start, f'7 {_t(start)} ST rank{rank} {alias}')
    for r in tracer.comms:
        if not (math.isfinite(r.start) and math.isfinite(r.end)):
            continue
        value = "e" if r.eager else "r"
        # a failed transfer keeps its protocol on the start link and is
        # flagged by the distinct "failed" value on the end link
        end_value = "f" if getattr(r, "failed", False) else value
        emit(r.start, f'9 {_t(r.start)} LK root {value} rank{r.src} '
                      f'm{r.mid} {r.nbytes} {r.tag}')
        emit(r.end, f'10 {_t(r.end)} LK root {end_value} rank{r.dst} '
                    f'm{r.mid}')
    if timeline is not None:
        sampled = set(timeline.names())
        for name in timeline.names():
            alias = resource_alias[name]
            is_link = timeline.kinds[name] == "link"
            used, cap = ("UL", "CL") if is_link else ("UH", "CH")
            emit(0.0, f'8 {zero} {cap} {alias} '
                      f'{timeline.capacities[name]:g}')
            for t, usage in timeline.samples(name):
                emit(t, f'8 {_t(t)} {used} {alias} {usage:g}')
        for name, steps in timeline.capacity_series.items():
            alias = resource_alias[name]
            cap = "CL" if res_kinds[name] == "link" else "CH"
            if name not in sampled:  # capacity-only resources still get
                emit(0.0, f'8 {zero} {cap} {alias} '  # an initial value
                          f'{timeline.capacities[name]:g}')
            for t, capacity in steps:
                emit(t, f'8 {_t(t)} {cap} {alias} {capacity:g}')
    for event in res_events:
        alias = resource_alias[event.name]
        stype = "SL" if event.kind == "link" else "SH"
        value = ("off" if event.event == "fail" else "on")
        if event.kind == "host":
            value += "h"
        emit(event.t, f'7 {_t(event.t)} {stype} {alias} {value}')

    for rank in range(len(strips)):
        emit(horizon, f'6 {_t(horizon)} P rank{rank}')
    for name, alias in resource_alias.items():
        kind = "L" if res_kinds[name] == "link" else "H"
        emit(horizon, f'6 {_t(horizon)} {kind} {alias}')
    emit(horizon, f'6 {_t(horizon)} R root')

    events.sort(key=lambda e: (e[0], e[1]))
    lines.extend(line for _, _, line in events)
    return "\n".join(lines) + "\n"


# -- import ----------------------------------------------------------------


def _parse_header(text: str) -> dict[str, tuple[str, list[str]]]:
    """Map event id -> (event name, declared field names)."""
    defs: dict[str, tuple[str, list[str]]] = {}
    name = ident = None
    fields: list[str] = []
    for raw in text.splitlines():
        line = raw.strip()
        if line.startswith("%EventDef"):
            _, name, ident = line.split()
            fields = []
        elif line.startswith("%EndEventDef"):
            if name is not None and ident is not None:
                defs[ident] = (name, fields)
            name = ident = None
        elif line.startswith("%") and name is not None:
            fields.append(line.lstrip("% \t").split()[0])
    return defs


def parse_paje(text: str) -> tuple[Tracer, int]:
    """Load a Paje trace produced by :func:`export_paje`.

    Returns ``(tracer, n_ranks)``; the tracer carries comm records with
    full fidelity, computing intervals as ``flops=0`` compute records,
    and — when the trace has resource containers — a rebuilt
    :class:`Timeline` on ``tracer.timeline``.
    """
    defs = _parse_header(text)
    if not defs:
        raise ConfigError("not a Paje trace (no %EventDef header)")

    tracer = Tracer()
    timeline = Timeline()
    containers: dict[str, tuple[str, str]] = {}  # alias -> (type, name)
    values: dict[str, str] = {}  # entity-value alias -> name
    rank_of: dict[str, int] = {}
    state_open: dict[str, tuple[float, str]] = {}  # container -> (t, state)
    open_links: dict[str, dict] = {}
    capacities: dict[str, float] = {}
    pending_samples: dict[str, list[tuple[float, float]]] = {}
    pending_cap_steps: dict[str, list[tuple[float, float]]] = {}

    def fieldmap(ident: str, parts: list[str]) -> dict[str, str]:
        names = defs[ident][1]
        return dict(zip(names, parts))

    def close_state(container: str, t: float) -> None:
        prev = state_open.pop(container, None)
        if prev is None:
            return
        t0, state = prev
        if state == "computing" and container in rank_of and t > t0:
            tracer.computes.append(
                ComputeRecord(rank_of[container], 0.0, t0, t))

    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("%") or line.startswith("#"):
            continue
        parts = shlex.split(line)
        ident = parts[0]
        if ident not in defs:
            raise ConfigError(f"Paje line references undefined event: {line!r}")
        event, _fields = defs[ident]
        row = fieldmap(ident, parts[1:])
        if event == "PajeCreateContainer":
            containers[row["Alias"]] = (row["Type"], row["Name"])
            if row["Type"] == "P":
                rank_of[row["Alias"]] = len(rank_of)
        elif event == "PajeDefineEntityValue":
            values[row["Alias"]] = row["Name"]
        elif event == "PajeSetState":
            container = row["Container"]
            t = float(row["Time"])
            state = values.get(row["Value"], row["Value"])
            if row["Type"] in ("SL", "SH"):  # resource up/down strip
                _ctype, name = containers.get(container, ("L", container))
                tracer.resource_events.append(ResourceEventRecord(
                    name=name,
                    kind="link" if row["Type"] == "SL" else "host",
                    event="fail" if state == "down" else "restore",
                    t=t,
                ))
            else:
                close_state(container, t)
                state_open[container] = (t, state)
        elif event == "PajeStartLink":
            open_links[row["Key"]] = {
                "start": float(row["Time"]),
                "src": row["StartContainer"],
                "eager": values.get(row["Value"], row["Value"]) == "eager",
                "nbytes": int(float(row.get("Size", "0"))),
                "tag": int(row.get("Tag", "0")),
            }
        elif event == "PajeEndLink":
            started = open_links.pop(row["Key"], None)
            if started is None:
                continue  # unmatched end: tolerate truncated traces
            key = row["Key"]
            mid = int(key[1:]) if key[1:].isdigit() else len(tracer.comms)
            tracer.comms.append(CommRecord(
                mid=mid,
                src=rank_of.get(started["src"], 0),
                dst=rank_of.get(row["EndContainer"], 0),
                tag=started["tag"],
                nbytes=started["nbytes"],
                eager=started["eager"],
                start=started["start"],
                end=float(row["Time"]),
                failed=values.get(row["Value"], row["Value"]) == "failed",
            ))
        elif event == "PajeSetVariable":
            container = row["Container"]
            t = float(row["Time"])
            value = float(row["Value"])
            vtype = row["Type"]
            if vtype in ("CL", "CH"):
                if container in capacities:  # later values are steps
                    pending_cap_steps.setdefault(container, []).append(
                        (t, value))
                else:  # the t=0 initial value is the nominal capacity
                    capacities[container] = value
            elif vtype in ("UL", "UH"):
                pending_samples.setdefault(container, []).append((t, value))
        elif event == "PajeDestroyContainer":
            close_state(row["Name"], float(row["Time"]))

    for container, (t0, _state) in list(state_open.items()):
        close_state(container, t0)  # zero-length leftovers: drop

    for container, samples in pending_samples.items():
        ctype, name = containers.get(container, ("L", container))
        kind = "host" if ctype == "H" else "link"
        capacity = capacities.get(container, 0.0)
        for t, usage in samples:
            timeline.load_row(name, kind, capacity, t, usage)
    for container, steps in pending_cap_steps.items():
        ctype, name = containers.get(container, ("L", container))
        kind = "host" if ctype == "H" else "link"
        for t, capacity in steps:
            timeline.load_capacity_row(name, kind, t, capacity)
    tracer.timeline = (timeline if timeline.names()
                       or timeline.capacity_series else None)
    tracer.resource_events.sort(key=lambda e: (e.t, e.name))
    tracer.comms.sort(key=lambda r: (r.start, r.mid))
    tracer.computes.sort(key=lambda c: (c.start, c.rank))
    return tracer, len(rank_of)
