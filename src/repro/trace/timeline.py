"""Per-resource utilization timelines sampled by the simulation kernel.

A :class:`Timeline` holds one step function per resource — the consumed
rate of a link (bytes/s) or the load of a host CPU (flop/s) over
simulated time.  The engine records a sample whenever a max-min re-solve
changes a resource's share (:meth:`repro.surf.Engine.enable_timeline`);
with the incremental solver that is exactly the set of resources inside
re-solved components, so clean components are never even visited.

Samples are stored sparsely: a new point is appended only when the value
actually changed, which keeps all-to-all-sized runs at a few samples per
link per communication phase.  Utilization queries integrate the step
function, treating the resource as idle before its first sample and
holding the last value until the queried horizon.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LinkUsage", "Timeline"]


@dataclass(frozen=True)
class LinkUsage:
    """Aggregated utilization of one resource over ``[0, until]``."""

    name: str
    kind: str  # "link" or "host"
    capacity: float
    mean_utilization: float  # time-weighted mean of usage/capacity
    peak_utilization: float
    busy_time: float  # simulated seconds with usage > 0


class Timeline:
    """Sparse per-resource usage-over-time samples."""

    def __init__(self) -> None:
        # name -> [(time, consumed rate), ...] in non-decreasing time order
        self._series: dict[str, list[tuple[float, float]]] = {}
        self.capacities: dict[str, float] = {}
        self.kinds: dict[str, str] = {}
        #: per-resource capacity *steps*: ``name -> [(time, capacity), ...]``
        #: recorded by the engine when availability profiles (or
        #: ``set_availability``) change a resource's effective capacity.
        #: ``capacities`` keeps holding the latest value, so utilization
        #: summaries stay meaningful; the step series preserves the history.
        self.capacity_series: dict[str, list[tuple[float, float]]] = {}
        #: total samples stored (mirrored into ``EngineStats.link_samples``)
        self.n_samples = 0

    def __len__(self) -> int:
        return self.n_samples

    def record(self, t: float, name: str, usage: float, capacity: float,
               kind: str = "link") -> None:
        """Append one sample; collapses same-time and same-value samples."""
        series = self._series.get(name)
        if series is None:
            series = self._series[name] = []
            self.kinds[name] = kind
        self.capacities[name] = capacity
        if series:
            last_t, last_u = series[-1]
            if last_t == t:
                if last_u != usage:
                    series[-1] = (t, usage)
                return
            if last_u == usage:
                return
        elif usage == 0.0:
            return  # still idle: keep the implicit leading zero implicit
        series.append((t, usage))
        self.n_samples += 1

    def record_capacity(self, t: float, name: str, capacity: float,
                        kind: str = "link") -> None:
        """Append one capacity step (effective capacity from ``t`` on)."""
        series = self.capacity_series.setdefault(name, [])
        self.kinds.setdefault(name, kind)
        self.capacities[name] = capacity
        if series and series[-1][0] == t:
            series[-1] = (t, capacity)
            return
        if series and series[-1][1] == capacity:
            return
        series.append((t, capacity))

    def capacity_steps(self, name: str) -> list[tuple[float, float]]:
        """Recorded ``(time, effective capacity)`` steps of one resource."""
        return list(self.capacity_series.get(name, ()))

    def close(self, t: float) -> None:
        """Mark every resource idle at ``t`` (end of simulation).

        The last action's completion ends the run without a further
        re-share, so resources it used would otherwise appear busy
        forever; the runtime calls this once the scheduler drains.
        """
        for name, series in self._series.items():
            if series and series[-1][1] != 0.0:
                self.record(t, name, 0.0, self.capacities[name],
                            self.kinds[name])

    # -- queries -----------------------------------------------------------------

    def names(self, kind: str | None = None) -> list[str]:
        """Sampled resource names, insertion-ordered (optionally by kind)."""
        if kind is None:
            return list(self._series)
        return [n for n in self._series if self.kinds[n] == kind]

    def samples(self, name: str) -> list[tuple[float, float]]:
        """Raw ``(time, consumed rate)`` step points of one resource."""
        return list(self._series.get(name, ()))

    def utilization(self, name: str) -> list[tuple[float, float]]:
        """Step points normalised by capacity: ``(time, fraction)``."""
        capacity = self.capacities.get(name, 0.0)
        if capacity <= 0:
            return [(t, 0.0) for t, _ in self._series.get(name, ())]
        return [(t, u / capacity) for t, u in self._series.get(name, ())]

    def _integrate(self, name: str, until: float) -> tuple[float, float, float]:
        """(integral of usage dt, peak usage, busy seconds) over [0, until]."""
        series = self._series.get(name, [])
        integral = peak = busy = 0.0
        for i, (t, usage) in enumerate(series):
            if t >= until:
                break
            t_next = series[i + 1][0] if i + 1 < len(series) else until
            span = min(t_next, until) - t
            if span <= 0:
                continue
            integral += usage * span
            peak = max(peak, usage)
            if usage > 0:
                busy += span
        return integral, peak, busy

    def summarize(self, name: str, until: float) -> LinkUsage:
        """Aggregate one resource's step function over ``[0, until]``."""
        capacity = self.capacities.get(name, 0.0)
        integral, peak, busy = self._integrate(name, max(until, 0.0))
        scale = capacity * until
        return LinkUsage(
            name=name,
            kind=self.kinds.get(name, "link"),
            capacity=capacity,
            mean_utilization=integral / scale if scale > 0 else 0.0,
            peak_utilization=peak / capacity if capacity > 0 else 0.0,
            busy_time=busy,
        )

    def top(self, until: float, k: int = 5, kind: str = "link"
            ) -> list[LinkUsage]:
        """The ``k`` most-utilized resources of ``kind`` over ``[0, until]``."""
        usages = [self.summarize(n, until) for n in self.names(kind)]
        usages.sort(key=lambda u: (-u.mean_utilization, u.name))
        return usages[:k]

    # -- (de)serialisation ---------------------------------------------------------

    def iter_rows(self):
        """Yield ``(name, kind, capacity, time, usage)`` rows lazily.

        The streaming CSV sink walks this at finalize time; materialising
        the full row list first would undo the bounded-memory property.
        """
        for name, series in self._series.items():
            kind = self.kinds[name]
            capacity = self.capacities[name]
            for t, usage in series:
                yield (name, kind, capacity, t, usage)

    def as_rows(self) -> list[tuple[str, str, float, float, float]]:
        """Flat ``(name, kind, capacity, time, usage)`` rows for CSV export."""
        return list(self.iter_rows())

    def load_row(self, name: str, kind: str, capacity: float,
                 t: float, usage: float) -> None:
        """Re-insert one :meth:`as_rows` row (CSV import path)."""
        series = self._series.setdefault(name, [])
        self.kinds.setdefault(name, kind)
        self.capacities[name] = capacity
        series.append((t, usage))
        self.n_samples += 1

    def iter_capacity_rows(self):
        """Yield ``(name, kind, time, capacity)`` capacity-step rows lazily."""
        for name, series in self.capacity_series.items():
            kind = self.kinds.get(name, "link")
            for t, capacity in series:
                yield (name, kind, t, capacity)

    def capacity_rows(self) -> list[tuple[str, str, float, float]]:
        """Flat ``(name, kind, time, capacity)`` capacity-step rows."""
        return list(self.iter_capacity_rows())

    def load_capacity_row(self, name: str, kind: str, t: float,
                          capacity: float) -> None:
        """Re-insert one :meth:`capacity_rows` row (CSV import path)."""
        self.capacity_series.setdefault(name, []).append((t, capacity))
        self.kinds.setdefault(name, kind)
        self.capacities[name] = capacity
