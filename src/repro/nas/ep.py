"""NAS EP (Embarrassingly Parallel) — the CPU-sampling workload of Fig. 18.

EP distributes a large random-number computation over the ranks: each
process generates pseudo-random pairs, maps them through the Box-Muller
acceptance test and counts accepted Gaussian deviates per square annulus;
a final Allreduce combines the counts.  There is no other communication,
which is exactly why the paper uses it to isolate the effect of
``SMPI_SAMPLE_LOCAL`` on *simulation* time (the computation dominates).

**Scaling substitution** (per DESIGN.md): class B is 2^30 pairs in the
original; we keep the paper's *iteration structure* — 4096 chunks per
rank, the number the paper quotes when discussing the 25 % sampling ratio
("1024 instead of 4096") — with a configurable ``pairs_per_chunk`` small
enough for seconds-scale runs.

The computation is *real* (NumPy vectorised), so with a 100 % sampling
ratio the counts are exact; with a lower ratio the skipped iterations'
contributions are missing — the erroneous-but-fast trade-off the paper
describes for sampled execution.
"""

from __future__ import annotations

import numpy as np

from .. import rng as rng_mod

__all__ = ["ep_app", "ep_chunk_counts", "ep_reference_counts", "EP_CHUNKS"]

#: chunks per rank, matching the paper's "4096 iterations" discussion
EP_CHUNKS = 4096

_N_ANNULI = 10


def ep_chunk_counts(rank: int, chunk: int, pairs: int, seed: int) -> np.ndarray:
    """Counts of accepted Gaussian deviates per annulus for one chunk."""
    gen = rng_mod.substream(seed, "nas-ep", rank, chunk)
    x = gen.uniform(-1.0, 1.0, size=pairs)
    y = gen.uniform(-1.0, 1.0, size=pairs)
    t = x * x + y * y
    accept = (t <= 1.0) & (t > 0.0)
    factor = np.sqrt(-2.0 * np.log(t[accept]) / t[accept])
    gx = np.abs(x[accept] * factor)
    gy = np.abs(y[accept] * factor)
    annulus = np.minimum(np.maximum(gx, gy).astype(np.int64), _N_ANNULI - 1)
    return np.bincount(annulus, minlength=_N_ANNULI).astype(np.float64)


def ep_app(
    mpi,
    chunks: int = EP_CHUNKS,
    pairs_per_chunk: int = 256,
    sampling_ratio: float = 1.0,
    seed: int = 0,
):
    """Run EP on one rank; returns the globally reduced annulus counts.

    ``sampling_ratio`` ∈ (0, 1]: fraction of the chunk loop actually
    executed through ``SMPI_SAMPLE_LOCAL`` (the rest replays the average
    measured chunk duration) — the x-axis of Fig. 18.
    """
    comm = mpi.COMM_WORLD
    counts = np.zeros(_N_ANNULI)
    n_samples = max(1, int(round(sampling_ratio * chunks)))
    for chunk in range(chunks):
        for _ in mpi.sample_local("ep-chunk", n=n_samples):
            counts += ep_chunk_counts(mpi.rank, chunk, pairs_per_chunk, seed)
    total = np.empty(_N_ANNULI)
    comm.Allreduce(counts, total)
    return total


def ep_reference_counts(
    n_ranks: int, chunks: int = EP_CHUNKS, pairs_per_chunk: int = 256,
    seed: int = 0,
) -> np.ndarray:
    """Direct (unsimulated) EP result for verification at ratio 1.0."""
    total = np.zeros(_N_ANNULI)
    for rank in range(n_ranks):
        for chunk in range(chunks):
            total += ep_chunk_counts(rank, chunk, pairs_per_chunk, seed)
    return total
