"""NAS Parallel Benchmark reproductions used in the paper's evaluation:
DT (Data Traffic, section 7.1.4) and EP (Embarrassingly Parallel,
section 7.3)."""

from .dt import (
    DT_CLASSES,
    DtGraph,
    bh_graph,
    dt_app,
    dt_graph,
    dt_reference_checksum,
    sh_graph,
    wh_graph,
)
from .ep import EP_CHUNKS, ep_app, ep_chunk_counts, ep_reference_counts

__all__ = [
    "DT_CLASSES",
    "DtGraph",
    "EP_CHUNKS",
    "bh_graph",
    "dt_app",
    "dt_graph",
    "dt_reference_checksum",
    "ep_app",
    "ep_chunk_counts",
    "ep_reference_counts",
    "sh_graph",
    "wh_graph",
]
