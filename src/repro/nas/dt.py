"""NAS DT (Data Traffic) — the application benchmark of paper section 7.1.4.

DT moves data through a task graph with one MPI process per graph node.
Three communication schemes (paper Figs. 13/14):

* **BH** (Black Hole): many sources fan *in* through comparator layers to
  one sink;
* **WH** (White Hole): one source fans *out* to many consumers — the
  mirror image;
* **SH** (Shuffle): ``L`` layers of ``W`` nodes; layer ``l`` shuffles its
  data down to layer ``l+1`` through perfect-shuffle edges.

Process counts match the paper exactly: classes A/B/C use 21/43/85
processes for WH and BH and 80/192/448 for SH.  Our BH/WH layer widths
(A: 16-4-1, B: 32-8-2-1, C: 64-16-4-1, fan-in 4 with a final fan-in where
needed) reproduce those counts; SH uses A: 5×16, B: 6×32, C: 7×64.

**Scaling substitution** (documented per DESIGN.md): the original class
payloads are hundreds of MB; we scale source feature buffers down (A:
1 MiB, B: 2 MiB, C: 4 MiB) so benches run in seconds while keeping the
BH-slower-than-WH contention asymmetry and the paper's folded/unfolded
memory ratios.

Every node *really computes*: sources generate seeded random features,
interior nodes element-wise-combine their inputs, and the sink returns a
checksum — so tests can verify on-line simulation correctness against a
directly computed reference (:func:`dt_reference_checksum`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import rng as rng_mod
from ..errors import ConfigError

__all__ = [
    "DT_CLASSES",
    "DtClass",
    "DtGraph",
    "DtNode",
    "bh_graph",
    "wh_graph",
    "sh_graph",
    "dt_graph",
    "dt_app",
    "dt_reference_checksum",
]


@dataclass(frozen=True)
class DtClass:
    """Problem-class parameters."""

    name: str
    bhwh_widths: tuple[int, ...]  # source layer first, sink last
    sh_layers: int
    sh_width: int
    feature_elems: int  # float64 elements per edge message

    @property
    def bhwh_nodes(self) -> int:
        """Interior nodes of the BH/WH shuffle trees (sum of layer widths)."""
        return sum(self.bhwh_widths)

    @property
    def sh_nodes(self) -> int:
        """Interior nodes of the SH (straight) graph: layers x width."""
        return self.sh_layers * self.sh_width


#: class table; BH/WH node counts match the paper (21/43/85 for A/B/C),
#: SH counts match 80/192/448.  Feature sizes are the documented scale-down.
DT_CLASSES: dict[str, DtClass] = {
    "S": DtClass("S", (4, 1), 3, 4, 8 * 1024),
    "W": DtClass("W", (8, 2, 1), 4, 8, 32 * 1024),
    "A": DtClass("A", (16, 4, 1), 5, 16, 128 * 1024),
    "B": DtClass("B", (32, 8, 2, 1), 6, 32, 256 * 1024),
    "C": DtClass("C", (64, 16, 4, 1), 7, 64, 512 * 1024),
}


@dataclass
class DtNode:
    """One task-graph node = one MPI rank."""

    rank: int
    layer: int
    in_edges: list[int] = field(default_factory=list)
    out_edges: list[int] = field(default_factory=list)
    #: float64 elements of this node's *output* (per out edge); filled by
    #: the volume pass once the graph is assembled
    out_elems: int = 0

    @property
    def is_source(self) -> bool:
        """True when the node generates data (no incoming edges)."""
        return not self.in_edges

    @property
    def is_sink(self) -> bool:
        """True when the node consumes data (no outgoing edges)."""
        return not self.out_edges


@dataclass
class DtGraph:
    """A DT communication graph with per-edge data volumes.

    Volume semantics (reproducing NPB DT's traffic patterns):

    * **BH** concatenates on fan-in: a comparator's output is the union of
      its inputs, so volumes *grow* toward the sink — the sink's access
      link carries the aggregate of every source, which is why BH is the
      slow variant (paper Fig. 15);
    * **WH** duplicates on fan-out: every consumer receives the full
      stream, so the source link carries fan-out × s;
    * **SH** preserves volume: each node splits its combined input evenly
      over its out edges (a shuffle re-partitions, it does not grow data).
    """

    scheme: str
    cls: DtClass
    nodes: list[DtNode]

    def __post_init__(self) -> None:
        self._assign_volumes()

    def _assign_volumes(self) -> None:
        base = self.cls.feature_elems
        for node in sorted(self.nodes, key=lambda n: n.layer):
            if node.is_source:
                total_in = base
            else:
                total_in = sum(
                    self.nodes[src].out_elems for src in node.in_edges
                )
            if self.scheme == "BH":
                node.out_elems = total_in  # concat; full copy per out edge
            elif self.scheme == "WH":
                node.out_elems = total_in  # duplicate full stream
            else:  # SH: split evenly across out edges
                n_out = max(len(node.out_edges), 1)
                node.out_elems = max(total_in // n_out, 1)

    @property
    def n_ranks(self) -> int:
        """One MPI rank per graph node."""
        return len(self.nodes)

    def in_elems(self, node: DtNode) -> int:
        """Total elements a node receives (its working-buffer size)."""
        if node.is_source:
            return self.cls.feature_elems
        return sum(self.nodes[src].out_elems for src in node.in_edges)

    def edges(self) -> list[tuple[int, int]]:
        """Every ``(src_rank, dst_rank)`` edge of the task graph."""
        return [(n.rank, dst) for n in self.nodes for dst in n.out_edges]

    def sources(self) -> list[DtNode]:
        """The data-generating nodes, in rank order."""
        return [n for n in self.nodes if n.is_source]

    def sinks(self) -> list[DtNode]:
        """The data-consuming nodes, in rank order."""
        return [n for n in self.nodes if n.is_sink]

    def total_bytes(self) -> int:
        """Total bytes crossing the network (diagnostics/benches)."""
        return sum(
            8 * self.nodes[src].out_elems for src, _dst in self.edges()
        )


def _layered_fanin(widths: tuple[int, ...]) -> list[DtNode]:
    """Build layered nodes with each next-layer node absorbing an equal
    share of the previous layer (the BH comparator tree)."""
    nodes: list[DtNode] = []
    layer_ranks: list[list[int]] = []
    rank = 0
    for layer, width in enumerate(widths):
        ranks = []
        for _ in range(width):
            nodes.append(DtNode(rank, layer))
            ranks.append(rank)
            rank += 1
        layer_ranks.append(ranks)
    for layer in range(len(widths) - 1):
        upper, lower = layer_ranks[layer], layer_ranks[layer + 1]
        fan = len(upper) // len(lower)
        if fan * len(lower) != len(upper):
            raise ConfigError(f"layer widths {widths} not evenly divisible")
        for j, dst in enumerate(lower):
            for src in upper[j * fan : (j + 1) * fan]:
                nodes[src].out_edges.append(dst)
                nodes[dst].in_edges.append(src)
    return nodes


def bh_graph(cls: str | DtClass) -> DtGraph:
    """Black Hole: sources converge through comparators into one sink."""
    dt_cls = DT_CLASSES[cls] if isinstance(cls, str) else cls
    return DtGraph("BH", dt_cls, _layered_fanin(dt_cls.bhwh_widths))


def wh_graph(cls: str | DtClass) -> DtGraph:
    """White Hole: the mirror of BH — one source fans out to consumers."""
    dt_cls = DT_CLASSES[cls] if isinstance(cls, str) else cls
    mirrored = _layered_fanin(dt_cls.bhwh_widths)
    # reverse every edge: sources become sinks and vice versa
    nodes = [DtNode(n.rank, len(dt_cls.bhwh_widths) - 1 - n.layer) for n in mirrored]
    for node in mirrored:
        for dst in node.out_edges:
            nodes[dst].out_edges.append(node.rank)
            nodes[node.rank].in_edges.append(dst)
    return DtGraph("WH", dt_cls, nodes)


def sh_graph(cls: str | DtClass) -> DtGraph:
    """Shuffle: L layers of W nodes, perfect-shuffle edges layer to layer."""
    dt_cls = DT_CLASSES[cls] if isinstance(cls, str) else cls
    layers, width = dt_cls.sh_layers, dt_cls.sh_width
    nodes = [
        DtNode(layer * width + j, layer)
        for layer in range(layers)
        for j in range(width)
    ]
    for layer in range(layers - 1):
        base, nxt = layer * width, (layer + 1) * width
        for j in range(width):
            src = base + j
            for dst_j in ((2 * j) % width, (2 * j + 1) % width):
                dst = nxt + dst_j
                nodes[src].out_edges.append(dst)
                nodes[dst].in_edges.append(src)
    return DtGraph("SH", dt_cls, nodes)


def dt_graph(scheme: str, cls: str | DtClass) -> DtGraph:
    """Dispatch on the scheme mnemonic ('BH' | 'WH' | 'SH')."""
    builders = {"BH": bh_graph, "WH": wh_graph, "SH": sh_graph}
    try:
        return builders[scheme.upper()](cls)
    except KeyError:
        raise ConfigError(f"unknown DT scheme {scheme!r}") from None


# -- the application itself -----------------------------------------------------------------

#: flops charged per element processed (models DT's per-element
#: verification arithmetic on the target nodes)
_FLOPS_PER_ELEM = 4.0

#: per-node damping applied to the combined stream (keeps magnitudes
#: bounded across deep graphs and makes node processing observable)
_DAMP = 0.9999

_TAG = 11


def _source_features(rank: int, elems: int, seed: int) -> np.ndarray:
    gen = rng_mod.substream(seed, "nas-dt", rank)
    return gen.standard_normal(elems)


def _node_process(graph: DtGraph, node: DtNode, work: np.ndarray) -> None:
    """The comparator body shared by app and reference."""
    work *= _DAMP


def dt_app(mpi, graph: DtGraph, seed: int = 0, folded: bool = False):
    """Run one DT node per rank; sink ranks return their checksum.

    Each node receives the concatenation of its parents' streams into one
    working buffer (sized per the graph's volume semantics), processes it,
    and emits its out-edges (full copies for BH/WH, even slices for SH).

    ``folded=True`` backs working buffers with ``shared_malloc`` (RAM
    folding, Fig. 16): footprint collapses, but — as the paper states —
    the numerical results become erroneous, so checksums are only
    meaningful unfolded.

    Written in the generator dialect (``yield from`` at every blocking
    call) so it runs on the coroutine backend without an OS thread per
    rank.
    """
    comm = mpi.COMM_WORLD
    node = graph.nodes[mpi.rank]
    in_elems = graph.in_elems(node)
    out_elems = node.out_elems

    label = f"dt-work-{in_elems}"
    if folded:
        work = mpi.shared_malloc(label, in_elems)
    else:
        work = mpi.malloc(in_elems)

    if node.is_source:
        work[:] = _source_features(node.rank, in_elems, seed)
    else:
        offset = 0
        for src in node.in_edges:
            n = graph.nodes[src].out_elems
            yield from comm.co.Recv([work[offset : offset + n], n], src, _TAG)
            offset += n
    yield from mpi.co.execute(_FLOPS_PER_ELEM * in_elems)
    _node_process(graph, node, work)

    for k, dst in enumerate(node.out_edges):
        if graph.scheme == "SH":
            view = work[k * out_elems : (k + 1) * out_elems]
            yield from comm.co.Send([view, out_elems], dst, _TAG)
        else:
            yield from comm.co.Send([work, out_elems], dst, _TAG)

    checksum = float(np.sum(work)) if node.is_sink else None
    if folded:
        mpi.shared_free(label)
    else:
        mpi.free(work)
    return checksum


def dt_reference_checksum(graph: DtGraph, seed: int = 0) -> list[float]:
    """Directly computed sink checksums (no simulation, no MPI), in rank
    order of the sinks.

    Used by tests to prove the on-line property: the simulated
    application produces the same numbers as a sequential execution.
    """
    outputs: dict[int, np.ndarray] = {}
    checksums: list[float] = []

    for node in sorted(graph.nodes, key=lambda n: (n.layer, n.rank)):
        in_elems = graph.in_elems(node)
        if node.is_source:
            work = _source_features(node.rank, in_elems, seed)
        else:
            work = np.concatenate(
                [outputs_for(outputs, graph, src, node) for src in node.in_edges]
            )
        _node_process(graph, node, work)
        if node.is_sink:
            checksums.append(float(np.sum(work)))
        # record what each out edge of this node carries
        per_edge: list[np.ndarray] = []
        for k in range(len(node.out_edges)):
            if graph.scheme == "SH":
                per_edge.append(work[k * node.out_elems : (k + 1) * node.out_elems])
            else:
                per_edge.append(work[: node.out_elems])
        outputs[node.rank] = per_edge  # type: ignore[assignment]
    if not checksums:
        raise ConfigError("graph has no sink")
    return checksums


def outputs_for(outputs, graph: DtGraph, src: int, node: DtNode) -> np.ndarray:
    """The slice parent ``src`` sends to ``node`` (k-th out edge of src)."""
    k = graph.nodes[src].out_edges.index(node.rank)
    return outputs[src][k]
