"""Deterministic random-number plumbing.

Everything stochastic in the library — measurement noise in the reference
testbed, NAS EP's random samples, workload generators — draws from a
:class:`numpy.random.Generator` created here, so that every experiment is
reproducible bit-for-bit from its seed.  Sub-streams are derived with
:func:`substream`, which hashes a textual label into the seed sequence:
two experiments that share a parent seed but different labels get
independent, stable streams regardless of call order.
"""

from __future__ import annotations

import zlib

import numpy as np

DEFAULT_SEED = 0x534D5049  # "SMPI" in ASCII


def generator(seed: int | None = None) -> np.random.Generator:
    """Return a fresh PCG64 generator seeded with ``seed`` (default 'SMPI')."""
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def substream(seed: int | None, *labels: str | int) -> np.random.Generator:
    """Derive an independent generator from ``seed`` and a label path.

    ``substream(7, "skampi", "griffon", 42)`` always yields the same
    stream, independent from ``substream(7, "nas-ep")``.
    """
    base = DEFAULT_SEED if seed is None else seed
    words = [base & 0xFFFFFFFF, (base >> 32) & 0xFFFFFFFF]
    for label in labels:
        words.append(zlib.crc32(str(label).encode("utf-8")))
    return np.random.default_rng(np.random.SeedSequence(words))
