"""repro — a Python reproduction of SMPI (Clauss et al., IPDPS 2011):
single-node on-line simulation of MPI applications.

Layering (mirrors the paper's Fig. 1):

* :mod:`repro.surf`   — simulation kernel: resources, max-min contention
  model, the piece-wise linear network model, platforms;
* :mod:`repro.simix`  — process layer: thread-per-rank actors driven
  strictly sequentially;
* :mod:`repro.smpi`   — the MPI API: point-to-point (eager/rendezvous),
  collectives as point-to-point sets, sampling macros, RAM folding;
* :mod:`repro.packetsim` / :mod:`repro.refcluster` — the packet-level
  testbed standing in for the paper's real clusters;
* :mod:`repro.calibration` — SKaMPI-campaign fitting of the affine and
  piece-wise linear models;
* :mod:`repro.platforms` — griffon and gdx;
* :mod:`repro.nas`    — the DT and EP benchmarks;
* :mod:`repro.metrics` — the logarithmic error metric.

Quickstart::

    import numpy as np
    from repro.smpi import smpirun
    from repro.surf import cluster

    def app(mpi):
        data = np.full(4, float(mpi.rank))
        out = np.empty(4)
        mpi.COMM_WORLD.Allreduce(data, out)
        return float(out[0])

    result = smpirun(app, 8, cluster("demo", 8))
    print(result.simulated_time, result.returns)
"""

from . import calibration, metrics, nas, offline, packetsim, platforms, refcluster
from . import simix, smpi, surf, sweep
from .errors import (
    ActorFailure,
    CalibrationError,
    ConfigError,
    DeadlockError,
    MpiError,
    OutOfMemoryError,
    PlatformError,
    ReproError,
    RoutingError,
    SimulationError,
)
from .smpi import Mpi, SmpiConfig, SmpiResult, smpirun
from .surf import Engine, Platform, cluster, multi_cabinet_cluster

__version__ = "1.0.0"

__all__ = [
    "ActorFailure",
    "CalibrationError",
    "ConfigError",
    "DeadlockError",
    "Engine",
    "Mpi",
    "MpiError",
    "OutOfMemoryError",
    "Platform",
    "PlatformError",
    "ReproError",
    "RoutingError",
    "SimulationError",
    "SmpiConfig",
    "SmpiResult",
    "calibration",
    "cluster",
    "metrics",
    "multi_cabinet_cluster",
    "nas",
    "offline",
    "packetsim",
    "platforms",
    "refcluster",
    "simix",
    "smpi",
    "smpirun",
    "surf",
    "__version__",
]
