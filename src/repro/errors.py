"""Exception hierarchy shared by every repro subsystem.

All errors raised by the library derive from :class:`ReproError` so callers
can catch the whole family with one ``except`` clause.  Layer-specific
errors subclass it: the simulation kernel raises :class:`SimulationError`,
the MPI layer raises :class:`MpiError` (which also carries the numeric MPI
error code from :mod:`repro.smpi.constants`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class PlatformError(ReproError):
    """A platform description is invalid (bad topology, missing host, ...)."""


class RoutingError(PlatformError):
    """No route exists between two hosts of a platform."""


class SimulationError(ReproError):
    """The simulation kernel reached an inconsistent state."""


class DeadlockError(SimulationError):
    """Every simulated process is blocked and no action can complete.

    This is the simulated equivalent of an MPI application hanging: for
    example two ranks that both call a blocking ``Recv`` first.  The message
    lists the blocked actors and what each is waiting for.
    """


class ActorFailure(SimulationError):
    """A simulated process raised an exception; wraps the original one."""

    def __init__(self, actor_name: str, original: BaseException):
        super().__init__(f"actor {actor_name!r} failed: {original!r}")
        self.actor_name = actor_name
        self.original = original


class ContextError(SimulationError):
    """An execution-context backend was used outside its contract.

    The common case: an actor on the ``coroutine`` backend tried to block
    from a plain (non-generator) frame — pure-Python continuations cannot
    suspend a synchronous call stack, so the blocking path must be written
    in the generator dialect or the actor run on a stack-capable backend.
    """


class ContextLeakError(SimulationError):
    """Actor contexts survived simulation teardown.

    Raised (or logged, when teardown is already unwinding another error)
    when execution contexts still hold live frames or kernel threads after
    every actor was killed and resumed — previously this leaked silently.
    """

    def __init__(self, leaks: list[str]):
        super().__init__(
            f"{len(leaks)} actor context(s) still alive after teardown: "
            + ", ".join(leaks)
        )
        self.leaks = leaks


class UnknownFlowError(SimulationError):
    """A solver operation named a flow that is not registered.

    Raised by :meth:`repro.surf.maxmin.IncrementalMaxMin.remove_flow` on a
    double removal (e.g. a cancel racing a completion harvest) so the
    offending flow is identified instead of surfacing as a bare
    ``KeyError``; pass ``strict=False`` for an idempotent removal.
    """

    def __init__(self, key):
        super().__init__(
            f"flow {key!r} is not registered (removed twice, or never added)"
        )
        self.key = key


class MpiError(ReproError):
    """An MPI call failed.  ``code`` is the MPI error class constant."""

    def __init__(self, code: int, message: str):
        super().__init__(f"MPI error {code}: {message}")
        self.code = code
        self.message = message


class CalibrationError(ReproError):
    """Model calibration failed (too few samples, degenerate fit, ...)."""


class OutOfMemoryError(ReproError):
    """The simulated heap exceeded the host node's memory budget.

    Mirrors the "OM" bars of Fig. 16: without RAM folding, large DT classes
    do not fit on a single host node.  The message names the offending
    rank (``rank is None`` for folded/shared allocations, which are
    charged globally) and breaks the in-use total down into that rank's
    private heap and the shared (folded) pool, so a breach at 10k ranks
    is attributable without a debugger.
    """

    def __init__(
        self,
        requested: int,
        in_use: int,
        limit: int,
        rank: int | None = None,
        rank_bytes: int | None = None,
        shared_bytes: int | None = None,
    ):
        who = "shared (folded) pool" if rank is None else f"rank {rank}"
        message = (
            f"simulated allocation of {requested} B by {who} exceeds host "
            f"memory: {in_use} B in use of {limit} B limit"
        )
        breakdown = []
        if rank is not None and rank_bytes is not None:
            breakdown.append(f"rank {rank} private: {rank_bytes} B")
        if shared_bytes is not None:
            breakdown.append(f"shared pool: {shared_bytes} B")
        if breakdown:
            message += f" ({', '.join(breakdown)})"
        super().__init__(message)
        self.requested = requested
        self.in_use = in_use
        self.limit = limit
        self.rank = rank
        self.rank_bytes = rank_bytes
        self.shared_bytes = shared_bytes


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""
