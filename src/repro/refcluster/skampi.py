"""SKaMPI-style ping-pong measurement campaigns (paper section 6).

The paper calibrates SMPI with SKaMPI's ping-pong benchmark: round-trip
times between two nodes over a wide range of message sizes.  This module
reproduces that campaign on the packet-level testbed: log-spaced sizes
from 1 B to (default) 16 MiB, several repetitions each, reporting the
mean one-way time per size — exactly the input the calibration fitters
expect.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..surf.network_model import RouteParams
from ..surf.platform import Platform
from .mpimodel import MpiImplementation, OPENMPI
from .testbed import run_reference

__all__ = ["PingPongCampaign", "default_sizes", "run_pingpong_campaign"]


def default_sizes(max_size: int = 16 * 1024 * 1024, per_decade: int = 6) -> list[int]:
    """Log-spaced message sizes from 1 B to ``max_size``, deduplicated."""
    grid = np.logspace(0, np.log10(max_size), num=int(np.log10(max_size) * per_decade))
    sizes = sorted({int(round(v)) for v in grid} | {1, 1460, 65536, max_size})
    return [s for s in sizes if s >= 1]


@dataclass
class PingPongCampaign:
    """Results of one campaign: parallel size/time arrays + provenance."""

    platform_name: str
    node_pair: tuple[str, str]
    implementation: str
    sizes: np.ndarray
    times: np.ndarray  # mean one-way seconds per size
    route: RouteParams

    def table(self) -> str:
        lines = [f"# ping-pong on {self.platform_name} "
                 f"({self.node_pair[0]} <-> {self.node_pair[1]}, "
                 f"{self.implementation})",
                 f"{'size_B':>12} {'one_way_us':>14} {'eff_MBps':>10}"]
        for s, t in zip(self.sizes, self.times):
            lines.append(f"{int(s):>12} {t * 1e6:>14.2f} {s / t / 1e6:>10.2f}")
        return "\n".join(lines)


def _pingpong_app(mpi, sizes: list[int], repetitions: int):
    """Rank 0 <-> rank 1 ping-pong; rank 0 returns {size: one-way time}."""
    comm = mpi.COMM_WORLD
    results: dict[int, float] = {}
    for size in sizes:
        buf = np.zeros(size, dtype=np.uint8)
        comm.Barrier()
        start = mpi.wtime()
        for _ in range(repetitions):
            if mpi.rank == 0:
                comm.Send(buf, 1, 0)
                comm.Recv(buf, 1, 0)
            else:
                comm.Recv(buf, 0, 0)
                comm.Send(buf, 0, 0)
        if mpi.rank == 0:
            results[size] = (mpi.wtime() - start) / (2 * repetitions)
    return results if mpi.rank == 0 else None


def run_pingpong_campaign(
    platform: Platform,
    node_a: str,
    node_b: str,
    implementation: MpiImplementation = OPENMPI,
    sizes: list[int] | None = None,
    repetitions: int = 3,
    seed: int | None = None,
    noise: float | None = None,
) -> PingPongCampaign:
    """Measure one node pair of a platform with the chosen implementation."""
    sizes = sizes if sizes is not None else default_sizes()
    result = run_reference(
        _pingpong_app,
        2,
        platform,
        implementation=implementation,
        app_args=(sizes, repetitions),
        hosts=[node_a, node_b],
        seed=seed,
        noise=noise,
    )
    measured: dict[int, float] = result.returns[0]
    route = platform.route(node_a, node_b).params
    return PingPongCampaign(
        platform_name=platform.name,
        node_pair=(node_a, node_b),
        implementation=implementation.name,
        sizes=np.asarray(sizes, dtype=float),
        times=np.asarray([measured[s] for s in sizes], dtype=float),
        route=route,
    )
