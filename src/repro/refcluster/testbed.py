"""Run simulated-MPI applications "on the real cluster".

:func:`run_reference` is the counterpart of submitting a job to
Grid'5000: it executes the given application over the packet-level
network simulator with the chosen MPI implementation's protocol
parameters and measurement noise, and returns the same
:class:`~repro.smpi.runtime.SmpiResult` the SMPI runs produce — so
benchmark code compares like with like.
"""

from __future__ import annotations

from typing import Any, Callable

from ..packetsim import PacketEngine, PacketParams
from ..smpi.runtime import SmpiResult, smpirun
from ..surf.platform import Platform
from .mpimodel import MpiImplementation, OPENMPI

__all__ = ["run_reference"]


def run_reference(
    app: Callable[..., Any],
    n_ranks: int,
    platform: Platform,
    implementation: MpiImplementation = OPENMPI,
    app_args: tuple = (),
    hosts: list[str] | None = None,
    seed: int | None = None,
    noise: float | None = None,
    config_overrides: dict | None = None,
) -> SmpiResult:
    """Execute ``app`` over the packet-level testbed.

    ``seed`` controls the measurement noise stream; repeated calls with
    different seeds behave like repeated runs on a real (slightly noisy)
    cluster.  ``noise=0`` gives the deterministic testbed used by unit
    tests.
    """
    params = PacketParams(
        noise=implementation.noise if noise is None else noise,
        seed=seed,
    )
    engine = PacketEngine(platform, params)
    config = implementation.config(**(config_overrides or {}))
    return smpirun(
        app,
        n_ranks,
        platform,
        app_args=app_args,
        hosts=hosts,
        config=config,
        engine=engine,
    )
