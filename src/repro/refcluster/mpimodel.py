"""Behavioural models of real MPI implementations.

The paper's evaluation compares SMPI against OpenMPI and MPICH2, whose
observable differences on a TCP cluster come down to a handful of
protocol parameters: the eager→rendezvous switch point, per-message CPU
overheads on each side, and how chatty the rendezvous handshake is.
:class:`MpiImplementation` bundles those numbers; the two presets are
tuned so the implementations differ by a few percent on collectives —
the same order as the OpenMPI-vs-MPICH2 gaps the paper reports (≈5.3 %
average on the scatter experiments).

These parameters feed the *same* protocol engine as SMPI proper
(:mod:`repro.smpi.pt2pt`); only the simulation kernel underneath differs
(packet-level instead of flow-level).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..smpi.config import SmpiConfig

__all__ = ["MpiImplementation", "OPENMPI", "MPICH2"]


@dataclass(frozen=True)
class MpiImplementation:
    """Protocol parameter set of one MPI implementation."""

    name: str
    eager_threshold: int
    send_overhead: float  # seconds of CPU per message, sender side
    recv_overhead: float  # seconds of CPU per message, receiver side
    handshake_rtts: float  # round trips paid by the rendezvous handshake
    #: effective bandwidth of the eager protocol's buffer copies
    eager_copy_bandwidth: float
    #: achieved fraction of path bandwidth on large transfers
    wire_efficiency: float
    #: default measurement noise (std-dev of the lognormal factor)
    noise: float

    def config(self, **overrides) -> SmpiConfig:
        """An :class:`SmpiConfig` carrying this implementation's protocol."""
        base = SmpiConfig(
            eager_threshold=self.eager_threshold,
            send_overhead=self.send_overhead,
            recv_overhead=self.recv_overhead,
            handshake_rtts=self.handshake_rtts,
            eager_copy_bandwidth=self.eager_copy_bandwidth,
            wire_efficiency=self.wire_efficiency,
        )
        return base.with_options(**overrides) if overrides else base


#: OpenMPI 1.x over TCP: 64 KiB eager limit, lean per-message path.
OPENMPI = MpiImplementation(
    name="OpenMPI",
    eager_threshold=64 * 1024,
    send_overhead=3.0e-6,
    recv_overhead=2.0e-6,
    handshake_rtts=1.0,
    eager_copy_bandwidth=180e6,
    wire_efficiency=0.995,
    noise=0.02,
)

#: MPICH2 over TCP (ch3:sock): same 64 KiB switch, slightly heavier
#: per-message costs and a chattier rendezvous.
MPICH2 = MpiImplementation(
    name="MPICH2",
    eager_threshold=64 * 1024,
    send_overhead=4.5e-6,
    recv_overhead=3.0e-6,
    handshake_rtts=1.25,
    eager_copy_bandwidth=160e6,
    wire_efficiency=0.955,
    noise=0.02,
)
