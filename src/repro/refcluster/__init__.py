"""refcluster — the simulated stand-in for the paper's real testbeds.

The paper validates SMPI against OpenMPI and MPICH2 running on Grid'5000
clusters.  Without that hardware, this package provides the equivalent:
behavioural parameter sets for the two MPI implementations
(:mod:`repro.refcluster.mpimodel`), executed over the packet-level
network simulator (:mod:`repro.packetsim`) with reproducible measurement
noise.  ``run_reference`` runs any simulated-MPI application "on the real
cluster"; :mod:`repro.refcluster.skampi` runs the ping-pong calibration
campaigns of paper section 6.
"""

from .mpimodel import MPICH2, OPENMPI, MpiImplementation
from .skampi import PingPongCampaign, run_pingpong_campaign
from .testbed import run_reference

__all__ = [
    "MPICH2",
    "MpiImplementation",
    "OPENMPI",
    "PingPongCampaign",
    "run_pingpong_campaign",
    "run_reference",
]
