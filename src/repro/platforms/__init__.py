"""The two Grid'5000 clusters of the paper's evaluation (section 7)."""

from .gdx import gdx, gdx_distant_pair, gdx_same_switch_pair
from .griffon import griffon

__all__ = ["gdx", "gdx_distant_pair", "gdx_same_switch_pair", "griffon"]
