"""The griffon cluster (Grid'5000, Nancy) — the calibration platform.

Paper section 7: *"The griffon cluster comprises 92 2.5 GHz Dual-Proc,
Quad-Core, Intel Xeon L5420 nodes.  These nodes are divided into three
cabinets that contain 33, 27, and 32 nodes respectively.  Each cabinet
has its own switch and these switches are then interconnected through a
10 Gigabit second-level switch."*

Links are Gigabit Ethernet (125 MB/s); the second-level backbone is
10 GbE.  The cabinet switch fabric is modelled as a shared 2 Gb backbone —
the construct SimGrid cluster descriptions use — which is what makes
concurrent scatter/all-to-all transfers contend (the per-process
staircases of Figs. 7/11 come from exactly this).  Node speed: 2 sockets × 4 cores of a 2.5 GHz Xeon L5420 — we
model 4 flop/cycle/core, i.e. 10 Gf per core, 8 cores.
"""

from __future__ import annotations

from ..surf.platform import Platform, multi_cabinet_cluster

__all__ = ["griffon", "CABINETS"]

CABINETS = (33, 27, 32)


def griffon(n_nodes: int | None = None) -> Platform:
    """Build the griffon platform (optionally truncated to ``n_nodes``).

    Truncation keeps whole cabinets plus a partial last cabinet, like
    reserving a subset of the real cluster.
    """
    sizes = list(CABINETS)
    if n_nodes is not None:
        if n_nodes < 1 or n_nodes > sum(CABINETS):
            raise ValueError(f"griffon has 1..{sum(CABINETS)} nodes, not {n_nodes}")
        sizes = []
        remaining = n_nodes
        for cab in CABINETS:
            take = min(cab, remaining)
            if take:
                sizes.append(take)
            remaining -= take
    return multi_cabinet_cluster(
        "griffon",
        sizes,
        host_speed="10Gf",
        cores=8,
        memory="16GiB",
        link_bandwidth="125MBps",
        link_latency="50us",
        cabinet_backbone_bandwidth="250MBps",
        cabinet_backbone_latency="15us",
        uplink_bandwidth="1.25GBps",
        uplink_latency="5us",
        core_backbone_bandwidth="1.25GBps",
        core_backbone_latency="15us",
        prefix="griffon-",
    )
