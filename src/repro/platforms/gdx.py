"""The gdx cluster (Grid'5000, Orsay).

Paper section 7: *"The gdx cluster comprises 312 2.0 GHz Dual-Proc AMD
Opteron 246 scattered across 36 cabinets.  Two cabinets share a common
switch and all these switches are connected to a single second level
switch through Ethernet 1 Gigabit links.  Consequently a communication
between two nodes located in two distant cabinets goes through three
different switches."*

36 cabinets sharing switches pairwise = 18 switches; we model 18
"switch groups" of ~17-18 nodes each.  All links, including the uplinks
to the second-level switch, are 1 GbE — the uplinks are the same speed
as the access links, unlike griffon's 10 G core.
"""

from __future__ import annotations

from ..surf.platform import Platform, multi_cabinet_cluster

__all__ = ["gdx", "gdx_same_switch_pair", "gdx_distant_pair", "SWITCH_GROUPS"]

#: 312 nodes over 18 switches (36 cabinets paired two-per-switch)
SWITCH_GROUPS = tuple([18] * 6 + [17] * 12)
assert sum(SWITCH_GROUPS) == 312


def gdx(n_nodes: int | None = None) -> Platform:
    """Build the gdx platform (optionally truncated to ``n_nodes``)."""
    sizes = list(SWITCH_GROUPS)
    if n_nodes is not None:
        if n_nodes < 1 or n_nodes > sum(SWITCH_GROUPS):
            raise ValueError(f"gdx has 1..{sum(SWITCH_GROUPS)} nodes, not {n_nodes}")
        sizes = []
        remaining = n_nodes
        for group in SWITCH_GROUPS:
            take = min(group, remaining)
            if take:
                sizes.append(take)
            remaining -= take
    return multi_cabinet_cluster(
        "gdx",
        sizes,
        host_speed="4Gf",  # 2.0 GHz Opteron 246, 2 flop/cycle, per core
        cores=2,
        memory="16GiB",
        link_bandwidth="125MBps",
        link_latency="50us",
        cabinet_backbone_bandwidth="250MBps",
        cabinet_backbone_latency="15us",
        uplink_bandwidth="125MBps",  # 1 GbE uplinks (paper)
        uplink_latency="5us",
        core_backbone_bandwidth="1.25GBps",
        core_backbone_latency="15us",
        prefix="gdx-",
    )


def gdx_same_switch_pair() -> tuple[str, str]:
    """Two nodes behind the same switch (1 switch on the path, Fig. 4)."""
    return "gdx-0", "gdx-1"


def gdx_distant_pair() -> tuple[str, str]:
    """Two nodes in distant cabinets (3 switches on the path, Fig. 5)."""
    return "gdx-0", "gdx-300"
