"""Flatten sweep results into analysis-ready tables.

Per-point rows carry the full coordinate of each run (platform,
workload, every axis value) next to its metrics, so the CSV/JSON output
loads straight into pandas/R for the PAPERS-style sensitivity plots; a
small :func:`sensitivity` helper covers the common "mean metric per axis
value" question without leaving Python.
"""

from __future__ import annotations

import csv
import io
import json

from .runner import SweepResult
from .spec import _thaw

__all__ = ["result_rows", "rows_to_csv", "rows_to_json", "format_table",
           "sensitivity"]

#: EngineStats counters surfaced as table columns (the full set stays
#: available on each PointResult.stats)
_STAT_COLUMNS = ("steps", "shares", "flows_resolved", "fill_rounds",
                 "ctx_switches")


def result_rows(result: SweepResult) -> list[dict]:
    """One flat dict per point: coordinates, metrics, cache status."""
    axes = result.spec.axis_names()
    rows = []
    for point_result in result.points:
        point = point_result.point
        values = point.config_items()
        row = {
            "point": point.index,
            "platform": point.platform.label(),
            "workload": point.workload.label(),
            "n": point.workload.n,
        }
        for axis in axes:
            row[axis] = values.get(axis)
        row.update({
            "simulated_time": point_result.simulated_time,
            "rank0": point_result.rank0,
            "wall_time": point_result.wall_time,
            "cached": point_result.cached,
            "error": point_result.error,
        })
        for name in _STAT_COLUMNS:
            row[name] = (getattr(point_result.stats, name)
                         if point_result.stats is not None else None)
        rows.append(row)
    return rows


def rows_to_csv(rows: list[dict]) -> str:
    """Serialize :func:`result_rows` output as CSV text."""
    if not rows:
        return ""
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=list(rows[0]))
    writer.writeheader()
    for row in rows:
        writer.writerow({k: _cell(v) for k, v in row.items()})
    return buf.getvalue()


def rows_to_json(rows: list[dict]) -> str:
    """Serialize :func:`result_rows` output as a JSON array."""
    return json.dumps([{k: _cell(v) for k, v in row.items()} for row in rows],
                      indent=1)


def _cell(value):
    if isinstance(value, tuple):
        return _thaw(value)
    return value


def format_table(rows: list[dict], max_width: int = 28) -> str:
    """An aligned plain-text table (the ``sweep report`` default)."""
    if not rows:
        return "(no rows)"
    columns = [c for c in rows[0]
               if any(row[c] is not None for row in rows)]
    rendered = [
        {c: _format_value(row[c])[:max_width] for c in columns}
        for row in rows
    ]
    widths = {c: max(len(c), *(len(r[c]) for r in rendered))
              for c in columns}
    lines = ["  ".join(c.ljust(widths[c]) for c in columns)]
    lines.append("  ".join("-" * widths[c] for c in columns))
    for r in rendered:
        lines.append("  ".join(r[c].ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def _format_value(value) -> str:
    if value is None:
        return ""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(_cell(value))


def sensitivity(rows: list[dict], axis: str,
                metric: str = "simulated_time") -> dict:
    """Mean ``metric`` per value of ``axis`` (errored rows excluded).

    The one-question version of a sensitivity analysis: how much does
    the outcome move when a single axis moves?
    """
    groups: dict = {}
    for row in rows:
        if row.get("error") or row.get(metric) is None:
            continue
        groups.setdefault(row.get(axis), []).append(row[metric])
    return {value: sum(samples) / len(samples)
            for value, samples in groups.items()}
