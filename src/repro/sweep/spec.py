"""Declarative sweep specifications and their deterministic expansion.

A *sweep spec* names the grid the Cornebize & Legrand methodology needs
("Variability Matters", PAPERS.md): platforms x workloads x SMPI-config
axes, written once in TOML or JSON and expanded into an explicit run
matrix.  Expansion is deterministic — platforms and workloads in listed
order, axes in sorted-key order with values in listed order — so point
indices, labels, and memo-cache keys are stable across processes and
machines.

Grammar (TOML shown; the JSON form is the same object tree)::

    name = "eager-sensitivity"

    [[platforms]]
    spec = "cluster:8:125MBps:50us"      # same grammar as --platform

    [[platforms]]
    spec = "griffon"
    availability = ["grif-0-0-l=wave.trace"]   # optional fault scripting
    fail_at = ["0.5:grif-1-0-l"]

    [[workloads]]
    builtin = "pingpong"                 # or  file = "my_app.py"
    n = 2
    params = { size = 65536, reps = 4 }  # builtin knobs / file entry+args

    [axes]                               # each key -> list of values
    eager_threshold = [4096, 65536]
    sharing = ["exact", "approx"]
    "coll.alltoall" = ["pairwise", "auto"]

    [options]                            # fixed SmpiConfig fields
    comm_retries = 1

Axis keys are :class:`~repro.smpi.config.SmpiConfig` field names, the
execution-context selector ``ctx``, or ``coll.<collective>`` entries
feeding ``coll_algorithms``.  Unknown keys are rejected at load time.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import ConfigError
from ..smpi import SmpiConfig

__all__ = ["PlatformSpec", "WorkloadSpec", "SweepPoint", "SweepSpec"]

#: axis keys handled outside SmpiConfig (execution backend selection)
_ENGINE_AXES = frozenset({"ctx"})

#: valid --ctx values (mirrors the CLI choices)
_CTX_VALUES = ("auto", "coroutine", "greenlet", "thread")


def _freeze(value):
    """Mappings/lists to sorted tuples so axis values hash and compare."""
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


def _thaw(value):
    """Inverse of :func:`_freeze` for key-value tuple trees."""
    if isinstance(value, tuple) and value and all(
        isinstance(item, tuple) and len(item) == 2 and isinstance(item[0], str)
        for item in value
    ):
        return {k: _thaw(v) for k, v in value}
    if isinstance(value, tuple):
        return [_thaw(v) for v in value]
    return value


@dataclass(frozen=True)
class PlatformSpec:
    """One platform axis value: a ``--platform`` spec plus fault scripting.

    ``availability``/``state_profile`` are ``RESOURCE=FILE`` pairs and
    ``fail_at``/``restore_at`` are ``TIME:RESOURCE`` pairs — the exact
    grammars of the CLI fault flags (docs/faults.md); files are resolved
    relative to the spec file.
    """

    spec: str
    availability: tuple[str, ...] = ()
    state_profile: tuple[str, ...] = ()
    fail_at: tuple[str, ...] = ()
    restore_at: tuple[str, ...] = ()

    def label(self) -> str:
        """Short human-readable identifier used in tables and reports."""
        name = self.spec.replace(":", "-")
        if self.is_dynamic():
            name += "+faults"
        return name

    def is_dynamic(self) -> bool:
        """Whether this platform carries profiles or scripted events."""
        return bool(self.availability or self.state_profile
                    or self.fail_at or self.restore_at)


@dataclass(frozen=True)
class WorkloadSpec:
    """One workload axis value: a built-in app or a Python file.

    Built-ins come from :mod:`repro.sweep.workloads` and take ``params``
    keyword knobs; file workloads name an ``entry`` function (default
    ``app``) receiving ``app(mpi, *args)``.  ``n`` is the MPI rank count.
    """

    n: int
    builtin: str | None = None
    file: str | None = None
    entry: str = "app"
    params: tuple = ()
    args: tuple = ()

    def __post_init__(self) -> None:
        if (self.builtin is None) == (self.file is None):
            raise ConfigError(
                "a workload needs exactly one of 'builtin' or 'file'")
        if self.n < 1:
            raise ConfigError("workload rank count 'n' must be >= 1")

    def label(self) -> str:
        """Short human-readable identifier used in tables and reports."""
        base = self.builtin if self.builtin else Path(self.file).stem
        return f"{base}/n{self.n}"


@dataclass(frozen=True)
class SweepPoint:
    """One cell of the expanded run matrix.

    ``assignment`` holds this point's axis values (sorted by axis key);
    ``fixed`` the spec-wide ``[options]``.  :meth:`smpi_config` and
    :meth:`ctx` translate both into the runtime's vocabulary.
    """

    index: int
    platform: PlatformSpec
    workload: WorkloadSpec
    assignment: tuple = ()
    fixed: tuple = ()
    trace: bool = False

    def config_items(self) -> dict:
        """Fixed options overlaid with this point's axis assignment."""
        merged = dict(self.fixed)
        merged.update(dict(self.assignment))
        return {k: _thaw(v) for k, v in merged.items()}

    def smpi_config(self) -> SmpiConfig:
        """The :class:`SmpiConfig` this point simulates under."""
        options: dict = {}
        coll: dict = {}
        for key, value in self.config_items().items():
            if key in _ENGINE_AXES:
                continue
            if key.startswith("coll."):
                coll[key[len("coll."):]] = value
            else:
                options[key] = value
        if coll:
            options["coll_algorithms"] = coll
        if self.trace:
            options["tracing"] = True
        return SmpiConfig(**options)

    def ctx(self) -> str | None:
        """The execution-context backend, when the ``ctx`` axis is set."""
        return self.config_items().get("ctx")

    def label(self) -> str:
        """Stable human-readable identifier, e.g. for status listings."""
        parts = [self.platform.label(), self.workload.label()]
        parts += [f"{k}={_thaw(v)}" for k, v in self.assignment]
        return " ".join(parts)


def _validate_axis_key(key: str) -> None:
    if key in _ENGINE_AXES or key.startswith("coll."):
        return
    if key in ("coll_algorithms", "tracing"):
        raise ConfigError(
            f"axis {key!r}: use 'coll.<collective>' axes for algorithm "
            "selection and the spec-level 'trace' switch for tracing")
    if key not in SmpiConfig.__dataclass_fields__:
        raise ConfigError(
            f"unknown sweep axis {key!r}: expected an SmpiConfig field, "
            "'ctx', or 'coll.<collective>'")


@dataclass
class SweepSpec:
    """A parsed sweep specification (see the module docstring grammar)."""

    name: str
    platforms: list[PlatformSpec]
    workloads: list[WorkloadSpec]
    axes: dict[str, list] = field(default_factory=dict)
    options: dict = field(default_factory=dict)
    trace: bool = False
    #: directory spec-relative paths (workload files, profiles) resolve
    #: against; the directory of the spec file when loaded from disk
    base_dir: Path = field(default_factory=Path)

    def __post_init__(self) -> None:
        if not self.platforms:
            raise ConfigError("sweep spec lists no platforms")
        if not self.workloads:
            raise ConfigError("sweep spec lists no workloads")
        for key, values in self.axes.items():
            _validate_axis_key(key)
            if not isinstance(values, (list, tuple)) or not values:
                raise ConfigError(
                    f"axis {key!r} must map to a non-empty list of values")
        for key in self.options:
            _validate_axis_key(key)
        self.base_dir = Path(self.base_dir)

    # -- loading ---------------------------------------------------------------

    @classmethod
    def from_dict(cls, data: dict, base_dir: str | Path = ".") -> "SweepSpec":
        """Build a spec from the TOML/JSON object tree."""
        if not isinstance(data, dict):
            raise ConfigError("sweep spec must be a table/object at top level")
        unknown = set(data) - {"name", "platforms", "workloads", "axes",
                               "options", "trace"}
        if unknown:
            raise ConfigError(f"unknown sweep spec keys: {sorted(unknown)}")
        platforms = []
        for entry in data.get("platforms", []):
            if isinstance(entry, str):
                entry = {"spec": entry}
            bad = set(entry) - {"spec", "availability", "state_profile",
                                "fail_at", "restore_at"}
            if bad or "spec" not in entry:
                raise ConfigError(f"bad platform entry {entry!r}")
            platforms.append(PlatformSpec(
                spec=entry["spec"],
                availability=tuple(entry.get("availability", ())),
                state_profile=tuple(entry.get("state_profile", ())),
                fail_at=tuple(entry.get("fail_at", ())),
                restore_at=tuple(entry.get("restore_at", ())),
            ))
        workloads = []
        for entry in data.get("workloads", []):
            bad = set(entry) - {"builtin", "file", "entry", "n", "params",
                                "args"}
            if bad:
                raise ConfigError(f"bad workload keys {sorted(bad)}")
            if "n" not in entry:
                raise ConfigError(f"workload {entry!r} misses rank count 'n'")
            workloads.append(WorkloadSpec(
                n=int(entry["n"]),
                builtin=entry.get("builtin"),
                file=entry.get("file"),
                entry=entry.get("entry", "app"),
                params=_freeze(entry.get("params", {})),
                args=_freeze(entry.get("args", [])),
            ))
        return cls(
            name=data.get("name", "sweep"),
            platforms=platforms,
            workloads=workloads,
            axes={k: list(v) for k, v in data.get("axes", {}).items()},
            options=dict(data.get("options", {})),
            trace=bool(data.get("trace", False)),
            base_dir=base_dir,
        )

    @classmethod
    def load(cls, path: str | Path) -> "SweepSpec":
        """Load a ``.toml`` or ``.json`` spec file.

        TOML needs Python 3.11+ (:mod:`tomllib`); JSON works everywhere.
        Relative paths inside the spec resolve against the spec file's
        directory.
        """
        file = Path(path)
        if not file.exists():
            raise ConfigError(f"sweep spec {str(path)!r} not found")
        text = file.read_text(encoding="utf-8")
        if file.suffix == ".toml":
            try:
                import tomllib
            except ImportError:  # pragma: no cover - Python < 3.11 only
                raise ConfigError(
                    "TOML sweep specs need Python 3.11+ (tomllib); "
                    "rewrite the spec as JSON or upgrade")
            try:
                data = tomllib.loads(text)
            except tomllib.TOMLDecodeError as exc:
                raise ConfigError(f"bad TOML in {file.name}: {exc}")
        else:
            try:
                data = json.loads(text)
            except json.JSONDecodeError as exc:
                raise ConfigError(f"bad JSON in {file.name}: {exc}")
        return cls.from_dict(data, base_dir=file.parent)

    # -- expansion -------------------------------------------------------------

    def axis_names(self) -> list[str]:
        """Axis keys in expansion (sorted) order."""
        return sorted(self.axes)

    def expand(self) -> list[SweepPoint]:
        """The deterministic run matrix.

        Point order — and therefore point indices — is platforms (listed
        order) x workloads (listed order) x axes (sorted keys, values in
        listed order), so the same spec always yields the same matrix.
        """
        keys = self.axis_names()
        fixed = _freeze(self.options)
        value_grid = [self.axes[k] for k in keys]
        points = []
        for platform, workload in itertools.product(self.platforms,
                                                    self.workloads):
            for combo in itertools.product(*value_grid):
                assignment = tuple(
                    (k, _freeze(v)) for k, v in zip(keys, combo))
                point = SweepPoint(
                    index=len(points), platform=platform, workload=workload,
                    assignment=assignment, fixed=fixed, trace=self.trace,
                )
                point.smpi_config()  # validate axis values eagerly
                ctx = point.ctx()
                if ctx is not None and ctx not in _CTX_VALUES:
                    raise ConfigError(
                        f"bad ctx value {ctx!r}: expected one of "
                        f"{_CTX_VALUES}")
                points.append(point)
        return points

    def describe(self) -> str:
        """One-line shape summary, e.g. ``12 points (2x1x6)``."""
        n_configs = 1
        for values in self.axes.values():
            n_configs *= len(values)
        total = len(self.platforms) * len(self.workloads) * n_configs
        return (f"{total} points ({len(self.platforms)} platforms x "
                f"{len(self.workloads)} workloads x {n_configs} configs)")
