"""Size x ranks x algorithm collective sweeps (``repro coll sweep``).

The param-comms-style front end over the generic sweep engine: a
geometric message-size ladder (``--b/--e/--f``), a list of rank counts
and a list of algorithms expand into one :class:`~repro.sweep.spec.SweepSpec`
whose points run the ``coll`` builtin workload.  Because it is a plain
spec, the ProcessPool fan-out, content-hash memo cache and report
tooling apply unchanged; this module only adds the collective-flavoured
row shape (latency/bandwidth per (size, nprocs, algorithm)) and the
crossover analysis that ROADMAP item 4's auto-tuner will consume.
"""

from __future__ import annotations

from ..errors import ConfigError
from ..units import parse_size
from .runner import SweepResult
from .spec import SweepSpec

__all__ = ["size_ladder", "coll_sweep_spec", "coll_rows", "best_algorithms",
           "crossovers"]


def size_ladder(begin, end, factor: float = 2.0) -> list[int]:
    """Geometric ladder of message sizes in bytes (param-comms ``--b/--e/--f``).

    ``begin``/``end`` accept ints or SimGrid-style strings (``"1KiB"``);
    ``factor`` is the multiplicative step.  The ladder always includes
    ``begin`` and stops at the last value ``<= end``.
    """
    lo = int(parse_size(begin))
    hi = int(parse_size(end))
    step = float(factor)
    if lo < 1:
        raise ConfigError("size ladder must start at >= 1 byte")
    if hi < lo:
        raise ConfigError(f"size ladder end {hi} below begin {lo}")
    if step <= 1.0:
        raise ConfigError("size ladder factor must be > 1")
    sizes = []
    current = lo
    while current <= hi:
        sizes.append(current)
        current = max(current + 1, int(round(current * step)))
    return sizes


def coll_sweep_spec(
    collective: str = "allreduce",
    sizes=(65536,),
    nprocs=(8,),
    algos=("auto",),
    platform: str = "griffon",
    warmup: int = 1,
    iters: int = 3,
    name: str | None = None,
) -> SweepSpec:
    """Build the sweep spec for a size x ranks x algorithm campaign.

    One ``coll``-builtin workload per (size, nprocs) pair, one
    ``coll.<collective>`` axis carrying the algorithms — so every
    (size, nprocs, algorithm) cell is a separately memoized point.
    Algorithm names are validated eagerly against the
    :data:`repro.smpi.coll.ALGORITHMS` registry.
    """
    from ..smpi.coll import ALGORITHMS

    if collective not in ALGORITHMS:
        raise ConfigError(
            f"unknown collective {collective!r}; "
            f"available: {sorted(ALGORITHMS)}")
    known = set(ALGORITHMS[collective]) | {"auto"}
    bad = [a for a in algos if a not in known]
    if bad:
        raise ConfigError(
            f"unknown {collective} algorithm(s) {bad}; "
            f"available: {sorted(known)}")
    workloads = [
        {
            "builtin": "coll",
            "n": int(n),
            "params": {
                "collective": collective,
                "size": int(size),
                "warmup": int(warmup),
                "iters": int(iters),
            },
        }
        for n in nprocs
        for size in sizes
    ]
    return SweepSpec.from_dict({
        "name": name or f"coll-{collective}",
        "platforms": [{"spec": platform}],
        "workloads": workloads,
        "axes": {f"coll.{collective}": list(algos)},
    })


def coll_rows(result: SweepResult) -> list[dict]:
    """Per-(size, nprocs, algorithm) latency/bandwidth rows.

    ``latency`` is the ``coll`` workload's per-iteration simulated
    seconds (rank 0's return value); ``bandwidth`` the per-rank payload
    bytes over that latency.  Rows keep cache status and errors so the
    CLI can surface both.
    """
    axis_keys = [k for k in result.spec.axes if k.startswith("coll.")]
    rows = []
    for point_result in result.points:
        point = point_result.point
        params = dict(point.workload.params)
        assignment = dict(point.assignment)
        algorithm = assignment.get(axis_keys[0]) if axis_keys else None
        size = int(params.get("size", 0))
        latency = point_result.rank0
        rows.append({
            "platform": point.platform.label(),
            "collective": params.get("collective", "?"),
            "size": size,
            "n": point.workload.n,
            "algorithm": algorithm,
            "latency": latency,
            "bandwidth": (size / latency) if latency and size else None,
            "cached": point_result.cached,
            "error": point_result.error,
        })
    return rows


def best_algorithms(rows: list[dict]) -> list[dict]:
    """The lowest-latency algorithm per (platform, n, size) cell.

    The decision-table shape the future ``repro tune`` consumes: one row
    per cell with the winning algorithm and its margin over the
    runner-up (``margin = runner_up_latency / best_latency``).
    """
    cells: dict = {}
    for row in rows:
        if row["error"] or row["latency"] is None:
            continue
        key = (row["platform"], row["n"], row["size"])
        cells.setdefault(key, []).append(row)
    table = []
    for (platform, n, size) in sorted(cells):
        # break exact-latency ties by name so degenerate pairs (e.g.
        # two_level collapsing to recursive_doubling on a flat cluster)
        # don't read as crossovers
        contenders = sorted(cells[(platform, n, size)],
                            key=lambda r: (r["latency"], r["algorithm"]))
        best = contenders[0]
        margin = (contenders[1]["latency"] / best["latency"]
                  if len(contenders) > 1 and best["latency"] > 0 else None)
        table.append({
            "platform": platform, "n": n, "size": size,
            "best": best["algorithm"], "latency": best["latency"],
            "margin": margin,
        })
    return table


def crossovers(rows: list[dict]) -> list[dict]:
    """Size thresholds where the winning algorithm changes.

    For each (platform, n) series, walks the size ladder in order and
    reports every point where the best algorithm differs from the
    previous size — the crossover points an auto-tuner turns into
    selection rules.
    """
    best = best_algorithms(rows)
    series: dict = {}
    for row in best:
        series.setdefault((row["platform"], row["n"]), []).append(row)
    found = []
    for (platform, n), cells in sorted(series.items()):
        cells.sort(key=lambda r: r["size"])
        for prev, cell in zip(cells, cells[1:]):
            if cell["best"] != prev["best"]:
                found.append({
                    "platform": platform, "n": n,
                    "below_size": prev["size"], "below_best": prev["best"],
                    "above_size": cell["size"], "above_best": cell["best"],
                })
    return found
