"""Built-in sweep workloads: small, parameterized MPI kernels.

Sweep specs can name these instead of shipping an application file
(``builtin = "pingpong"``), which keeps campaign definitions
self-contained.  Every workload is written in the generator dialect so
it runs on the default coroutine execution context — no OS thread per
rank — and takes its knobs as keyword parameters (``params`` in the
spec).

The memo cache fingerprints a built-in by the *source text* of its
factory (:func:`fingerprint`), so editing a workload here invalidates
exactly the cached results that depended on it.
"""

from __future__ import annotations

import hashlib
import inspect

import numpy as np

from ..errors import ConfigError

__all__ = ["WORKLOADS", "resolve", "fingerprint"]


def pingpong(size: int = 64 * 1024, reps: int = 4):
    """Rank 0 <-> rank 1 ping-pong of ``size`` bytes, ``reps`` rounds.

    The classic SKaMPI kernel: latency- or bandwidth-bound depending on
    ``size``, ideal for calibration-sensitivity sweeps.  Other ranks
    idle.
    """
    words = max(1, size // 8)

    def app(mpi):
        comm = mpi.COMM_WORLD
        buf = np.zeros(words)
        if mpi.rank == 0:
            for _ in range(reps):
                yield from comm.co.Send(buf, dest=1, tag=7)
                yield from comm.co.Recv(buf, source=1, tag=7)
        elif mpi.rank == 1:
            for _ in range(reps):
                yield from comm.co.Recv(buf, source=0, tag=7)
                yield from comm.co.Send(buf, dest=0, tag=7)
        return float(buf[0])

    return app


def ring(size: int = 16 * 1024, rounds: int = 2):
    """Each rank sends ``size`` bytes to its successor, ``rounds`` laps.

    Every link of the (logical) ring is busy at once, so this kernel
    exercises contention and the bandwidth-sharing dial.
    """
    words = max(1, size // 8)

    def app(mpi):
        comm = mpi.COMM_WORLD
        right = (mpi.rank + 1) % mpi.size
        left = (mpi.rank - 1) % mpi.size
        out = np.full(words, float(mpi.rank))
        inbox = np.zeros(words)
        for _ in range(rounds):
            yield from comm.co.Sendrecv(out, right, 3, inbox, left, 3)
        return float(inbox[0])

    return app


def allreduce(size: int = 32 * 1024, reps: int = 2, flops: float = 0.0):
    """Allreduce of ``size`` bytes, ``reps`` iterations, optional compute.

    The data-parallel-SGD shape: a compute burst (``flops`` per rank per
    iteration) followed by a global sum — the kernel collective-algorithm
    sweeps care about.
    """
    words = max(1, size // 8)

    def app(mpi):
        comm = mpi.COMM_WORLD
        grad = np.full(words, 1.0)
        total = np.zeros(words)
        for _ in range(reps):
            if flops > 0:
                yield from mpi.co.execute(flops)
            yield from comm.co.Allreduce(grad, total)
        return float(total[0])

    return app


#: registry of built-in workload factories, by spec ``builtin`` name
WORKLOADS = {
    "pingpong": pingpong,
    "ring": ring,
    "allreduce": allreduce,
}


def resolve(name: str, params: dict | None = None):
    """The app callable for built-in ``name`` with ``params`` applied."""
    try:
        factory = WORKLOADS[name]
    except KeyError:
        raise ConfigError(
            f"unknown builtin workload {name!r}; "
            f"available: {sorted(WORKLOADS)}")
    try:
        return factory(**(params or {}))
    except TypeError as exc:
        raise ConfigError(f"bad params for builtin {name!r}: {exc}")


def fingerprint(name: str) -> str:
    """Content hash of the builtin's factory source (cache-key input)."""
    if name not in WORKLOADS:
        raise ConfigError(f"unknown builtin workload {name!r}")
    source = inspect.getsource(WORKLOADS[name])
    return hashlib.sha256(source.encode("utf-8")).hexdigest()
