"""Built-in sweep workloads: small, parameterized MPI kernels.

Sweep specs can name these instead of shipping an application file
(``builtin = "pingpong"``), which keeps campaign definitions
self-contained.  Every workload is written in the generator dialect so
it runs on the default coroutine execution context — no OS thread per
rank — and takes its knobs as keyword parameters (``params`` in the
spec).

The memo cache fingerprints a built-in by the *source text* of its
factory (:func:`fingerprint`), so editing a workload here invalidates
exactly the cached results that depended on it.
"""

from __future__ import annotations

import hashlib
import inspect
import math

import numpy as np

from ..errors import ConfigError

__all__ = ["WORKLOADS", "resolve", "fingerprint"]


def pingpong(size: int = 64 * 1024, reps: int = 4):
    """Rank 0 <-> rank 1 ping-pong of ``size`` bytes, ``reps`` rounds.

    The classic SKaMPI kernel: latency- or bandwidth-bound depending on
    ``size``, ideal for calibration-sensitivity sweeps.  Other ranks
    idle.
    """
    words = max(1, size // 8)

    def app(mpi):
        comm = mpi.COMM_WORLD
        buf = np.zeros(words)
        if mpi.rank == 0:
            for _ in range(reps):
                yield from comm.co.Send(buf, dest=1, tag=7)
                yield from comm.co.Recv(buf, source=1, tag=7)
        elif mpi.rank == 1:
            for _ in range(reps):
                yield from comm.co.Recv(buf, source=0, tag=7)
                yield from comm.co.Send(buf, dest=0, tag=7)
        return float(buf[0])

    return app


def ring(size: int = 16 * 1024, rounds: int = 2):
    """Each rank sends ``size`` bytes to its successor, ``rounds`` laps.

    Every link of the (logical) ring is busy at once, so this kernel
    exercises contention and the bandwidth-sharing dial.
    """
    words = max(1, size // 8)

    def app(mpi):
        comm = mpi.COMM_WORLD
        right = (mpi.rank + 1) % mpi.size
        left = (mpi.rank - 1) % mpi.size
        out = np.full(words, float(mpi.rank))
        inbox = np.zeros(words)
        for _ in range(rounds):
            yield from comm.co.Sendrecv(out, right, 3, inbox, left, 3)
        return float(inbox[0])

    return app


def allreduce(size: int = 32 * 1024, reps: int = 2, flops: float = 0.0):
    """Allreduce of ``size`` bytes, ``reps`` iterations, optional compute.

    The data-parallel-SGD shape: a compute burst (``flops`` per rank per
    iteration) followed by a global sum — the kernel collective-algorithm
    sweeps care about.
    """
    words = max(1, size // 8)

    def app(mpi):
        comm = mpi.COMM_WORLD
        grad = np.full(words, 1.0)
        total = np.zeros(words)
        for _ in range(reps):
            if flops > 0:
                yield from mpi.co.execute(flops)
            yield from comm.co.Allreduce(grad, total)
        return float(total[0])

    return app


def hpl(n: int = 4096, nb: int = 256, pivot: bool = False):
    """HPL (LINPACK) communication skeleton on a P x Q process grid.

    The benchmark the paper's scale argument is about: right-looking LU
    with ``n/nb`` panel steps.  Each step factorizes the panel on its
    owner column (compute), pipelines the panel along the process row (a
    ring broadcast of identical blocks — the payload interner folds the
    copies across all rows), then charges every rank its share of the
    trailing-matrix update, which shrinks as the factorization advances.
    ``pivot=True`` adds a per-step row exchange (partial-pivoting
    traffic).  A *skeleton*: the numerics are placeholders; the message
    pattern, sizes and flop counts scale like the real benchmark's.

    The panel buffer is a folded ``shared_malloc`` block (the paper's
    ``SMPI_SHARED_MALLOC``): at 10k+ ranks the working set stays one
    panel, not one per rank, which is what keeps the scale benchmark
    (``benchmarks/bench_scale_ranks.py``) inside a single node.
    """
    panel_words = max(1, nb * nb)

    def app(mpi):
        size = mpi.size
        p = max(1, int(math.sqrt(size)))
        while size % p:
            p -= 1
        q = size // p
        row, col = divmod(mpi.rank, q)
        comm = mpi.COMM_WORLD
        panel = mpi.shared_malloc("hpl-panel", panel_words)
        n_panels = max(1, n // nb)
        for k in range(n_panels):
            frac = 1.0 - k / n_panels  # trailing-matrix fraction left
            owner_col = k % q
            rows_below = max(nb, int(n * frac))
            if col == owner_col:
                # panel factorization on the owning column
                yield from mpi.co.execute(2.0 * nb * nb * rows_below / p)
            if q > 1:
                # pipelined ring broadcast along the process row
                right = row * q + (col + 1) % q
                left = row * q + (col - 1) % q
                if col == owner_col:
                    yield from comm.co.Send(panel, dest=right, tag=k)
                else:
                    yield from comm.co.Recv(panel, source=left, tag=k)
                    if (col + 1) % q != owner_col:
                        yield from comm.co.Send(panel, dest=right, tag=k)
            if pivot and p > 1:
                # partial-pivoting row exchange: shift a pivot row down
                # the process column (circularly), receive from above
                down = ((row + 1) % p) * q + col
                up = ((row - 1) % p) * q + col
                swap = panel[: max(1, nb)]
                yield from comm.co.Sendrecv(swap, down, n_panels + k,
                                            swap, up, n_panels + k)
            # trailing-matrix update: this rank's share of 2*m*n*NB flops
            local_rows = n * frac / p
            local_cols = n * frac / q
            yield from mpi.co.execute(2.0 * nb * local_rows * local_cols)
        return float(panel[0])

    return app


def coll(collective: str = "allreduce", size: int = 64 * 1024,
         warmup: int = 1, iters: int = 3):
    """Timed collective micro-benchmark (param-comms shape).

    Runs ``warmup`` untimed iterations of ``collective`` on ``size``
    bytes per rank, then times ``iters`` barrier-fenced iterations and
    returns the average *simulated* seconds per iteration — the latency
    figure ``repro coll sweep`` turns into per-(size, nprocs, algorithm)
    rows.  The algorithm under test is selected by the sweep's
    ``coll.<collective>`` axis, not by a workload knob, so one cached
    simulation exists per algorithm.  Buffers are ``shared_malloc``-
    folded; warmup also absorbs one-time costs such as the hierarchical
    allreduce's subcommunicator creation.
    """
    words = max(1, int(size) // 8)

    def app(mpi):
        comm = mpi.COMM_WORLD
        n = mpi.size
        fan_out = n if collective in ("allgather", "alltoall") else 1
        send = mpi.shared_malloc("coll/send", words)
        recv = mpi.shared_malloc("coll/recv", words * fan_out)

        if collective == "allreduce":
            def one():
                yield from comm.co.Allreduce(send, recv)
        elif collective == "reduce":
            def one():
                yield from comm.co.Reduce(send, recv, root=0)
        elif collective == "bcast":
            def one():
                yield from comm.co.Bcast(send, root=0)
        elif collective == "allgather":
            def one():
                yield from comm.co.Allgather(send, recv)
        elif collective == "alltoall":
            def one():
                yield from comm.co.Alltoall(send, recv)
        else:
            raise ConfigError(
                f"coll workload: unsupported collective {collective!r}")

        for _ in range(max(0, warmup)):
            yield from one()
        yield from comm.co.Barrier()
        start = yield from mpi.co.wtime()
        for _ in range(max(1, iters)):
            yield from one()
        yield from comm.co.Barrier()
        elapsed = (yield from mpi.co.wtime()) - start
        return elapsed / max(1, iters)

    return app


def dl_sgd(communicator: str = "ring", layers="4x4MiB", bucket="4MiB",
           steps: int = 2, flops_per_step: float = 1e9):
    """Data-parallel SGD skeleton (see :func:`repro.dl.sgd_skeleton`).

    Sweepable wrapper over the DL workload family: pick a communicator
    strategy by name and a layer/bucket shape, get back the average
    simulated seconds per training step as the point metric.
    """
    from ..dl import sgd_skeleton

    return sgd_skeleton(communicator=communicator, layers=layers,
                        bucket=bucket, steps=steps,
                        flops_per_step=flops_per_step)


# the skeleton's behaviour lives in repro.dl, so its source must feed the
# memo-cache fingerprint too — otherwise editing the DL package would keep
# serving stale cached results
dl_sgd.fingerprint_modules = ("repro.dl.sgd", "repro.dl.communicators")


#: registry of built-in workload factories, by spec ``builtin`` name
WORKLOADS = {
    "pingpong": pingpong,
    "ring": ring,
    "allreduce": allreduce,
    "hpl": hpl,
    "coll": coll,
    "dl_sgd": dl_sgd,
}


def resolve(name: str, params: dict | None = None):
    """The app callable for built-in ``name`` with ``params`` applied."""
    try:
        factory = WORKLOADS[name]
    except KeyError:
        raise ConfigError(
            f"unknown builtin workload {name!r}; "
            f"available: {sorted(WORKLOADS)}")
    try:
        return factory(**(params or {}))
    except TypeError as exc:
        raise ConfigError(f"bad params for builtin {name!r}: {exc}")


def fingerprint(name: str) -> str:
    """Content hash of the builtin's factory source (cache-key input).

    A factory that delegates to another module lists it in a
    ``fingerprint_modules`` attribute (module names); their full source
    is hashed in, so editing the delegated implementation invalidates
    exactly the cached results that depend on it.
    """
    import importlib

    if name not in WORKLOADS:
        raise ConfigError(f"unknown builtin workload {name!r}")
    factory = WORKLOADS[name]
    source = inspect.getsource(factory)
    for module_name in getattr(factory, "fingerprint_modules", ()):
        source += inspect.getsource(importlib.import_module(module_name))
    return hashlib.sha256(source.encode("utf-8")).hexdigest()
