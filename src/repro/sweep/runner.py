"""Sweep execution: memo-cache lookup plus process-pool fan-out.

:func:`run_sweep` expands a :class:`~repro.sweep.spec.SweepSpec`, serves
every point whose content hash is already in the
:class:`~repro.sweep.cache.ResultCache`, and simulates the rest on a
``ProcessPoolExecutor``.  Each worker process keeps a module-level
platform cache, so a platform is parsed/built (and its route cache
warmed) once per worker and reused across every point assigned to it —
the per-point cost is the simulation itself, not setup.

``jobs=0`` (or ``1``) runs points inline in the calling process — same
results, no pool — which is what the executable docs and small tests
use.  All cache writes happen in the parent, so concurrent workers never
race on the store.
"""

from __future__ import annotations

import sys
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from ..errors import ConfigError, ReproError
from ..surf import EngineStats
from .cache import ResultCache, point_key
from .spec import SweepPoint, SweepSpec

__all__ = ["PointResult", "SweepResult", "run_sweep"]


@dataclass
class PointResult:
    """Outcome of one sweep point — simulated now, or served from cache."""

    point: SweepPoint
    key: str
    cached: bool
    simulated_time: float | None = None
    #: wall-clock seconds the *simulation* took (the original run's cost
    #: when served from cache)
    wall_time: float | None = None
    stats: EngineStats | None = None
    error: str | None = None
    #: per-point trace artifact path (spec-level ``trace = true`` only)
    trace_path: str | None = None
    #: rank 0's app return value, when it is a JSON scalar — the channel
    #: workloads use to report their own figure of merit (e.g. the
    #: ``coll`` builtin's per-iteration latency)
    rank0: float | int | str | bool | None = None

    @property
    def ok(self) -> bool:
        """Whether the point produced a result."""
        return self.error is None


@dataclass
class SweepResult:
    """Everything one :func:`run_sweep` invocation produced.

    The programmatic front door for benches and the auto-tuner: iterate
    ``points``, or feed the whole object to :mod:`repro.sweep.report`
    for flat rows / CSV / JSON.
    """

    spec: SweepSpec
    points: list[PointResult] = field(default_factory=list)
    #: wall-clock seconds for the whole sweep (cache lookups included)
    wall_time: float = 0.0
    #: process-pool workers used (0 = ran inline)
    workers: int = 0

    @property
    def hits(self) -> int:
        """Points served from the memo cache."""
        return sum(1 for p in self.points if p.cached)

    @property
    def misses(self) -> int:
        """Points that had to be simulated."""
        return sum(1 for p in self.points if not p.cached)

    @property
    def errors(self) -> list[PointResult]:
        """Points whose simulation raised."""
        return [p for p in self.points if not p.ok]

    def summary(self) -> str:
        """One line: point count, hit ratio, wall time."""
        n = len(self.points)
        line = (f"{self.spec.name}: {n} points, {self.hits}/{n} from cache, "
                f"{self.wall_time:.2f}s wall")
        if self.errors:
            line += f", {len(self.errors)} FAILED"
        return line


# -- worker side ---------------------------------------------------------------

#: per-worker-process platform cache: payload platform signature -> Platform
_PLATFORMS: dict = {}


def _init_worker(parent_path: list[str]) -> None:
    """Process-pool initializer: inherit the parent's import path."""
    for entry in reversed(parent_path):
        if entry not in sys.path:
            sys.path.insert(0, entry)


def _payload(point: SweepPoint, key: str, base_dir: str) -> dict:
    """A picklable description of one point for the worker."""
    return {
        "key": key,
        "base_dir": base_dir,
        "label": point.label(),
        "platform": {
            "spec": point.platform.spec,
            "availability": point.platform.availability,
            "state_profile": point.platform.state_profile,
            "fail_at": point.platform.fail_at,
            "restore_at": point.platform.restore_at,
        },
        "workload": {
            "builtin": point.workload.builtin,
            "file": point.workload.file,
            "entry": point.workload.entry,
            "n": point.workload.n,
            "params": point.workload.params,
            "args": point.workload.args,
        },
        "config": point.smpi_config(),
        "ctx": point.ctx(),
        "trace": point.trace,
    }


def _worker_platform(desc: dict, n_ranks: int, base_dir: str):
    """Build-or-reuse the worker's platform for ``desc``.

    Keyed by the full platform signature (spec + profile bindings + rank
    count): the expensive parse/build/calibration happens once per worker
    and every later point with the same signature reuses the object —
    including its warmed route-resolution cache.
    """
    from pathlib import Path

    from ..cli import _attach_profiles, build_platform

    signature = (desc["spec"], desc["availability"], desc["state_profile"],
                 n_ranks, base_dir)
    platform = _PLATFORMS.get(signature)
    if platform is None:
        spec = desc["spec"]
        candidate = Path(base_dir) / spec
        if candidate.suffix == ".xml" and candidate.exists():
            spec = str(candidate)
        platform = build_platform(spec, n_ranks)

        class _Args:  # argparse-shaped shim for the CLI profile helper
            pass

        args = _Args()
        args.availability = [_resolve_binding(b, base_dir)
                             for b in desc["availability"]]
        args.state_profile = [_resolve_binding(b, base_dir)
                              for b in desc["state_profile"]]
        _attach_profiles(platform, args)
        _PLATFORMS[signature] = platform
    return platform


def _resolve_binding(binding: str, base_dir: str) -> str:
    """Make the FILE half of a RESOURCE=FILE binding spec-relative."""
    from pathlib import Path

    if "=" not in binding:
        raise ConfigError(f"profile binding {binding!r} is not RESOURCE=FILE")
    resource, file = binding.split("=", 1)
    path = Path(file)
    if not path.is_absolute():
        path = Path(base_dir) / path
    return f"{resource}={path}"


def _point_engine(platform, desc: dict, config):
    """An explicit Engine when the point needs scripted fault events."""
    from ..cli import _find_resource, _parse_at
    from ..surf import Engine

    if not (desc["fail_at"] or desc["restore_at"]):
        return None
    engine = Engine(platform, sharing=config.sharing)
    for spec in desc["fail_at"]:
        t, name = _parse_at(spec, "fail-at")
        resource = _find_resource(platform, name)
        engine.at(t, lambda r=resource: engine.fail_resource(r))
    for spec in desc["restore_at"]:
        t, name = _parse_at(spec, "restore-at")
        resource = _find_resource(platform, name)
        engine.at(t, lambda r=resource: engine.restore_resource(r))
    return engine


def _resolve_app(work: dict, base_dir: str):
    from pathlib import Path

    from ..cli import load_app
    from . import workloads
    from .spec import _thaw

    if work["builtin"] is not None:
        return workloads.resolve(work["builtin"], _thaw(work["params"]) or {})
    path = Path(work["file"])
    if not path.is_absolute():
        path = Path(base_dir) / path
    return load_app(str(path), work["entry"])


def _simulate_point(payload: dict) -> dict:
    """Run one point (in a worker or inline) and return its record."""
    from ..smpi import smpirun
    from .spec import _thaw

    work = payload["workload"]
    try:
        platform = _worker_platform(payload["platform"], work["n"],
                                    payload["base_dir"])
        app = _resolve_app(work, payload["base_dir"])
        config = payload["config"]
        engine = _point_engine(platform, payload["platform"], config)
        result = smpirun(
            app, work["n"], platform,
            app_args=tuple(_thaw(work["args"])),
            config=config, engine=engine, ctx=payload["ctx"],
        )
    except ReproError as exc:
        return {"key": payload["key"], "error": f"{type(exc).__name__}: {exc}"}
    record = {
        "key": payload["key"],
        "label": payload["label"],
        "simulated_time": result.simulated_time,
        "wall_time": result.wall_time,
        "stats": result.stats.to_dict() if result.stats is not None else None,
    }
    if result.returns and isinstance(result.returns[0], (int, float, str, bool)):
        record["rank0"] = result.returns[0]
    if payload["trace"] and result.trace is not None:
        record["trace_text"] = result.trace.to_csv()
    return record


# -- parent side ---------------------------------------------------------------

def _result_from_record(point: SweepPoint, key: str, record: dict,
                        cached: bool, cache: ResultCache | None) -> PointResult:
    stats = None
    if record.get("stats") is not None:
        stats = EngineStats.from_dict(record["stats"])
    trace_path = None
    if cache is not None and cache.trace_path(key).exists():
        trace_path = str(cache.trace_path(key))
    return PointResult(
        point=point, key=key, cached=cached,
        simulated_time=record.get("simulated_time"),
        wall_time=record.get("wall_time"),
        stats=stats, error=record.get("error"), trace_path=trace_path,
        rank0=record.get("rank0"),
    )


def run_sweep(
    spec: SweepSpec,
    jobs: int | None = None,
    cache: ResultCache | str | None = ".repro-cache",
    force: bool = False,
    echo=None,
) -> SweepResult:
    """Execute a sweep spec: cache lookups first, then pool fan-out.

    ``jobs`` is the worker-process count (None = ``os.cpu_count()``
    capped at the number of points to simulate; 0 or 1 = inline, no
    pool).  ``cache`` is a :class:`ResultCache`, a root directory, or
    None to disable memoization entirely; ``force`` re-simulates every
    point and overwrites its cache entry.  ``echo`` (a ``print``-like
    callable) receives one progress line per completed point.
    """
    import os
    from pathlib import Path

    if isinstance(cache, (str, Path)):
        cache = ResultCache(cache)
    points = spec.expand()
    base_dir = str(spec.base_dir)
    start = time.perf_counter()
    keys = [point_key(p, base_dir) for p in points]

    results: dict[int, PointResult] = {}
    todo: list[tuple[SweepPoint, str]] = []
    for point, key in zip(points, keys):
        record = None if (force or cache is None) else cache.get(key)
        if record is not None:
            results[point.index] = _result_from_record(point, key, record,
                                                       True, cache)
            if echo:
                echo(f"  [cache] {point.label()}")
        else:
            todo.append((point, key))

    payloads = [_payload(p, k, base_dir) for p, k in todo]
    workers = 0
    if payloads:
        if jobs is None:
            jobs = min(len(payloads), os.cpu_count() or 2)
        if jobs > 1:
            workers = min(jobs, len(payloads))
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_worker, initargs=(list(sys.path),),
            ) as pool:
                records = list(pool.map(_simulate_point, payloads))
        else:
            records = [_simulate_point(p) for p in payloads]
        for (point, key), record in zip(todo, records):
            trace_text = record.pop("trace_text", None)
            if cache is not None and record.get("error") is None:
                cache.put(key, record, trace_text)
            results[point.index] = _result_from_record(point, key, record,
                                                       False, cache)
            if echo:
                status = "FAILED" if record.get("error") else "done"
                echo(f"  [{status}] {point.label()}")

    ordered = [results[p.index] for p in points]
    return SweepResult(spec=spec, points=ordered,
                       wall_time=time.perf_counter() - start, workers=workers)
