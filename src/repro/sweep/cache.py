"""Content-hash memoization of sweep results under ``.repro-cache/``.

A point's cache key is the SHA-256 of a *canonical fingerprint* of
everything that determines its outcome:

* the built platform, serialized to SimGrid-style XML (so two specs
  building identical platforms share cache entries, however they were
  written), plus the *contents* of any availability/state profile files
  and the scripted fail/restore events;
* the workload — the application file's bytes (or the builtin factory's
  source), entry point, rank count, parameters and arguments;
* the full resolved :class:`~repro.smpi.SmpiConfig` (defaults included,
  so adding a config field with a new default does not thrash the
  cache) and the execution-context selection.

The fingerprint is serialized with sorted keys and hashed, so identical
specs produce identical keys in any process on any machine; editing any
single axis value — a bandwidth, a workload parameter, one config field
— changes the key and invalidates exactly the affected points
(tests/test_sweep.py pins both properties).

Store layout::

    .repro-cache/objects/<key[:2]>/<key>.json        the result record
    .repro-cache/objects/<key[:2]>/<key>.trace.csv   optional trace artifact

Records carry the :class:`~repro.surf.EngineStats` schema version; a
version bump makes stale entries read as misses instead of misparsing.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path

from ..errors import ConfigError
from ..surf import EngineStats
from . import workloads
from .spec import SweepPoint

__all__ = ["ResultCache", "SnapshotStore", "point_fingerprint", "point_key"]

#: version of the cache record layout (independent of the stats schema)
CACHE_SCHEMA = 1


def _build_platform(point: SweepPoint, base_dir: Path):
    """Build (and fault-script-check) the point's platform object."""
    from ..cli import build_platform  # late: the CLI imports this package

    spec = point.platform.spec
    path = base_dir / spec
    if path.suffix == ".xml" and path.exists():
        spec = str(path)
    return build_platform(spec, point.workload.n)


def _profile_contents(pairs: tuple[str, ...], base_dir: Path) -> list:
    """``RESOURCE=FILE`` pairs resolved to ``[resource, file text]``."""
    out = []
    for pair in pairs:
        try:
            resource, file = pair.split("=", 1)
        except ValueError:
            raise ConfigError(
                f"profile binding {pair!r} is not RESOURCE=FILE")
        target = Path(file)
        if not target.is_absolute():
            target = base_dir / target
        if not target.exists():
            raise ConfigError(f"profile file {file!r} not found")
        out.append([resource, target.read_text(encoding="utf-8")])
    return out


def _workload_fingerprint(point: SweepPoint, base_dir: Path) -> dict:
    work = point.workload
    if work.builtin is not None:
        source = f"builtin:{work.builtin}:{workloads.fingerprint(work.builtin)}"
    else:
        target = Path(work.file)
        if not target.is_absolute():
            target = base_dir / target
        if not target.exists():
            raise ConfigError(f"workload file {work.file!r} not found")
        digest = hashlib.sha256(target.read_bytes()).hexdigest()
        source = f"file:{digest}"
    return {
        "source": source,
        "entry": work.entry,
        "n": work.n,
        "params": work.params,
        "args": work.args,
    }


def point_fingerprint(point: SweepPoint, base_dir: str | Path = ".") -> dict:
    """The canonical content fingerprint a point's cache key hashes.

    Exposed separately from :func:`point_key` so tests (and curious
    users) can see *why* two points do or do not share a key.
    """
    from ..surf.platform_xml import dumps_platform_xml

    base = Path(base_dir)
    platform = _build_platform(point, base)
    config = point.smpi_config()
    return {
        "schema": CACHE_SCHEMA,
        "platform": {
            "xml": dumps_platform_xml(platform),
            "availability": _profile_contents(point.platform.availability,
                                              base),
            "state_profile": _profile_contents(point.platform.state_profile,
                                               base),
            "fail_at": list(point.platform.fail_at),
            "restore_at": list(point.platform.restore_at),
        },
        "workload": _workload_fingerprint(point, base),
        "config": dataclasses.asdict(config),
        "ctx": point.ctx() or "auto",
    }


def point_key(point: SweepPoint, base_dir: str | Path = ".") -> str:
    """SHA-256 hex key of :func:`point_fingerprint` (canonical JSON)."""
    payload = json.dumps(point_fingerprint(point, base_dir),
                         sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ResultCache:
    """The on-disk memo store (default root: ``.repro-cache/``)."""

    def __init__(self, root: str | Path = ".repro-cache"):
        self.root = Path(root)

    def _record_path(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}.json"

    def trace_path(self, key: str) -> Path:
        """Where the optional trace artifact for ``key`` lives."""
        return self.root / "objects" / key[:2] / f"{key}.trace.csv"

    def __contains__(self, key: str) -> bool:
        return self._record_path(key).exists()

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("objects/*/*.json"))

    def get(self, key: str) -> dict | None:
        """The cached record for ``key``, or None on miss/stale schema."""
        path = self._record_path(key)
        if not path.exists():
            return None
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        if record.get("schema_version") != CACHE_SCHEMA:
            return None
        stats = record.get("stats")
        if (stats is not None
                and stats.get("schema_version") != EngineStats.SCHEMA_VERSION):
            return None  # counters from an incompatible build
        return record

    def put(self, key: str, record: dict, trace_text: str | None = None) -> Path:
        """Persist ``record`` (and optionally its trace) under ``key``."""
        path = self._record_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"schema_version": CACHE_SCHEMA, "key": key, **record}
        path.write_text(json.dumps(payload, indent=1, sort_keys=True),
                        encoding="utf-8")
        if trace_text is not None:
            self.trace_path(key).write_text(trace_text, encoding="utf-8")
        return path

    def stats_for(self, record: dict) -> EngineStats | None:
        """Deserialize a record's counters (None when absent)."""
        if record.get("stats") is None:
            return None
        return EngineStats.from_dict(record["stats"])


class SnapshotStore:
    """Content-addressed replay checkpoints (the sweep's warm starts).

    Lives beside the result memo under the same cache root::

        .repro-cache/snapshots/<key[:2]>/<key>.ckpt.json

    The key hashes everything that determines the simulation trajectory
    up to the cut: the trace's events, the platform XML, the resolved
    protocol config and the cut date.  Replay resumption is bit-exact
    (tests/test_snapshot.py), so a warm-started sweep point is
    indistinguishable from a cold one — it just skips re-simulating the
    common prefix.  Typical use: sweeping protocol parameters that only
    matter *late* in a run, or re-running long workloads after a crash.
    """

    def __init__(self, root: str | Path = ".repro-cache"):
        self.root = Path(root)

    def _path(self, key: str) -> Path:
        return self.root / "snapshots" / key[:2] / f"{key}.ckpt.json"

    def key_for(self, trace, platform, config, checkpoint_at: float) -> str:
        """SHA-256 key of the run prefix this checkpoint would capture."""
        from ..surf.platform_xml import dumps_platform_xml

        payload = json.dumps({
            "schema": CACHE_SCHEMA,
            "trace": {
                "n_ranks": trace.n_ranks,
                "events": [[e.to_json() for e in rank_events]
                           for rank_events in trace.events],
            },
            "platform": dumps_platform_xml(platform),
            "config": dataclasses.asdict(config),
            "checkpoint_at": checkpoint_at,
        }, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("snapshots/*/*.ckpt.json"))

    def get(self, key: str) -> dict | None:
        """The stored checkpoint for ``key`` (None on miss/stale layout)."""
        from ..offline.snapshot import CHECKPOINT_VERSION

        path = self._path(key)
        if not path.exists():
            return None
        try:
            checkpoint = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        if checkpoint.get("version") != CHECKPOINT_VERSION:
            return None
        return checkpoint

    def put(self, key: str, checkpoint: dict) -> Path:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(checkpoint, separators=(",", ":")),
                        encoding="utf-8")
        return path
