"""Batched simulation campaigns with memoized results (``repro sweep``).

The simulator's front door for the real SMPI workflow — thousands of
runs for sensitivity analysis and tuning, not one run (Cornebize &
Legrand, PAPERS.md).  A declarative TOML/JSON *sweep spec* names a
platform x workload x config grid; :func:`run_sweep` expands it into a
deterministic run matrix, serves every point already in the content-hash
memo cache under ``.repro-cache/``, and fans the rest out over a process
pool where each worker builds its platform once and reuses it.

Guide: ``docs/sweeps.md``.  CLI: ``python -m repro sweep run/status/report``.
"""

from .cache import ResultCache, point_fingerprint, point_key
from .collectives import (
    best_algorithms,
    coll_rows,
    coll_sweep_spec,
    crossovers,
    size_ladder,
)
from .report import (
    format_table,
    result_rows,
    rows_to_csv,
    rows_to_json,
    sensitivity,
)
from .runner import PointResult, SweepResult, run_sweep
from .spec import PlatformSpec, SweepPoint, SweepSpec, WorkloadSpec
from .workloads import WORKLOADS

__all__ = [
    "PlatformSpec",
    "PointResult",
    "ResultCache",
    "SweepPoint",
    "SweepResult",
    "SweepSpec",
    "WORKLOADS",
    "WorkloadSpec",
    "best_algorithms",
    "coll_rows",
    "coll_sweep_spec",
    "crossovers",
    "format_table",
    "size_ladder",
    "point_fingerprint",
    "point_key",
    "result_rows",
    "rows_to_csv",
    "rows_to_json",
    "run_sweep",
    "sensitivity",
]
