"""Affine (α + s/β) model instantiation, the two ways the paper compares.

* :func:`fit_affine_default` — "the standard method for instantiating the
  affine model": α is the measured time of a 1-byte message, β is 92 % of
  the nominal peak bandwidth (the typical TCP payload efficiency).  This
  is what most prior MPI simulators do (paper section 7.1.1).
* :func:`fit_affine_best` — the strongest possible affine model: (α, β)
  minimising the *average logarithmic error* against the measurements,
  found with Nelder-Mead in log-parameter space.  The paper includes it
  to show the affine family is inherently inaccurate, not merely badly
  instantiated.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from ..errors import CalibrationError
from ..surf.network_model import AffineNetworkModel, RouteParams

__all__ = ["fit_affine_default", "fit_affine_best"]


def fit_affine_default(
    sizes, times, route: RouteParams, tcp_efficiency: float = 0.92
) -> AffineNetworkModel:
    """1-byte latency + 92 % of nominal peak bandwidth."""
    s = np.asarray(sizes, dtype=float)
    t = np.asarray(times, dtype=float)
    if len(s) == 0:
        raise CalibrationError("no measurements")
    alpha = float(t[np.argmin(s)])
    beta = tcp_efficiency * route.bandwidth
    return AffineNetworkModel(alpha, beta, route, label="default-affine")


def fit_affine_best(sizes, times, route: RouteParams) -> AffineNetworkModel:
    """(α, β) minimising the mean log error over all measurements."""
    s = np.asarray(sizes, dtype=float)
    t = np.asarray(times, dtype=float)
    if len(s) < 3:
        raise CalibrationError("best-fit affine needs at least 3 measurements")
    log_t = np.log(t)

    def objective(params: np.ndarray) -> float:
        log_alpha, log_beta = params
        predicted = np.exp(log_alpha) + s / np.exp(log_beta)
        return float(np.mean(np.abs(np.log(predicted) - log_t)))

    # start from the naive instantiation
    x0 = np.array([np.log(max(t.min(), 1e-9)), np.log(route.bandwidth)])
    result = optimize.minimize(objective, x0, method="Nelder-Mead",
                               options={"xatol": 1e-4, "fatol": 1e-6,
                                        "maxiter": 2000})
    log_alpha, log_beta = result.x
    return AffineNetworkModel(
        float(np.exp(log_alpha)), float(np.exp(log_beta)), route,
        label="best-fit-affine",
    )
