"""End-to-end calibration: measurements in, instantiated models out.

:func:`calibrate_all` takes one ping-pong campaign (size → mean one-way
time) plus the physical parameters of the route it was measured on, and
returns the three models of the paper's accuracy comparison ready to plug
into an SMPI engine, together with the *replay configuration*.

The replay configuration matters: the measured times already contain the
MPI implementation's per-message overheads and the rendezvous handshake,
so the fitted α of each segment embodies them.  An SMPI replay using a
calibrated model must therefore zero the protocol's own latency
additions (keeping the rendezvous *synchronisation* semantics) or those
costs would be double-counted — the same division of labour as in SMPI,
where the model's latency factors carry everything the calibration saw.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..smpi.config import SmpiConfig
from ..surf.network_model import (
    AffineNetworkModel,
    PiecewiseLinearNetworkModel,
    RouteParams,
)
from .affine import fit_affine_best, fit_affine_default
from .segments import fit_segments

__all__ = ["CalibratedModels", "calibrate_all", "replay_config"]


def replay_config(base: SmpiConfig | None = None) -> SmpiConfig:
    """SMPI config for replaying with a calibrated model.

    Protocol latency additions are zeroed because the calibrated model's
    per-segment α already includes them; the eager threshold is kept so
    rendezvous synchronisation semantics are preserved.
    """
    base = base or SmpiConfig()
    return base.with_options(
        send_overhead=0.0,
        recv_overhead=0.0,
        handshake_rtts=0.0,
        eager_copy_bandwidth=float("inf"),
        wire_efficiency=1.0,
    )


@dataclass
class CalibratedModels:
    """The three instantiated models plus their shared provenance."""

    route: RouteParams
    sizes: np.ndarray
    times: np.ndarray
    piecewise: PiecewiseLinearNetworkModel
    default_affine: AffineNetworkModel
    best_fit_affine: AffineNetworkModel

    def predict(self, model_name: str, sizes) -> np.ndarray:
        """Uncontended predictions of one model over a size sweep."""
        model = {
            "piecewise": self.piecewise,
            "default_affine": self.default_affine,
            "best_fit_affine": self.best_fit_affine,
        }[model_name]
        return np.asarray(
            [model.predict_time(float(s), self.route) for s in np.asarray(sizes)]
        )


def calibrate_all(
    sizes,
    times,
    route: RouteParams,
    n_segments: int = 3,
) -> CalibratedModels:
    """Fit all three models of the paper's comparison on one campaign."""
    sizes = np.asarray(sizes, dtype=float)
    times = np.asarray(times, dtype=float)
    fitted = fit_segments(sizes, times, n_segments=n_segments)
    piecewise = PiecewiseLinearNetworkModel.from_segments(
        [(seg.lo, seg.hi, seg.alpha, seg.beta) for seg in fitted], route
    )
    return CalibratedModels(
        route=route,
        sizes=sizes,
        times=times,
        piecewise=piecewise,
        default_affine=fit_affine_default(sizes, times, route),
        best_fit_affine=fit_affine_best(sizes, times, route),
    )
