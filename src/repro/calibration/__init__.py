"""Model calibration: turning ping-pong measurements into network models.

Implements the paper's section 6 workflow: run a SKaMPI-style ping-pong
campaign on the (simulated) real cluster, then instantiate

* the **default affine** model (1-byte latency + 92 % of peak bandwidth),
* the **best-fit affine** model (α, β minimising mean log error),
* the **piece-wise linear** model (segmented regression, boundaries chosen
  to maximise the product of per-segment correlation coefficients).
"""

from .affine import fit_affine_best, fit_affine_default
from .calibrate import CalibratedModels, calibrate_all
from .segments import SegmentFit, fit_segments

__all__ = [
    "CalibratedModels",
    "SegmentFit",
    "calibrate_all",
    "fit_affine_best",
    "fit_affine_default",
    "fit_segments",
]
