"""Segmented linear regression for the piece-wise linear model.

Paper section 4.1: *"Each segment is obtained using linear regression on a
set of real measurements.  The number of segments and the segment
boundaries are chosen such that the product of the correlation
coefficients is maximized."*

Implementation: measurements are sorted by size; candidate boundaries are
the midpoints (geometric means) between consecutive distinct sizes.  All
ways of picking ``k-1`` boundaries (each segment keeping at least
``min_points`` measurements) are scored with O(1) per-segment statistics
from prefix sums, and the boundary set with the highest product of |r|
wins.  For ~40 measurement sizes and k=3 this explores ~700 candidates in
well under a millisecond.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

import numpy as np

from ..errors import CalibrationError

__all__ = ["SegmentFit", "fit_segments"]


@dataclass(frozen=True)
class SegmentFit:
    """One fitted segment over sizes [lo, hi): time = alpha + size/beta."""

    lo: float
    hi: float
    alpha: float
    beta: float
    correlation: float
    n_points: int

    def predict(self, size) -> np.ndarray:
        return self.alpha + np.asarray(size, dtype=float) / self.beta


class _PrefixStats:
    """O(1) least-squares fit of any contiguous index range."""

    def __init__(self, s: np.ndarray, t: np.ndarray) -> None:
        zero = np.zeros(1)
        self.n = len(s)
        self.cs = np.concatenate([zero, np.cumsum(s)])
        self.ct = np.concatenate([zero, np.cumsum(t)])
        self.css = np.concatenate([zero, np.cumsum(s * s)])
        self.ctt = np.concatenate([zero, np.cumsum(t * t)])
        self.cst = np.concatenate([zero, np.cumsum(s * t)])

    def fit(self, i: int, j: int) -> tuple[float, float, float]:
        """Regress t on s over indices [i, j); returns (alpha, slope, |r|)."""
        n = j - i
        sum_s = self.cs[j] - self.cs[i]
        sum_t = self.ct[j] - self.ct[i]
        sum_ss = self.css[j] - self.css[i]
        sum_tt = self.ctt[j] - self.ctt[i]
        sum_st = self.cst[j] - self.cst[i]
        var_s = sum_ss - sum_s * sum_s / n
        var_t = sum_tt - sum_t * sum_t / n
        cov = sum_st - sum_s * sum_t / n
        if var_s <= 0:
            return sum_t / n, 0.0, 0.0
        slope = cov / var_s
        alpha = (sum_t - slope * sum_s) / n
        if var_t <= 0:
            # all times equal: perfectly explained by a flat line
            return alpha, slope, 1.0
        r = cov / math.sqrt(var_s * var_t)
        return alpha, slope, abs(r)


def fit_segments(
    sizes,
    times,
    n_segments: int = 3,
    min_points: int = 6,
) -> list[SegmentFit]:
    """Fit ``n_segments`` linear pieces maximising the |r| product.

    ``sizes``/``times`` are parallel arrays of ping-pong measurements
    (bytes, seconds).  Returns segments covering [0, inf), contiguous,
    with boundaries at geometric means between the straddled data points.
    """
    s = np.asarray(sizes, dtype=float)
    t = np.asarray(times, dtype=float)
    if s.shape != t.shape or s.ndim != 1:
        raise CalibrationError("sizes and times must be parallel 1-D arrays")
    if n_segments < 1:
        raise CalibrationError("need at least one segment")
    order = np.argsort(s)
    s, t = s[order], t[order]
    n = len(s)
    if n < n_segments * min_points:
        raise CalibrationError(
            f"{n} measurements cannot support {n_segments} segments "
            f"of >= {min_points} points"
        )

    stats = _PrefixStats(s, t)

    # candidate cut positions: indices i meaning "segment break before i"
    candidates = [
        i for i in range(min_points, n - min_points + 1) if s[i] > s[i - 1]
    ]

    best_score = -1.0
    best_cuts: tuple[int, ...] = ()
    for cuts in itertools.combinations(candidates, n_segments - 1):
        bounds = (0, *cuts, n)
        if any(hi - lo < min_points for lo, hi in zip(bounds, bounds[1:])):
            continue
        score = 1.0
        for lo, hi in zip(bounds, bounds[1:]):
            _alpha, slope, r = stats.fit(lo, hi)
            if slope < 0:
                # a decreasing fit means the cut mixes regimes; veto it
                score = -1.0
                break
            score *= r
        if score > best_score:
            best_score = score
            best_cuts = cuts

    if best_score < 0:
        raise CalibrationError("no admissible segmentation found")

    bounds = (0, *best_cuts, n)
    segments: list[SegmentFit] = []
    for seg_idx, (lo, hi) in enumerate(zip(bounds, bounds[1:])):
        alpha, slope, r = stats.fit(lo, hi)
        beta = 1.0 / slope if slope > 1e-18 else 1e18
        alpha = max(alpha, 1e-9)  # physical floor: no negative latency
        size_lo = 0.0 if seg_idx == 0 else math.sqrt(s[lo - 1] * s[lo])
        size_hi = (
            math.inf
            if seg_idx == n_segments - 1
            else math.sqrt(s[hi - 1] * s[hi])
        )
        segments.append(
            SegmentFit(size_lo, size_hi, alpha, beta, r, hi - lo)
        )
    return segments
