"""``python -m repro`` — the command-line launcher (see repro.cli)."""

from .cli import main

raise SystemExit(main())
