"""Hot-path profiler: opt-in per-subsystem wall timers.

Perf work on this codebase is measured, not guessed, in two layers:

* **deterministic counters** — always on, free, and identical across
  runs: :class:`~repro.surf.engine.EngineStats` counts matching probes,
  fast hits, wildcard scans and pool reuses next to the engine's step
  and solver counters.
* **wall timers** — this module.  Off by default (the hot paths carry a
  ``None`` check and nothing else); enabled by ``SmpiConfig.profile``,
  the ``--profile`` CLI flag, or the ``repro profile`` subcommand.  Each
  instrumented section accumulates call counts and ``perf_counter``
  seconds under a subsystem name (``match.send``, ``engine.step``, …).

The accumulators end up in ``result.stats.extra["profile"]`` so every
reporting surface (CLI, benches, sweeps) can render them; nested
sections (``engine.share`` runs inside ``engine.step``) are *not*
subtracted from their parent.
"""

from __future__ import annotations

__all__ = ["Profiler", "render_profile"]


class Profiler:
    """Accumulates wall seconds and call counts per subsystem name."""

    __slots__ = ("calls", "seconds")

    def __init__(self) -> None:
        self.calls: dict[str, int] = {}
        self.seconds: dict[str, float] = {}

    def add(self, name: str, seconds: float, calls: int = 1) -> None:
        """Charge ``seconds`` of wall time (and ``calls`` entries) to ``name``."""
        self.calls[name] = self.calls.get(name, 0) + calls
        self.seconds[name] = self.seconds.get(name, 0.0) + seconds

    def to_dict(self) -> dict:
        """Plain-JSON payload: ``{name: {"calls": n, "seconds": s}}``."""
        return {
            name: {"calls": self.calls[name], "seconds": self.seconds[name]}
            for name in sorted(self.calls)
        }

    def report(self) -> str:
        """Human-readable table of the accumulated timers."""
        return render_profile(self.to_dict())

    def __bool__(self) -> bool:
        return bool(self.calls)


def render_profile(profile: dict) -> str:
    """Format a :meth:`Profiler.to_dict` payload as an aligned table."""
    if not profile:
        return "  (no profiled sections hit)"
    rows = sorted(profile.items(),
                  key=lambda kv: kv[1]["seconds"], reverse=True)
    width = max(len(name) for name, _ in rows)
    lines = [f"  {'subsystem':<{width}}  {'calls':>10}  "
             f"{'wall s':>10}  {'per call':>10}"]
    for name, cell in rows:
        calls = int(cell["calls"])
        seconds = float(cell["seconds"])
        per_call = seconds / calls if calls else 0.0
        lines.append(f"  {name:<{width}}  {calls:>10}  "
                     f"{seconds:>10.4f}  {per_call:>10.3e}")
    return "\n".join(lines)
