"""Command-line interface — the ``smpirun`` of this reproduction.

Usage (see ``python -m repro --help``)::

    # run an application file on a simulated platform
    python -m repro run my_app.py -n 16 --platform griffon

    # the application file defines:  def app(mpi): ...
    python -m repro run my_app.py -n 8 --platform cluster:8:125MBps:50us

    # platforms can also come from SimGrid-style XML
    python -m repro run my_app.py -n 4 --platform machines.xml

    # record a time-independent trace / replay one
    python -m repro run my_app.py -n 4 --record trace.json
    python -m repro replay trace.json --platform gdx

    # checkpoint a replay mid-run, resume it later (docs/scaling.md)
    python -m repro replay trace.json --platform gdx --checkpoint-at 1.5
    python -m repro replay trace.json --platform gdx \\
        --resume-from trace.json.ckpt.json

    # export an execution trace and analyse it
    python -m repro run my_app.py -n 4 --trace run.csv
    python -m repro run my_app.py -n 4 --trace run.paje --trace-format paje
    python -m repro trace summary run.csv
    python -m repro trace gantt run.csv --critical
    python -m repro trace critical-path run.csv
    python -m repro trace export run.csv --format paje -o run.paje

    # dynamic platforms: availability profiles and scripted faults
    python -m repro run my_app.py -n 4 --availability cli-l0=wave.trace \\
        --fail-at 0.5:cli-l1 --restore-at 1.0:cli-l1 --comm-retries 3

    # batched campaigns: expand a platform x workload x config grid,
    # simulate on a process pool, memoize results under .repro-cache/
    python -m repro sweep run campaign.toml --jobs 8
    python -m repro sweep status campaign.toml
    python -m repro sweep report campaign.toml --format csv -o results.csv

    # inspect things
    python -m repro platforms
    python -m repro info trace.json

The run command mirrors the paper's workflow: the *same* application
executes on platforms you do not own, entirely on this node.
"""

from __future__ import annotations

import argparse
import importlib.util
import sys
from pathlib import Path
from typing import Callable

from .errors import ConfigError, ReproError
from .offline import (
    TiTrace,
    record_trace,
    record_trace_streaming,
    replay_trace,
)
from .platforms import gdx, griffon
from .smpi import SmpiConfig, smpirun
from .surf import Engine, Platform, cluster, load_platform_xml, load_profile
from .trace import (
    CsvStreamSink,
    PajeStreamSink,
    Tracer,
    ascii_gantt,
    critical_path,
    export_paje,
    makespan,
    parse_paje,
    state_fractions,
    svg_gantt,
)
from .units import format_size, format_time

__all__ = ["main", "build_platform", "load_app"]


def build_platform(spec: str, n_ranks: int) -> Platform:
    """Resolve a --platform argument.

    Accepted forms: ``griffon``, ``gdx``, ``cluster:N[:bw[:lat]]``, or a
    path to a SimGrid-style XML file.  The bare names build just enough
    nodes for the requested rank count.
    """
    if spec == "griffon":
        return griffon(min(n_ranks, 92)) if n_ranks <= 92 else griffon()
    if spec == "gdx":
        return gdx(min(n_ranks, 312)) if n_ranks <= 312 else gdx()
    if spec.startswith("cluster:"):
        parts = spec.split(":")
        if len(parts) < 2 or len(parts) > 4 or not parts[1].isdigit():
            raise ConfigError(f"bad cluster spec {spec!r} "
                              "(cluster:N[:bandwidth[:latency]])")
        size = int(parts[1])
        bandwidth = parts[2] if len(parts) > 2 else "125MBps"
        latency = parts[3] if len(parts) > 3 else "50us"
        return cluster("cli", size, link_bandwidth=bandwidth,
                       link_latency=latency)
    path = Path(spec)
    if path.exists():
        return load_platform_xml(path)
    raise ConfigError(
        f"unknown platform {spec!r}: expected griffon, gdx, cluster:N, "
        "or an existing XML file"
    )


def load_app(path: str, entry: str = "app") -> Callable:
    """Import ``entry`` (default ``app``) from a Python file."""
    file = Path(path)
    if not file.exists():
        raise ConfigError(f"application file {path!r} not found")
    spec = importlib.util.spec_from_file_location(file.stem, file)
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    function = getattr(module, entry, None)
    if not callable(function):
        raise ConfigError(f"{path!r} does not define a callable {entry!r}")
    return function


def _config_from_args(args: argparse.Namespace) -> SmpiConfig:
    options = {}
    if args.eager_threshold is not None:
        from .units import parse_size

        options["eager_threshold"] = parse_size(args.eager_threshold)
    if args.zero_copy:
        options["zero_copy"] = True
    for pair in args.coll or []:
        try:
            collective, algorithm = pair.split("=", 1)
        except ValueError:
            raise ConfigError(f"--coll expects name=algorithm, got {pair!r}")
        options.setdefault("coll_algorithms", {})[collective] = algorithm
    if getattr(args, "comm_retries", None) is not None:
        options["comm_retries"] = args.comm_retries
    if getattr(args, "retry_backoff", None) is not None:
        options["retry_backoff"] = args.retry_backoff
    if getattr(args, "comm_timeout", None) is not None:
        options["comm_timeout"] = args.comm_timeout
    if getattr(args, "on_host_down", None) is not None:
        options["on_host_down"] = args.on_host_down
    if getattr(args, "sharing", None) is not None:
        options["sharing"] = args.sharing
    if getattr(args, "match", None) is not None:
        options["match"] = args.match
    if getattr(args, "profile", False):
        options["profile"] = True
    return SmpiConfig(**options)


def _find_resource(platform: Platform, name: str):
    """A link or host by name (fault flags accept either)."""
    for getter in (platform.link, platform.host):
        try:
            return getter(name)
        except ReproError:
            continue
    raise ConfigError(f"no link or host named {name!r} on this platform")


def _attach_profiles(platform: Platform, args: argparse.Namespace) -> None:
    """Apply --availability / --state-profile RES=FILE flags.

    Must run before the engine is built: the engine scans the platform's
    resources for profiles at construction time.
    """
    for attr, flag in (("availability_profile", "availability"),
                       ("state_profile", "state_profile")):
        for pair in getattr(args, flag, None) or []:
            try:
                name, file = pair.split("=", 1)
            except ValueError:
                raise ConfigError(
                    f"--{flag.replace('_', '-')} expects RESOURCE=FILE, "
                    f"got {pair!r}")
            setattr(_find_resource(platform, name), attr,
                    load_profile(file))


def _parse_at(spec: str, flag: str) -> tuple[float, str]:
    try:
        t_s, name = spec.split(":", 1)
        return float(t_s), name
    except ValueError:
        raise ConfigError(f"--{flag} expects TIME:RESOURCE, got {spec!r}")


def _report(result, n_ranks: int, show_stats: bool = False) -> None:
    print(f"simulated time : {format_time(result.simulated_time)}")
    print(f"wall-clock time: {format_time(result.wall_time)}")
    print(f"ranks          : {n_ranks}")
    print(f"peak footprint : {format_size(result.memory.total_peak)}")
    non_null = [r for r in result.returns if r is not None]
    if non_null:
        shown = non_null[:4]
        suffix = " ..." if len(non_null) > 4 else ""
        print(f"rank returns   : {shown}{suffix}")
    if show_stats and result.stats is not None:
        stats = result.stats
        print("kernel stats   :")
        print(f"  steps            : {stats.steps}")
        print(f"  shares           : {stats.shares}")
        print(f"  partial shares   : {stats.partial_shares}")
        print(f"  flows resolved   : {stats.flows_resolved}")
        print(f"  components solved: {stats.components_solved}")
        print(f"  fill rounds      : {getattr(stats, 'fill_rounds', 0)}")
        if getattr(stats, "approx_events", 0):
            print(f"  approx events    : {stats.approx_events}")
        print(f"  actions          : {stats.actions_created} created, "
              f"{stats.actions_completed} completed")
        print(f"  actions touched  : {stats.actions_touched}")
        print(f"  heap pops        : {stats.heap_pops} "
              f"({stats.stale_heap_entries} stale)")
        print(f"  peak concurrent  : {stats.peak_concurrent}")
        print(f"  context switches : {stats.ctx_switches} "
              f"({stats.ctx_fast_resumes} fast resumes)")
        if stats.link_samples:
            print(f"  link samples     : {stats.link_samples}")
        if getattr(stats, "capacity_events", 0):
            print(f"  capacity events  : {stats.capacity_events}")
        failures = getattr(stats, "resource_failures", 0)
        restores = getattr(stats, "resource_restores", 0)
        if failures or restores:
            print(f"  resource faults  : {failures} failed, "
                  f"{restores} restored")
        probes = getattr(stats, "match_probes", 0)
        if probes:
            print(f"  match probes     : {probes} "
                  f"({stats.match_fast_hits} fast hits, "
                  f"{stats.wildcard_scans} wildcard scans)")
        if getattr(stats, "pooled_reuses", 0):
            print(f"  pooled reuses    : {stats.pooled_reuses}")
    profile = (result.stats.extra.get("profile")
               if result.stats is not None and result.stats.extra else None)
    if profile:
        from .profile import render_profile

        print("hot-path timers:")
        print(render_profile(profile))


def _make_engine(platform, args):
    """The simulation kernel for a run/replay command.

    Honours the ``--full-reshare`` / ``--eager-updates`` escape hatches
    and builds an explicit engine whenever ``--fail-at``/``--restore-at``
    events need scripting (None lets the runtime build its default
    engine; profiles attached to platform resources work either way).
    """
    full = getattr(args, "full_reshare", False)
    eager = getattr(args, "eager_updates", False)
    sharing = getattr(args, "sharing", None)
    fail_specs = getattr(args, "fail_at", None) or []
    restore_specs = getattr(args, "restore_at", None) or []
    if not (full or eager or sharing or fail_specs or restore_specs):
        return None
    engine = Engine(platform, full_reshare=full, eager_updates=eager,
                    sharing=sharing)
    for spec in fail_specs:
        t, name = _parse_at(spec, "fail-at")
        resource = _find_resource(platform, name)
        engine.at(t, lambda r=resource: engine.fail_resource(r))
    for spec in restore_specs:
        t, name = _parse_at(spec, "restore-at")
        resource = _find_resource(platform, name)
        engine.at(t, lambda r=resource: engine.restore_resource(r))
    return engine


def _export_run_trace(result, n_ranks: int, args: argparse.Namespace) -> None:
    """Write ``result.trace`` to ``args.trace`` in csv or paje form."""
    tracer = result.trace
    if args.trace_format == "paje":
        text = export_paje(tracer, n_ranks)
    else:
        text = tracer.to_csv()
    Path(args.trace).write_text(text, encoding="utf-8")
    print(f"trace written  : {args.trace} ({args.trace_format}, "
          f"{len(tracer.comms)} messages, "
          f"{len(tracer.computes)} compute bursts)")


def _make_trace_sink(args: argparse.Namespace, n_ranks: int):
    """The streaming sink for ``--stream-trace``, or None."""
    if not (getattr(args, "stream_trace", False) and args.trace):
        return None
    if args.trace_format == "paje":
        return PajeStreamSink(args.trace, n_ranks)
    return CsvStreamSink(args.trace)


def _report_streamed_trace(result, args: argparse.Namespace) -> None:
    tracer = result.trace
    print(f"trace written  : {args.trace} ({args.trace_format}, streamed, "
          f"{tracer.n_comm_records} messages, "
          f"{tracer.n_compute_records} compute bursts)")


def _cmd_run(args: argparse.Namespace) -> int:
    app = load_app(args.app, args.entry)
    platform = build_platform(args.platform, args.n)
    _attach_profiles(platform, args)
    config = _config_from_args(args)
    engine = _make_engine(platform, args)
    want_ti = args.trace and args.trace_format == "ti"
    if args.trace and not want_ti:
        config = config.with_options(tracing=True)
    streaming = getattr(args, "stream_trace", False) and args.trace
    if streaming and want_ti:
        result = record_trace_streaming(app, args.n, platform, args.trace,
                                        config=config, engine=engine,
                                        ctx=args.ctx)
        print(f"trace written  : {args.trace} (ti, streamed)")
        if args.record:
            raise ConfigError(
                "--stream-trace with --trace-format ti already records; "
                "drop --record or the streaming flag")
    elif args.record or want_ti:
        result, trace = record_trace(app, args.n, platform, config=config,
                                     engine=engine, ctx=args.ctx)
        for target in filter(None, [args.record,
                                    args.trace if want_ti else None]):
            trace.save(target)
            print(f"trace written  : {target} ({trace.summary()})")
    else:
        result = smpirun(app, args.n, platform, config=config, engine=engine,
                         ctx=args.ctx,
                         trace_sink=_make_trace_sink(args, args.n))
    if args.trace and not want_ti:
        if streaming:
            _report_streamed_trace(result, args)
        else:
            _export_run_trace(result, args.n, args)
    _report(result, args.n, show_stats=args.stats)
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    trace = TiTrace.load(args.trace_file)
    platform = build_platform(args.platform, trace.n_ranks)
    _attach_profiles(platform, args)
    config = _config_from_args(args)
    if args.trace:
        if args.trace_format == "ti":
            raise ConfigError(
                "replay consumes a TI trace; re-exporting it as 'ti' would "
                "copy the input — use --trace-format csv or paje"
            )
        config = config.with_options(tracing=True)
    streaming = getattr(args, "stream_trace", False) and args.trace
    resume_from = getattr(args, "resume_from", None)
    checkpoint_at = getattr(args, "checkpoint_at", None)
    if resume_from is not None:
        from .offline import load_checkpoint, resume_replay

        if checkpoint_at is not None:
            raise ConfigError("--resume-from and --checkpoint-at are "
                              "mutually exclusive")
        result = resume_replay(trace, platform, load_checkpoint(resume_from),
                               ctx=args.ctx)
        print(f"resumed from   : {resume_from}")
    else:
        result = replay_trace(trace, platform, config=config,
                              engine=_make_engine(platform, args),
                              ctx=args.ctx,
                              trace_sink=_make_trace_sink(args,
                                                          trace.n_ranks),
                              checkpoint_at=checkpoint_at)
        if checkpoint_at is not None:
            from .offline import save_checkpoint

            if result.checkpoint is None:
                print(f"checkpoint     : none (run ended before "
                      f"t={checkpoint_at:g})")
            else:
                out = (args.checkpoint_out
                       or f"{args.trace_file}.ckpt.json")
                target = save_checkpoint(result.checkpoint, out)
                print(f"checkpoint     : {target} "
                      f"(cut at t={result.checkpoint['engine']['now']:g})")
    print(f"replaying      : {trace.summary()}")
    if "recorded_on" in trace.meta:
        recorded_t = trace.meta.get("recorded_simulated_time")
        print(f"recorded on    : {trace.meta['recorded_on']}"
              + (f" ({format_time(recorded_t)})" if recorded_t else ""))
    if args.trace:
        if streaming:
            _report_streamed_trace(result, args)
        else:
            _export_run_trace(result, trace.n_ranks, args)
    _report(result, trace.n_ranks, show_stats=args.stats)
    return 0


def _cmd_sweep_run(args: argparse.Namespace) -> int:
    from .sweep import ResultCache, SweepSpec, run_sweep

    spec = SweepSpec.load(args.spec)
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    print(f"sweep          : {spec.name} — {spec.describe()}")
    result = run_sweep(spec, jobs=args.jobs, cache=cache, force=args.force,
                       echo=print if args.verbose else None)
    n = len(result.points)
    where = ("inline" if result.workers == 0
             else f"{result.workers} worker processes")
    print(f"simulated      : {result.misses} points ({where})")
    print(f"cache hits     : {result.hits}/{n}"
          + (" (all points served from cache)" if result.hits == n else ""))
    print(f"wall-clock time: {format_time(result.wall_time)}")
    for failed in result.errors:
        print(f"  FAILED {failed.point.label()}: {failed.error}")
    return 1 if result.errors else 0


def _cmd_sweep_status(args: argparse.Namespace) -> int:
    from .sweep import ResultCache, SweepSpec, point_key

    spec = SweepSpec.load(args.spec)
    cache = ResultCache(args.cache_dir)
    points = spec.expand()
    cached = 0
    print(f"sweep          : {spec.name} — {spec.describe()}")
    for point in points:
        key = point_key(point, spec.base_dir)
        hit = key in cache
        cached += hit
        print(f"  [{'cached' if hit else ' todo '}] "
              f"{point.index:>3}  {point.label()}")
    print(f"cache          : {cached}/{len(points)} points ready "
          f"under {args.cache_dir}")
    return 0


def _cmd_sweep_report(args: argparse.Namespace) -> int:
    from .sweep import (ResultCache, SweepSpec, format_table, result_rows,
                        rows_to_csv, rows_to_json, run_sweep)

    spec = SweepSpec.load(args.spec)
    cache = ResultCache(args.cache_dir)
    result = run_sweep(spec, jobs=args.jobs, cache=cache)
    if result.errors:
        for failed in result.errors:
            print(f"  FAILED {failed.point.label()}: {failed.error}",
                  file=sys.stderr)
    rows = result_rows(result)
    if args.format == "csv":
        text = rows_to_csv(rows)
    elif args.format == "json":
        text = rows_to_json(rows)
    else:
        text = format_table(rows) + "\n"
    if args.output:
        Path(args.output).write_text(text, encoding="utf-8")
        print(f"report written : {args.output} ({args.format}, "
              f"{len(rows)} rows)")
    else:
        print(text, end="")
    return 1 if result.errors else 0


def _cmd_coll_sweep(args: argparse.Namespace) -> int:
    """``repro coll sweep``: size x ranks x algorithm collective campaign."""
    from .sweep import (ResultCache, coll_rows, coll_sweep_spec, crossovers,
                        format_table, run_sweep, size_ladder)

    if args.algos.strip() == "all":
        from .smpi.coll import ALGORITHMS

        algos = sorted(ALGORITHMS.get(args.coll, {}))
    else:
        algos = [a.strip() for a in args.algos.split(",") if a.strip()]
    spec = coll_sweep_spec(
        collective=args.coll,
        sizes=size_ladder(args.b, args.e, args.f),
        nprocs=args.np or [8],
        algos=algos,
        platform=args.platform,
        warmup=args.warmup,
        iters=args.iters,
    )
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    print(f"sweep          : {spec.name} — {spec.describe()}")
    result = run_sweep(spec, jobs=args.jobs, cache=cache, force=args.force,
                       echo=print if args.verbose else None)
    n = len(result.points)
    where = ("inline" if result.workers == 0
             else f"{result.workers} worker processes")
    print(f"simulated      : {result.misses} points ({where})")
    print(f"cache hits     : {result.hits}/{n}"
          + (" (all points served from cache)" if result.hits == n else ""))
    print(f"wall-clock time: {format_time(result.wall_time)}")
    for failed in result.errors:
        print(f"  FAILED {failed.point.label()}: {failed.error}")

    rows = coll_rows(result)
    if args.format == "csv":
        from .sweep import rows_to_csv

        text = rows_to_csv(rows)
    elif args.format == "json":
        from .sweep import rows_to_json

        text = rows_to_json(rows)
    else:
        text = format_table(rows) + "\n"
    if args.output:
        Path(args.output).write_text(text, encoding="utf-8")
        print(f"rows written   : {args.output} ({args.format}, "
              f"{len(rows)} rows)")
    else:
        print(text, end="")
    if args.format == "table":
        points = crossovers(rows)
        if points:
            print("crossovers:")
            for c in points:
                print(f"  {c['platform']} n={c['n']}: {c['below_best']} "
                      f"(<= {c['below_size']} B) -> {c['above_best']} "
                      f"(>= {c['above_size']} B)")
    return 1 if result.errors else 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """``repro profile``: one run with wall timers on, then the report."""
    app = load_app(args.app, args.entry)
    platform = build_platform(args.platform, args.n)
    config = _config_from_args(args).with_options(profile=True)
    engine = _make_engine(platform, args)
    result = smpirun(app, args.n, platform, config=config, engine=engine,
                     ctx=args.ctx)
    _report(result, args.n, show_stats=True)
    return 0


def _cmd_platforms(_args: argparse.Namespace) -> int:
    print("built-in platforms:")
    print("  griffon          92 nodes, 3 cabinets (33/27/32), GigE + 10G core")
    print("  gdx              312 nodes, 18 switch groups, GigE throughout")
    print("  cluster:N[:bw[:lat]]   ad-hoc single-switch cluster")
    print("  <file>.xml       SimGrid-style platform description")
    return 0


def _load_trace(args: argparse.Namespace) -> tuple[Tracer, int]:
    """Sniff and load a trace file for the ``trace`` subcommands.

    Accepts the three ``--trace-format`` outputs: CSV, Paje, or a
    time-independent JSON trace.  TI traces carry amounts, not times, so
    they are replayed (``--platform`` required) with tracing enabled to
    synthesize the timed records the analyses need.
    """
    text = Path(args.file).read_text(encoding="utf-8")
    stripped = text.lstrip()
    if stripped.startswith("{"):
        ti = TiTrace.load(args.file)
        if args.platform is None:
            raise ConfigError(
                f"{args.file!r} is a time-independent trace: it has no "
                "timestamps of its own — pass --platform to replay it "
                "and analyse the resulting timed trace"
            )
        platform = build_platform(args.platform, ti.n_ranks)
        result = replay_trace(ti, platform,
                              config=SmpiConfig(tracing=True))
        return result.trace, ti.n_ranks
    if stripped.startswith("%EventDef"):
        return parse_paje(text)
    tracer = Tracer.from_csv(text)
    ranks = {r.src for r in tracer.comms} | {r.dst for r in tracer.comms}
    ranks |= {c.rank for c in tracer.computes}
    return tracer, (max(ranks) + 1) if ranks else 0


def _cmd_trace_summary(args: argparse.Namespace) -> int:
    tracer, n_ranks = _load_trace(args)
    horizon = makespan(tracer)
    closed = [r for r in tracer.comms if r.closed]
    total_bytes = sum(r.nbytes for r in closed)
    print(f"makespan       : {format_time(horizon)}")
    print(f"ranks          : {n_ranks}")
    print(f"messages       : {len(closed)} "
          f"({format_size(total_bytes)} total)")
    print(f"compute bursts : {len([c for c in tracer.computes if c.closed])}")
    fractions = state_fractions(tracer, n_ranks)
    if fractions:
        print("rank activity  : (fraction of makespan)")
        print("  rank   computing  communicating  waiting")
        for rank, frac in enumerate(fractions):
            print(f"  {rank:>4}   {frac['computing']:>9.1%}  "
                  f"{frac['communicating']:>13.1%}  {frac['waiting']:>7.1%}")
    if tracer.timeline is not None:
        top = tracer.timeline.top(horizon, k=5)
        if top:
            print("top links      : (mean / peak utilization)")
            for usage in top:
                print(f"  {usage.name:<20} {usage.mean_utilization:>6.1%} / "
                      f"{usage.peak_utilization:>6.1%}  "
                      f"busy {format_time(usage.busy_time)}")
    return 0


def _cmd_trace_gantt(args: argparse.Namespace) -> int:
    tracer, n_ranks = _load_trace(args)
    if args.svg:
        svg = svg_gantt(tracer, n_ranks, critical=args.critical)
        Path(args.svg).write_text(svg, encoding="utf-8")
        print(f"svg written    : {args.svg}")
    else:
        print(ascii_gantt(tracer, n_ranks, width=args.width,
                          critical=args.critical))
    return 0


def _cmd_trace_critical(args: argparse.Namespace) -> int:
    tracer, _n_ranks = _load_trace(args)
    path = critical_path(tracer)
    print(path.describe())
    return 0


def _cmd_trace_export(args: argparse.Namespace) -> int:
    tracer, n_ranks = _load_trace(args)
    if args.format == "paje":
        text = export_paje(tracer, n_ranks)
    else:
        text = tracer.to_csv()
    Path(args.output).write_text(text, encoding="utf-8")
    print(f"trace written  : {args.output} ({args.format})")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    trace = TiTrace.load(args.trace)
    print(trace.summary())
    for key, value in trace.meta.items():
        print(f"  {key}: {value}")
    for rank in range(min(trace.n_ranks, 4)):
        kinds = [e.kind for e in trace.events[rank]]
        print(f"  rank {rank}: {len(kinds)} events "
              f"({kinds[:8]}{' ...' if len(kinds) > 8 else ''})")
    return 0


def _add_fault_flags(p: argparse.ArgumentParser) -> None:
    """Dynamic-platform and fault-semantics flags (docs/faults.md)."""
    p.add_argument("--availability", action="append", metavar="RES=FILE",
                   help="attach a capacity-scaling profile file to a link "
                        "or host (repeatable)")
    p.add_argument("--state-profile", action="append", metavar="RES=FILE",
                   help="attach an ON/OFF state profile file to a link or "
                        "host (repeatable)")
    p.add_argument("--fail-at", action="append", metavar="T:RES",
                   help="fail a link or host at simulated time T "
                        "(repeatable)")
    p.add_argument("--restore-at", action="append", metavar="T:RES",
                   help="restore a failed link or host at simulated time T "
                        "(repeatable)")
    p.add_argument("--comm-retries", type=int, default=None, metavar="N",
                   help="retry failed pt2pt transfers up to N times")
    p.add_argument("--retry-backoff", type=float, default=None, metavar="S",
                   help="base retry delay in seconds (doubles per attempt)")
    p.add_argument("--comm-timeout", type=float, default=None, metavar="S",
                   help="give up on transfers still in flight after S "
                        "simulated seconds")
    p.add_argument("--on-host-down", choices=("raise", "kill-rank"),
                   default=None,
                   help="host-failure policy: fail-fast (raise) or "
                        "terminate the host's ranks (kill-rank)")


def make_parser() -> argparse.ArgumentParser:
    """Build the ``python -m repro`` argument parser (all subcommands)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="single-node on-line simulation of MPI applications",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate an application file")
    run.add_argument("app", help="Python file defining app(mpi)")
    run.add_argument("-n", type=int, required=True, help="MPI rank count")
    run.add_argument("--platform", default="cluster:64",
                     help="griffon | gdx | cluster:N[:bw[:lat]] | file.xml")
    run.add_argument("--entry", default="app",
                     help="entry function name (default: app)")
    run.add_argument("--eager-threshold", default=None,
                     help="eager/rendezvous switch, e.g. 64KiB")
    run.add_argument("--zero-copy", action="store_true",
                     help="fold payloads (timing only, erroneous results)")
    run.add_argument("--coll", action="append", metavar="NAME=ALGO",
                     help="force a collective algorithm (repeatable)")
    run.add_argument("--record", metavar="TRACE.json",
                     help="record a time-independent trace")
    run.add_argument("--trace", metavar="FILE",
                     help="export an execution trace to FILE")
    run.add_argument("--trace-format", choices=("csv", "paje", "ti"),
                     default="csv",
                     help="format for --trace (default: csv)")
    run.add_argument("--stream-trace", action="store_true",
                     help="stream the --trace export to disk as records "
                          "close (bounded trace memory; output is "
                          "byte-identical to the in-memory exporter)")
    run.add_argument("--stats", action="store_true",
                     help="print kernel counters (shares, flow re-solves)")
    run.add_argument("--full-reshare", action="store_true",
                     help="disable incremental re-sharing (debug escape hatch)")
    run.add_argument("--eager-updates", action="store_true",
                     help="disable lazy action updates / the completion-date "
                          "heap (debug escape hatch)")
    run.add_argument("--sharing", choices=("exact", "approx"), default=None,
                     help="bandwidth-sharing fidelity: exact max-min fixed "
                          "point (default) or approx with bounded per-event "
                          "work for 100k+ concurrent flows (REPRO_SHARING "
                          "env var sets the default)")
    run.add_argument("--match", choices=("index", "scan"), default=None,
                     help="message-matching implementation: indexed match "
                          "queues (default) or the linear-scan oracle "
                          "(REPRO_MATCH env var sets the default)")
    run.add_argument("--profile", action="store_true",
                     help="accumulate per-subsystem wall timers and print "
                          "them after the run (implies nothing else; the "
                          "deterministic counters are always on)")
    run.add_argument("--ctx", choices=("auto", "coroutine", "greenlet",
                                             "thread"),
                     default=None,
                     help="execution-context backend for rank actors "
                          "(default: auto — coroutine for generator apps, "
                          "greenlet/thread for plain functions; REPRO_CTX "
                          "env var overrides)")
    _add_fault_flags(run)
    run.set_defaults(func=_cmd_run)

    replay = sub.add_parser("replay", help="replay a recorded trace")
    replay.add_argument("trace_file", metavar="trace",
                        help="time-independent trace JSON file")
    replay.add_argument("--platform", default="cluster:64")
    replay.add_argument("--eager-threshold", default=None)
    replay.add_argument("--zero-copy", action="store_true")
    replay.add_argument("--coll", action="append", metavar="NAME=ALGO")
    replay.add_argument("--trace", metavar="FILE",
                        help="export an execution trace of the replay")
    replay.add_argument("--trace-format", choices=("csv", "paje", "ti"),
                        default="csv",
                        help="format for --trace (default: csv)")
    replay.add_argument("--stream-trace", action="store_true",
                        help="stream the --trace export to disk as records "
                             "close (bounded trace memory)")
    replay.add_argument("--stats", action="store_true",
                        help="print kernel counters (shares, flow re-solves)")
    replay.add_argument("--full-reshare", action="store_true",
                        help="disable incremental re-sharing (debug escape hatch)")
    replay.add_argument("--eager-updates", action="store_true",
                        help="disable lazy action updates / the completion-date "
                             "heap (debug escape hatch)")
    replay.add_argument("--sharing", choices=("exact", "approx"), default=None,
                        help="bandwidth-sharing fidelity: exact max-min fixed "
                             "point (default) or approx with bounded "
                             "per-event work (REPRO_SHARING env var sets "
                             "the default)")
    replay.add_argument("--match", choices=("index", "scan"), default=None,
                        help="message-matching implementation: indexed "
                             "(default) or the linear-scan oracle")
    replay.add_argument("--profile", action="store_true",
                        help="accumulate per-subsystem wall timers and "
                             "print them after the replay")
    replay.add_argument("--ctx", choices=("auto", "coroutine", "greenlet",
                                             "thread"),
                     default=None,
                     help="execution-context backend for rank actors "
                          "(default: auto — coroutine for generator apps, "
                          "greenlet/thread for plain functions; REPRO_CTX "
                          "env var overrides)")
    replay.add_argument("--checkpoint-at", type=float, default=None,
                        metavar="T",
                        help="capture a resumable checkpoint at the first "
                             "quiescent cut past simulated date T "
                             "(requires tracing off; see docs/scaling.md)")
    replay.add_argument("--checkpoint-out", default=None, metavar="FILE",
                        help="where to write the --checkpoint-at capture "
                             "(default: <trace>.ckpt.json)")
    replay.add_argument("--resume-from", default=None, metavar="FILE",
                        help="resume a checkpointed replay instead of "
                             "starting from t=0 (bit-identical finish)")
    _add_fault_flags(replay)
    replay.set_defaults(func=_cmd_replay)

    trace = sub.add_parser("trace", help="analyse an exported trace")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    def _trace_input(p: argparse.ArgumentParser) -> None:
        p.add_argument("file", help="trace file (.csv, .paje, or TI .json)")
        p.add_argument("--platform", default=None,
                       help="platform for replaying TI traces "
                            "(required for .json inputs)")

    summary = trace_sub.add_parser("summary",
                                   help="per-rank fractions, top links")
    _trace_input(summary)
    summary.set_defaults(func=_cmd_trace_summary)

    gantt = trace_sub.add_parser("gantt", help="render a Gantt chart")
    _trace_input(gantt)
    gantt.add_argument("--width", type=int, default=72,
                       help="chart width in characters (default: 72)")
    gantt.add_argument("--critical", action="store_true",
                       help="overlay the critical path")
    gantt.add_argument("--svg", metavar="OUT.svg",
                       help="write an SVG chart instead of ASCII")
    gantt.set_defaults(func=_cmd_trace_gantt)

    crit = trace_sub.add_parser("critical-path",
                                help="extract the critical path")
    _trace_input(crit)
    crit.set_defaults(func=_cmd_trace_critical)

    export = trace_sub.add_parser("export",
                                  help="convert between trace formats")
    _trace_input(export)
    export.add_argument("--format", choices=("csv", "paje"), required=True,
                        help="output format")
    export.add_argument("-o", "--output", required=True, metavar="OUT",
                        help="output file")
    export.set_defaults(func=_cmd_trace_export)

    sweep = sub.add_parser(
        "sweep", help="batched simulation campaigns with memoized results")
    sweep_sub = sweep.add_subparsers(dest="sweep_command", required=True)

    def _sweep_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("spec", help="sweep spec file (.toml or .json)")
        p.add_argument("--cache-dir", default=".repro-cache", metavar="DIR",
                       help="memo-cache root (default: .repro-cache)")

    sweep_run = sweep_sub.add_parser(
        "run", help="expand the spec and simulate the missing points")
    _sweep_common(sweep_run)
    sweep_run.add_argument("--jobs", type=int, default=None, metavar="N",
                           help="worker processes (default: one per CPU, "
                                "capped at the number of points; 1 = inline)")
    sweep_run.add_argument("--force", action="store_true",
                           help="re-simulate every point, overwriting the "
                                "cache")
    sweep_run.add_argument("--no-cache", action="store_true",
                           help="simulate without reading or writing the "
                                "memo cache")
    sweep_run.add_argument("--verbose", action="store_true",
                           help="print one line per completed point")
    sweep_run.set_defaults(func=_cmd_sweep_run)

    sweep_status = sweep_sub.add_parser(
        "status", help="list the run matrix and which points are cached")
    _sweep_common(sweep_status)
    sweep_status.set_defaults(func=_cmd_sweep_status)

    sweep_report = sweep_sub.add_parser(
        "report", help="aggregate per-point results into a table")
    _sweep_common(sweep_report)
    sweep_report.add_argument("--format", choices=("table", "csv", "json"),
                              default="table",
                              help="output format (default: table)")
    sweep_report.add_argument("-o", "--output", metavar="OUT",
                              help="write the report to OUT instead of "
                                   "stdout")
    sweep_report.add_argument("--jobs", type=int, default=None, metavar="N",
                              help="worker processes for any points not yet "
                                   "cached")
    sweep_report.set_defaults(func=_cmd_sweep_report)

    coll = sub.add_parser(
        "coll", help="collective-algorithm tooling (size/ranks/algo sweeps)")
    coll_sub = coll.add_subparsers(dest="coll_command", required=True)

    coll_sweep = coll_sub.add_parser(
        "sweep",
        help="latency/bandwidth of a collective over a size x ranks x "
             "algorithm grid (memoized)")
    coll_sweep.add_argument("--coll", default="allreduce", metavar="NAME",
                            help="collective to sweep (default: allreduce)")
    coll_sweep.add_argument("--b", default="1KiB", metavar="SIZE",
                            help="smallest message size (default: 1KiB)")
    coll_sweep.add_argument("--e", default="64MiB", metavar="SIZE",
                            help="largest message size (default: 64MiB)")
    coll_sweep.add_argument("--f", type=float, default=2.0, metavar="FACTOR",
                            help="geometric size step (default: 2)")
    coll_sweep.add_argument("--np", type=int, action="append", default=None,
                            metavar="N",
                            help="rank count (repeatable; default: 8)")
    coll_sweep.add_argument("--algos", default="auto", metavar="A,B,...",
                            help="comma-separated algorithm names, or 'all' "
                                 "for every registered one (default: auto)")
    coll_sweep.add_argument("--warmup", type=int, default=1, metavar="K",
                            help="untimed iterations per point (default: 1)")
    coll_sweep.add_argument("--iters", type=int, default=3, metavar="K",
                            help="timed iterations per point (default: 3)")
    coll_sweep.add_argument("--platform", default="griffon", metavar="SPEC",
                            help="platform spec, as for 'repro run' "
                                 "(default: griffon)")
    coll_sweep.add_argument("--jobs", type=int, default=None, metavar="N",
                            help="worker processes (default: one per CPU, "
                                 "capped at the number of points; 1 = inline)")
    coll_sweep.add_argument("--cache-dir", default=".repro-cache",
                            metavar="DIR",
                            help="memo-cache root (default: .repro-cache)")
    coll_sweep.add_argument("--force", action="store_true",
                            help="re-simulate every point, overwriting the "
                                 "cache")
    coll_sweep.add_argument("--no-cache", action="store_true",
                            help="simulate without reading or writing the "
                                 "memo cache")
    coll_sweep.add_argument("--format", choices=("table", "csv", "json"),
                            default="table",
                            help="row output format (default: table)")
    coll_sweep.add_argument("-o", "--output", metavar="OUT",
                            help="write the rows to OUT instead of stdout")
    coll_sweep.add_argument("--verbose", action="store_true",
                            help="print one line per completed point")
    coll_sweep.set_defaults(func=_cmd_coll_sweep)

    profile = sub.add_parser(
        "profile",
        help="run an app with hot-path wall timers and report where the "
             "simulator spends its time")
    profile.add_argument("app", help="Python file defining app(mpi)")
    profile.add_argument("-n", type=int, required=True, help="MPI rank count")
    profile.add_argument("--platform", default="cluster:64",
                         help="griffon | gdx | cluster:N[:bw[:lat]] | "
                              "file.xml")
    profile.add_argument("--entry", default="app",
                         help="entry function name (default: app)")
    profile.add_argument("--eager-threshold", default=None,
                         help="eager/rendezvous switch, e.g. 64KiB")
    profile.add_argument("--zero-copy", action="store_true",
                         help="fold payloads (timing only)")
    profile.add_argument("--coll", action="append", metavar="NAME=ALGO",
                         help="force a collective algorithm (repeatable)")
    profile.add_argument("--sharing", choices=("exact", "approx"),
                         default=None,
                         help="bandwidth-sharing fidelity")
    profile.add_argument("--match", choices=("index", "scan"), default=None,
                         help="message-matching implementation under test")
    profile.add_argument("--ctx", choices=("auto", "coroutine", "greenlet",
                                           "thread"),
                         default=None,
                         help="execution-context backend for rank actors")
    profile.set_defaults(func=_cmd_profile)

    platforms = sub.add_parser("platforms", help="list built-in platforms")
    platforms.set_defaults(func=_cmd_platforms)

    info = sub.add_parser("info", help="summarise a trace file")
    info.add_argument("trace")
    info.set_defaults(func=_cmd_info)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = make_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
