"""Parsing and formatting of physical quantities used in platform files.

SimGrid platform descriptions express bandwidths as ``"1.25GBps"``,
latencies as ``"50us"`` and host speeds as ``"2.5Gf"``.  This module
converts such strings to plain SI floats (bytes/s, seconds, flop/s) and
back, and provides the binary byte-size helpers (KiB/MiB/GiB) used
throughout the evaluation scripts.

Conventions (identical to SimGrid):

* bandwidth  -> bytes per second.  ``Bps`` suffixes are bytes, ``bps``
  suffixes are bits (divided by 8).  Decimal prefixes k/M/G/T are powers of
  1000, binary prefixes Ki/Mi/Gi are powers of 1024.
* latency / durations -> seconds, suffixes ``ns us ms s m h d``.
* compute speed -> flop/s, suffixes ``f kf Mf Gf Tf``.
* sizes -> bytes, suffixes ``B KiB MiB GiB kB MB GB`` (bare ints allowed).
"""

from __future__ import annotations

import re

from .errors import ConfigError

__all__ = [
    "KiB",
    "MiB",
    "GiB",
    "parse_bandwidth",
    "parse_time",
    "parse_speed",
    "parse_size",
    "format_size",
    "format_time",
    "format_bandwidth",
]

KiB = 1024
MiB = 1024**2
GiB = 1024**3

_DECIMAL = {"": 1.0, "k": 1e3, "K": 1e3, "M": 1e6, "G": 1e9, "T": 1e12, "P": 1e15}
_BINARY = {"Ki": 1024.0, "Mi": 1024.0**2, "Gi": 1024.0**3, "Ti": 1024.0**4}

_TIME_SUFFIX = {
    "ns": 1e-9,
    "us": 1e-6,
    "ms": 1e-3,
    "s": 1.0,
    "m": 60.0,
    "h": 3600.0,
    "d": 86400.0,
}

_NUM_RE = re.compile(r"^\s*([-+]?\d+(?:\.\d*)?(?:[eE][-+]?\d+)?)\s*([A-Za-z]*)\s*$")


def _split(text: str | float | int, what: str) -> tuple[float, str]:
    """Split ``"10.5Gbps"`` into ``(10.5, "Gbps")``; bare numbers pass through."""
    if isinstance(text, (int, float)):
        return float(text), ""
    match = _NUM_RE.match(text)
    if match is None:
        raise ConfigError(f"cannot parse {what} value {text!r}")
    return float(match.group(1)), match.group(2)


def _prefix_value(prefix: str, what: str) -> float:
    if prefix in _BINARY:
        return _BINARY[prefix]
    if prefix in _DECIMAL:
        return _DECIMAL[prefix]
    raise ConfigError(f"unknown {what} prefix {prefix!r}")


def parse_bandwidth(text: str | float | int) -> float:
    """Return bandwidth in bytes/s.  Accepts ``"1GBps"``, ``"1Gbps"``, floats."""
    value, suffix = _split(text, "bandwidth")
    if not suffix:
        return value
    if suffix.endswith("Bps"):
        return value * _prefix_value(suffix[:-3], "bandwidth")
    if suffix.endswith("bps"):
        return value * _prefix_value(suffix[:-3], "bandwidth") / 8.0
    raise ConfigError(f"bandwidth {text!r} must end in 'Bps' or 'bps'")


def parse_time(text: str | float | int) -> float:
    """Return a duration in seconds.  Accepts ``"50us"``, ``"1.5ms"``, floats."""
    value, suffix = _split(text, "time")
    if not suffix:
        return value
    try:
        return value * _TIME_SUFFIX[suffix]
    except KeyError:
        raise ConfigError(f"unknown time suffix in {text!r}") from None


def parse_speed(text: str | float | int) -> float:
    """Return a compute speed in flop/s.  Accepts ``"2.5Gf"``, floats."""
    value, suffix = _split(text, "speed")
    if not suffix:
        return value
    if suffix.endswith("f"):
        return value * _prefix_value(suffix[:-1], "speed")
    raise ConfigError(f"speed {text!r} must end in 'f'")


def parse_size(text: str | float | int) -> int:
    """Return a byte count.  Accepts ``"64KiB"``, ``"4MB"``, bare ints."""
    value, suffix = _split(text, "size")
    if not suffix:
        return int(value)
    if suffix.endswith("B"):
        return int(round(value * _prefix_value(suffix[:-1], "size")))
    raise ConfigError(f"size {text!r} must end in 'B'")


def format_size(nbytes: float) -> str:
    """Human-readable binary size: ``format_size(65536) == '64.0 KiB'``."""
    value = float(nbytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            if unit == "B":
                return f"{int(value)} B"
            return f"{value:.1f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


def format_time(seconds: float) -> str:
    """Human-readable duration with an auto-selected unit."""
    if seconds == 0:
        return "0 s"
    if abs(seconds) < 1e-6:
        return f"{seconds * 1e9:.1f} ns"
    if abs(seconds) < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if abs(seconds) < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds:.3f} s"


def format_bandwidth(bytes_per_s: float) -> str:
    """Human-readable bandwidth: ``format_bandwidth(125e6) == '125.0 MBps'``."""
    value = float(bytes_per_s)
    for unit in ("Bps", "kBps", "MBps", "GBps"):
        if abs(value) < 1000.0 or unit == "GBps":
            return f"{value:.1f} {unit}"
        value /= 1000.0
    raise AssertionError("unreachable")
