"""Tests for the analytical simulation engine (SURF)."""

from __future__ import annotations

import math

import pytest

from repro.errors import SimulationError
from repro.surf import (
    ConstantNetworkModel,
    Engine,
    PiecewiseLinearNetworkModel,
    cluster,
)
from repro.surf.action import ActionState
from repro.surf.network_model import (
    AffineNetworkModel,
    FactorsNetworkModel,
    RouteParams,
    PiecewiseSegment,
)


def gige():  # 125 MB/s access, 1.25 GB/s backbone, 50+20+50 us latency
    return cluster("e", 4)


class TestTransferTiming:
    def test_single_transfer_time(self):
        engine = Engine(gige(), network_model=FactorsNetworkModel(1.0, 1.0))
        action = engine.communicate("node-0", "node-1", 1_000_000)
        engine.run()
        expected = 120e-6 + 1_000_000 / 125e6
        assert action.finish_time == pytest.approx(expected, rel=1e-6)

    def test_disjoint_transfers_do_not_interact_without_backbone(self):
        engine = Engine(cluster("x", 4, backbone_bandwidth=None),
                        network_model=FactorsNetworkModel(1.0, 1.0))
        a = engine.communicate("node-0", "node-1", 1_000_000)
        b = engine.communicate("node-2", "node-3", 1_000_000)
        engine.run()
        assert a.finish_time == pytest.approx(b.finish_time)
        assert a.finish_time == pytest.approx(100e-6 + 8e-3, rel=1e-6)

    def test_backbone_contention_halves_rate(self):
        engine = Engine(
            cluster("y", 4, backbone_bandwidth="125MBps"),
            network_model=FactorsNetworkModel(1.0, 1.0),
        )
        a = engine.communicate("node-0", "node-1", 1_000_000)
        b = engine.communicate("node-2", "node-3", 1_000_000)
        engine.run()
        # both flows share the 125 MB/s backbone: 16 ms instead of 8
        assert a.finish_time == pytest.approx(120e-6 + 16e-3, rel=1e-3)
        assert b.finish_time == pytest.approx(a.finish_time, rel=1e-6)

    def test_staggered_transfer_shares_then_speeds_up(self):
        engine = Engine(
            cluster("z", 4, backbone_bandwidth="125MBps"),
            network_model=FactorsNetworkModel(1.0, 0.0 + 1.0),
        )
        first = engine.communicate("node-0", "node-1", 2_000_000)
        # run alone until the second flow starts
        engine.advance(120e-6 + 8e-3)  # first ~1 MB transferred
        second = engine.communicate("node-2", "node-3", 1_000_000)
        engine.run()
        # remaining 1 MB of `first` shares with `second`: both take ~16 ms more
        assert first.finish_time == pytest.approx(120e-6 + 8e-3 + 16e-3, rel=1e-2)
        assert second.finish_time >= first.finish_time - 1e-9

    def test_rate_cap_is_respected(self):
        engine = Engine(gige(), network_model=FactorsNetworkModel(1.0, 1.0))
        action = engine.communicate("node-0", "node-1", 1_000_000,
                                    rate_cap=10e6)
        engine.run()
        assert action.finish_time == pytest.approx(120e-6 + 0.1, rel=1e-6)

    def test_loopback_is_fast(self):
        engine = Engine(gige())
        action = engine.communicate("node-0", "node-0", 1_000_000)
        engine.run()
        assert action.finish_time < 1e-3

    def test_zero_byte_transfer_costs_latency_only(self):
        engine = Engine(gige(), network_model=FactorsNetworkModel(1.0, 1.0))
        action = engine.communicate("node-0", "node-1", 0)
        engine.run()
        assert action.finish_time == pytest.approx(120e-6, rel=1e-6)

    def test_extra_latency_adds_up(self):
        engine = Engine(gige(), network_model=FactorsNetworkModel(1.0, 1.0))
        action = engine.communicate("node-0", "node-1", 0, extra_latency=1e-3)
        engine.run()
        assert action.finish_time == pytest.approx(120e-6 + 1e-3, rel=1e-6)


class TestComputeAndSleep:
    def test_compute_duration(self):
        engine = Engine(gige())
        action = engine.execute("node-0", 2e9)  # hosts are 1 Gf
        engine.run()
        assert action.finish_time == pytest.approx(2.0)

    def test_concurrent_computes_share_core(self):
        engine = Engine(gige())
        a = engine.execute("node-0", 1e9)
        b = engine.execute("node-0", 1e9)
        engine.run()
        assert a.finish_time == pytest.approx(2.0)
        assert b.finish_time == pytest.approx(2.0)

    def test_multicore_runs_in_parallel(self):
        engine = Engine(cluster("mc", 2, cores=4))
        actions = [engine.execute("node-0", 1e9) for _ in range(4)]
        engine.run()
        for action in actions:
            assert action.finish_time == pytest.approx(1.0)

    def test_sleep(self):
        engine = Engine(gige())
        action = engine.sleep(0.5)
        engine.run()
        assert action.finish_time == pytest.approx(0.5)
        assert engine.now == pytest.approx(0.5)

    def test_zero_flops_completes_instantly(self):
        engine = Engine(gige())
        action = engine.execute("node-0", 0.0)
        engine.run()
        assert action.state is ActionState.DONE


class TestEngineMechanics:
    def test_observer_fires_once(self):
        engine = Engine(gige())
        calls = []
        action = engine.sleep(0.1)
        action.observer = calls.append
        engine.run()
        assert calls == [action]

    def test_cancel_marks_failed(self):
        engine = Engine(gige())
        action = engine.communicate("node-0", "node-1", 1_000_000)
        engine.cancel(action)
        engine.run()
        assert action.state is ActionState.FAILED

    def test_negative_advance_rejected(self):
        engine = Engine(gige())
        with pytest.raises(SimulationError):
            engine.advance(-1.0)

    def test_stats_count_actions(self):
        engine = Engine(gige())
        engine.sleep(0.1)
        engine.communicate("node-0", "node-1", 100)
        engine.run()
        assert engine.stats.actions_created == 2
        assert engine.stats.actions_completed == 2


class TestNetworkModels:
    ROUTE = RouteParams(latency=1e-4, bandwidth=125e6)

    def test_constant_model_is_unshared(self):
        params = ConstantNetworkModel().transfer_params(1e6, self.ROUTE)
        assert not params.shared
        assert params.rate_bound == pytest.approx(125e6)

    def test_affine_model_scales_to_other_routes(self):
        model = AffineNetworkModel(2e-4, 100e6, self.ROUTE)
        same = model.transfer_params(1000, self.ROUTE)
        assert same.latency == pytest.approx(2e-4)
        assert same.rate_bound == pytest.approx(100e6)
        faster = RouteParams(latency=2e-4, bandwidth=250e6)
        scaled = model.transfer_params(1000, faster)
        assert scaled.latency == pytest.approx(4e-4)
        assert scaled.rate_bound == pytest.approx(200e6)

    def _pw(self):
        return PiecewiseLinearNetworkModel.from_segments(
            [
                (0.0, 1024.0, 1e-4, 50e6),
                (1024.0, 65536.0, 1.5e-4, 80e6),
                (65536.0, math.inf, 4e-4, 115e6),
            ],
            self.ROUTE,
        )

    def test_piecewise_selects_segment(self):
        model = self._pw()
        assert model.segment_for(10).beta == pytest.approx(50e6)
        assert model.segment_for(1024).beta == pytest.approx(80e6)
        assert model.segment_for(2**20).beta == pytest.approx(115e6)

    def test_piecewise_parameter_count_is_8(self):
        assert self._pw().parameter_count == 8

    def test_piecewise_predicts_fitted_time_on_calibration_route(self):
        model = self._pw()
        assert model.predict_time(4096, self.ROUTE) == pytest.approx(
            1.5e-4 + 4096 / 80e6
        )

    def test_piecewise_validates_contiguity(self):
        from repro.errors import CalibrationError

        with pytest.raises(CalibrationError):
            PiecewiseLinearNetworkModel(
                [
                    PiecewiseSegment(0, 100, 1e-4, 1e6, 1.0, 1.0),
                    PiecewiseSegment(200, math.inf, 1e-4, 1e6, 1.0, 1.0),
                ]
            )
        with pytest.raises(CalibrationError):
            PiecewiseLinearNetworkModel(
                [PiecewiseSegment(0, 100, 1e-4, 1e6, 1.0, 1.0)]
            )

    def test_describe_mentions_all_segments(self):
        text = self._pw().describe()
        assert text.count("alpha=") == 3
