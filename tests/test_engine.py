"""Tests for the analytical simulation engine (SURF)."""

from __future__ import annotations

import math

import pytest

from repro.errors import SimulationError
from repro.surf import (
    ConstantNetworkModel,
    Engine,
    PiecewiseLinearNetworkModel,
    cluster,
)
from repro.surf.action import ActionState
from repro.surf.network_model import (
    AffineNetworkModel,
    FactorsNetworkModel,
    RouteParams,
    PiecewiseSegment,
)


def gige():  # 125 MB/s access, 1.25 GB/s backbone, 50+20+50 us latency
    return cluster("e", 4)


class TestTransferTiming:
    def test_single_transfer_time(self):
        engine = Engine(gige(), network_model=FactorsNetworkModel(1.0, 1.0))
        action = engine.communicate("node-0", "node-1", 1_000_000)
        engine.run()
        expected = 120e-6 + 1_000_000 / 125e6
        assert action.finish_time == pytest.approx(expected, rel=1e-6)

    def test_disjoint_transfers_do_not_interact_without_backbone(self):
        engine = Engine(cluster("x", 4, backbone_bandwidth=None),
                        network_model=FactorsNetworkModel(1.0, 1.0))
        a = engine.communicate("node-0", "node-1", 1_000_000)
        b = engine.communicate("node-2", "node-3", 1_000_000)
        engine.run()
        assert a.finish_time == pytest.approx(b.finish_time)
        assert a.finish_time == pytest.approx(100e-6 + 8e-3, rel=1e-6)

    def test_backbone_contention_halves_rate(self):
        engine = Engine(
            cluster("y", 4, backbone_bandwidth="125MBps"),
            network_model=FactorsNetworkModel(1.0, 1.0),
        )
        a = engine.communicate("node-0", "node-1", 1_000_000)
        b = engine.communicate("node-2", "node-3", 1_000_000)
        engine.run()
        # both flows share the 125 MB/s backbone: 16 ms instead of 8
        assert a.finish_time == pytest.approx(120e-6 + 16e-3, rel=1e-3)
        assert b.finish_time == pytest.approx(a.finish_time, rel=1e-6)

    def test_staggered_transfer_shares_then_speeds_up(self):
        engine = Engine(
            cluster("z", 4, backbone_bandwidth="125MBps"),
            network_model=FactorsNetworkModel(1.0, 0.0 + 1.0),
        )
        first = engine.communicate("node-0", "node-1", 2_000_000)
        # run alone until the second flow starts
        engine.advance(120e-6 + 8e-3)  # first ~1 MB transferred
        second = engine.communicate("node-2", "node-3", 1_000_000)
        engine.run()
        # remaining 1 MB of `first` shares with `second`: both take ~16 ms more
        assert first.finish_time == pytest.approx(120e-6 + 8e-3 + 16e-3, rel=1e-2)
        assert second.finish_time >= first.finish_time - 1e-9

    def test_rate_cap_is_respected(self):
        engine = Engine(gige(), network_model=FactorsNetworkModel(1.0, 1.0))
        action = engine.communicate("node-0", "node-1", 1_000_000,
                                    rate_cap=10e6)
        engine.run()
        assert action.finish_time == pytest.approx(120e-6 + 0.1, rel=1e-6)

    def test_loopback_is_fast(self):
        engine = Engine(gige())
        action = engine.communicate("node-0", "node-0", 1_000_000)
        engine.run()
        assert action.finish_time < 1e-3

    def test_zero_byte_transfer_costs_latency_only(self):
        engine = Engine(gige(), network_model=FactorsNetworkModel(1.0, 1.0))
        action = engine.communicate("node-0", "node-1", 0)
        engine.run()
        assert action.finish_time == pytest.approx(120e-6, rel=1e-6)

    def test_extra_latency_adds_up(self):
        engine = Engine(gige(), network_model=FactorsNetworkModel(1.0, 1.0))
        action = engine.communicate("node-0", "node-1", 0, extra_latency=1e-3)
        engine.run()
        assert action.finish_time == pytest.approx(120e-6 + 1e-3, rel=1e-6)


class TestComputeAndSleep:
    def test_compute_duration(self):
        engine = Engine(gige())
        action = engine.execute("node-0", 2e9)  # hosts are 1 Gf
        engine.run()
        assert action.finish_time == pytest.approx(2.0)

    def test_concurrent_computes_share_core(self):
        engine = Engine(gige())
        a = engine.execute("node-0", 1e9)
        b = engine.execute("node-0", 1e9)
        engine.run()
        assert a.finish_time == pytest.approx(2.0)
        assert b.finish_time == pytest.approx(2.0)

    def test_multicore_runs_in_parallel(self):
        engine = Engine(cluster("mc", 2, cores=4))
        actions = [engine.execute("node-0", 1e9) for _ in range(4)]
        engine.run()
        for action in actions:
            assert action.finish_time == pytest.approx(1.0)

    def test_sleep(self):
        engine = Engine(gige())
        action = engine.sleep(0.5)
        engine.run()
        assert action.finish_time == pytest.approx(0.5)
        assert engine.now == pytest.approx(0.5)

    def test_zero_flops_completes_instantly(self):
        engine = Engine(gige())
        action = engine.execute("node-0", 0.0)
        engine.run()
        assert action.state is ActionState.DONE


class TestEngineMechanics:
    def test_observer_fires_once(self):
        engine = Engine(gige())
        calls = []
        action = engine.sleep(0.1)
        action.observer = calls.append
        engine.run()
        assert calls == [action]

    def test_cancel_marks_failed(self):
        engine = Engine(gige())
        action = engine.communicate("node-0", "node-1", 1_000_000)
        engine.cancel(action)
        engine.run()
        assert action.state is ActionState.FAILED

    def test_negative_advance_rejected(self):
        engine = Engine(gige())
        with pytest.raises(SimulationError):
            engine.advance(-1.0)

    def test_stats_count_actions(self):
        engine = Engine(gige())
        engine.sleep(0.1)
        engine.communicate("node-0", "node-1", 100)
        engine.run()
        assert engine.stats.actions_created == 2
        assert engine.stats.actions_completed == 2


class TestNetworkModels:
    ROUTE = RouteParams(latency=1e-4, bandwidth=125e6)

    def test_constant_model_is_unshared(self):
        params = ConstantNetworkModel().transfer_params(1e6, self.ROUTE)
        assert not params.shared
        assert params.rate_bound == pytest.approx(125e6)

    def test_affine_model_scales_to_other_routes(self):
        model = AffineNetworkModel(2e-4, 100e6, self.ROUTE)
        same = model.transfer_params(1000, self.ROUTE)
        assert same.latency == pytest.approx(2e-4)
        assert same.rate_bound == pytest.approx(100e6)
        faster = RouteParams(latency=2e-4, bandwidth=250e6)
        scaled = model.transfer_params(1000, faster)
        assert scaled.latency == pytest.approx(4e-4)
        assert scaled.rate_bound == pytest.approx(200e6)

    def _pw(self):
        return PiecewiseLinearNetworkModel.from_segments(
            [
                (0.0, 1024.0, 1e-4, 50e6),
                (1024.0, 65536.0, 1.5e-4, 80e6),
                (65536.0, math.inf, 4e-4, 115e6),
            ],
            self.ROUTE,
        )

    def test_piecewise_selects_segment(self):
        model = self._pw()
        assert model.segment_for(10).beta == pytest.approx(50e6)
        assert model.segment_for(1024).beta == pytest.approx(80e6)
        assert model.segment_for(2**20).beta == pytest.approx(115e6)

    def test_piecewise_parameter_count_is_8(self):
        assert self._pw().parameter_count == 8

    def test_piecewise_predicts_fitted_time_on_calibration_route(self):
        model = self._pw()
        assert model.predict_time(4096, self.ROUTE) == pytest.approx(
            1.5e-4 + 4096 / 80e6
        )

    def test_piecewise_validates_contiguity(self):
        from repro.errors import CalibrationError

        with pytest.raises(CalibrationError):
            PiecewiseLinearNetworkModel(
                [
                    PiecewiseSegment(0, 100, 1e-4, 1e6, 1.0, 1.0),
                    PiecewiseSegment(200, math.inf, 1e-4, 1e6, 1.0, 1.0),
                ]
            )
        with pytest.raises(CalibrationError):
            PiecewiseLinearNetworkModel(
                [PiecewiseSegment(0, 100, 1e-4, 1e6, 1.0, 1.0)]
            )

    def test_describe_mentions_all_segments(self):
        text = self._pw().describe()
        assert text.count("alpha=") == 3


class TestAdvanceConsistency:
    """advance() must behave like repeated step(): raise on stalled
    pending actions and warp to the target only when nothing is pending."""

    def test_advance_warps_when_idle(self):
        engine = Engine(gige())
        engine.advance(5.0)
        assert engine.now == pytest.approx(5.0)

    def test_advance_crosses_events_and_lands_on_target(self):
        engine = Engine(gige())
        action = engine.communicate("node-0", "node-1", 1_000_000)
        engine.advance(1.0)
        assert engine.now == pytest.approx(1.0)
        assert action.state is ActionState.DONE
        assert action.finish_time < 1.0

    def test_advance_raises_on_stalled_action(self):
        engine = Engine(gige())
        stalled = engine.communicate("node-0", "node-1", 1_000, rate_cap=0.0)
        # burn the latency phase, then the transfer can never progress
        with pytest.raises(SimulationError, match="no action can complete"):
            engine.advance(10.0)
        assert stalled.is_pending

    def test_step_raises_on_stalled_action_too(self):
        engine = Engine(gige())
        engine.communicate("node-0", "node-1", 1_000, rate_cap=0.0)
        with pytest.raises(SimulationError, match="no action can complete"):
            while True:
                engine.step()

    def test_advance_delivers_cancellations_without_stall_error(self):
        engine = Engine(gige())
        action = engine.communicate("node-0", "node-1", 1_000, rate_cap=0.0)
        engine.cancel(action)
        engine.advance(1.0)  # must not raise: the only action was cancelled
        assert engine.now == pytest.approx(1.0)
        assert action.state is ActionState.FAILED


class TestLoopbackRouting:
    def test_loopback_link_uses_network_model(self):
        platform = cluster("lb", 2, loopback_bandwidth="10GBps",
                           loopback_latency="1us")
        engine = Engine(platform, network_model=FactorsNetworkModel(1.0, 1.0))
        action = engine.communicate("node-0", "node-0", 10_000_000)
        engine.run()
        assert action.finish_time == pytest.approx(1e-6 + 10_000_000 / 10e9,
                                                   rel=1e-6)

    def test_loopback_fallback_constants_without_link(self):
        engine = Engine(cluster("lb2", 2))
        action = engine.communicate("node-0", "node-0", 12.5e9)
        engine.run()
        # fixed fallback: 100 ns latency at 12.5 GB/s
        assert action.finish_time == pytest.approx(1e-7 + 1.0, rel=1e-6)

    def test_loopback_is_fatpipe_not_contended(self):
        platform = cluster("lb3", 2, loopback_bandwidth="10GBps",
                           loopback_latency="1us")
        engine = Engine(platform, network_model=FactorsNetworkModel(1.0, 1.0))
        first = engine.communicate("node-0", "node-0", 10_000_000)
        second = engine.communicate("node-1", "node-1", 10_000_000)
        engine.run()
        # FATPIPE: both self-sends run at the full loopback rate
        assert first.finish_time == pytest.approx(second.finish_time)
        assert first.finish_time == pytest.approx(1e-6 + 10_000_000 / 10e9,
                                                  rel=1e-6)


class TestLatencyOffsetFallback:
    ZERO_LAT_ROUTE = RouteParams(latency=0.0, bandwidth=125e6)

    def test_affine_alpha_survives_zero_latency_calibration(self):
        model = AffineNetworkModel(2e-4, 100e6, self.ZERO_LAT_ROUTE)
        params = model.transfer_params(1000, self.ZERO_LAT_ROUTE)
        assert params.latency == pytest.approx(2e-4)
        other = RouteParams(latency=5e-5, bandwidth=125e6)
        assert model.transfer_params(1000, other).latency == pytest.approx(
            5e-5 + 2e-4
        )

    def test_piecewise_alpha_survives_zero_latency_calibration(self):
        model = PiecewiseLinearNetworkModel.from_segments(
            [
                (0.0, 1024.0, 1e-4, 50e6),
                (1024.0, math.inf, 4e-4, 115e6),
            ],
            self.ZERO_LAT_ROUTE,
        )
        assert model.predict_time(100, self.ZERO_LAT_ROUTE) == pytest.approx(
            1e-4 + 100 / 50e6
        )
        assert model.predict_time(1 << 20, self.ZERO_LAT_ROUTE) == pytest.approx(
            4e-4 + (1 << 20) / 115e6
        )


class TestIncrementalSharing:
    """The dirty-set engine must match full re-sharing exactly while
    re-solving fewer flows."""

    @staticmethod
    def _staggered_workload(engine):
        """Disjoint pairs with staggered starts/sizes on a crossbar."""
        finish = {}
        for i in range(0, 8, 2):
            size = 1_000_000 * (i + 1)

            def make_next(src, dst, nxt_size):
                def start_next(_action):
                    follow = engine.communicate(src, dst, nxt_size,
                                                name=f"follow-{src}")
                    finish[follow.name] = follow
                return start_next

            first = engine.communicate(f"node-{i}", f"node-{i + 1}", size,
                                       name=f"pair-{i}")
            first.observer = make_next(f"node-{i}", f"node-{i + 1}",
                                       size // 2)
            finish[first.name] = first
        engine.execute("node-0", 5e8, name="overlap-compute")
        engine.run()
        return {name: a.finish_time for name, a in finish.items()}

    def _platform(self):
        return cluster("inceq", 8, backbone_bandwidth=None, split_duplex=True)

    def test_identical_times_and_fewer_resolves(self):
        inc = Engine(self._platform())
        t_inc = self._staggered_workload(inc)
        full = Engine(self._platform(), full_reshare=True)
        t_full = self._staggered_workload(full)
        assert t_inc == t_full
        assert inc.stats.flows_resolved < full.stats.flows_resolved
        assert inc.stats.partial_shares > 0
        assert full.stats.partial_shares == 0

    def test_full_reshare_flag_is_recorded(self):
        engine = Engine(self._platform(), full_reshare=True)
        assert engine.full_reshare

    def test_component_counters_populate(self):
        engine = Engine(self._platform())
        engine.communicate("node-0", "node-1", 1_000_000)
        engine.communicate("node-2", "node-3", 1_000_000)
        engine.run()
        assert engine.stats.flows_resolved >= 2
        assert engine.stats.components_solved >= 2

    def test_cancel_triggers_reshare_for_neighbours(self):
        engine = Engine(cluster("cx", 2))
        slow = engine.communicate("node-0", "node-1", 10_000_000, name="slow")
        victim = engine.communicate("node-0", "node-1", 10_000_000,
                                    name="victim")
        engine.advance(0.01)  # both past latency, sharing the access link
        engine.cancel(victim)
        engine.run()
        solo = Engine(cluster("cy", 2))
        alone = solo.communicate("node-0", "node-1", 10_000_000, name="slow")
        solo.advance(0.01)
        solo.run()
        # after the cancel the survivor speeds up to the solo rate; its
        # finish time sits between the solo and the fully-contended case
        assert slow.finish_time < 2 * alone.finish_time - 0.01
        assert victim.state is ActionState.FAILED

    def test_fail_resource_matches_between_modes(self):
        for full in (False, True):
            platform = cluster("fr", 4)
            engine = Engine(platform, full_reshare=full)
            doomed = engine.communicate("node-0", "node-1", 50_000_000)
            safe = engine.communicate("node-2", "node-3", 1_000_000)
            engine.advance(0.001)
            engine.fail_resource(platform.link("fr-l0"))
            engine.run()
            assert doomed.state is ActionState.FAILED, full
            assert safe.state is ActionState.DONE, full


class TestLazyUpdates:
    """The heap-driven event loop must match the eager scan exactly while
    touching far fewer actions."""

    @staticmethod
    def _crossbar_workload(engine):
        """Disjoint staggered pairs plus a compute, a sleep and a cancel."""
        comms = [
            engine.communicate(f"node-{i}", f"node-{(i + 1) % 8}",
                               1_000_000 * (i + 1), name=f"c{i}")
            for i in range(8)
        ]
        engine.execute("node-0", 5e8, name="burst")
        engine.sleep(0.003, name="nap")
        engine.advance(0.001)
        engine.cancel(comms[3])
        engine.run()
        return [(a.name, a.state.value, a.finish_time) for a in comms]

    def _platform(self, tag):
        return cluster(tag, 8, backbone_bandwidth=None, split_duplex=True)

    def test_lazy_matches_eager_bit_for_bit(self):
        lazy = Engine(self._platform("lz"))
        eager = Engine(self._platform("eg"), eager_updates=True)
        r_lazy = self._crossbar_workload(lazy)
        r_eager = self._crossbar_workload(eager)
        assert r_lazy == r_eager
        assert lazy.now == eager.now

    def test_lazy_touches_fewer_actions(self):
        lazy = Engine(self._platform("lt"))
        eager = Engine(self._platform("et"), eager_updates=True)
        self._crossbar_workload(lazy)
        self._crossbar_workload(eager)
        assert lazy.stats.actions_touched < eager.stats.actions_touched
        assert lazy.stats.heap_pops > 0
        # the eager oracle never consults the heap
        assert eager.stats.heap_pops == 0
        assert eager.stats.stale_heap_entries == 0

    def test_eager_flag_is_recorded(self):
        engine = Engine(self._platform("ef"), eager_updates=True)
        assert engine.eager_updates

    def test_poll_progress_tracks_pending_events(self):
        engine = Engine(self._platform("pp"))
        assert not engine.poll_progress()  # nothing pending
        engine.sleep(0.5)
        assert engine.poll_progress()
        engine.run()
        assert not engine.poll_progress()

    def test_link_samples_stay_in_sync_after_idle_shares(self):
        # regression: the counter used to be refreshed only when the
        # solver re-solved something, so shares where every component was
        # clean (e.g. only a sleep pending) could leave it stale
        engine = Engine(self._platform("ls"))
        timeline = engine.enable_timeline()
        engine.communicate("node-0", "node-1", 1_000_000)
        engine.run()
        engine.sleep(0.01)  # idle tail: shares re-solve nothing
        engine.run()
        assert engine.stats.link_samples == timeline.n_samples


class TestStepsCounter:
    """``stats.steps`` is counted by ``step()`` itself, whichever driver
    paces the simulation (regression: ``run()`` used to count — off by one
    — and Scheduler-driven simulations never counted at all)."""

    def test_run_counts_actual_steps(self):
        engine = Engine(cluster("sc1", 2))
        engine.sleep(0.1)
        engine.sleep(0.2)
        engine.run()
        assert engine.stats.steps == 2

    def test_scheduler_driver_counts_steps(self):
        from repro.simix import Scheduler

        engine = Engine(cluster("sc2", 2))
        scheduler = Scheduler(engine)

        def actor():
            scheduler.sleep_activity(0.1).wait(scheduler.current)

        scheduler.add_actor("a0", "node-0", actor)
        scheduler.run()
        assert engine.stats.steps > 0
