"""Tests for MPI datatypes: predefined, contiguous, vector, pack/unpack."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MpiError
from repro.smpi import datatype as dt


class TestPredefined:
    @pytest.mark.parametrize(
        "datatype,np_dtype,size",
        [
            (dt.BYTE, np.uint8, 1),
            (dt.INT, np.int32, 4),
            (dt.LONG, np.int64, 8),
            (dt.FLOAT, np.float32, 4),
            (dt.DOUBLE, np.float64, 8),
            (dt.DOUBLE_COMPLEX, np.complex128, 16),
        ],
    )
    def test_sizes(self, datatype, np_dtype, size):
        assert datatype.size == size
        assert datatype.np_dtype == np.dtype(np_dtype)
        assert datatype.extent == size

    def test_pack_unpack_roundtrip(self):
        src = np.arange(10, dtype=np.float64)
        packed = dt.DOUBLE.pack(src, 10)
        assert packed.dtype == np.uint8 and packed.size == 80
        dst = np.zeros(10)
        dt.DOUBLE.unpack(packed, dst, 10)
        np.testing.assert_array_equal(src, dst)

    def test_partial_count(self):
        src = np.arange(10, dtype=np.int32)
        packed = dt.INT.pack(src, 4)
        assert packed.size == 16
        dst = np.zeros(10, dtype=np.int32)
        dt.INT.unpack(packed, dst, 4)
        np.testing.assert_array_equal(dst[:4], src[:4])
        assert (dst[4:] == 0).all()

    def test_pack_rejects_short_buffer(self):
        with pytest.raises(MpiError):
            dt.DOUBLE.pack(np.zeros(3), 5)

    def test_unpack_rejects_wrong_dtype(self):
        packed = dt.DOUBLE.pack(np.zeros(2), 2)
        with pytest.raises(MpiError):
            dt.DOUBLE.unpack(packed, np.zeros(2, dtype=np.float32), 2)

    def test_unpack_rejects_readonly(self):
        packed = dt.DOUBLE.pack(np.zeros(2), 2)
        target = np.zeros(2)
        target.setflags(write=False)
        with pytest.raises(MpiError):
            dt.DOUBLE.unpack(packed, target, 2)

    def test_unpack_rejects_noncontiguous(self):
        packed = dt.DOUBLE.pack(np.zeros(2), 2)
        base = np.zeros(8)
        with pytest.raises(MpiError):
            dt.DOUBLE.unpack(packed, base[::2], 2)

    def test_from_numpy_dtype(self):
        assert dt.from_numpy_dtype(np.dtype("float64")) is dt.DOUBLE
        assert dt.from_numpy_dtype(np.dtype("uint8")) is dt.BYTE
        with pytest.raises(MpiError):
            dt.from_numpy_dtype(np.dtype([("a", "i4")]))


class TestContiguous:
    def test_properties(self):
        c = dt.ContiguousDatatype(3, dt.DOUBLE)
        assert c.size == 24 and c.extent == 24
        assert not c.committed
        c.commit()
        assert c.committed

    def test_pack_unpack(self):
        c = dt.ContiguousDatatype(3, dt.INT)
        src = np.arange(6, dtype=np.int32)
        packed = c.pack(src, 2)  # 2 elements = 6 ints
        dst = np.zeros(6, dtype=np.int32)
        c.unpack(packed, dst, 2)
        np.testing.assert_array_equal(src, dst)

    def test_rejects_bad_count(self):
        with pytest.raises(MpiError):
            dt.ContiguousDatatype(0, dt.INT)


class TestVector:
    def test_geometry(self):
        v = dt.VectorDatatype(count=3, blocklength=2, stride=4, base=dt.DOUBLE)
        assert v.size == 3 * 2 * 8
        assert v.extent == ((3 - 1) * 4 + 2) * 8

    def test_pack_strided_columns(self):
        # a 4x4 row-major matrix; vector(4,1,4) picks one column
        m = np.arange(16, dtype=np.float64).reshape(4, 4)
        col = dt.VectorDatatype(4, 1, 4, dt.DOUBLE)
        packed = col.pack(m, 1)
        np.testing.assert_array_equal(
            np.frombuffer(packed.tobytes()), m[:, 0]
        )

    def test_unpack_strided(self):
        v = dt.VectorDatatype(2, 2, 3, dt.INT)
        src = np.array([1, 2, 9, 3, 4], dtype=np.int32)  # blocks at 0 and 3
        packed = v.pack(src, 1)
        dst = np.zeros(5, dtype=np.int32)
        v.unpack(packed, dst, 1)
        np.testing.assert_array_equal(dst, [1, 2, 0, 3, 4])

    def test_rejects_overlap(self):
        with pytest.raises(MpiError):
            dt.VectorDatatype(2, 4, 3, dt.INT)

    def test_rejects_derived_base(self):
        c = dt.ContiguousDatatype(2, dt.INT)
        with pytest.raises(MpiError):
            dt.VectorDatatype(2, 1, 2, c)  # type: ignore[arg-type]

    def test_too_small_buffer(self):
        v = dt.VectorDatatype(3, 1, 4, dt.INT)
        with pytest.raises(MpiError):
            v.pack(np.zeros(4, dtype=np.int32), 1)


@given(
    st.integers(1, 64),
    st.sampled_from(["float64", "int32", "uint8", "complex128"]),
)
@settings(max_examples=50, deadline=None)
def test_roundtrip_property(count, dtype_name):
    """pack → unpack is the identity for every predefined type and count."""
    datatype = dt.from_numpy_dtype(np.dtype(dtype_name))
    rng = np.random.default_rng(count)
    src = (rng.integers(0, 100, count)).astype(dtype_name)
    dst = np.zeros(count, dtype=dtype_name)
    datatype.unpack(datatype.pack(src, count), dst, count)
    np.testing.assert_array_equal(src, dst)


@given(st.integers(1, 5), st.integers(1, 4), st.integers(0, 5), st.integers(1, 3))
@settings(max_examples=50, deadline=None)
def test_vector_roundtrip_property(count, blocklength, gap, reps):
    """Vector pack/unpack restores exactly the strided elements."""
    stride = blocklength + gap
    v = dt.VectorDatatype(count, blocklength, stride, dt.INT)
    span = ((count - 1) * stride + blocklength)
    total = span * reps + gap  # slack at the end
    rng = np.random.default_rng(count * 7 + blocklength)
    src = rng.integers(-50, 50, total).astype(np.int32)
    packed = v.pack(src, reps)
    dst = np.zeros(total, dtype=np.int32)
    v.unpack(packed, dst, reps)
    idx = v._indices(reps)
    np.testing.assert_array_equal(dst[idx], src[idx])
    mask = np.ones(total, dtype=bool)
    mask[idx] = False
    assert (dst[mask] == 0).all()
