"""Explicit send modes (Ssend/Bsend/Rsend) and MPI_IN_PLACE."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ActorFailure
from repro.smpi import IN_PLACE, SUM, SmpiConfig, smpirun
from repro.smpi import request as rq
from repro.surf import cluster


def run(app, n=2, config=None):
    return smpirun(app, n, cluster("sm", max(n, 2)), config=config)


class TestSendModes:
    def test_ssend_waits_for_receiver_even_when_small(self):
        def app(mpi):
            comm = mpi.COMM_WORLD
            if mpi.rank == 0:
                comm.Ssend(np.zeros(8, dtype=np.uint8), 1, 0)
                return mpi.wtime()
            mpi.sleep(0.4)
            comm.Recv(np.zeros(8, dtype=np.uint8), 0, 0)

        result = run(app, 2)
        assert result.returns[0] > 0.4  # tiny message, still synchronous

    def test_bsend_returns_immediately_even_when_large(self):
        def app(mpi):
            comm = mpi.COMM_WORLD
            if mpi.rank == 0:
                comm.Bsend(np.zeros(500_000, dtype=np.uint8), 1, 0)
                return mpi.wtime()
            mpi.sleep(0.4)
            comm.Recv(np.zeros(500_000, dtype=np.uint8), 0, 0)

        result = run(app, 2)
        assert result.returns[0] < 0.1  # huge message, still buffered

    def test_rsend_delivers_payload(self):
        def app(mpi):
            comm = mpi.COMM_WORLD
            if mpi.rank == 1:
                buf = np.zeros(4)
                req = comm.Irecv(buf, 0, 0)
                comm.Barrier()  # guarantee the receive is posted first
                rq.wait(req)
                return buf.tolist()
            comm.Barrier()
            if mpi.rank == 0:
                comm.Rsend(np.arange(4, dtype=np.float64), 1, 0)

        assert run(app, 2).returns[1] == [0.0, 1.0, 2.0, 3.0]

    def test_issend_nonblocking_completion_semantics(self):
        def app(mpi):
            comm = mpi.COMM_WORLD
            if mpi.rank == 0:
                req = comm.Issend(np.zeros(8, dtype=np.uint8), 1, 0)
                done, _ = rq.test(req)
                early = done
                mpi.sleep(0.2)  # receiver posts at 0.1
                rq.wait(req)
                return (early, mpi.wtime())
            mpi.sleep(0.1)
            comm.Recv(np.zeros(8, dtype=np.uint8), 0, 0)

        early, t_done = run(app, 2).returns[0]
        assert early is False  # could not complete before the recv
        assert t_done >= 0.1


class TestInPlace:
    def test_allreduce_in_place(self):
        def app(mpi):
            buf = np.full(4, float(mpi.rank + 1))
            mpi.COMM_WORLD.Allreduce(IN_PLACE, buf, op=SUM)
            return buf.tolist()

        result = run(app, 4)
        assert all(r == [10.0] * 4 for r in result.returns)

    def test_reduce_in_place_at_root(self):
        def app(mpi):
            comm = mpi.COMM_WORLD
            buf = np.full(2, float(mpi.rank + 1))
            if mpi.rank == 0:
                comm.Reduce(IN_PLACE, buf, op=SUM, root=0)
                return buf.tolist()
            comm.Reduce(buf, None, op=SUM, root=0)

        assert run(app, 3).returns[0] == [6.0, 6.0]

    def test_allgather_in_place(self):
        def app(mpi):
            size = mpi.size
            buf = np.zeros(size * 2)
            buf[mpi.rank * 2 : (mpi.rank + 1) * 2] = mpi.rank
            mpi.COMM_WORLD.Allgather(IN_PLACE, buf)
            return buf.tolist()

        result = run(app, 3)
        assert all(r == [0.0, 0.0, 1.0, 1.0, 2.0, 2.0] for r in result.returns)

    def test_gather_in_place_at_root(self):
        def app(mpi):
            comm = mpi.COMM_WORLD
            size = mpi.size
            if mpi.rank == 0:
                recv = np.zeros(size * 2)
                recv[:2] = 100.0  # root's own contribution, already in place
                comm.Gather(IN_PLACE, recv, root=0)
                return recv.tolist()
            comm.Gather(np.full(2, float(mpi.rank)), None, root=0)

        assert run(app, 3).returns[0] == [100.0, 100.0, 1.0, 1.0, 2.0, 2.0]

    def test_scatter_in_place_at_root(self):
        def app(mpi):
            comm = mpi.COMM_WORLD
            size = mpi.size
            if mpi.rank == 0:
                send = np.arange(size * 2, dtype=np.float64)
                comm.Scatter(send, IN_PLACE, root=0)
                return send[:2].tolist()  # root's chunk untouched in place
            recv = np.zeros(2)
            comm.Scatter(None, recv, root=0)
            return recv.tolist()

        result = run(app, 3)
        assert result.returns == [[0.0, 1.0], [2.0, 3.0], [4.0, 5.0]]

    def test_in_place_on_non_root_rejected(self):
        def app(mpi):
            comm = mpi.COMM_WORLD
            buf = np.zeros(mpi.size * 2)
            comm.Gather(IN_PLACE, buf, root=0)  # wrong on non-roots

        with pytest.raises(ActorFailure):
            run(app, 2)

    def test_in_place_repr(self):
        assert repr(IN_PLACE) == "MPI_IN_PLACE"
