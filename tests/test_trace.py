"""Tests for the observability layer: timeline sampling, trace export
(CSV / Paje / time-independent), analyses and Gantt rendering."""

from __future__ import annotations

import math
import xml.etree.ElementTree as ET

import pytest

from repro.errors import ConfigError
from repro.offline import record_trace, replay_trace
from repro.smpi import SmpiConfig, smpirun
from repro.surf import Engine, cluster
from repro.trace import (
    CommRecord,
    ComputeRecord,
    Timeline,
    Tracer,
    ascii_gantt,
    critical_path,
    export_paje,
    makespan,
    parse_paje,
    state_fractions,
    state_intervals,
    svg_gantt,
)


def traffic_app(mpi):
    """Deterministic mix of compute bursts and eager/rendezvous traffic."""
    comm = mpi.COMM_WORLD
    rank, size = mpi.rank, mpi.size
    mpi.execute(2e7 * (1 + rank))
    comm.sendrecv(b"x" * 200_000, (rank + 1) % size,
                  source=(rank - 1) % size)
    mpi.execute(1e7)
    comm.sendrecv(b"y" * 64, (rank + 1) % size,
                  source=(rank - 1) % size)
    comm.barrier()


def traced_run(n_ranks=4, **options):
    platform = cluster("tr", n_ranks)
    config = SmpiConfig(tracing=True, **options)
    return smpirun(traffic_app, n_ranks, platform, config=config)


@pytest.fixture(scope="module")
def traced():
    """One traced reference run shared by the read-only tests."""
    return traced_run()


class TestTimeline:
    def test_record_dedupes_value_and_time(self):
        tl = Timeline()
        tl.record(0.0, "l0", 0.0, 100.0)  # leading zero: implicit
        tl.record(1.0, "l0", 50.0, 100.0)
        tl.record(1.0, "l0", 60.0, 100.0)  # same time: replace
        tl.record(2.0, "l0", 60.0, 100.0)  # same value: drop
        tl.record(3.0, "l0", 0.0, 100.0)
        assert tl.samples("l0") == [(1.0, 60.0), (3.0, 0.0)]
        assert tl.n_samples == 2

    def test_integration_and_summary(self):
        tl = Timeline()
        tl.record(0.0, "l0", 100.0, 200.0)
        tl.record(2.0, "l0", 0.0, 200.0)
        usage = tl.summarize("l0", until=4.0)
        # busy at 50% for 2s out of 4s -> mean 25%, peak 50%
        assert usage.mean_utilization == pytest.approx(0.25)
        assert usage.peak_utilization == pytest.approx(0.5)
        assert usage.busy_time == pytest.approx(2.0)

    def test_last_value_held_to_horizon(self):
        tl = Timeline()
        tl.record(1.0, "l0", 100.0, 100.0)
        usage = tl.summarize("l0", until=3.0)
        assert usage.mean_utilization == pytest.approx(2.0 / 3.0)

    def test_top_ranks_by_mean(self):
        tl = Timeline()
        tl.record(0.0, "hot", 90.0, 100.0)
        tl.record(0.0, "cold", 10.0, 100.0)
        tl.record(0.0, "cpu", 1e9, 1e9, kind="host")
        top = tl.top(until=1.0, k=5)
        assert [u.name for u in top] == ["hot", "cold"]
        assert tl.names(kind="host") == ["cpu"]

    def test_rows_round_trip(self):
        tl = Timeline()
        tl.record(0.5, "l0", 10.0, 100.0)
        tl.record(1.5, "c0", 2e9, 4e9, kind="host")
        back = Timeline()
        for row in tl.as_rows():
            back.load_row(*row)
        assert back.samples("l0") == tl.samples("l0")
        assert back.kinds == tl.kinds
        assert back.capacities == tl.capacities


class TestEngineSampling:
    def test_tracing_off_leaves_engine_untouched(self):
        platform = cluster("off", 4)
        result = smpirun(traffic_app, 4, platform, config=SmpiConfig())
        assert result.trace.timeline is None
        assert result.stats.link_samples == 0

    def test_tracing_on_samples_links_and_hosts(self, traced):
        timeline = traced.trace.timeline
        assert timeline is not None
        assert timeline.n_samples > 0
        assert traced.stats.link_samples == timeline.n_samples
        assert timeline.names(kind="link")
        assert timeline.names(kind="host")

    def test_usage_never_exceeds_capacity(self, traced):
        timeline = traced.trace.timeline
        for name in timeline.names():
            capacity = timeline.capacities[name]
            for _t, usage in timeline.samples(name):
                assert usage <= capacity * (1 + 1e-9)

    def test_every_link_returns_to_idle(self, traced):
        """After the run drains, the last sample of each resource is 0."""
        timeline = traced.trace.timeline
        for name in timeline.names():
            assert timeline.samples(name)[-1][1] == pytest.approx(0.0)

    def test_full_reshare_engine_samples_too(self):
        platform = cluster("full", 4)
        engine = Engine(platform, full_reshare=True)
        result = smpirun(traffic_app, 4, platform,
                         config=SmpiConfig(tracing=True), engine=engine)
        assert result.trace.timeline is not None
        assert result.trace.timeline.n_samples > 0

    def test_incremental_matches_full_reshare_utilization(self):
        """Both sampling paths must integrate to the same busy time."""
        inc = traced_run().trace.timeline
        platform = cluster("tr", 4)
        full = smpirun(traffic_app, 4, platform,
                       config=SmpiConfig(tracing=True),
                       engine=Engine(platform, full_reshare=True))
        ftl = full.trace.timeline
        assert sorted(inc.names()) == sorted(ftl.names())
        for name in inc.names():
            a = inc.summarize(name, until=1.0)
            b = ftl.summarize(name, until=1.0)
            assert a.mean_utilization == pytest.approx(
                b.mean_utilization, rel=1e-6, abs=1e-12)


class TestTracerCsv:
    def test_round_trip(self, traced):
        text = traced.trace.to_csv()
        back = Tracer.from_csv(text)
        assert back.comms == traced.trace.comms
        assert back.computes == traced.trace.computes
        assert back.timeline is not None
        assert back.timeline.as_rows() == traced.trace.timeline.as_rows()

    def test_open_records_dropped_not_nan(self):
        """Regression: unfinished comms used to serialize as ``nan``."""
        tracer = Tracer()
        tracer.comms.append(CommRecord(0, 0, 1, 0, 10, True, 0.0, 1.0))
        tracer.comms.append(CommRecord(1, 1, 0, 0, 10, True, 0.5))  # open
        text = tracer.to_csv()
        assert "nan" not in text
        assert len(Tracer.from_csv(text).comms) == 1
        assert tracer.open_records() == [tracer.comms[1]]

    def test_include_open_keeps_empty_end(self):
        tracer = Tracer()
        tracer.comms.append(CommRecord(0, 0, 1, 0, 10, True, 0.5))
        text = tracer.to_csv(include_open=True)
        assert "nan" not in text
        back = Tracer.from_csv(text)
        assert len(back.comms) == 1
        assert not back.comms[0].closed

    def test_rejects_foreign_csv(self):
        with pytest.raises(ConfigError):
            Tracer.from_csv("a,b,c\n1,2,3\n")


class TestAnalysis:
    def test_fractions_sum_to_one(self, traced):
        for fractions in state_fractions(traced.trace, 4):
            assert sum(fractions.values()) == pytest.approx(1.0)

    def test_strips_cover_makespan_without_overlap(self, traced):
        horizon = makespan(traced.trace)
        for strip in state_intervals(traced.trace, 4):
            assert strip[0][0] == 0.0
            assert strip[-1][1] == pytest.approx(horizon)
            for (_, prev_end, _), (start, _, _) in zip(strip, strip[1:]):
                assert start == pytest.approx(prev_end)

    def test_makespan_matches_simulated_time(self, traced):
        assert makespan(traced.trace) == pytest.approx(
            traced.simulated_time, rel=1e-9)

    def test_critical_path_is_time_ordered_chain(self, traced):
        path = critical_path(traced.trace)
        assert path.steps
        assert path.steps[-1].end == pytest.approx(path.makespan)
        for a, b in zip(path.steps, path.steps[1:]):
            assert a.end <= b.start + 1e-9
            assert a.slack == pytest.approx(max(b.start - a.end, 0.0))
        assert path.comm_time + path.compute_time + path.idle_time == (
            pytest.approx(path.makespan))
        assert "critical path:" in path.describe()

    def test_empty_trace(self):
        tracer = Tracer()
        assert makespan(tracer) == 0.0
        assert critical_path(tracer).steps == []
        assert state_fractions(tracer) == []


class TestGantt:
    def test_ascii_shape_and_legend(self, traced):
        chart = ascii_gantt(traced.trace, 4, width=40)
        lines = chart.splitlines()
        lanes = [l for l in lines if l.startswith("r")]
        assert len(lanes) == 4
        assert all(len(l) == len(lanes[0]) for l in lanes)
        assert "#" in chart and "computing" in chart

    def test_ascii_critical_overlay(self, traced):
        assert "*" in ascii_gantt(traced.trace, 4, width=40, critical=True)

    def test_svg_is_wellformed_xml(self, traced):
        svg = svg_gantt(traced.trace, 4, critical=True)
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")
        rects = [e for e in root.iter() if e.tag.endswith("rect")]
        assert len(rects) >= 4


class TestPaje:
    def test_header_is_self_describing(self, traced):
        text = export_paje(traced.trace, 4)
        assert text.startswith("%EventDef")
        for event in ("PajeSetState", "PajeStartLink", "PajeEndLink",
                      "PajeSetVariable", "PajeCreateContainer"):
            assert event in text

    def test_golden_small_trace(self):
        """Byte-exact export of a hand-built two-rank trace."""
        tracer = Tracer()
        tracer.comms.append(CommRecord(0, 0, 1, 5, 1000, True, 0.25, 0.75))
        tracer.computes.append(ComputeRecord(0, 1e6, 0.0, 0.25))
        body = export_paje(tracer, 2).split("%EndEventDef\n")[-1]
        assert body.splitlines() == [
            '0 R 0 "simulation"',
            '0 P R "rank"',
            '1 ST P "rank state"',
            '4 c ST "computing" "0.18 0.49 0.20"',
            '4 m ST "communicating" "0.08 0.40 0.75"',
            '4 w ST "waiting" "0.88 0.88 0.88"',
            '3 LK R P P "message"',
            '4 e LK "eager" "0.95 0.61 0.07"',
            '4 r LK "rendezvous" "0.55 0.14 0.67"',
            '5 0.000000000 root R 0 "simulation"',
            '5 0.000000000 rank0 P root "rank 0"',
            '5 0.000000000 rank1 P root "rank 1"',
            '7 0.000000000 ST rank0 c',
            '7 0.000000000 ST rank1 w',
            '7 0.250000000 ST rank0 m',
            '7 0.250000000 ST rank1 m',
            '9 0.250000000 LK root e rank0 m0 1000 5',
            '10 0.750000000 LK root e rank1 m0',
            '6 0.750000000 P rank0',
            '6 0.750000000 P rank1',
            '6 0.750000000 R root',
        ]

    def test_parse_round_trip_preserves_comms(self, traced):
        text = export_paje(traced.trace, 4)
        back, n_ranks = parse_paje(text)
        assert n_ranks == 4
        key = lambda r: (r.mid, r.src, r.dst)
        orig = sorted((r for r in traced.trace.comms if r.closed), key=key)
        parsed = sorted(back.comms, key=key)
        assert len(parsed) == len(orig)
        for a, b in zip(orig, parsed):
            assert (a.mid, a.src, a.dst, a.tag, a.nbytes, a.eager) == (
                b.mid, b.src, b.dst, b.tag, b.nbytes, b.eager)
            assert b.start == pytest.approx(a.start, abs=1e-9)
            assert b.end == pytest.approx(a.end, abs=1e-9)

    def test_parse_round_trip_preserves_timeline(self, traced):
        back, _ = parse_paje(export_paje(traced.trace, 4))
        orig = traced.trace.timeline
        assert back.timeline is not None
        assert sorted(back.timeline.names()) == sorted(orig.names())
        for name in orig.names():
            a = orig.summarize(name, 1.0)
            b = back.timeline.summarize(name, 1.0)
            assert b.mean_utilization == pytest.approx(
                a.mean_utilization, rel=1e-5, abs=1e-12)
            assert back.timeline.kinds[name] == orig.kinds[name]

    def test_parsed_trace_supports_analyses(self, traced):
        back, n_ranks = parse_paje(export_paje(traced.trace, 4))
        assert makespan(back) == pytest.approx(makespan(traced.trace),
                                               abs=1e-8)
        path = critical_path(back)
        assert path.steps
        assert ascii_gantt(back, n_ranks, width=30)

    def test_rejects_non_paje(self):
        with pytest.raises(ConfigError):
            parse_paje("kind,mid\ncomm,0\n")


class TestTiRoundTrip:
    def test_online_ti_offline_identical_time(self):
        """Record on-line, replay off-line: identical simulated time."""
        platform = cluster("ti", 4)
        online, ti = record_trace(traffic_app, 4, platform,
                                  config=SmpiConfig(tracing=True))
        replayed = replay_trace(ti, cluster("ti", 4),
                                config=SmpiConfig(tracing=True))
        assert replayed.simulated_time == online.simulated_time  # bit-exact
        assert makespan(replayed.trace) == pytest.approx(
            makespan(online.trace), rel=1e-12)

    def test_ti_save_load_preserves_time(self, tmp_path):
        platform = cluster("ti", 2)
        online, ti = record_trace(traffic_app, 2, platform)
        path = tmp_path / "t.json"
        ti.save(path)
        from repro.offline import TiTrace

        replayed = replay_trace(TiTrace.load(path), cluster("ti", 2))
        assert replayed.simulated_time == online.simulated_time
