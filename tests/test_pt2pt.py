"""Point-to-point semantics: matching, wildcards, protocols, ordering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ActorFailure, DeadlockError, MpiError
from repro.smpi import (
    ANY_SOURCE,
    ANY_TAG,
    PROC_NULL,
    SmpiConfig,
    Status,
    smpirun,
)
from repro.smpi import request as rq
from repro.surf import cluster


def run(app, n=2, config=None, **kw):
    return smpirun(app, n, cluster("pt", max(n, 2)), config=config, **kw)


class TestBlockingSendRecv:
    def test_payload_delivered(self, run_app):
        def app(mpi):
            comm = mpi.COMM_WORLD
            if mpi.rank == 0:
                comm.Send(np.arange(5, dtype=np.float64), 1, 7)
            elif mpi.rank == 1:
                buf = np.zeros(5)
                comm.Recv(buf, 0, 7)
                return buf.tolist()

        result = run_app(app, 2)
        assert result.returns[1] == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_status_fields(self, run_app):
        def app(mpi):
            comm = mpi.COMM_WORLD
            if mpi.rank == 0:
                comm.Send(np.zeros(3, dtype=np.int32), 1, 42)
            else:
                buf = np.zeros(3, dtype=np.int32)
                status = Status()
                comm.Recv(buf, ANY_SOURCE, ANY_TAG, status)
                from repro.smpi import INT

                return (status.source, status.tag, status.get_count(INT))

        result = run_app(app, 2)
        assert result.returns[1] == (0, 42, 3)

    def test_truncation_is_an_error(self, run_app):
        def app(mpi):
            comm = mpi.COMM_WORLD
            if mpi.rank == 0:
                comm.Send(np.zeros(10), 1, 0)
            else:
                comm.Recv(np.zeros(5), 0, 0)

        with pytest.raises(ActorFailure) as info:
            run_app(app, 2)
        assert isinstance(info.value.original, MpiError)

    def test_send_to_proc_null_is_noop(self, run_app):
        def app(mpi):
            comm = mpi.COMM_WORLD
            comm.Send(np.zeros(1), PROC_NULL, 0)
            comm.Recv(np.zeros(1), PROC_NULL, 0)
            return "ok"

        assert run_app(app, 2).returns == ["ok", "ok"]

    def test_bad_rank_raises(self, run_app):
        def app(mpi):
            mpi.COMM_WORLD.Send(np.zeros(1), 99, 0)

        with pytest.raises(ActorFailure):
            run_app(app, 2)

    def test_bad_tag_raises(self, run_app):
        def app(mpi):
            mpi.COMM_WORLD.Send(np.zeros(1), 1, ANY_TAG)

        with pytest.raises(ActorFailure):
            run_app(app, 2)


class TestMatching:
    def test_tag_selectivity(self, run_app):
        def app(mpi):
            comm = mpi.COMM_WORLD
            if mpi.rank == 0:
                comm.Send(np.array([1.0]), 1, 10)
                comm.Send(np.array([2.0]), 1, 20)
            else:
                a, b = np.zeros(1), np.zeros(1)
                comm.Recv(b, 0, 20)  # out of order by tag
                comm.Recv(a, 0, 10)
                return (a[0], b[0])

        assert run_app(app, 2).returns[1] == (1.0, 2.0)

    def test_non_overtaking_same_envelope(self, run_app):
        def app(mpi):
            comm = mpi.COMM_WORLD
            if mpi.rank == 0:
                for value in (1.0, 2.0, 3.0):
                    comm.Send(np.array([value]), 1, 5)
            else:
                got = []
                for _ in range(3):
                    buf = np.zeros(1)
                    comm.Recv(buf, 0, 5)
                    got.append(buf[0])
                return got

        assert run_app(app, 2).returns[1] == [1.0, 2.0, 3.0]

    def test_any_source_matches_first_arrival(self, run_app):
        def app(mpi):
            comm = mpi.COMM_WORLD
            if mpi.rank in (0, 1):
                mpi.sleep(0.1 * (mpi.rank + 1))
                comm.Send(np.array([float(mpi.rank)]), 2, 0)
            else:
                sources = []
                for _ in range(2):
                    status = Status()
                    buf = np.zeros(1)
                    comm.Recv(buf, ANY_SOURCE, 0, status)
                    sources.append(status.source)
                return sources

        result = run_app(app, 3)
        assert result.returns[2] == [0, 1]  # rank 0 sent earlier

    def test_wildcard_tag(self, run_app):
        def app(mpi):
            comm = mpi.COMM_WORLD
            if mpi.rank == 0:
                comm.Send(np.array([9.0]), 1, 1234)
            else:
                status = Status()
                buf = np.zeros(1)
                comm.Recv(buf, 0, ANY_TAG, status)
                return status.tag

        assert run_app(app, 2).returns[1] == 1234

    def test_unexpected_message_queue(self, run_app):
        """Send completes (eager) before the receive is even posted."""

        def app(mpi):
            comm = mpi.COMM_WORLD
            if mpi.rank == 0:
                comm.Send(np.array([7.0]), 1, 0)  # eager, no recv posted
                return mpi.wtime()
            mpi.sleep(0.5)  # post the receive long after arrival
            buf = np.zeros(1)
            comm.Recv(buf, 0, 0)
            return (buf[0], mpi.wtime())

        result = run_app(app, 2)
        send_done = result.returns[0]
        value, recv_done = result.returns[1]
        assert value == 7.0
        assert send_done < 0.01  # eager send did not wait for the receiver
        assert recv_done == pytest.approx(0.5, abs=0.01)


class TestProtocols:
    def test_eager_send_completes_without_receiver(self):
        config = SmpiConfig(eager_threshold=1024)

        def app(mpi):
            comm = mpi.COMM_WORLD
            if mpi.rank == 0:
                comm.Send(np.zeros(64, dtype=np.uint8), 1, 0)
                t_send = mpi.wtime()
                return t_send
            mpi.sleep(1.0)
            comm.Recv(np.zeros(64, dtype=np.uint8), 0, 0)
            return mpi.wtime()

        result = run(app, 2, config=config)
        assert result.returns[0] < 0.1
        assert result.returns[1] == pytest.approx(1.0, abs=0.01)

    def test_rendezvous_send_waits_for_receiver(self):
        config = SmpiConfig(eager_threshold=1024)

        def app(mpi):
            comm = mpi.COMM_WORLD
            if mpi.rank == 0:
                comm.Send(np.zeros(1_000_000, dtype=np.uint8), 1, 0)
                return mpi.wtime()
            mpi.sleep(1.0)
            comm.Recv(np.zeros(1_000_000, dtype=np.uint8), 0, 0)
            return mpi.wtime()

        result = run(app, 2, config=config)
        # the sender was held until the receive was posted at t=1
        assert result.returns[0] > 1.0

    def test_protocol_switch_at_threshold(self):
        times = {}
        for size, key in ((1024, "eager"), (1025, "rdv")):
            config = SmpiConfig(eager_threshold=1024)

            def app(mpi, size=size):
                comm = mpi.COMM_WORLD
                if mpi.rank == 0:
                    comm.Send(np.zeros(size, dtype=np.uint8), 1, 0)
                    return mpi.wtime()
                mpi.sleep(0.2)
                comm.Recv(np.zeros(size, dtype=np.uint8), 0, 0)

            times[key] = run(app, 2, config=config).returns[0]
        assert times["eager"] < 0.1 < times["rdv"]

    def test_eager_copy_cost_applies(self):
        fast = SmpiConfig(eager_threshold=1 << 20)
        slow = fast.with_options(eager_copy_bandwidth=1e6)

        def app(mpi):
            comm = mpi.COMM_WORLD
            if mpi.rank == 0:
                comm.Send(np.zeros(100_000, dtype=np.uint8), 1, 0)
                return mpi.wtime()
            comm.Recv(np.zeros(100_000, dtype=np.uint8), 0, 0)

        t_fast = run(app, 2, config=fast).returns[0]
        t_slow = run(app, 2, config=slow).returns[0]
        assert t_slow > t_fast + 0.09  # 100 kB / 1 MB/s = 0.1 s of copy


class TestZeroCopy:
    def test_timing_preserved_payload_dropped(self):
        """zero_copy: identical simulated timing, no data movement (the
        paper's technique #2 applied to messages — results erroneous)."""

        def app(mpi):
            comm = mpi.COMM_WORLD
            buf = np.full(200_000, 7.0) if mpi.rank == 0 else np.zeros(200_000)
            if mpi.rank == 0:
                comm.Send(buf, 1, 0)
            else:
                comm.Recv(buf, 0, 0)
                return (mpi.wtime(), float(buf.sum()))

        online = run(app, 2, config=SmpiConfig())
        folded = run(app, 2, config=SmpiConfig(zero_copy=True))
        t_online, sum_online = online.returns[1]
        t_folded, sum_folded = folded.returns[1]
        assert t_folded == pytest.approx(t_online, rel=1e-9)
        assert sum_online == 7.0 * 200_000
        assert sum_folded == 0.0  # documented: erroneous results

    def test_zero_copy_collectives_complete(self):
        def app(mpi):
            comm = mpi.COMM_WORLD
            send = np.zeros(mpi.size * 100)
            recv = np.zeros(mpi.size * 100)
            comm.Alltoall(send, recv)
            comm.Barrier()
            return mpi.wtime()

        result = run(app, 4, config=SmpiConfig(zero_copy=True))
        assert all(t > 0 for t in result.returns)


class TestDeadlocks:
    def test_mutual_blocking_recv_deadlocks(self, run_app):
        def app(mpi):
            comm = mpi.COMM_WORLD
            peer = 1 - mpi.rank
            buf = np.zeros(1)
            comm.Recv(buf, peer, 0)
            comm.Send(buf, peer, 0)

        with pytest.raises(DeadlockError):
            run_app(app, 2)

    def test_mutual_rendezvous_send_deadlocks(self):
        config = SmpiConfig(eager_threshold=16)

        def app(mpi):
            comm = mpi.COMM_WORLD
            peer = 1 - mpi.rank
            comm.Send(np.zeros(1000, dtype=np.uint8), peer, 0)
            comm.Recv(np.zeros(1000, dtype=np.uint8), peer, 0)

        with pytest.raises(DeadlockError):
            run(app, 2, config=config)

    def test_mutual_eager_send_does_not_deadlock(self):
        config = SmpiConfig(eager_threshold=4096)

        def app(mpi):
            comm = mpi.COMM_WORLD
            peer = 1 - mpi.rank
            comm.Send(np.zeros(1000, dtype=np.uint8), peer, 0)
            buf = np.zeros(1000, dtype=np.uint8)
            comm.Recv(buf, peer, 0)
            return "ok"

        assert run(app, 2, config=config).returns == ["ok", "ok"]

    def test_sendrecv_avoids_deadlock_at_any_size(self):
        def app(mpi):
            comm = mpi.COMM_WORLD
            peer = 1 - mpi.rank
            out = np.full(200_000, float(mpi.rank))
            incoming = np.zeros(200_000)
            comm.Sendrecv(out, peer, 3, incoming, peer, 3)
            return incoming[0]

        result = run(app, 2)
        assert result.returns == [1.0, 0.0]


class TestObjectApi:
    def test_send_recv_object(self, run_app):
        def app(mpi):
            comm = mpi.COMM_WORLD
            if mpi.rank == 0:
                comm.send({"x": [1, 2, 3], "y": "hello"}, 1, 0)
            else:
                return comm.recv(0, 0)

        assert run_app(app, 2).returns[1] == {"x": [1, 2, 3], "y": "hello"}

    def test_sendrecv_object(self, run_app):
        def app(mpi):
            comm = mpi.COMM_WORLD
            peer = 1 - mpi.rank
            return comm.sendrecv(("from", mpi.rank), peer, 1, peer, 1)

        result = run_app(app, 2)
        assert result.returns == [("from", 1), ("from", 0)]

    def test_object_status(self, run_app):
        def app(mpi):
            comm = mpi.COMM_WORLD
            if mpi.rank == 0:
                comm.send([1] * 100, 1, 9)
            else:
                status = Status()
                obj = comm.recv(ANY_SOURCE, ANY_TAG, status)
                return (obj == [1] * 100, status.source, status.tag,
                        status.count_bytes > 0)

        assert run_app(app, 2).returns[1] == (True, 0, 9, True)
