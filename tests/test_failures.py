"""Failure injection: link and host death during a simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ActorFailure, MpiError
from repro.smpi import SmpiConfig, smpirun
from repro.surf import Engine, cluster
from repro.surf.action import ActionState


class TestEngineFailures:
    def test_fail_link_kills_inflight_transfer(self):
        platform = cluster("f1", 2)
        engine = Engine(platform)
        action = engine.communicate("node-0", "node-1", 10_000_000)
        engine.at(0.01, lambda: engine.fail_resource(platform.link("f1-l0")))
        engine.run()
        assert action.state is ActionState.FAILED
        assert action.finish_time == pytest.approx(0.01, abs=1e-6)

    def test_new_transfer_over_dead_link_fails_immediately(self):
        platform = cluster("f2", 2)
        engine = Engine(platform)
        engine.fail_resource(platform.link("f2-backbone"))
        action = engine.communicate("node-0", "node-1", 1000)
        engine.run()
        assert action.state is ActionState.FAILED

    def test_unrelated_transfer_survives(self):
        platform = cluster("f3", 4, backbone_bandwidth=None)
        engine = Engine(platform)
        doomed = engine.communicate("node-0", "node-1", 1_000_000)
        safe = engine.communicate("node-2", "node-3", 1_000_000)
        engine.at(0.001, lambda: engine.fail_resource(platform.link("f3-l0")))
        engine.run()
        assert doomed.state is ActionState.FAILED
        assert safe.state is ActionState.DONE

    def test_fail_host_kills_compute(self):
        platform = cluster("f4", 2)
        engine = Engine(platform)
        action = engine.execute("node-0", 1e12)
        engine.at(0.5, lambda: engine.fail_resource(platform.host("node-0")))
        engine.run()
        assert action.state is ActionState.FAILED

    def test_at_runs_callback_at_time(self):
        engine = Engine(cluster("f5", 2))
        fired = []
        engine.at(0.25, lambda: fired.append(engine.now))
        engine.run()
        assert fired == [pytest.approx(0.25)]

    def test_at_fires_on_cancel_by_default(self):
        # the historical footgun is deliberate default behavior: scripted
        # fault injection must happen however the scenario unwinds
        engine = Engine(cluster("f7", 2))
        fired = []
        action = engine.at(0.25, lambda: fired.append(engine.now))
        engine.cancel(action)
        engine.run()
        assert fired == [pytest.approx(0.0)]

    def test_at_fire_on_cancel_false_suppresses_callback(self):
        engine = Engine(cluster("f8", 2))
        fired = []
        action = engine.at(0.25, lambda: fired.append(engine.now),
                           fire_on_cancel=False)
        engine.cancel(action)
        engine.run()
        assert fired == []

    def test_at_fire_on_cancel_false_still_fires_normally(self):
        engine = Engine(cluster("f9", 2))
        fired = []
        engine.at(0.25, lambda: fired.append(engine.now),
                  fire_on_cancel=False)
        engine.run()
        assert fired == [pytest.approx(0.25)]

    def test_is_dead(self):
        platform = cluster("f6", 2)
        engine = Engine(platform)
        link = platform.link("f6-l0")
        assert not engine.is_dead(link)
        engine.fail_resource(link)
        assert engine.is_dead(link)


class TestMpiLevelFailures:
    def test_link_death_surfaces_as_mpi_error_in_ranks(self):
        platform = cluster("mf1", 2)

        def app(mpi):
            comm = mpi.COMM_WORLD
            if mpi.rank == 0:
                mpi._world.engine.at(
                    0.005,
                    lambda: mpi._world.engine.fail_resource(
                        platform.link("mf1-l0")
                    ),
                )
                comm.Send(np.zeros(10_000_000, dtype=np.uint8), 1, 0)
            else:
                comm.Recv(np.zeros(10_000_000, dtype=np.uint8), 0, 0)

        with pytest.raises(ActorFailure) as info:
            smpirun(app, 2, platform)
        assert isinstance(info.value.original, MpiError)
        assert "network failure" in str(info.value.original)

    def test_failure_after_delivery_is_harmless(self):
        platform = cluster("mf2", 2)

        def app(mpi):
            comm = mpi.COMM_WORLD
            if mpi.rank == 0:
                comm.Send(np.zeros(100, dtype=np.uint8), 1, 0)
            else:
                comm.Recv(np.zeros(100, dtype=np.uint8), 0, 0)
            comm.Barrier()
            # kill the link only after all traffic is done
            mpi._world.engine.fail_resource(platform.link("mf2-l0"))
            return "survived"

        result = smpirun(app, 2, platform)
        assert result.returns == ["survived", "survived"]

    def test_rank_can_catch_failure_and_continue(self):
        platform = cluster("mf3", 3)

        def app(mpi):
            comm = mpi.COMM_WORLD
            if mpi.rank == 0:
                mpi._world.engine.at(
                    0.002,
                    lambda: mpi._world.engine.fail_resource(
                        platform.link("mf3-l1")
                    ),
                )
                try:
                    comm.Send(np.zeros(5_000_000, dtype=np.uint8), 1, 0)
                except MpiError:
                    pass
                # rank 2's link is alive: failover succeeds
                comm.Send(np.zeros(1000, dtype=np.uint8), 2, 1)
                return "failover"
            if mpi.rank == 1:
                try:
                    comm.Recv(np.zeros(5_000_000, dtype=np.uint8), 0, 0)
                except MpiError:
                    return "lost"
            if mpi.rank == 2:
                comm.Recv(np.zeros(1000, dtype=np.uint8), 0, 1)
                return "received"

        result = smpirun(app, 3, platform)
        assert result.returns == ["failover", "lost", "received"]
