"""Cross-module integration tests: whole applications end to end."""

from __future__ import annotations

import numpy as np
import pytest

from repro.calibration import calibrate_all
from repro.calibration.calibrate import replay_config
from repro.errors import ActorFailure, DeadlockError
from repro.metrics import mean_percent_error
from repro.packetsim import PacketEngine, PacketParams
from repro.refcluster import OPENMPI, run_pingpong_campaign, run_reference
from repro.smpi import SUM, SmpiConfig, smpirun
from repro.surf import cluster
from repro.trace import Tracer


class TestFullApplications:
    def test_pi_estimation_master_worker(self, run_app):
        """A master/worker app exercising object messaging + reductions."""

        def app(mpi):
            comm = mpi.COMM_WORLD
            n_per_rank = 2000
            rng = np.random.default_rng(1000 + mpi.rank)
            xy = rng.random((n_per_rank, 2))
            inside = int(((xy**2).sum(axis=1) <= 1.0).sum())
            total = comm.allreduce(inside)
            return 4.0 * total / (n_per_rank * mpi.size)

        result = run_app(app, 8)
        assert result.returns[0] == pytest.approx(np.pi, abs=0.15)
        assert all(r == result.returns[0] for r in result.returns)

    def test_ring_pipeline_keeps_order(self, run_app):
        def app(mpi):
            comm = mpi.COMM_WORLD
            token = None
            if mpi.rank == 0:
                token = ["start"]
                comm.send(token, 1, 0)
                token = comm.recv(mpi.size - 1, 0)
            else:
                token = comm.recv(mpi.rank - 1, 0)
                token = token + [mpi.rank]
                comm.send(token, (mpi.rank + 1) % mpi.size, 0)
            return token

        result = run_app(app, 5)
        assert result.returns[0] == ["start", 1, 2, 3, 4]

    def test_matvec_with_allgather(self, run_app):
        """The mpi4py tutorial's parallel matrix-vector product."""

        def app(mpi):
            comm = mpi.COMM_WORLD
            size = mpi.size
            m = 4  # local rows
            n = m * size
            rng = np.random.default_rng(7)
            full_a = rng.random((n, n))
            full_x = rng.random(n)
            local_a = full_a[mpi.rank * m : (mpi.rank + 1) * m]
            local_x = full_x[mpi.rank * m : (mpi.rank + 1) * m].copy()
            gathered = np.zeros(n)
            comm.Allgather(local_x, gathered)
            local_y = local_a @ gathered
            result = np.zeros(n) if mpi.rank == 0 else None
            comm.Gather(local_y, result, root=0)
            if mpi.rank == 0:
                return np.allclose(result, full_a @ full_x)

        assert run_app(app, 4).returns[0] is True

    def test_mixed_collectives_sequence(self, run_app):
        """Back-to-back different collectives must not cross-match."""

        def app(mpi):
            comm = mpi.COMM_WORLD
            checks = []
            buf = np.array([float(mpi.rank)])
            out = np.zeros(1)
            comm.Allreduce(buf, out, op=SUM)
            checks.append(out[0] == sum(range(mpi.size)))
            comm.Barrier()
            b = np.array([3.14]) if mpi.rank == 1 else np.zeros(1)
            comm.Bcast(b, root=1)
            checks.append(b[0] == 3.14)
            gathered = np.zeros(mpi.size) if mpi.rank == 0 else None
            comm.Gather(np.array([float(mpi.rank)]), gathered, root=0)
            if mpi.rank == 0:
                checks.append(list(gathered) == [0.0, 1.0, 2.0, 3.0])
            comm.Barrier()
            return all(checks)

        assert all(run_app(app, 4).returns)


class TestEngineEquivalence:
    def test_same_app_both_kernels_same_results(self):
        """On-line correctness is kernel-independent: the flow engine and
        the packet engine deliver identical numerical results."""

        def app(mpi):
            comm = mpi.COMM_WORLD
            data = np.full(100, float(mpi.rank + 1))
            out = np.zeros(100)
            comm.Allreduce(data, out)
            recv = np.zeros(100 * mpi.size) if mpi.rank == 0 else None
            comm.Gather(data, recv, root=0)
            return (out.sum(), None if recv is None else recv.sum())

        flow = smpirun(app, 4, cluster("eq1", 4))
        packet_platform = cluster("eq2", 4)
        packet = smpirun(app, 4, packet_platform,
                         engine=PacketEngine(packet_platform))
        assert flow.returns == packet.returns

    def test_calibrated_flow_model_tracks_packet_times(self):
        """Calibrate on the packet testbed, replay on the flow kernel: the
        uncontended ping-pong times must agree closely (the Fig. 3 loop)."""
        platform = cluster("cal", 2, backbone_bandwidth="1.25GBps")
        campaign_sizes = sorted(
            {100, 10_000, 1_000_000}
            | set(int(v) for v in np.logspace(0, 7, 30))
        )
        campaign = run_pingpong_campaign(
            platform, "node-0", "node-1", OPENMPI, noise=0.0,
            sizes=campaign_sizes,
        )
        models = calibrate_all(campaign.sizes, campaign.times, campaign.route)

        def pingpong(mpi, sizes):
            comm = mpi.COMM_WORLD
            out = {}
            for size in sizes:
                buf = np.zeros(size, dtype=np.uint8)
                comm.Barrier()
                t0 = mpi.wtime()
                if mpi.rank == 0:
                    comm.Send(buf, 1, 0)
                    comm.Recv(buf, 1, 0)
                else:
                    comm.Recv(buf, 0, 0)
                    comm.Send(buf, 0, 0)
                if mpi.rank == 0:
                    out[size] = (mpi.wtime() - t0) / 2
            return out

        sizes = [100, 10_000, 1_000_000]
        replay = smpirun(
            pingpong, 2, cluster("cal2", 2, backbone_bandwidth="1.25GBps"),
            app_args=(sizes,),
            config=replay_config(OPENMPI.config()),
            network_model=models.piecewise,
        )
        predicted = [replay.returns[0][s] for s in sizes]
        reference = [campaign.times[list(campaign.sizes).index(s)] for s in sizes]
        assert mean_percent_error(predicted, reference) < 15.0


class TestFaults:
    def test_rank_failure_reports_rank(self, run_app):
        def app(mpi):
            if mpi.rank == 2:
                raise RuntimeError("bad rank")
            mpi.COMM_WORLD.Barrier()

        with pytest.raises(ActorFailure) as info:
            run_app(app, 4)
        assert "rank-2" in str(info.value)

    def test_collective_mismatch_deadlocks(self, run_app):
        def app(mpi):
            comm = mpi.COMM_WORLD
            if mpi.rank == 0:
                comm.Barrier()
            # other ranks never join the barrier

        with pytest.raises(DeadlockError):
            run_app(app, 3)

    def test_partial_waitall_deadlock(self, run_app):
        def app(mpi):
            comm = mpi.COMM_WORLD
            from repro.smpi import request as rq

            if mpi.rank == 0:
                req = comm.Irecv(np.zeros(1), 1, 7)
                rq.waitall([req])  # rank 1 never sends

        with pytest.raises(DeadlockError):
            run_app(app, 2)


class TestTrace:
    def test_tracing_records_messages_and_computes(self):
        config = SmpiConfig(tracing=True)

        def app(mpi):
            comm = mpi.COMM_WORLD
            if mpi.rank == 0:
                comm.Send(np.zeros(1000, dtype=np.uint8), 1, 0)
            else:
                comm.Recv(np.zeros(1000, dtype=np.uint8), 0, 0)
            mpi.execute(1e6)

        result = smpirun(app, 2, cluster("tr", 2), config=config)
        trace = result.trace
        assert len(trace.comms) == 1
        assert trace.comms[0].nbytes == 1000
        assert trace.comms[0].end > trace.comms[0].start
        assert len(trace.computes) == 2
        pairs = trace.bytes_by_pair()
        assert pairs[(0, 1)] == 1000
        assert len(trace.messages_of(0)) == 1

    def test_trace_csv_export(self, tmp_path):
        tracer = Tracer()
        tracer.compute(0, 1e6, 0.0, 1.0)
        path = tmp_path / "trace.csv"
        tracer.save(path)
        content = path.read_text()
        assert "compute" in content and "kind" in content

    def test_tracing_off_keeps_trace_empty(self, run_app):
        def app(mpi):
            mpi.COMM_WORLD.Barrier()

        result = run_app(app, 2)
        assert result.trace.comms == []


class TestHostPlacement:
    def test_explicit_hosts_and_oversubscription(self):
        platform = cluster("hp", 2)

        def app(mpi):
            return mpi._world.host_of(mpi.rank)

        result = smpirun(app, 4, platform,
                         hosts=["node-0", "node-0", "node-1", "node-1"])
        assert result.returns == ["node-0", "node-0", "node-1", "node-1"]

    def test_round_robin_default(self):
        platform = cluster("rr", 2)

        def app(mpi):
            return mpi._world.host_of(mpi.rank)

        result = smpirun(app, 4, platform)
        assert result.returns == ["node-0", "node-1", "node-0", "node-1"]

    def test_colocated_ranks_share_cpu(self):
        platform = cluster("cpu", 1, host_speed="1Gf")

        def app(mpi):
            mpi.execute(1e9)
            return mpi.wtime()

        result = smpirun(app, 2, platform, hosts=["node-0", "node-0"])
        # two ranks share the single 1 Gf core: 2 s each, not 1 s
        assert result.returns[0] == pytest.approx(2.0, rel=0.01)
